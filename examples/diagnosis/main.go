// Fault diagnosis: the downstream payoff of the fault simulator. A
// deterministic test set is generated with PODEM and compacted; a fault
// dictionary records every modelled fault's syndrome under it; a
// "defective part" is then diagnosed by matching its observed syndrome
// against the dictionary.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	c := repro.Multiplier(4)
	fmt.Println(c)
	faults := repro.FaultsDominance(c)
	fmt.Printf("dictionary fault list (dominance collapsed): %d\n", len(faults))

	// Deterministic test set: PODEM + static compaction.
	ts, err := repro.GenerateTests(c, faults, repro.ATPGOptions{})
	if err != nil {
		log.Fatal(err)
	}
	vecs := repro.CompactTests(c, faults, ts.Vectors)
	fmt.Printf("test set: %d vectors (%d before compaction), %d redundant faults\n",
		len(vecs), len(ts.Vectors), len(ts.Redundant))

	// Build the dictionary and report its resolution.
	dict, err := repro.BuildDictionary(c, faults, vecs, repro.FullResponse)
	if err != nil {
		log.Fatal(err)
	}
	unique, largest := dict.Resolution()
	fmt.Printf("dictionary resolution: %.1f%% of faults uniquely diagnosable, largest ambiguity class %d\n",
		100*unique, largest)

	// Play tester: inject each of a few faults and diagnose.
	exact, classed := 0, 0
	probe := faults
	if len(probe) > 40 {
		probe = probe[:40]
	}
	for _, f := range probe {
		cands, err := dict.DiagnoseFault(c, f, vecs)
		if err != nil {
			log.Fatal(err)
		}
		if cands[0].Distance != 0 {
			log.Fatalf("diagnosis of %s found no distance-0 candidate", f.Name(c))
		}
		// Count exact (unique) hits vs ambiguity classes.
		zero := 0
		hit := false
		for _, cand := range cands {
			if cand.Distance > 0 {
				break
			}
			zero++
			if cand.Fault == f {
				hit = true
			}
		}
		if !hit {
			log.Fatalf("injected fault %s missing from its candidate class", f.Name(c))
		}
		if zero == 1 {
			exact++
		} else {
			classed++
		}
	}
	fmt.Printf("diagnosed %d injected faults: %d unique, %d within an ambiguity class\n",
		len(probe), exact, classed)
}
