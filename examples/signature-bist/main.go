// Signature-based BIST: the full self-test environment. An LFSR drives
// the circuit, a MISR compacts every output response, and a fault counts
// as caught only when its final signature differs from the good machine's
// — exactly what an on-chip BIST controller sees. The example shows the
// whole arrangement working before and after test point insertion, and
// reports compaction aliasing.
//
//	go run ./examples/signature-bist
package main

import (
	"fmt"
	"log"

	"repro"
)

const patterns = 2048

func main() {
	// An equality comparator: out = (a == b) over 12-bit operands. The
	// XNOR/AND-tree structure makes the output side random-pattern
	// resistant (P(a==b) = 2^-12).
	c := repro.Comparator(12)
	fmt.Println(c)
	faults := repro.Faults(c)

	// Run the literal BIST session on the unmodified circuit.
	before, err := repro.RunBIST(c, faults, repro.NewLFSR(0xace1), patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("good signature: %016x\n", before.GoodSignature)
	fmt.Printf("signature coverage @%d patterns: %.2f%% (aliased: %d)\n",
		patterns, 100*before.Coverage(), len(before.Aliased))

	// Insert test points and re-run the identical session.
	plan, err := repro.PlanTestPoints(c, faults, 2, 3, 4.0/patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserted %d control + %d observation point(s)\n",
		len(plan.Control.Points), len(plan.Observe.Points))
	after, err := repro.RunBIST(plan.Modified, faults, repro.NewLFSR(0xace1), patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature coverage @%d patterns: %.2f%% (aliased: %d)\n",
		patterns, 100*after.Coverage(), len(after.Aliased))

	// Cross-check the signature verdicts against direct PO comparison:
	// they must agree except where the result reports aliasing.
	direct, err := repro.Simulate(plan.Modified, faults, repro.NewLFSR(0xace1),
		repro.SimOptions{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		log.Fatal(err)
	}
	mismatches := 0
	for _, f := range faults {
		_, po := direct.FirstDetect[f]
		if po != after.Detected[f] {
			mismatches++
		}
	}
	fmt.Printf("\nsignature vs direct-comparison mismatches: %d (aliasing events: %d)\n",
		mismatches, len(after.Aliased))
	if mismatches == len(after.Aliased) {
		fmt.Println("every mismatch is an accounted aliasing event — compaction verified")
	}
}
