// DP vs greedy: the paper's central claim, reproduced interactively. On
// a fanout-free circuit the dynamic program places K full test points
// optimally (minimising the worst segment's minimal test count); greedy
// placement is close but provably suboptimal on some instances, and
// random placement is far off.
//
//	go run ./examples/dp-vs-greedy
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	c := repro.RandomTree(42, 200, repro.TreeOptions{})
	fmt.Println(c)

	ct, err := repro.ComputeTestCounts(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal complete test set without test points: %d tests\n\n", ct.CircuitTests())

	fmt.Printf("%4s  %10s  %10s  %22s\n", "K", "DP", "greedy", "greedy excess (%)")
	for k := 0; k <= 16; k += 2 {
		dp, err := repro.PlanCuts(c, k)
		if err != nil {
			log.Fatal(err)
		}
		gr, err := repro.PlanCutsGreedy(c, k)
		if err != nil {
			log.Fatal(err)
		}
		excess := 100 * float64(gr.MaxCost-dp.MaxCost) / float64(dp.MaxCost)
		fmt.Printf("%4d  %10d  %10d  %21.1f%%\n", k, dp.MaxCost, gr.MaxCost, excess)
	}

	// Show what the optimal plan actually does at K=8: the cut signals
	// and the resulting segment structure.
	plan, err := repro.PlanCuts(c, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal K=8 plan: %d cuts, minimax %d tests (DP states: %d)\n",
		len(plan.Cuts), plan.MaxCost, plan.StatesVisited)
	for _, s := range plan.Cuts {
		fmt.Printf("  full test point at %s (subtree needs %d tests when observed there)\n",
			c.GateName(s), ct.Total(s))
	}

	// Inserting the plan yields a real circuit: every cut becomes an
	// observation buffer plus a fresh primary input.
	mod, err := c.InsertTestPoints(plan.TestPoints())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodified circuit: %d gates, %d PIs, %d POs (was %d/%d/%d)\n",
		mod.NumGates(), mod.NumInputs(), mod.NumOutputs(),
		c.NumGates(), c.NumInputs(), c.NumOutputs())
}
