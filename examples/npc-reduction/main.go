// NP-completeness demonstrator: Set Cover reduces to budget-constrained
// test point insertion on circuits with reconvergent fanout — the
// hardness result the 1987 paper is cited for. This example builds the
// gadget circuit for a concrete instance, solves the TPI side by brute
// force with real fault simulation, and checks it against the exact Set
// Cover optimum.
//
//	go run ./examples/npc-reduction
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// U = {0..7}; can it be covered with K sets?
	sc := repro.SetCover{
		NumElements: 8,
		Sets: [][]int{
			{0, 1, 2},
			{2, 3},
			{3, 4, 5},
			{5, 6},
			{6, 7, 0},
			{1, 4, 7},
		},
	}
	fmt.Println("Set Cover instance:")
	for j, s := range sc.Sets {
		fmt.Printf("  S%d = %v\n", j, s)
	}

	red, err := repro.ReduceSetCover(sc)
	if err != nil {
		log.Fatal(err)
	}
	c := red.Circuit
	fmt.Printf("\ngadget circuit: %s\n", c)
	fmt.Printf("target faults (one per element): %d\n", len(red.TargetFaults))
	fmt.Printf("candidate observation sites (one per set): %d\n", len(red.Candidates))
	fmt.Printf("reconvergent fanout: %v (the blocker AND(t, NOT t) hides all faults)\n",
		c.HasReconvergentFanout())

	// Without observation points nothing is detectable.
	res, err := repro.Simulate(c, red.TargetFaults, repro.NewLFSR(1),
		repro.SimOptions{MaxPatterns: 4096, DropFaults: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfaults detected with 4096 patterns and no observation points: %d\n",
		len(res.FirstDetect))

	// Brute-force the TPI optimum (exponential — that is the point) and
	// compare with the Set Cover optimum.
	tpiMin, chosen, err := red.SolveTPIBruteForce()
	if err != nil {
		log.Fatal(err)
	}
	scMin := repro.SolveSetCoverExact(sc)
	fmt.Printf("\nminimum observation points (by exhaustive TPI search): %d\n", tpiMin)
	fmt.Printf("minimum cover (by exact set cover solver):            %d\n", scMin)
	fmt.Printf("solutions agree: %v\n", tpiMin == scMin)
	fmt.Print("chosen sets: ")
	for _, j := range chosen {
		fmt.Printf("S%d ", j)
	}
	fmt.Println()

	// Verify the chosen placement end to end.
	det, err := red.Detects(chosen)
	if err != nil {
		log.Fatal(err)
	}
	all := true
	for _, d := range det {
		all = all && d
	}
	fmt.Printf("all element faults detected with the chosen points: %v\n", all)
}
