// BIST coverage study: the workload that motivates test point insertion.
// A random-pattern-resistant circuit is fault-simulated under a 32k-
// pattern LFSR BIST session; the coverage curve flattens far below 100%.
// Test points are planned and inserted, the session re-run, and the two
// curves printed side by side. Deterministic PODEM top-up vectors finish
// off whatever random patterns still miss.
//
//	go run ./examples/bist-coverage
package main

import (
	"fmt"
	"log"

	"repro"
)

const patterns = 32768

func main() {
	// Three wide AND cones buried in 120 gates of random glue logic.
	c := repro.RPResistant(7, 3, 14, 120)
	fmt.Println(c)
	faults := repro.Faults(c)
	fmt.Printf("collapsed faults: %d\n\n", len(faults))

	orig, err := curve(c, faults)
	if err != nil {
		log.Fatal(err)
	}

	// Plan the test points: the threshold 4/patterns asks that every
	// targeted fault have a decent chance of several detections within
	// the session.
	plan, err := repro.PlanTestPoints(c, faults, 4, 6, 4.0/patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d control points, %d observation points\n\n",
		len(plan.Control.Points), len(plan.Observe.Points))
	mod, err := curve(plan.Modified, faults)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%10s  %12s  %12s\n", "patterns", "original", "with TPs")
	for i := range orig {
		fmt.Printf("%10d  %11.2f%%  %11.2f%%\n", (i+1)*patterns/16, 100*orig[i], 100*mod[i])
	}

	// Whatever the modified circuit still misses gets deterministic
	// top-up vectors from PODEM — the classic hybrid BIST arrangement.
	res, err := repro.Simulate(plan.Modified, faults, repro.NewLFSR(0xbadc0de),
		repro.SimOptions{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		log.Fatal(err)
	}
	remaining := res.Undetected()
	if len(remaining) == 0 {
		fmt.Println("\nno faults left for deterministic top-up")
		return
	}
	ts, err := repro.GenerateTests(plan.Modified, remaining, repro.ATPGOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-up: %d undetected faults -> %d deterministic vectors (%d proven redundant, %d aborted)\n",
		len(remaining), len(ts.Vectors), len(ts.Redundant), len(ts.Aborted))
	final := float64(len(faults)-len(remaining)+len(ts.Detected)) / float64(len(faults))
	fmt.Printf("final coverage including top-up: %.2f%%\n", 100*final)
}

// curve returns 16 coverage samples along the BIST session.
func curve(c *repro.Circuit, faults []repro.Fault) ([]float64, error) {
	res, err := repro.Simulate(c, faults, repro.NewLFSR(0xbadc0de),
		repro.SimOptions{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, p := range res.Curve(patterns / 16) {
		out = append(out, p.Coverage)
	}
	return out, nil
}
