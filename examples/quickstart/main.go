// Quickstart: load a circuit, measure its random-pattern fault coverage,
// insert test points with the planners, and measure again.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 16-wide AND cone is the canonical random-pattern-resistant
	// structure: its output stuck-at-0 needs the all-ones input pattern,
	// which uniform random patterns hit once in 65536 tries.
	c := repro.AndCone(16)
	fmt.Println(c)

	faults := repro.Faults(c)
	fmt.Printf("collapsed stuck-at faults: %d\n", len(faults))

	// Baseline: 4096 LFSR patterns.
	opts := repro.SimOptions{MaxPatterns: 4096, DropFaults: true}
	before, err := repro.Simulate(c, faults, repro.NewLFSR(1), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage before TPI: %.2f%%\n", 100*before.Coverage())

	// Where do the escapes hide? Ask the testability analysis.
	co := repro.NewCOP(c, repro.COPOptions{})
	for _, f := range before.Undetected() {
		fmt.Printf("  undetected: %-16s estimated detection probability %.2e\n",
			f.Name(c), co.DetectProb(f))
	}

	// Plan 2 control points + 2 observation points targeting faults that
	// need at least detection probability 4/4096 to be caught reliably.
	plan, err := repro.PlanTestPoints(c, faults, 2, 2, 4.0/4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d control point(s), %d observation point(s)\n",
		len(plan.Control.Points), len(plan.Observe.Points))

	// Same patterns, modified circuit. The fault list still refers to the
	// original gates — insertion preserves their IDs.
	after, err := repro.Simulate(plan.Modified, faults, repro.NewLFSR(1), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage after TPI:  %.2f%%\n", 100*after.Coverage())
}
