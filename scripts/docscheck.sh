#!/usr/bin/env bash
# docscheck.sh — keep README.md honest about the command-line tools.
#
# For every directory under cmd/ this script:
#   1. requires README.md to mention the tool at all,
#   2. requires a "### `cmd/<tool>`" flag-reference table,
#   3. builds the tool, extracts its real flag set from -help, and
#      diffs it against the documented flag set in BOTH directions:
#      a flag the tool has but the table lacks fails, and so does a
#      flag the table lists but the tool no longer has.
#
# Run from the repository root:  ./scripts/docscheck.sh
# Exit code: 0 when the docs match, 1 on any drift.
set -euo pipefail

cd "$(dirname "$0")/.."
readme=README.md
fail=0

say() { printf '%s\n' "$*"; }
err() {
  printf 'docscheck: %s\n' "$*" >&2
  fail=1
}

[ -f "$readme" ] || { err "$readme not found"; exit 1; }

bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT

for dir in cmd/*/; do
  tool=$(basename "$dir")

  if ! grep -q "cmd/$tool" "$readme"; then
    err "cmd/$tool is not mentioned anywhere in $readme"
    continue
  fi

  # The live flag set: build the tool, parse "  -name" lines of -help.
  if ! go build -o "$bindir/$tool" "./cmd/$tool"; then
    err "cmd/$tool does not build"
    continue
  fi
  actual=$("$bindir/$tool" -help 2>&1 | sed -n 's/^  -\([a-zA-Z][a-zA-Z0-9-]*\).*/\1/p' | sort -u)

  # The documented flag set: rows of the tool's flag-reference table,
  # i.e. lines like "| `-name` | ..." between this tool's "### `cmd/X`"
  # heading and the next heading.
  documented=$(awk -v tool="$tool" '
    /^### / { in_tool = ($0 == "### `cmd/" tool "`") ; next }
    in_tool && /^\| `-/ {
      line = $0
      sub(/^\| `-/, "", line)
      sub(/`.*/, "", line)
      print line
    }
  ' "$readme" | sort -u)

  if [ -z "$documented" ]; then
    err "cmd/$tool has no flag-reference table in $readme (expected a '### \`cmd/$tool\`' section)"
    continue
  fi

  missing=$(comm -23 <(printf '%s\n' "$actual") <(printf '%s\n' "$documented"))
  stale=$(comm -13 <(printf '%s\n' "$actual") <(printf '%s\n' "$documented"))

  if [ -n "$missing" ]; then
    err "cmd/$tool: flags present in -help but missing from $readme: $(echo "$missing" | tr '\n' ' ')"
  fi
  if [ -n "$stale" ]; then
    err "cmd/$tool: flags documented in $readme but absent from -help: $(echo "$stale" | tr '\n' ' ')"
  fi
  if [ -z "$missing" ] && [ -z "$stale" ]; then
    say "docscheck: cmd/$tool ok ($(printf '%s\n' "$actual" | wc -l) flags)"
  fi
done

# The codelint rule table: README's "Code lint" section must list
# exactly the rules the tool registers, as reported by `codelint -list`
# (first column of each row), in both directions.
if [ -x "$bindir/codelint" ]; then
  actual_rules=$("$bindir/codelint" -list | awk '{print $1}' | sort -u)
  documented_rules=$(sed -n 's/^| `\(G[0-9][0-9][0-9]\)`.*/\1/p' "$readme" | sort -u)
  if [ -z "$documented_rules" ]; then
    err "README.md has no codelint rule table (expected rows like '| \`G001\` ...')"
  else
    missing_rules=$(comm -23 <(printf '%s\n' "$actual_rules") <(printf '%s\n' "$documented_rules"))
    stale_rules=$(comm -13 <(printf '%s\n' "$actual_rules") <(printf '%s\n' "$documented_rules"))
    if [ -n "$missing_rules" ]; then
      err "codelint rules registered but missing from $readme: $(echo "$missing_rules" | tr '\n' ' ')"
    fi
    if [ -n "$stale_rules" ]; then
      err "codelint rules documented in $readme but not registered: $(echo "$stale_rules" | tr '\n' ' ')"
    fi
    if [ -z "$missing_rules" ] && [ -z "$stale_rules" ]; then
      say "docscheck: codelint rule table ok ($(printf '%s\n' "$actual_rules" | wc -l) rules)"
    fi
  fi
fi

if [ "$fail" -ne 0 ]; then
  say "docscheck: FAILED — README.md flag tables and rule tables have drifted from the tools"
  exit 1
fi
say "docscheck: all flag tables match"
