package repro

import (
	"testing"

	"repro/internal/cpt"
	"repro/internal/dsim"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/pattern"
	"repro/internal/testability"
	"repro/internal/tpi"
)

// One benchmark per experiment (E1..E8 of DESIGN.md), measuring the
// computational kernel that regenerates the corresponding table or
// figure, plus micro-benchmarks of the substrates. Quick-mode workloads
// keep `go test -bench=.` tractable; cmd/experiments runs the full sizes.

var benchCfg = exp.Config{Quick: true}

func BenchmarkE1TestCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E1TestCounts(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2DPInsertion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E2Insertion(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E3Sweep(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E4Coverage(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5Curve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E5Curve(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E6Scaling(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Reduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E7Reduction(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E8Ablations(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkFaultSim measures raw fault simulator throughput: collapsed
// universe of a 1000-gate reconvergent circuit, 4096 LFSR patterns with
// dropping.
func BenchmarkFaultSim(b *testing.B) {
	c := RandomDAG(1, 32, 1000, DAGOptions{})
	faults := fault.CollapsedUniverse(c)
	b.ReportMetric(float64(len(faults)), "faults")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsim.Run(c, faults, pattern.NewLFSR(7), fsim.Options{MaxPatterns: 4096, DropFaults: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultSimNoDrop is the ablation partner of BenchmarkFaultSim.
func BenchmarkFaultSimNoDrop(b *testing.B) {
	c := RandomDAG(1, 32, 1000, DAGOptions{})
	faults := fault.CollapsedUniverse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsim.Run(c, faults, pattern.NewLFSR(7), fsim.Options{MaxPatterns: 4096, DropFaults: false}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogicSim measures good-circuit bit-parallel throughput on an
// 8-bit multiplier (64 patterns per op).
func BenchmarkLogicSim(b *testing.B) {
	c := Multiplier(8)
	src := pattern.NewLFSR(3)
	words := make([]uint64, c.NumInputs())
	sim := NewLogicSim(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.FillBlock(words)
		if err := sim.Run(words); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCutDP measures the exact planner on a 500-leaf tree at K=8.
func BenchmarkCutDP(b *testing.B) {
	c := RandomTree(5, 500, TreeOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tpi.PlanCutsDP(c, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPDP measures observation point planning on a 1000-gate
// reconvergent circuit at K=8.
func BenchmarkOPDP(b *testing.B) {
	c := RandomDAG(2, 32, 1000, DAGOptions{})
	faults := fault.CollapsedUniverse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tpi.PlanObservationPointsDP(c, faults, 8, 1.0/8192, tpi.OPOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOP measures testability analysis on a 2000-gate circuit.
func BenchmarkCOP(b *testing.B) {
	c := RandomDAG(3, 64, 2000, DAGOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testability.NewCOP(c, testability.COPOptions{})
	}
}

// BenchmarkPODEM measures deterministic test generation over the full
// collapsed universe of c17-scale and adder-scale circuits.
func BenchmarkPODEM(b *testing.B) {
	c := RippleCarryAdder(8)
	faults := fault.CollapsedUniverse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTests(c, faults, ATPGOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollapse measures fault collapsing on a 5000-gate circuit.
func BenchmarkCollapse(b *testing.B) {
	c := RandomDAG(4, 64, 5000, DAGOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fault.CollapsedUniverse(c)
	}
}

// BenchmarkDeductiveSim measures the deductive engine on the same
// workload class as BenchmarkFaultSim (smaller, as befits a
// one-pattern-at-a-time algorithm).
func BenchmarkDeductiveSim(b *testing.B) {
	c := RandomDAG(1, 16, 300, DAGOptions{})
	faults := fault.Universe(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsim.Run(c, faults, pattern.NewLFSR(7), dsim.Options{MaxPatterns: 512, DropFaults: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCriticalPathTracing measures the CPT engine on the same
// workload as BenchmarkDeductiveSim.
func BenchmarkCriticalPathTracing(b *testing.B) {
	c := RandomDAG(1, 16, 300, DAGOptions{})
	faults := fault.Universe(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpt.Run(c, faults, pattern.NewLFSR(7), cpt.Options{MaxPatterns: 512, DropFaults: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultSimParallel measures the multi-goroutine PPSFP wrapper.
func BenchmarkFaultSimParallel(b *testing.B) {
	c := RandomDAG(1, 32, 1000, DAGOptions{})
	faults := fault.CollapsedUniverse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := fsim.RunParallel(c, faults, func() pattern.Source { return pattern.NewLFSR(7) }, 0,
			fsim.Options{MaxPatterns: 4096, DropFaults: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBISTSession measures the literal MISR-compacted session.
func BenchmarkBISTSession(b *testing.B) {
	c := Comparator(10)
	faults := fault.CollapsedUniverse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBIST(c, faults, NewLFSR(3), 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9ScanTestTime benchmarks the extension experiment's kernel.
func BenchmarkE9ScanTestTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E9ScanTestTime(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}
