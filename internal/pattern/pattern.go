// Package pattern provides test pattern sources for fault simulation:
// LFSR pseudo-random sequences (the BIST pattern generator of the era),
// weighted random, exhaustive counters, and explicit vector sets for
// ATPG-generated tests. Sources produce 64-pattern blocks matched to the
// bit-parallel simulator: one uint64 word per primary input, bit b of
// word i being the value of input i in pattern b.
package pattern

import "math/rand"

// Source produces pattern blocks.
type Source interface {
	// FillBlock writes up to 64 patterns into dst (one word per primary
	// input, len(dst) words total) and returns the number of patterns
	// produced. Zero means the source is exhausted. Bits above the
	// returned count are zero.
	FillBlock(dst []uint64) int
	// Reset restarts the stream from its initial state.
	Reset()
}

// LFSR is a 64-bit Galois linear feedback shift register with a primitive
// feedback polynomial, producing a maximal-length pseudo-random bit
// sequence. Successive bits fill successive primary inputs, so each input
// sees a distinct phase of the sequence — the standard arrangement when an
// LFSR feeds a scan chain.
type LFSR struct {
	state uint64
	seed  uint64
}

// primitivePoly64 encodes x^64 + x^63 + x^61 + x^60 + 1 (taps at the high
// bits), a known primitive polynomial over GF(2).
const primitivePoly64 = 0xd800000000000000

// NewLFSR returns an LFSR seeded with the given nonzero value. A zero
// seed is replaced with 1 (the all-zero state is the lone fixed point of
// an LFSR and would generate a constant stream).
func NewLFSR(seed uint64) *LFSR {
	if seed == 0 {
		seed = 1
	}
	return &LFSR{state: seed, seed: seed}
}

// step advances one bit and returns it.
func (l *LFSR) step() uint64 {
	out := l.state & 1
	l.state >>= 1
	if out == 1 {
		l.state ^= primitivePoly64
	}
	return out
}

// FillBlock implements Source. An LFSR never exhausts.
func (l *LFSR) FillBlock(dst []uint64) int {
	for i := range dst {
		dst[i] = 0
	}
	for b := 0; b < 64; b++ {
		for i := range dst {
			dst[i] |= l.step() << uint(b)
		}
	}
	return 64
}

// Reset implements Source.
func (l *LFSR) Reset() { l.state = l.seed }

// Weighted produces independent random patterns where input i is 1 with
// probability Weights[i] (0.5 for inputs beyond the weights slice).
type Weighted struct {
	Weights []float64
	seed    int64
	rng     *rand.Rand
}

// NewWeighted returns a weighted random source.
func NewWeighted(seed int64, weights []float64) *Weighted {
	return &Weighted{Weights: weights, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// FillBlock implements Source.
func (w *Weighted) FillBlock(dst []uint64) int {
	for i := range dst {
		p := 0.5
		if i < len(w.Weights) {
			p = w.Weights[i]
		}
		var word uint64
		for b := 0; b < 64; b++ {
			if w.rng.Float64() < p {
				word |= 1 << uint(b)
			}
		}
		dst[i] = word
	}
	return 64
}

// Reset implements Source.
func (w *Weighted) Reset() { w.rng = rand.New(rand.NewSource(w.seed)) }

// Counter enumerates all 2^n input combinations for n-input circuits
// (n <= 30), then exhausts. Useful for exhaustive ground-truth runs on
// small circuits.
type Counter struct {
	n    int
	next uint64
}

// NewCounter returns an exhaustive counting source for n inputs.
func NewCounter(n int) *Counter {
	if n < 1 || n > 30 {
		panic("pattern: Counter supports 1..30 inputs")
	}
	return &Counter{n: n}
}

// FillBlock implements Source.
func (c *Counter) FillBlock(dst []uint64) int {
	total := uint64(1) << uint(c.n)
	count := 0
	for i := range dst {
		dst[i] = 0
	}
	for b := 0; b < 64 && c.next < total; b++ {
		v := c.next
		for i := range dst {
			if v>>uint(i)&1 == 1 {
				dst[i] |= 1 << uint(b)
			}
		}
		c.next++
		count++
	}
	return count
}

// Reset implements Source.
func (c *Counter) Reset() { c.next = 0 }

// Vectors replays an explicit list of test vectors, each given as one bool
// per primary input. Used to fault-simulate ATPG-generated test sets.
type Vectors struct {
	Vecs [][]bool
	pos  int
}

// NewVectors returns a source replaying the given vectors.
func NewVectors(vecs [][]bool) *Vectors { return &Vectors{Vecs: vecs} }

// FillBlock implements Source.
func (v *Vectors) FillBlock(dst []uint64) int {
	for i := range dst {
		dst[i] = 0
	}
	count := 0
	for b := 0; b < 64 && v.pos < len(v.Vecs); b++ {
		vec := v.Vecs[v.pos]
		for i := range dst {
			if i < len(vec) && vec[i] {
				dst[i] |= 1 << uint(b)
			}
		}
		v.pos++
		count++
	}
	return count
}

// Reset implements Source.
func (v *Vectors) Reset() { v.pos = 0 }
