package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorTextRoundTrip(t *testing.T) {
	vecs := [][]bool{
		{true, false, true, true},
		{false, false, false, false},
		{true, true, true, true},
	}
	var sb strings.Builder
	if err := WriteVectorText(&sb, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseVectorText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vecs) {
		t.Fatalf("got %d vectors, want %d", len(got), len(vecs))
	}
	for i := range vecs {
		for j := range vecs[i] {
			if got[i][j] != vecs[i][j] {
				t.Errorf("vector %d bit %d differs", i, j)
			}
		}
	}
}

func TestVectorTextRoundTripProperty(t *testing.T) {
	// Property: any random vector set survives a write/parse cycle.
	f := func(words []uint16, width uint8) bool {
		w := int(width%16) + 1
		vecs := make([][]bool, 0, len(words))
		for _, word := range words {
			vec := make([]bool, w)
			for i := 0; i < w; i++ {
				vec[i] = word>>uint(i)&1 == 1
			}
			vecs = append(vecs, vec)
		}
		if len(vecs) == 0 {
			return true
		}
		var sb strings.Builder
		if err := WriteVectorText(&sb, vecs); err != nil {
			return false
		}
		got, err := ParseVectorText(strings.NewReader(sb.String()))
		if err != nil || len(got) != len(vecs) {
			return false
		}
		for i := range vecs {
			for j := range vecs[i] {
				if got[i][j] != vecs[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVectorTextCommentsAndSeparators(t *testing.T) {
	in := `
# header comment
10_10  # trailing comment
01 01
`
	vecs, err := ParseVectorText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 2 || len(vecs[0]) != 4 {
		t.Fatalf("got %d vectors of width %d", len(vecs), len(vecs[0]))
	}
	if !vecs[0][0] || vecs[0][1] || !vecs[0][2] || vecs[0][3] {
		t.Errorf("vector 0 = %v", vecs[0])
	}
}

func TestVectorTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad char":                     "10x1\n",
		"width mismatch":               "101\n10\n",
		"comment-only vector is empty": "#c\n1\n\n0\n10\n",
	}
	for name, in := range cases {
		if _, err := ParseVectorText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		}
	}
}

func TestVectorTextEmptyInput(t *testing.T) {
	vecs, err := ParseVectorText(strings.NewReader("# nothing\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 0 {
		t.Errorf("got %d vectors from empty input", len(vecs))
	}
}
