package pattern

import (
	"math"
	"math/bits"
	"testing"
)

func TestLFSRMaximalPeriodPrefix(t *testing.T) {
	// The 64-bit LFSR state must not repeat within a modest window.
	l := NewLFSR(0xace1)
	seen := make(map[uint64]bool)
	for i := 0; i < 1<<16; i++ {
		if seen[l.state] {
			t.Fatalf("state repeated after %d steps", i)
		}
		seen[l.state] = true
		l.step()
	}
}

func TestLFSRZeroSeedReplaced(t *testing.T) {
	l := NewLFSR(0)
	dst := make([]uint64, 4)
	l.FillBlock(dst)
	any := uint64(0)
	for _, w := range dst {
		any |= w
	}
	if any == 0 {
		t.Error("zero-seeded LFSR produced all-zero block")
	}
}

func TestLFSRResetReproduces(t *testing.T) {
	l := NewLFSR(42)
	a := make([]uint64, 5)
	b := make([]uint64, 5)
	l.FillBlock(a)
	l.Reset()
	l.FillBlock(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("word %d differs after reset", i)
		}
	}
}

func TestLFSRBitBalance(t *testing.T) {
	// Over many blocks, each input's bit stream should be ~50% ones.
	l := NewLFSR(7)
	dst := make([]uint64, 8)
	ones := make([]int, 8)
	const blocks = 256
	for b := 0; b < blocks; b++ {
		l.FillBlock(dst)
		for i, w := range dst {
			ones[i] += bits.OnesCount64(w)
		}
	}
	for i, o := range ones {
		p := float64(o) / float64(blocks*64)
		if math.Abs(p-0.5) > 0.05 {
			t.Errorf("input %d bit probability %.3f, want ~0.5", i, p)
		}
	}
}

func TestCounterExhaustive(t *testing.T) {
	c := NewCounter(3)
	dst := make([]uint64, 3)
	n := c.FillBlock(dst)
	if n != 8 {
		t.Fatalf("counter produced %d patterns, want 8", n)
	}
	// Every one of the 8 combinations appears exactly once.
	seen := make(map[int]bool)
	for b := 0; b < 8; b++ {
		v := 0
		for i := range dst {
			if dst[i]>>uint(b)&1 == 1 {
				v |= 1 << uint(i)
			}
		}
		if seen[v] {
			t.Errorf("combination %d repeated", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("saw %d distinct combinations, want 8", len(seen))
	}
	if n := c.FillBlock(dst); n != 0 {
		t.Errorf("exhausted counter produced %d more patterns", n)
	}
	c.Reset()
	if n := c.FillBlock(dst); n != 8 {
		t.Errorf("after reset counter produced %d patterns, want 8", n)
	}
}

func TestCounterLargeSpansBlocks(t *testing.T) {
	c := NewCounter(8) // 256 patterns = 4 blocks
	dst := make([]uint64, 8)
	total := 0
	for {
		n := c.FillBlock(dst)
		if n == 0 {
			break
		}
		total += n
	}
	if total != 256 {
		t.Errorf("counter produced %d patterns, want 256", total)
	}
}

func TestCounterPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 31-input counter")
		}
	}()
	NewCounter(31)
}

func TestWeightedBias(t *testing.T) {
	w := NewWeighted(99, []float64{0.9, 0.1})
	dst := make([]uint64, 2)
	ones := [2]int{}
	const blocks = 128
	for b := 0; b < blocks; b++ {
		w.FillBlock(dst)
		ones[0] += bits.OnesCount64(dst[0])
		ones[1] += bits.OnesCount64(dst[1])
	}
	p0 := float64(ones[0]) / float64(blocks*64)
	p1 := float64(ones[1]) / float64(blocks*64)
	if math.Abs(p0-0.9) > 0.05 || math.Abs(p1-0.1) > 0.05 {
		t.Errorf("weighted probabilities %.3f/%.3f, want 0.9/0.1", p0, p1)
	}
}

func TestWeightedDefaultsAndReset(t *testing.T) {
	w := NewWeighted(5, nil)
	a := make([]uint64, 3)
	b := make([]uint64, 3)
	w.FillBlock(a)
	w.Reset()
	w.FillBlock(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("weighted source not reproducible after reset")
		}
	}
}

func TestVectorsReplay(t *testing.T) {
	vecs := [][]bool{
		{true, false, true},
		{false, true, false},
	}
	v := NewVectors(vecs)
	dst := make([]uint64, 3)
	n := v.FillBlock(dst)
	if n != 2 {
		t.Fatalf("produced %d, want 2", n)
	}
	if dst[0] != 0b01 || dst[1] != 0b10 || dst[2] != 0b01 {
		t.Errorf("packed words = %b %b %b", dst[0], dst[1], dst[2])
	}
	if n := v.FillBlock(dst); n != 0 {
		t.Error("exhausted vector source produced more")
	}
	v.Reset()
	if n := v.FillBlock(dst); n != 2 {
		t.Error("reset vector source did not replay")
	}
}

func TestVectorsManyBlocks(t *testing.T) {
	vecs := make([][]bool, 100)
	for i := range vecs {
		vecs[i] = []bool{i%2 == 0}
	}
	v := NewVectors(vecs)
	dst := make([]uint64, 1)
	if n := v.FillBlock(dst); n != 64 {
		t.Errorf("first block = %d, want 64", n)
	}
	if n := v.FillBlock(dst); n != 36 {
		t.Errorf("second block = %d, want 36", n)
	}
}
