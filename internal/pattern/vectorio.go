package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseVectorText reads test vectors in the plain text format emitted by
// WriteVectorText: one vector per line as a string of '0'/'1' characters
// (leftmost character = first primary input), blank lines and '#'
// comments ignored. All vectors must have the same width.
func ParseVectorText(r io.Reader) ([][]bool, error) {
	sc := bufio.NewScanner(r)
	var vecs [][]bool
	lineNo := 0
	width := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		vec := make([]bool, 0, len(line))
		for _, ch := range line {
			switch ch {
			case '0':
				vec = append(vec, false)
			case '1':
				vec = append(vec, true)
			case ' ', '\t', '_':
				// cosmetic separators allowed
			default:
				return nil, fmt.Errorf("pattern: line %d: invalid character %q", lineNo, ch)
			}
		}
		if width < 0 {
			width = len(vec)
		} else if len(vec) != width {
			return nil, fmt.Errorf("pattern: line %d: vector width %d, expected %d", lineNo, len(vec), width)
		}
		if len(vec) == 0 {
			return nil, fmt.Errorf("pattern: line %d: empty vector", lineNo)
		}
		vecs = append(vecs, vec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pattern: read: %w", err)
	}
	return vecs, nil
}

// WriteVectorText writes vectors in the text format ParseVectorText
// reads.
func WriteVectorText(w io.Writer, vecs [][]bool) error {
	bw := bufio.NewWriter(w)
	for _, vec := range vecs {
		for _, b := range vec {
			if b {
				bw.WriteByte('1')
			} else {
				bw.WriteByte('0')
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
