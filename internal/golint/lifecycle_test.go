package golint

import (
	"bytes"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The acceptance pins for the G014–G016 bring-up fixes: each deletes
// the repair from a module copy and watches the rule fire. They are
// the proof the rules guard the live tree, not just their fixtures.

// TestDeletingTickerStopFiresG014 pins the resource-lifecycle rule to
// the GC loop's ticker: remove `defer t.Stop()` from jobs.gcLoop and
// the ticker leaks on every manager shutdown.
func TestDeletingTickerStopFiresG014(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a mutated module copy")
	}
	root := mutateModule(t, "internal/jobs/manager.go",
		"\tt := time.NewTicker(interval)\n\tdefer t.Stop()\n",
		"\tt := time.NewTicker(interval)\n")
	found := false
	for _, f := range runRuleOn(t, root, "g014") {
		if f.File == "internal/jobs/manager.go" &&
			strings.Contains(f.Message, "time.NewTicker ticker t is never released") {
			found = true
		}
	}
	if !found {
		t.Error("deleting the gcLoop ticker's Stop did not fire G014")
	}
}

// TestDeletingDirSyncFiresG015 pins the durability rule to the result
// installer: remove writeResult's directory sync after the rename and
// a crash can forget the installed blob — exactly invariant 3.
func TestDeletingDirSyncFiresG015(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a mutated module copy")
	}
	root := mutateModule(t, "internal/jobs/store.go",
		"\tif err := st.syncDir(); err != nil {\n"+
			"\t\treturn fmt.Errorf(\"jobs: sync result dir: %w\", err)\n"+
			"\t}\n",
		"")
	found := false
	for _, f := range runRuleOn(t, root, "g015") {
		if f.File == "internal/jobs/store.go" &&
			strings.Contains(f.Message, "os.Rename is not followed by a directory sync") {
			found = true
		}
	}
	if !found {
		t.Error("deleting writeResult's directory sync did not fire G015")
	}
}

// TestDeletingFlushFiresG016 pins the streaming rule to the job-events
// handler: remove the per-iteration Flush and the NDJSON stream
// buffers silently until the job finishes.
func TestDeletingFlushFiresG016(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a mutated module copy")
	}
	root := mutateModule(t, "internal/serve/jobs.go",
		"\t\tif err := rc.Flush(); err != nil {\n"+
			"\t\t\tstatus = statusClientClosed\n"+
			"\t\t\treturn\n"+
			"\t\t}\n",
		"\t\t_ = rc\n")
	found := false
	for _, f := range runRuleOn(t, root, "g016") {
		if f.File == "internal/serve/jobs.go" &&
			strings.Contains(f.Message, "NDJSON stream loop never flushes") {
			found = true
		}
	}
	if !found {
		t.Error("deleting the job-events Flush did not fire G016")
	}
}

// TestFingerprintStableAcrossLineShift pins the fingerprint contract:
// hashing the line's text instead of its number keeps the print stable
// when unrelated edits shift the file, while identical duplicate lines
// still get distinct prints via the occurrence index.
func TestFingerprintStableAcrossLineShift(t *testing.T) {
	root := t.TempDir()
	write := func(content string) {
		t.Helper()
		if err := os.MkdirAll(filepath.Join(root, "pkg"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, "pkg", "a.go"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("package pkg\n\nvar x = today()\n")
	before := Fingerprints(root, []Finding{
		{Rule: RuleImpureEngine, File: "pkg/a.go", Line: 3},
	})

	// Shift the offending line down by two; the trimmed text is
	// unchanged, so the fingerprint must be too.
	write("package pkg\n\n// a comment\n// another\nvar x = today()\n")
	after := Fingerprints(root, []Finding{
		{Rule: RuleImpureEngine, File: "pkg/a.go", Line: 5},
	})
	if before[0] != after[0] {
		t.Errorf("fingerprint changed across a pure line shift: %s -> %s", before[0], after[0])
	}

	// Two findings on the same line disambiguate by occurrence index.
	same := Fingerprints(root, []Finding{
		{Rule: RuleImpureEngine, File: "pkg/a.go", Line: 3},
		{Rule: RuleImpureEngine, File: "pkg/a.go", Line: 3},
	})
	if same[0] == same[1] {
		t.Error("duplicate findings on one line share a fingerprint; the occurrence index is lost")
	}

	// Different rules on the same line must not collide either.
	mixed := Fingerprints(root, []Finding{
		{Rule: RuleImpureEngine, File: "pkg/a.go", Line: 3},
		{Rule: RuleNondetIteration, File: "pkg/a.go", Line: 3},
	})
	if mixed[0] == mixed[1] {
		t.Error("different rules on one line share a fingerprint")
	}

	// A deleted file degrades to an empty line text, never an error.
	gone := Fingerprints(root, []Finding{
		{Rule: RuleImpureEngine, File: "pkg/missing.go", Line: 1},
	})
	if len(gone) != 1 || gone[0] == "" {
		t.Errorf("missing file produced %v, want one non-empty fingerprint", gone)
	}
}

// TestBaselineRoundTrip pins the suppression file format end to end:
// write, parse, apply — suppressed findings drop out, new findings
// survive, and entries with no matching finding surface as stale.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Rule: RuleResourceLifecycle, File: "a/x.go", Line: 3, Message: "old debt"},
		{Rule: RuleStreamingDiscipline, File: "b/y.go", Line: 9, Message: "new finding"},
	}
	fps := []string{"aaaa111122223333", "bbbb444455556666"}

	var buf bytes.Buffer
	if err := WriteBaseline(&buf, findings[:1], fps[:1]); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "# codelint baseline v1\n") {
		t.Fatalf("baseline missing version header:\n%s", text)
	}
	if !strings.Contains(text, "aaaa111122223333 G014 a/x.go") {
		t.Fatalf("baseline entry lacks fingerprint + human context:\n%s", text)
	}

	// Add a stale entry by hand, as a fixed-finding baseline would hold.
	buf.WriteString("ffff000000000000 G015 gone/z.go\n")
	b, err := ParseBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 2 {
		t.Fatalf("parsed baseline holds %d entries, want 2", b.Size())
	}
	kept, keptFps, suppressed, stale := b.Apply(findings, fps)
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	if len(kept) != 1 || kept[0].Message != "new finding" {
		t.Errorf("kept = %v, want only the new finding", kept)
	}
	if len(keptFps) != 1 || keptFps[0] != fps[1] {
		t.Errorf("keptFps = %v, want %v", keptFps, fps[1:])
	}
	if len(stale) != 1 || stale[0] != "ffff000000000000" {
		t.Errorf("stale = %v, want the fixed finding's entry", stale)
	}

	// Mismatched parallel slices and missing headers fail loudly.
	if err := WriteBaseline(&bytes.Buffer{}, findings, fps[:1]); err == nil {
		t.Error("WriteBaseline accepted mismatched findings/fingerprints")
	}
	if _, err := ParseBaseline(strings.NewReader("aaaa G014 a/x.go\n")); err == nil {
		t.Error("ParseBaseline accepted a file without the version header")
	}
	if _, err := ParseBaseline(strings.NewReader("")); err == nil {
		t.Error("ParseBaseline accepted an empty file")
	}
}

// fixFixtureModule copies the g014 fixture into a fresh module whose
// layout preserves the testdata/codelint/g014 path suffix, so the
// suffix-matched allowlists still recognize the Vetted function.
func fixFixtureModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "testdata", "codelint", "g014")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(fixtureDir(t, "g014") + "/dirty.go")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dirty.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module repro\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// runG014On loads the fix-fixture module copy and returns its G014
// findings through a fresh loader (the package cache would otherwise
// hide the applied fixes).
func runG014On(t *testing.T, root string) []Finding {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/testdata/codelint/g014")
	if err != nil {
		t.Fatal(err)
	}
	as, err := Select(Analyzers(), []string{"g014"})
	if err != nil {
		t.Fatal(err)
	}
	return Run(l, pkgs, as).ByRule(RuleResourceLifecycle)
}

// TestApplyFixesIdempotent is the autofix acceptance pin: applying the
// suggested fixes removes exactly the findings that carried them, the
// result is gofmt-clean, and a second application changes nothing.
func TestApplyFixesIdempotent(t *testing.T) {
	root := fixFixtureModule(t)
	before := runG014On(t, root)
	if len(before) != 5 {
		t.Fatalf("fixture module produced %d G014 findings, want 5:\n%v", len(before), before)
	}
	withFix := 0
	for _, f := range before {
		if f.Fix != nil {
			withFix++
		}
	}
	if withFix != 2 {
		t.Fatalf("%d findings carry fixes, want 2 (the never-released pair)", withFix)
	}

	fixed, err := ApplyFixes(root, before)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("ApplyFixes touched %d files, want 1", len(fixed))
	}
	for path, content := range fixed {
		formatted, err := format.Source(content)
		if err != nil {
			t.Fatalf("fixed %s does not parse: %v", path, err)
		}
		if !bytes.Equal(formatted, content) {
			t.Errorf("fixed %s is not gofmt-clean", path)
		}
	}
	if err := WriteFixes(root, fixed); err != nil {
		t.Fatal(err)
	}

	after := runG014On(t, root)
	if len(after) != 3 {
		t.Fatalf("after fixing, %d findings remain, want 3 (early-return and discard shapes are finding-only):\n%v", len(after), after)
	}
	for _, f := range after {
		if f.Fix != nil {
			t.Errorf("finding still carries a fix after application: %v", f)
		}
		if strings.Contains(f.Message, "is never released") {
			t.Errorf("never-released finding survived its own fix: %v", f)
		}
	}

	// Idempotence: a second pass has nothing to do.
	again, err := ApplyFixes(root, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Errorf("second ApplyFixes still rewrites %d files", len(again))
	}
}

// TestApplyFixesSkipsOverlaps pins the first-wins overlap policy and
// the range validation.
func TestApplyFixesSkipsOverlaps(t *testing.T) {
	root := t.TempDir()
	src := "package p\n\nvar x = 1\n"
	if err := os.WriteFile(filepath.Join(root, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	off := strings.Index(src, "1")
	findings := []Finding{
		{File: "a.go", Fix: &Fix{Description: "one", Edits: []TextEdit{{File: "a.go", Start: off, End: off + 1, Text: "2"}}}},
		{File: "a.go", Fix: &Fix{Description: "two", Edits: []TextEdit{{File: "a.go", Start: off, End: off + 1, Text: "3"}}}},
	}
	fixed, err := ApplyFixes(root, findings)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(fixed["a.go"]); !strings.Contains(got, "var x = 2") || strings.Contains(got, "3") {
		t.Errorf("overlap policy broken; got:\n%s", got)
	}
	if _, err := ApplyFixes(root, []Finding{
		{File: "a.go", Fix: &Fix{Edits: []TextEdit{{File: "a.go", Start: 5, End: len(src) + 10, Text: ""}}}},
	}); err == nil {
		t.Error("out-of-range edit did not error")
	}
}

// TestUnifiedDiff pins the -dry-run diff renderer: one hunk from the
// first to the last differing line, a/ b/ labels, and "" on equality.
func TestUnifiedDiff(t *testing.T) {
	old := []byte("a\nb\nc\n")
	new := []byte("a\nB\nc\n")
	got := UnifiedDiff("pkg/f.go", old, new)
	want := "--- a/pkg/f.go\n+++ b/pkg/f.go\n@@ -2,1 +2,1 @@\n-b\n+B\n"
	if got != want {
		t.Errorf("diff = %q, want %q", got, want)
	}
	if d := UnifiedDiff("pkg/f.go", old, old); d != "" {
		t.Errorf("equal contents produced a diff: %q", d)
	}
	// Pure insertion renders a zero-length old range.
	ins := UnifiedDiff("f", []byte("a\nc\n"), []byte("a\nb\nc\n"))
	if !strings.Contains(ins, "@@ -2,0 +2,1 @@") || !strings.Contains(ins, "+b") {
		t.Errorf("insertion diff malformed: %q", ins)
	}
}
