package golint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureFacts builds the whole-module facts for one fixture
// package.
func loadFixtureFacts(t *testing.T, name string) *ModuleFacts {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(fixtureDir(t, name))
	if err != nil {
		t.Fatal(err)
	}
	return newModuleFacts(l, pkgs)
}

// TestServeGraphFollowsMethodValueAndDeferredEdges pins the two edge
// kinds the reachability walk must follow beyond plain calls: the g012
// fixture wires its handler as a method value (s.crunch) and reaches
// drain only through a deferred call.
func TestServeGraphFollowsMethodValueAndDeferredEdges(t *testing.T) {
	g := loadFixtureFacts(t, "g012").serveFacts()
	rootNames := make(map[string]bool)
	for _, ff := range g.roots {
		rootNames[ff.fn.Name()] = true
	}
	if !rootNames["crunch"] {
		t.Errorf("method-value wiring lost: crunch not a root (roots: %v)", rootNames)
	}
	reached := make(map[string]bool)
	for _, ff := range g.reachList {
		reached[ff.fn.Name()] = true
	}
	for _, want := range []string{"crunch", "drain", "polled", "Vetted", "step", "pending"} {
		if !reached[want] {
			t.Errorf("reachability lost %s (deferred-call and call edges must both be followed)", want)
		}
	}
}

// TestTaintGradesFeeds pins the taint verdicts behind the g011 golden:
// the Depth and Trace feeds derive from keyed request data, and Boost
// has no feed at all.
func TestTaintGradesFeeds(t *testing.T) {
	g := loadFixtureFacts(t, "g011").serveFacts()
	key := "repro/testdata/codelint/g011.EngineOpts."
	if f := g.feeds[key+"Depth"]; f == nil || !f.fedKeyed {
		t.Errorf("EngineOpts.Depth feed = %+v, want fed from keyed data", f)
	}
	if f := g.feeds[key+"Trace"]; f == nil || !f.fedKeyed {
		t.Errorf("EngineOpts.Trace feed = %+v, want fed from keyed data", f)
	}
	if f := g.feeds[key+"Boost"]; f != nil {
		t.Errorf("EngineOpts.Boost feed = %+v, want none", f)
	}
}

// mutateModule copies the module's go files into a temp directory with
// one textual mutation applied, and returns the copy's root. It is the
// scaffolding for the acceptance-pinning tests below: delete the thing
// the rule guards, watch the rule fire.
func mutateModule(t *testing.T, file, old, new string) string {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	mutated := false
	err = filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(l.ModRoot, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && rel != "." {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(path, ".go") && d.Name() != "go.mod" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if rel == file {
			s := strings.ReplaceAll(string(data), old, new)
			if s == string(data) {
				t.Fatalf("mutation %q not found in %s", old, file)
			}
			data = []byte(s)
			mutated = true
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mutated {
		t.Fatalf("mutation target %s never visited", file)
	}
	return dst
}

// runRuleOn loads the mutated module copy and runs one rule over it.
func runRuleOn(t *testing.T, root, rule string) []Finding {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	as, err := Select(Analyzers(), []string{rule})
	if err != nil {
		t.Fatal(err)
	}
	return Run(l, pkgs, as).ByRule(strings.ToUpper(rule))
}

// TestDeletingServeFeedFiresG011 is the acceptance pin for the
// cache-key rule: delete the Learn feed from the serve canonicalization
// and the atpg option field becomes read-but-unfed — an error.
func TestDeletingServeFeedFiresG011(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a mutated module copy")
	}
	root := mutateModule(t, "internal/serve/serve.go",
		`		eng, err := learnEngine(ctx, c, opts.Learn)
		if err != nil {
			return nil, err
		}
		ts, err := atpg.GenerateTestsContext(ctx, c, faults, atpg.Options{BacktrackLimit: opts.BacktrackLimit, Learn: eng})`,
		`		ts, err := atpg.GenerateTestsContext(ctx, c, faults, atpg.Options{BacktrackLimit: opts.BacktrackLimit})`)
	found := false
	for _, f := range runRuleOn(t, root, "g011") {
		if f.Severity == Error && strings.Contains(f.Message, "Options.Learn") {
			found = true
		}
	}
	if !found {
		t.Error("cutting the Learn feed loose from the request field did not fire G011 on atpg.Options.Learn")
	}
}

// TestDeletingPollFiresG012 is the acceptance pin for the cancellation
// rule: erase the dominator polls and the fixpoint loops become
// unbounded-without-poll — errors.
func TestDeletingPollFiresG012(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a mutated module copy")
	}
	root := mutateModule(t, "internal/implic/dominator.go", "e.pollBuild()\n", "\n")
	found := false
	for _, f := range runRuleOn(t, root, "g012") {
		if f.Severity == Error && strings.Contains(f.Message, "computeDominators") {
			found = true
		}
	}
	if !found {
		t.Error("deleting the dominator polls did not fire G012 on computeDominators")
	}
}
