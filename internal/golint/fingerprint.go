package golint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Stable finding fingerprints. SARIF consumers (and the -baseline
// ratchet) need to recognize "the same finding" across commits that
// shift line numbers, so the fingerprint hashes what identifies the
// finding — rule, normalized path, and the trimmed text of the
// offending source line — and deliberately excludes the line number.
// Identical (rule, file, line-text) tuples are disambiguated by their
// occurrence index in report order, so two copies of the same defect
// on identical lines still get distinct prints.

// fingerprintScheme names the hash recipe; bump it if the recipe ever
// changes so stale baselines fail loudly instead of silently matching.
const fingerprintScheme = "codelintFingerprint/v1"

// Fingerprints computes the stable fingerprint of every finding, in
// order. modRoot locates the source files; a file that cannot be read
// (deleted between analysis and fingerprinting) contributes an empty
// line text rather than an error, keeping the function total.
func Fingerprints(modRoot string, findings []Finding) []string {
	lines := make(map[string][]string)
	lineText := func(file string, line int) string {
		ls, ok := lines[file]
		if !ok {
			data, err := os.ReadFile(filepath.Join(modRoot, filepath.FromSlash(file)))
			if err == nil {
				ls = strings.Split(string(data), "\n")
			}
			lines[file] = ls
		}
		if line < 1 || line > len(ls) {
			return ""
		}
		return strings.TrimSpace(ls[line-1])
	}
	seen := make(map[string]int)
	out := make([]string, len(findings))
	for i, f := range findings {
		key := f.Rule + "\x00" + f.File + "\x00" + lineText(f.File, f.Line)
		n := seen[key]
		seen[key] = n + 1
		sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d", key, n)))
		out[i] = hex.EncodeToString(sum[:8])
	}
	return out
}
