package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-module half of the framework: where the G001–
// G006 analyzers judge one file at a time, the concurrency and
// allocation rules (G007–G010) need to know what a function *reaches* —
// an allocation is only a hot-path bug if the function holding it is
// called from a measured loop, possibly through several layers of
// helpers. ModuleFacts builds that view once per Run: an intra-module
// static call graph with a per-function summary (allocation sites,
// callees with loop context, goroutine spawns, lock use, captured-
// variable writes) that every analyzer can query through Pass.Mod.

// allocSite is one statically-identified allocation in a function body.
type allocSite struct {
	pos token.Pos
	// what names the allocating construct for the finding message, e.g.
	// "make([]Value)" or "append that may grow its backing array".
	what string
	// inLoop reports whether the site sits inside a for/range body of
	// its enclosing declared function.
	inLoop bool
	// cold reports whether the site sits on an error/panic path (a
	// block that returns a non-nil error or panics), which the hot-path
	// rule tolerates: failure paths run once, not per iteration.
	cold bool
}

// callSite is one statically-resolved call to a module-internal
// function.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	inLoop bool
}

// fieldUse is one read of a named struct's field.
type fieldUse struct {
	owner *types.TypeName
	field string
	pos   token.Pos
}

// feedSite is one write into a named struct's field: a composite-literal
// element, an assignment through a selector, or a compound
// assignment/inc-dec (value == nil when the written expression is not a
// single syntactic operand).
type feedSite struct {
	owner *types.TypeName
	field string
	pos   token.Pos
	value ast.Expr
}

// varUse is one occurrence (read or write position) of a module
// package-level variable.
type varUse struct {
	obj *types.Var
	pos token.Pos
}

// envCall is one ambient-environment read (os.Getenv and friends).
type envCall struct {
	name string
	pos  token.Pos
}

// loopSite is one statically-unbounded for statement: `for {}`, a
// cond-only `for x {}`, or a 3-clause loop with no condition. Range
// loops and loops with a post statement are considered bounded by the
// values they walk.
type loopSite struct {
	pos  token.Pos
	body *ast.BlockStmt
	// nested reports whether the loop body contains another loop
	// (outside nested function literals) — the "does real work per
	// iteration" half of the G012 compound test.
	nested bool
}

// funcFacts is the per-function summary node of the call graph.
type funcFacts struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl

	allocs []allocSite
	calls  []callSite
	// refs are function-value references (a module function mentioned
	// outside call position: handler registration, method values,
	// callbacks). They are reachability-only edges — G007's hot set
	// deliberately ignores them because a reference is not an execution.
	refs []callSite

	// wires are module functions referenced by a call that carries a
	// "/v1/..." string literal argument — the serve-handler wiring
	// pattern. The dataflow analyzers treat them as roots (see taint.go).
	wires []callSite

	// fieldReads / fieldFeeds record named-struct field dataflow for the
	// cache-key rule (G011).
	fieldReads []fieldUse
	fieldFeeds []feedSite

	// globalUses / globalWrites / envCalls record ambient-state contact
	// for the purity rule (G013). globalWrites lists module package-level
	// variables this function assigns, increments, or takes the address
	// of.
	globalUses   []varUse
	globalWrites []*types.Var
	envCalls     []envCall

	// polls are direct context-poll sites: ctx.Err() calls and receives
	// from struct{}-element channels (the ctx.Done()/done-channel
	// convention every engine uses).
	polls []token.Pos
	// loops are the statically-unbounded loops; hasLoop is true when the
	// body contains any loop at all (used for the compound test).
	loops   []loopSite
	hasLoop bool

	// spawnsGoroutines / takesLocks / writesCaptured are the coarse
	// flags the concurrency rules and future analyzers key on.
	spawnsGoroutines bool
	takesLocks       bool
	writesCaptured   bool
}

// ModuleFacts is the whole-module analysis context shared by every
// analyzer of one Run: the call graph over the packages under analysis.
// Functions in packages that were loaded only as dependencies (not
// asked for) are absent, so analysis scope follows the requested
// patterns exactly as it does for the per-file rules.
type ModuleFacts struct {
	modPath string
	funcs   map[*types.Func]*funcFacts
	// order lists the summarized functions deterministically (package,
	// file, position) so every traversal of the graph is replayable.
	order []*types.Func

	hot   map[*types.Func]string // lazily-built hot set, see hotFuncs
	serve *serveGraph            // lazily-built serve dataflow, see taint.go

	// released / dirSyncers / headerWriters are the lazily-built
	// interprocedural summaries of the lifecycle rules — which functions
	// release which parameters (lifecycle.go), fsync a directory
	// (g015.go), and complete an error response on a ResponseWriter
	// parameter (g016.go).
	released      map[*types.Func]map[int]bool
	dirSyncers    map[*types.Func]bool
	headerWriters map[*types.Func]int
}

// newModuleFacts summarizes every function declaration of the given
// packages.
func newModuleFacts(l *Loader, pkgs []*Package) *ModuleFacts {
	m := &ModuleFacts{
		modPath: l.ModPath,
		funcs:   make(map[*types.Func]*funcFacts),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, fd := range funcDecls(file) {
				if fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &funcFacts{fn: fn, pkg: pkg, decl: fd}
				summarize(l, pkg, fd, ff)
				m.funcs[fn] = ff
				m.order = append(m.order, fn)
			}
		}
	}
	return m
}

// factsOf returns the summary for fn, or nil when fn is outside the
// analyzed set.
func (m *ModuleFacts) factsOf(fn *types.Func) *funcFacts { return m.funcs[fn] }

// summarize fills ff by walking the function body once with an ancestor
// stack, classifying allocation sites, resolving static callees, and
// raising the concurrency flags.
func summarize(l *Loader, pkg *Package, fd *ast.FuncDecl, ff *funcFacts) {
	info := pkg.Info
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			ff.spawnsGoroutines = true
		case *ast.AssignStmt, *ast.IncDecStmt:
			if innermostFuncLit(stack) != nil && writesEnclosingVar(info, n, stack) {
				ff.writesCaptured = true
			}
			summarizeGlobalWrites(l, info, n, ff)
		case *ast.ForStmt:
			ff.hasLoop = true
			if n.Cond == nil || n.Post == nil {
				ff.loops = append(ff.loops, loopSite{pos: n.Pos(), body: n.Body, nested: containsLoop(n.Body)})
			}
		case *ast.RangeStmt:
			ff.hasLoop = true
		case *ast.Ident:
			summarizeIdent(l, info, n, stack, ff)
		case *ast.SelectorExpr:
			summarizeFieldAccess(info, n, stack, ff)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				ff.allocs = append(ff.allocs, newAllocSite(info, n.OpPos,
					"string concatenation builds a fresh string", fd, stack))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					ff.allocs = append(ff.allocs, newAllocSite(info, n.Pos(),
						fmt.Sprintf("&%s{…} composite literal escapes to the heap", exprText(compositeTypeExpr(n.X.(*ast.CompositeLit)))), fd, stack))
				}
				if id := rootIdent(n.X); id != nil {
					if v := packageLevelVar(l, info, id); v != nil {
						ff.globalWrites = append(ff.globalWrites, v)
					}
				}
			}
			if n.Op == token.ARROW && isSignalChan(info.TypeOf(n.X)) {
				ff.polls = append(ff.polls, n.Pos())
			}
		case *ast.CompositeLit:
			if site, ok := compositeAlloc(info, n, stack); ok {
				ff.allocs = append(ff.allocs, newAllocSite(info, n.Pos(), site, fd, stack))
			}
			summarizeLitFeeds(info, n, ff)
		case *ast.CallExpr:
			summarizeCall(l, pkg, fd, ff, n, stack)
		}
		return true
	})
}

// summarizeCall classifies one call expression: builtin allocators,
// allocating conversions, known stdlib allocators, lock acquisition,
// and statically-resolved module-internal callees.
func summarizeCall(l *Loader, pkg *Package, fd *ast.FuncDecl, ff *funcFacts, call *ast.CallExpr, stack []ast.Node) {
	info := pkg.Info
	// Builtins: make and new always allocate; append allocates when it
	// grows, so everything except the x = append(x, …) reuse idiom (and
	// its x = append(x[:k], …) reslice form) counts.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(),
					fmt.Sprintf("make(%s)", exprText(call.Args[0])), fd, stack))
			case "new":
				ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(),
					fmt.Sprintf("new(%s)", exprText(call.Args[0])), fd, stack))
			case "append":
				if !isSelfAppend(call, stack) {
					ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(),
						fmt.Sprintf("append to %s may grow its backing array", exprText(call.Args[0])), fd, stack))
				}
			}
			return
		}
	}
	// Allocating conversions: string(bytes), []byte(s), []rune(s) copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := info.TypeOf(call.Fun)
		from := info.TypeOf(call.Args[0])
		if isCopyingConversion(to, from) {
			ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(),
				fmt.Sprintf("%s(…) conversion copies its operand", exprText(call.Fun)), fd, stack))
			return
		}
	}
	// Known stdlib allocators (their bodies are outside the module, so
	// the call graph cannot see into them).
	if path, name := pkgQualified(info, call.Fun); path != "" {
		if reason := stdlibAllocator(path, name); reason != "" {
			ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(), reason, fd, stack))
		}
	}
	if path, name := pkgQualified(info, call.Fun); path == "os" {
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			ff.envCalls = append(ff.envCalls, envCall{name: "os." + name, pos: call.Pos()})
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && isMutexType(info.TypeOf(sel.X)) {
			ff.takesLocks = true
		}
		if sel.Sel.Name == "Err" && isContextType(info.TypeOf(sel.X)) {
			ff.polls = append(ff.polls, call.Pos())
		}
	}
	// Statically-resolved module-internal callee.
	callee := staticCallee(info, call)
	if callee != nil && callee.Pkg() != nil && isModulePath(l.ModPath, callee.Pkg().Path()) {
		ff.calls = append(ff.calls, callSite{callee: callee, pos: call.Pos(), inLoop: inLoopAt(stack, call.Pos())})
	}
	// Serve-handler wiring: a call carrying a "/v1/..." string literal
	// marks its module-internal callee and every module function passed
	// as an argument as handler roots for the dataflow rules.
	if hasServeLiteral(call) {
		if callee != nil && callee.Pkg() != nil && isModulePath(l.ModPath, callee.Pkg().Path()) {
			ff.wires = append(ff.wires, callSite{callee: callee, pos: call.Pos()})
		}
		for _, a := range call.Args {
			if fn := funcValueOf(info, a); fn != nil &&
				fn.Pkg() != nil && isModulePath(l.ModPath, fn.Pkg().Path()) {
				ff.wires = append(ff.wires, callSite{callee: fn, pos: a.Pos()})
			}
		}
	}
}

// summarizeGlobalWrites records module package-level variables assigned
// or incremented by the statement.
func summarizeGlobalWrites(l *Loader, info *types.Info, n ast.Node, ff *funcFacts) {
	record := func(e ast.Expr) {
		if id := rootIdent(e); id != nil {
			if v := packageLevelVar(l, info, id); v != nil {
				ff.globalWrites = append(ff.globalWrites, v)
			}
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			record(lhs)
		}
	case *ast.IncDecStmt:
		record(n.X)
	}
}

// summarizeIdent records function-value references (reachability edges)
// and package-level variable occurrences.
func summarizeIdent(l *Loader, info *types.Info, id *ast.Ident, stack []ast.Node, ff *funcFacts) {
	switch obj := info.Uses[id].(type) {
	case *types.Func:
		if obj.Pkg() != nil && isModulePath(l.ModPath, obj.Pkg().Path()) && !isCallFun(stack, id) {
			ff.refs = append(ff.refs, callSite{callee: obj, pos: id.Pos()})
		}
	case *types.Var:
		if v := packageLevelVar(l, info, id); v != nil {
			ff.globalUses = append(ff.globalUses, varUse{obj: v, pos: id.Pos()})
		}
	}
}

// summarizeFieldAccess classifies a struct-field selector as a read or a
// feed (write). A compound assignment or ++/-- both reads and feeds.
func summarizeFieldAccess(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node, ff *funcFacts) {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	owner := namedStructOf(selection.Recv())
	if owner == nil {
		return
	}
	isWrite, value := selectorWrite(stack, sel)
	if isWrite {
		ff.fieldFeeds = append(ff.fieldFeeds, feedSite{owner: owner, field: sel.Sel.Name, pos: sel.Pos(), value: value})
		if value != nil {
			return
		}
		// A compound assignment (x.F += e, x.F++) reads the old value.
	}
	ff.fieldReads = append(ff.fieldReads, fieldUse{owner: owner, field: sel.Sel.Name, pos: sel.Pos()})
}

// summarizeLitFeeds records composite-literal struct-field feeds,
// including positional literals.
func summarizeLitFeeds(info *types.Info, lit *ast.CompositeLit, ff *funcFacts) {
	owner := namedStructOf(info.TypeOf(lit))
	if owner == nil {
		return
	}
	st, ok := owner.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				ff.fieldFeeds = append(ff.fieldFeeds, feedSite{owner: owner, field: key.Name, pos: kv.Pos(), value: kv.Value})
			}
			continue
		}
		if i < st.NumFields() {
			ff.fieldFeeds = append(ff.fieldFeeds, feedSite{owner: owner, field: st.Field(i).Name(), pos: elt.Pos(), value: elt})
		}
	}
}

// selectorWrite reports whether the selector is a write target, and the
// written expression when it is a single syntactic operand.
func selectorWrite(stack []ast.Node, sel *ast.SelectorExpr) (bool, ast.Expr) {
	if len(stack) == 0 {
		return false, nil
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for i, lhs := range parent.Lhs {
			if lhs != ast.Expr(sel) {
				continue
			}
			if parent.Tok == token.ASSIGN && len(parent.Lhs) == len(parent.Rhs) {
				return true, parent.Rhs[i]
			}
			return true, nil
		}
	case *ast.IncDecStmt:
		if parent.X == ast.Expr(sel) {
			return true, nil
		}
	}
	return false, nil
}

// containsLoop reports whether the block contains a for/range statement
// outside nested function literals (a closure defined in a loop body
// does not execute per iteration).
func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// isSignalChan reports whether t is a channel of empty structs — the
// ctx.Done()/done-channel signalling convention. Receiving from one is
// counted as a context poll.
func isSignalChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// packageLevelVar resolves id to a module package-level variable, or nil.
func packageLevelVar(l *Loader, info *types.Info, id *ast.Ident) *types.Var {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.IsField() {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isModulePath(l.ModPath, v.Pkg().Path()) {
		return nil
	}
	return v
}

// namedStructOf unwraps pointers and aliases down to a named type whose
// underlying type is a struct, returning its TypeName (nil otherwise).
func namedStructOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named.Obj()
}

// isCallFun reports whether id is the function operand of a direct call
// (either the callee ident itself or the Sel of a selector callee) —
// those become call edges, not reference edges.
func isCallFun(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) == 0 {
		return false
	}
	var n ast.Node = id
	parent := stack[len(stack)-1]
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.Sel == id {
		if len(stack) < 2 {
			return false
		}
		n = parent
		parent = stack[len(stack)-2]
	}
	call, ok := parent.(*ast.CallExpr)
	return ok && call.Fun == n
}

// funcValueOf resolves an expression used as a value (not called) to the
// module function it references: a plain identifier or a method value.
func funcValueOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// hasServeLiteral reports whether any argument is a string literal
// starting with "/v1/" — the serve endpoint wiring convention.
func hasServeLiteral(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if lit, ok := a.(*ast.BasicLit); ok && lit.Kind == token.STRING &&
			strings.HasPrefix(lit.Value, `"/v1/`) {
			return true
		}
	}
	return false
}

// newAllocSite records an allocation with its loop and cold-path
// context derived from the ancestor stack.
func newAllocSite(info *types.Info, pos token.Pos, what string, fd *ast.FuncDecl, stack []ast.Node) allocSite {
	return allocSite{
		pos:    pos,
		what:   what,
		inLoop: inLoopAt(stack, pos),
		cold:   onColdPath(info, fd, stack),
	}
}

// compositeAlloc classifies a composite literal: slice and map literals
// allocate backing storage; struct and array value literals do not (and
// &T{…} is reported at its unary parent). Untyped element literals
// inside a surrounding slice/map literal carry no type expression and
// are covered by the outer report.
func compositeAlloc(info *types.Info, lit *ast.CompositeLit, stack []ast.Node) (string, bool) {
	if lit.Type == nil {
		return "", false
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			return "", false
		}
	}
	switch info.TypeOf(lit).Underlying().(type) {
	case *types.Slice:
		return fmt.Sprintf("%s{…} slice literal allocates backing storage", exprText(lit.Type)), true
	case *types.Map:
		return fmt.Sprintf("%s{…} map literal allocates", exprText(lit.Type)), true
	}
	return "", false
}

// compositeTypeExpr returns the literal's type expression (for
// messages); literals inside &T{…} always carry one.
func compositeTypeExpr(lit *ast.CompositeLit) ast.Expr {
	if lit.Type != nil {
		return lit.Type
	}
	return &ast.Ident{Name: "…"}
}

// isSelfAppend recognizes the amortized reuse idiom x = append(x, …)
// (including x = append(x[:k], …)): after warmup the backing array is
// reused, so the steady state is allocation-free — exactly the
// discipline the preallocated-arena rewrite institutionalizes.
func isSelfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) {
		return false
	}
	dst := exprText(assign.Lhs[0])
	src := call.Args[0]
	if slice, ok := src.(*ast.SliceExpr); ok {
		src = slice.X
	}
	return exprText(src) == dst
}

// isCopyingConversion reports whether a conversion from `from` to `to`
// copies memory: string <-> []byte/[]rune in either direction.
func isCopyingConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

// stdlibAllocator names the well-known allocating stdlib helpers the
// source-level walk cannot see into, with the reason used in messages.
func stdlibAllocator(path, name string) string {
	switch path {
	case "fmt":
		switch name {
		case "Sprintf", "Sprint", "Sprintln", "Errorf":
			return "fmt." + name + " allocates its result (and boxes every argument)"
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote":
			return "strconv." + name + " allocates its result string"
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Split", "Fields", "Replace", "ReplaceAll", "ToUpper", "ToLower":
			return "strings." + name + " allocates its result"
		}
	}
	return ""
}

// staticCallee resolves a call to its target *types.Func when the
// target is statically known: package-level functions and methods
// called through a concrete receiver. Interface dispatch and calls
// through function values return nil — a documented soundness gap the
// hot-path rule trades for zero false joins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, isInterface := sel.Recv().Underlying().(*types.Interface); isInterface {
					return nil
				}
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isModulePath reports whether path names the module or a package
// inside it.
func isModulePath(modPath, path string) bool {
	return path == modPath || strings.HasPrefix(path, modPath+"/")
}

// hotFuncs computes (once per Run) the set of functions that execute
// per-iteration of a measured loop: for every entry in the
// hotLoopEntries table, the callees invoked inside the entry's loops,
// closed transitively over the call graph. The map value is the entry
// the function was first reached from, for finding messages; the
// traversal visits entries and callees in deterministic order so the
// attribution is stable.
func (m *ModuleFacts) hotFuncs() map[*types.Func]string {
	if m.hot != nil {
		return m.hot
	}
	m.hot = make(map[*types.Func]string)
	type seed struct {
		fn    *types.Func
		entry string
	}
	var queue []seed
	for _, fn := range m.order {
		ff := m.funcs[fn]
		if !isHotLoopEntry(ff.pkg.Path, fn.Name()) {
			continue
		}
		entry := ff.pkg.Types.Name() + "." + fn.Name()
		for _, cs := range ff.calls {
			if cs.inLoop {
				queue = append(queue, seed{fn: cs.callee, entry: entry})
			}
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if _, seen := m.hot[s.fn]; seen {
			continue
		}
		ff := m.funcs[s.fn]
		if ff == nil {
			continue // outside the analyzed set (or its dependency closure)
		}
		m.hot[s.fn] = s.entry
		for _, cs := range ff.calls {
			queue = append(queue, seed{fn: cs.callee, entry: s.entry})
		}
	}
	return m.hot
}

// hotFuncList returns the hot set as deterministically-ordered facts
// (summary order), for analyzers that iterate it.
func (m *ModuleFacts) hotFuncList() []*funcFacts {
	hot := m.hotFuncs()
	var out []*funcFacts
	for _, fn := range m.order {
		if _, ok := hot[fn]; ok {
			out = append(out, m.funcs[fn])
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].fn.Pos() < out[j].fn.Pos() })
	return out
}
