package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-module half of the framework: where the G001–
// G006 analyzers judge one file at a time, the concurrency and
// allocation rules (G007–G010) need to know what a function *reaches* —
// an allocation is only a hot-path bug if the function holding it is
// called from a measured loop, possibly through several layers of
// helpers. ModuleFacts builds that view once per Run: an intra-module
// static call graph with a per-function summary (allocation sites,
// callees with loop context, goroutine spawns, lock use, captured-
// variable writes) that every analyzer can query through Pass.Mod.

// allocSite is one statically-identified allocation in a function body.
type allocSite struct {
	pos token.Pos
	// what names the allocating construct for the finding message, e.g.
	// "make([]Value)" or "append that may grow its backing array".
	what string
	// inLoop reports whether the site sits inside a for/range body of
	// its enclosing declared function.
	inLoop bool
	// cold reports whether the site sits on an error/panic path (a
	// block that returns a non-nil error or panics), which the hot-path
	// rule tolerates: failure paths run once, not per iteration.
	cold bool
}

// callSite is one statically-resolved call to a module-internal
// function.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	inLoop bool
}

// funcFacts is the per-function summary node of the call graph.
type funcFacts struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl

	allocs []allocSite
	calls  []callSite

	// spawnsGoroutines / takesLocks / writesCaptured are the coarse
	// flags the concurrency rules and future analyzers key on.
	spawnsGoroutines bool
	takesLocks       bool
	writesCaptured   bool
}

// ModuleFacts is the whole-module analysis context shared by every
// analyzer of one Run: the call graph over the packages under analysis.
// Functions in packages that were loaded only as dependencies (not
// asked for) are absent, so analysis scope follows the requested
// patterns exactly as it does for the per-file rules.
type ModuleFacts struct {
	modPath string
	funcs   map[*types.Func]*funcFacts
	// order lists the summarized functions deterministically (package,
	// file, position) so every traversal of the graph is replayable.
	order []*types.Func

	hot map[*types.Func]string // lazily-built hot set, see hotFuncs
}

// newModuleFacts summarizes every function declaration of the given
// packages.
func newModuleFacts(l *Loader, pkgs []*Package) *ModuleFacts {
	m := &ModuleFacts{
		modPath: l.ModPath,
		funcs:   make(map[*types.Func]*funcFacts),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, fd := range funcDecls(file) {
				if fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &funcFacts{fn: fn, pkg: pkg, decl: fd}
				summarize(l, pkg, fd, ff)
				m.funcs[fn] = ff
				m.order = append(m.order, fn)
			}
		}
	}
	return m
}

// factsOf returns the summary for fn, or nil when fn is outside the
// analyzed set.
func (m *ModuleFacts) factsOf(fn *types.Func) *funcFacts { return m.funcs[fn] }

// summarize fills ff by walking the function body once with an ancestor
// stack, classifying allocation sites, resolving static callees, and
// raising the concurrency flags.
func summarize(l *Loader, pkg *Package, fd *ast.FuncDecl, ff *funcFacts) {
	info := pkg.Info
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			ff.spawnsGoroutines = true
		case *ast.AssignStmt, *ast.IncDecStmt:
			if innermostFuncLit(stack) != nil && writesEnclosingVar(info, n, stack) {
				ff.writesCaptured = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				ff.allocs = append(ff.allocs, newAllocSite(info, n.OpPos,
					"string concatenation builds a fresh string", fd, stack))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					ff.allocs = append(ff.allocs, newAllocSite(info, n.Pos(),
						fmt.Sprintf("&%s{…} composite literal escapes to the heap", exprText(compositeTypeExpr(n.X.(*ast.CompositeLit)))), fd, stack))
				}
			}
		case *ast.CompositeLit:
			if site, ok := compositeAlloc(info, n, stack); ok {
				ff.allocs = append(ff.allocs, newAllocSite(info, n.Pos(), site, fd, stack))
			}
		case *ast.CallExpr:
			summarizeCall(l, pkg, fd, ff, n, stack)
		}
		return true
	})
}

// summarizeCall classifies one call expression: builtin allocators,
// allocating conversions, known stdlib allocators, lock acquisition,
// and statically-resolved module-internal callees.
func summarizeCall(l *Loader, pkg *Package, fd *ast.FuncDecl, ff *funcFacts, call *ast.CallExpr, stack []ast.Node) {
	info := pkg.Info
	// Builtins: make and new always allocate; append allocates when it
	// grows, so everything except the x = append(x, …) reuse idiom (and
	// its x = append(x[:k], …) reslice form) counts.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(),
					fmt.Sprintf("make(%s)", exprText(call.Args[0])), fd, stack))
			case "new":
				ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(),
					fmt.Sprintf("new(%s)", exprText(call.Args[0])), fd, stack))
			case "append":
				if !isSelfAppend(call, stack) {
					ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(),
						fmt.Sprintf("append to %s may grow its backing array", exprText(call.Args[0])), fd, stack))
				}
			}
			return
		}
	}
	// Allocating conversions: string(bytes), []byte(s), []rune(s) copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := info.TypeOf(call.Fun)
		from := info.TypeOf(call.Args[0])
		if isCopyingConversion(to, from) {
			ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(),
				fmt.Sprintf("%s(…) conversion copies its operand", exprText(call.Fun)), fd, stack))
			return
		}
	}
	// Known stdlib allocators (their bodies are outside the module, so
	// the call graph cannot see into them).
	if path, name := pkgQualified(info, call.Fun); path != "" {
		if reason := stdlibAllocator(path, name); reason != "" {
			ff.allocs = append(ff.allocs, newAllocSite(info, call.Pos(), reason, fd, stack))
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && isMutexType(info.TypeOf(sel.X)) {
			ff.takesLocks = true
		}
	}
	// Statically-resolved module-internal callee.
	if callee := staticCallee(info, call); callee != nil &&
		callee.Pkg() != nil && isModulePath(l.ModPath, callee.Pkg().Path()) {
		ff.calls = append(ff.calls, callSite{callee: callee, pos: call.Pos(), inLoop: inLoopAt(stack, call.Pos())})
	}
}

// newAllocSite records an allocation with its loop and cold-path
// context derived from the ancestor stack.
func newAllocSite(info *types.Info, pos token.Pos, what string, fd *ast.FuncDecl, stack []ast.Node) allocSite {
	return allocSite{
		pos:    pos,
		what:   what,
		inLoop: inLoopAt(stack, pos),
		cold:   onColdPath(info, fd, stack),
	}
}

// compositeAlloc classifies a composite literal: slice and map literals
// allocate backing storage; struct and array value literals do not (and
// &T{…} is reported at its unary parent). Untyped element literals
// inside a surrounding slice/map literal carry no type expression and
// are covered by the outer report.
func compositeAlloc(info *types.Info, lit *ast.CompositeLit, stack []ast.Node) (string, bool) {
	if lit.Type == nil {
		return "", false
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			return "", false
		}
	}
	switch info.TypeOf(lit).Underlying().(type) {
	case *types.Slice:
		return fmt.Sprintf("%s{…} slice literal allocates backing storage", exprText(lit.Type)), true
	case *types.Map:
		return fmt.Sprintf("%s{…} map literal allocates", exprText(lit.Type)), true
	}
	return "", false
}

// compositeTypeExpr returns the literal's type expression (for
// messages); literals inside &T{…} always carry one.
func compositeTypeExpr(lit *ast.CompositeLit) ast.Expr {
	if lit.Type != nil {
		return lit.Type
	}
	return &ast.Ident{Name: "…"}
}

// isSelfAppend recognizes the amortized reuse idiom x = append(x, …)
// (including x = append(x[:k], …)): after warmup the backing array is
// reused, so the steady state is allocation-free — exactly the
// discipline the preallocated-arena rewrite institutionalizes.
func isSelfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) {
		return false
	}
	dst := exprText(assign.Lhs[0])
	src := call.Args[0]
	if slice, ok := src.(*ast.SliceExpr); ok {
		src = slice.X
	}
	return exprText(src) == dst
}

// isCopyingConversion reports whether a conversion from `from` to `to`
// copies memory: string <-> []byte/[]rune in either direction.
func isCopyingConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

// stdlibAllocator names the well-known allocating stdlib helpers the
// source-level walk cannot see into, with the reason used in messages.
func stdlibAllocator(path, name string) string {
	switch path {
	case "fmt":
		switch name {
		case "Sprintf", "Sprint", "Sprintln", "Errorf":
			return "fmt." + name + " allocates its result (and boxes every argument)"
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote":
			return "strconv." + name + " allocates its result string"
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Split", "Fields", "Replace", "ReplaceAll", "ToUpper", "ToLower":
			return "strings." + name + " allocates its result"
		}
	}
	return ""
}

// staticCallee resolves a call to its target *types.Func when the
// target is statically known: package-level functions and methods
// called through a concrete receiver. Interface dispatch and calls
// through function values return nil — a documented soundness gap the
// hot-path rule trades for zero false joins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, isInterface := sel.Recv().Underlying().(*types.Interface); isInterface {
					return nil
				}
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isModulePath reports whether path names the module or a package
// inside it.
func isModulePath(modPath, path string) bool {
	return path == modPath || strings.HasPrefix(path, modPath+"/")
}

// hotFuncs computes (once per Run) the set of functions that execute
// per-iteration of a measured loop: for every entry in the
// hotLoopEntries table, the callees invoked inside the entry's loops,
// closed transitively over the call graph. The map value is the entry
// the function was first reached from, for finding messages; the
// traversal visits entries and callees in deterministic order so the
// attribution is stable.
func (m *ModuleFacts) hotFuncs() map[*types.Func]string {
	if m.hot != nil {
		return m.hot
	}
	m.hot = make(map[*types.Func]string)
	type seed struct {
		fn    *types.Func
		entry string
	}
	var queue []seed
	for _, fn := range m.order {
		ff := m.funcs[fn]
		if !isHotLoopEntry(ff.pkg.Path, fn.Name()) {
			continue
		}
		entry := ff.pkg.Types.Name() + "." + fn.Name()
		for _, cs := range ff.calls {
			if cs.inLoop {
				queue = append(queue, seed{fn: cs.callee, entry: entry})
			}
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if _, seen := m.hot[s.fn]; seen {
			continue
		}
		ff := m.funcs[s.fn]
		if ff == nil {
			continue // outside the analyzed set (or its dependency closure)
		}
		m.hot[s.fn] = s.entry
		for _, cs := range ff.calls {
			queue = append(queue, seed{fn: cs.callee, entry: s.entry})
		}
	}
	return m.hot
}

// hotFuncList returns the hot set as deterministically-ordered facts
// (summary order), for analyzers that iterate it.
func (m *ModuleFacts) hotFuncList() []*funcFacts {
	hot := m.hotFuncs()
	var out []*funcFacts
	for _, fn := range m.order {
		if _, ok := hot[fn]; ok {
			out = append(out, m.funcs[fn])
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].fn.Pos() < out[j].fn.Pos() })
	return out
}
