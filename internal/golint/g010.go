package golint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// G010 worker-state-sharing: a goroutine closure must not write a
// captured variable that anything else also writes, unless the write is
// mutex-guarded or provably sharded.
//
// This is the static complement of the -race test list: -race only sees
// interleavings the tests happen to execute, while this rule flags the
// shape that makes them possible. A closure write to a captured
// variable is a finding when any of these hold:
//
//   - the variable is also written outside the goroutine (its defining
//     declaration excepted)
//   - two distinct go statements write it
//   - the spawn sits in a loop and the write is not a sharded
//     element write out[w] = … whose index is closure-local (fsim's
//     per-worker result slots)
//
// Writes inside a lock-held range of the closure (flow.go) are excused:
// that is the sanctioned way to share when sharding does not fit.

func analyzerG010() *Analyzer {
	return &Analyzer{
		ID:       RuleWorkerStateSharing,
		Name:     "worker-state-sharing",
		Doc:      "unsynchronized goroutine write to a shared variable",
		Severity: Warning,
		Run:      runG010,
	}
}

// capturedWrite is one write site inside a go-closure to a variable
// declared outside it.
type capturedWrite struct {
	obj  types.Object
	node ast.Node // the AssignStmt or IncDecStmt
	lhs  ast.Expr // the specific written operand rooted at obj
}

func runG010(p *Pass) []Finding {
	var out []Finding
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, checkWorkerSharing(p, info, fd)...)
		}
	}
	return out
}

func checkWorkerSharing(p *Pass, info *types.Info, fd *ast.FuncDecl) []Finding {
	spawns := goClosures(fd)
	if len(spawns) == 0 {
		return nil
	}

	// Writers per object, outside any go-closure (defining declarations
	// are definitions, not competing writes — writeRoots excludes them).
	outsideWrites := make(map[types.Object]bool)
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && isGoClosure(lit, stack) {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.IncDecStmt:
			for _, obj := range writeRoots(info, n) {
				outsideWrites[obj] = true
			}
		}
		return true
	})

	// Writers per object, per spawn.
	writersPerObj := make(map[types.Object]int)
	writesPerSpawn := make([][]capturedWrite, len(spawns))
	for i, sp := range spawns {
		writesPerSpawn[i] = closureCapturedWrites(info, sp.lit)
		counted := make(map[types.Object]bool)
		for _, w := range writesPerSpawn[i] {
			if !counted[w.obj] {
				counted[w.obj] = true
				writersPerObj[w.obj]++
			}
		}
	}

	var out []Finding
	for i, sp := range spawns {
		held := lockHeldRanges(info, sp.lit.Body)
		for _, w := range writesPerSpawn[i] {
			if inAnyRange(held, w.node.Pos()) {
				continue // mutex-guarded: the sanctioned sharing shape
			}
			switch {
			case outsideWrites[w.obj]:
				out = append(out, p.finding(RuleWorkerStateSharing, Warning, w.node.Pos(),
					fmt.Sprintf("goroutine writes %s, which is also written outside the goroutine", w.obj.Name()),
					"give the worker its own slot or guard both writers with one mutex"))
			case writersPerObj[w.obj] > 1:
				out = append(out, p.finding(RuleWorkerStateSharing, Warning, w.node.Pos(),
					fmt.Sprintf("%s is written by more than one goroutine", w.obj.Name()),
					"shard by worker index or guard the writes with one mutex"))
			case sp.inLoop && !isShardedWrite(info, sp.lit, w.lhs):
				out = append(out, p.finding(RuleWorkerStateSharing, Warning, w.node.Pos(),
					fmt.Sprintf("loop-spawned goroutine writes shared %s without sharding", w.obj.Name()),
					"index the write by a closure-local worker id (out[w] = …) or guard it with a mutex"))
			}
		}
	}
	return out
}

// goSpawn is one go statement with a closure body.
type goSpawn struct {
	lit    *ast.FuncLit
	inLoop bool
}

// goClosures collects the function's go-closure spawns with their loop
// context.
func goClosures(fd *ast.FuncDecl) []goSpawn {
	var out []goSpawn
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			out = append(out, goSpawn{lit: lit, inLoop: inLoopAt(stack, g.Pos())})
		}
		return true
	})
	return out
}

// isGoClosure reports whether lit is the immediate operand of a go
// statement (its parent call's parent is a GoStmt).
func isGoClosure(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || call.Fun != ast.Expr(lit) {
		return false
	}
	_, ok = stack[len(stack)-2].(*ast.GoStmt)
	return ok
}

// closureCapturedWrites returns the closure's writes to variables
// declared outside it, in source order. Nested closures are included:
// their writes still execute on the goroutine (or escape further, which
// is no safer).
func closureCapturedWrites(info *types.Info, lit *ast.FuncLit) []capturedWrite {
	var out []capturedWrite
	record := func(n ast.Node, e ast.Expr) {
		id := rootIdent(e)
		if id == nil {
			return
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || !capturedBy(obj, lit) {
			return
		}
		out = append(out, capturedWrite{obj: obj, node: n, lhs: e})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(n, lhs)
			}
		case *ast.IncDecStmt:
			record(n, n.X)
		}
		return true
	})
	return out
}

// isShardedWrite reports whether the written operand is an element
// write out[idx] whose index expression references at least one
// closure-local variable and no variable from outside the closure — the
// per-worker-slot shape that partitions the destination.
func isShardedWrite(info *types.Info, lit *ast.FuncLit, lhs ast.Expr) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	sawLocal := false
	sound := true
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, isVar := info.Uses[id].(*types.Var)
		if !isVar {
			return true
		}
		if capturedBy(obj, lit) {
			sound = false
		} else {
			sawLocal = true
		}
		return true
	})
	return sound && sawLocal
}
