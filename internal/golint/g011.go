package golint

import (
	"fmt"
	"go/types"
)

// analyzerG011 enforces cache-key soundness. The serve layer caches
// engine responses under a SHA-256 of the canonical netlist plus the
// json-marshalled, defaulted option struct — so the cache is only
// correct if every input that can change an engine's output is part of
// that marshalling. This rule discharges the invariant statically, in
// both directions:
//
//   - every exported field of a pinned engine option struct
//     (engineOptionStructs) that engine code reachable from a /v1/*
//     handler actually reads must be fed from cache-keyed data (the
//     forward taint from keyed serve fields, see taint.go) — a field
//     read but fed from nothing, or from unkeyed data, silently serves
//     wrong cached answers and is an error;
//   - a field fed from keyed data but never read, or a keyed serve
//     field hashed but never read, splits the cache for nothing and is
//     an info;
//   - a serve option field excluded from the key (json:"-", unexported,
//     or zeroed before hashing) that is still read on the serve path is
//     an error unless the keyExemptFields table vets it (timeout_ms:
//     deadlines shape latency, never results).
//
// Fields that are read but never fed may instead be pinned in
// cacheKeyFieldAllowlist when the serve path deliberately runs them at
// their zero-value defaults — constants cannot split the cache. The
// allowlist only applies while no feed exists: the moment someone feeds
// the field from unkeyed data, the error returns.
func analyzerG011() *Analyzer {
	return &Analyzer{
		ID:       RuleCacheKeySoundness,
		Name:     "cache-key-soundness",
		Doc:      "engine option fields read on the serve path but absent from the cache key; keyed fields never read",
		Severity: Error,
		Run:      runG011,
	}
}

func runG011(p *Pass) []Finding {
	g := p.Mod.serveFacts()
	if len(g.roots) == 0 {
		return nil
	}
	var out []Finding
	out = append(out, g011EngineStructs(p, g)...)
	out = append(out, g011KeyedStructs(p, g)...)
	return out
}

// g011EngineStructs checks the pinned engine option structs declared in
// this package against the reachable reads and the taint-graded feeds.
func g011EngineStructs(p *Pass, g *serveGraph) []Finding {
	var out []Finding
	for _, entry := range engineOptionStructs {
		if !pathMatchesAny(p.Pkg.Path, []string{entry.pkg}) {
			continue
		}
		obj, ok := p.Pkg.Types.Scope().Lookup(entry.typ).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			key := fieldKey(obj, f.Name())
			read := g.readInReach(obj, f.Name())
			feed := g.feeds[key]
			switch {
			case read && (feed == nil || !feed.fedKeyed):
				if feed == nil && cacheKeyFieldAllowed(p.Pkg.Path, entry.typ, f.Name()) {
					continue
				}
				how := "is never fed by the serve layer"
				if feed != nil {
					how = "is fed from data outside the cache key"
				}
				out = append(out, p.finding(RuleCacheKeySoundness, Error, f.Pos(),
					fmt.Sprintf("%s.%s is read by %s (reachable from %s) but %s",
						entry.typ, f.Name(), g.readBy[key], g.rootForRead(key), how),
					"feed it from a canonicalized request field, or pin its zero-value default in cacheKeyFieldAllowlist"))
			case !read && feed != nil && feed.fedKeyed:
				out = append(out, p.finding(RuleCacheKeySoundness, Info, f.Pos(),
					fmt.Sprintf("%s.%s is fed from cache-keyed data but engine code reachable from the handlers never reads it",
						entry.typ, f.Name()),
					"drop the feed (and the request field, if unused) to stop splitting the cache on a no-op"))
			}
		}
	}
	return out
}

// g011KeyedStructs checks the canonicalized serve structs declared in
// this package: excluded-but-read fields are errors, hashed-but-unread
// fields are infos.
func g011KeyedStructs(p *Pass, g *serveGraph) []Finding {
	var out []Finding
	for _, owner := range g.keyedStructs {
		if owner.Pkg() == nil || owner.Pkg().Path() != p.Pkg.Path {
			continue
		}
		st := owner.Type().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			kf := g.keyedFields[fieldKey(owner, f.Name())]
			if kf == nil || kf.exempt {
				continue
			}
			read := g.readInReach(owner, f.Name())
			switch {
			case !kf.keyed && read:
				why := "excluded from the cache key by its json tag"
				if kf.stripped {
					why = "zeroed before hashing"
				}
				out = append(out, p.finding(RuleCacheKeySoundness, Error, f.Pos(),
					fmt.Sprintf("%s.%s is read on the serve path but %s — identical keys can serve different results",
						owner.Name(), f.Name(), why),
					"key the field, or vet the exclusion in keyExemptFields with a written reason"))
			case kf.keyed && !read:
				out = append(out, p.finding(RuleCacheKeySoundness, Info, f.Pos(),
					fmt.Sprintf("%s.%s is hashed into the cache key but never read on the serve path",
						owner.Name(), f.Name()),
					"wire the field into the engine call or drop it — dead key material splits the cache"))
			}
		}
	}
	return out
}

// rootForRead names the handler root behind the first reachable read of
// a field (for messages).
func (g *serveGraph) rootForRead(key string) string {
	uses := g.reads[key]
	if len(uses) == 0 {
		return "?"
	}
	for _, ff := range g.reachList {
		for _, fr := range ff.fieldReads {
			if fr.pos == uses[0].pos {
				return g.reach[ff.fn]
			}
		}
	}
	return "?"
}
