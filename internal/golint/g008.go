package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// G008 goroutine-discipline: every go statement must be joined, must
// observe an in-scope context, and must take loop variables as
// arguments instead of capturing them.
//
// Joined means the spawn participates in a completion protocol the
// spawning function can see: the closure calls Done on a sync.WaitGroup
// the function Waits on, or it sends on / closes a channel the function
// receives from. A goroutine outside such a protocol outlives its
// spawner silently — the serve layer's graceful shutdown and the
// engines' cancellation contract both assume that never happens.
//
// The loop-variable check stays even though go ≥ 1.22 scopes iteration
// variables per iteration: passing the variable as an argument is the
// repo's explicitness contract (fsim's worker index w), and the rule is
// what keeps it uniform.
//
// goroutineAllowlist (allowlist.go) vets the one shape the same-
// function analysis cannot see: a constructor that starts workers and
// hands the wg.Wait to a Close method. Listed functions skip only the
// join check; context and loop-variable discipline still apply.

func analyzerG008() *Analyzer {
	return &Analyzer{
		ID:       RuleGoroutineDiscipline,
		Name:     "goroutine-discipline",
		Doc:      "goroutine not joined, ignoring ctx, or capturing loop variables",
		Severity: Warning,
		Run:      runG008,
	}
}

func runG008(p *Pass) []Finding {
	var out []Finding
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil {
				continue
			}
			inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				out = append(out, checkGoStmt(p, info, fd, g, stack)...)
				return true
			})
		}
	}
	return out
}

// checkGoStmt applies the three discipline checks to one go statement.
func checkGoStmt(p *Pass, info *types.Info, fd *ast.FuncDecl, g *ast.GoStmt, stack []ast.Node) []Finding {
	var out []Finding
	lit, isClosure := g.Call.Fun.(*ast.FuncLit)

	// Join: the spawn must signal completion in a way fd observes.
	// goroutineAllowlist waives this check (only this check) for
	// vetted constructor-shaped spawners whose join lives in another
	// method.
	if goroutineJoinAllowed(p.Pkg.Path, fd.Name.Name) {
		// fall through to the context and loop-variable checks
	} else if !isClosure {
		// A named-function spawn hides its signalling (if any) in another
		// body the per-spawn analysis does not chase; the repo's shape is
		// a closure that owns its Done/send, so require it.
		out = append(out, p.finding(RuleGoroutineDiscipline, Warning, g.Pos(),
			"go statement spawns a named function, so no join is visible at the spawn site",
			"wrap the spawn in a closure that calls wg.Done or signals a channel the spawner waits on"))
	} else if !goroutineJoined(info, fd, g, lit) {
		out = append(out, p.finding(RuleGoroutineDiscipline, Warning, g.Pos(),
			fmt.Sprintf("goroutine spawned by %s is never joined", fd.Name.Name),
			"have the closure call wg.Done with a wg.Wait in the spawner, or send on a channel the spawner receives from"))
	}

	// Context: if a context.Context is in scope at the spawn, the
	// goroutine must observe it (reference it in its body or arguments)
	// so cancellation reaches the worker.
	if ctxs := contextsInScope(info, fd, stack, g.Pos()); len(ctxs) > 0 {
		if !refersToObject(info, g.Call, ctxs) {
			out = append(out, p.finding(RuleGoroutineDiscipline, Warning, g.Pos(),
				fmt.Sprintf("goroutine spawned by %s ignores the context in scope", fd.Name.Name),
				"pass ctx into the worker and check ctx.Err (or select on ctx.Done) so cancellation propagates"))
		}
	}

	// Loop variables: workers take them as arguments, never capture.
	if isClosure {
		if names := capturedLoopVars(info, lit, stack); len(names) > 0 {
			out = append(out, p.finding(RuleGoroutineDiscipline, Warning, g.Pos(),
				fmt.Sprintf("goroutine closure captures loop variable(s) %s", joinNames(names)),
				"pass the loop variable to the closure as an argument, like fsim's worker index"))
		}
	}
	return out
}

// goroutineJoined reports whether the closure participates in a join
// protocol with fd: WaitGroup Done/Wait, or channel send/close with a
// matching receive (including select comm clauses and range-over-
// channel) outside the closure.
func goroutineJoined(info *types.Info, fd *ast.FuncDecl, g *ast.GoStmt, lit *ast.FuncLit) bool {
	// WaitGroup protocol: Done in the closure, Wait in the function.
	for _, wg := range waitGroupCalls(info, lit.Body, "Done") {
		for _, waited := range waitGroupCalls(info, fd.Body, "Wait") {
			if wg == waited {
				return true
			}
		}
	}
	// Channel protocol: send/close in the closure, receive outside it.
	for _, ch := range channelSignals(info, lit.Body) {
		if receivesFrom(info, fd.Body, lit, ch) {
			return true
		}
	}
	return false
}

// waitGroupCalls returns the receiver texts of method calls on
// sync.WaitGroup values under root (nested closures excluded, so a
// Wait inside another goroutine does not count as the spawner's).
func waitGroupCalls(info *types.Info, root *ast.BlockStmt, method string) []string {
	var out []string
	inspectWithStack(root, func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != root {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method || !isWaitGroupType(info.TypeOf(sel.X)) {
			return true
		}
		out = append(out, exprText(sel.X))
		return true
	})
	return out
}

// channelSignals returns the channel-expression texts the closure
// signals on: send statements and close calls.
func channelSignals(info *types.Info, body *ast.BlockStmt) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			out = append(out, exprText(n.Chan))
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && isChanType(info.TypeOf(n.Args[0])) {
					out = append(out, exprText(n.Args[0]))
				}
			}
		}
		return true
	})
	return out
}

// receivesFrom reports whether fd's body — outside the spawned closure
// — receives from the channel spelled chText: a <-ch expression
// (anywhere, including select comm clauses) or a range over ch.
func receivesFrom(info *types.Info, body *ast.BlockStmt, spawned *ast.FuncLit, chText string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == ast.Node(spawned) {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isChanType(info.TypeOf(n.X)) && exprText(n.X) == chText {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) && exprText(n.X) == chText {
				found = true
			}
		}
		return true
	})
	return found
}

// contextsInScope returns the context.Context variables visible at pos:
// parameters of fd, plus locals defined in an ancestor block by a
// statement that completes before pos. Contexts declared after the
// spawn (cmd/serve wires its signal context below the listener spawns)
// are correctly out of scope.
func contextsInScope(info *types.Info, fd *ast.FuncDecl, stack []ast.Node, pos token.Pos) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					out[obj] = true
				}
			}
		}
	}
	addDef := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil && isContextType(obj.Type()) {
			out[obj] = true
		}
	}
	for _, a := range stack {
		block, ok := a.(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, st := range block.List {
			if st.End() > pos {
				break
			}
			switch st := st.(type) {
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					for _, lhs := range st.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							addDef(id)
						}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, name := range vs.Names {
								addDef(name)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// capturedLoopVars returns the names of loop iteration variables of
// enclosing for/range statements that the closure references, in
// source order.
func capturedLoopVars(info *types.Info, lit *ast.FuncLit, stack []ast.Node) []string {
	loopVars := make(map[types.Object]bool)
	var order []types.Object
	record := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := info.Defs[id]; obj != nil && !loopVars[obj] {
			loopVars[obj] = true
			order = append(order, obj)
		}
	}
	for _, a := range stack {
		switch s := a.(type) {
		case *ast.RangeStmt:
			if s.Tok == token.DEFINE {
				if s.Key != nil {
					record(s.Key)
				}
				if s.Value != nil {
					record(s.Value)
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					record(lhs)
				}
			}
		}
	}
	var names []string
	for _, obj := range order {
		if refersToObject(info, lit.Body, map[types.Object]bool{obj: true}) {
			names = append(names, obj.Name())
		}
	}
	return names
}

// joinNames renders a short name list for messages.
func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
