package golint

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The suggested-fix engine. Analyzers attach a *Fix to findings whose
// repair is mechanical (see DESIGN.md "Autofix safety" for the offered
// vs. finding-only line); ApplyFixes materializes them as gofmt-clean
// file contents, and cmd/codelint -fix writes (or, with -dry-run,
// diffs) the result. The contract is idempotence: applying the fixes
// removes the findings that carried them, so a second run changes
// nothing.

// TextEdit is one byte-range replacement in a file's original
// contents. Start and End are byte offsets into the file as analyzed
// (Start == End inserts).
type TextEdit struct {
	// File is the module-relative forward-slash path, as in Finding.File.
	File string `json:"file"`
	// Start and End delimit the replaced range.
	Start int `json:"start"`
	End   int `json:"end"`
	// Text replaces the range. It need not be perfectly formatted —
	// the engine runs the whole file through gofmt after applying.
	Text string `json:"text"`
}

// Fix is a machine-applicable suggested fix: a description and the
// edits that realize it. All edits of one Fix apply atomically.
type Fix struct {
	// Description says what applying the fix does.
	Description string `json:"description"`
	// Edits are the byte-range replacements, all within one file.
	Edits []TextEdit `json:"edits"`
}

// ApplyFixes applies every suggested fix among the findings to the
// files under modRoot and returns the new gofmt-formatted contents per
// module-relative path. Files whose fixed contents equal the original
// are omitted, so an empty map means nothing to do. Fixes whose edits
// overlap an earlier fix's edits are skipped (first finding in report
// order wins); overlap has not come up in practice because each fix
// touches its own finding's neighborhood.
func ApplyFixes(modRoot string, findings []Finding) (map[string][]byte, error) {
	type span struct{ start, end int }
	accepted := make(map[string][]TextEdit)
	taken := make(map[string][]span)
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		overlaps := false
		for _, e := range f.Fix.Edits {
			for _, s := range taken[e.File] {
				if e.Start < s.end && s.start < e.End || e.Start == s.start {
					overlaps = true
				}
			}
		}
		if overlaps {
			continue
		}
		for _, e := range f.Fix.Edits {
			accepted[e.File] = append(accepted[e.File], e)
			taken[e.File] = append(taken[e.File], span{e.Start, e.End})
		}
	}
	out := make(map[string][]byte)
	paths := make([]string, 0, len(accepted))
	for path := range accepted {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		src, err := os.ReadFile(filepath.Join(modRoot, filepath.FromSlash(path)))
		if err != nil {
			return nil, fmt.Errorf("golint: read %s: %w", path, err)
		}
		edits := accepted[path]
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		fixed := src
		for _, e := range edits {
			if e.Start < 0 || e.End > len(fixed) || e.Start > e.End {
				return nil, fmt.Errorf("golint: edit out of range in %s (%d..%d of %d bytes)", path, e.Start, e.End, len(fixed))
			}
			var buf []byte
			buf = append(buf, fixed[:e.Start]...)
			buf = append(buf, e.Text...)
			buf = append(buf, fixed[e.End:]...)
			fixed = buf
		}
		formatted, err := format.Source(fixed)
		if err != nil {
			return nil, fmt.Errorf("golint: fixed %s does not parse: %w", path, err)
		}
		if string(formatted) == string(src) {
			continue
		}
		out[path] = formatted
	}
	return out, nil
}

// WriteFixes writes the ApplyFixes result back under modRoot.
func WriteFixes(modRoot string, fixed map[string][]byte) error {
	paths := make([]string, 0, len(fixed))
	for path := range fixed {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		abs := filepath.Join(modRoot, filepath.FromSlash(path))
		info, err := os.Stat(abs)
		if err != nil {
			return fmt.Errorf("golint: stat %s: %w", path, err)
		}
		if err := os.WriteFile(abs, fixed[path], info.Mode().Perm()); err != nil {
			return fmt.Errorf("golint: write %s: %w", path, err)
		}
	}
	return nil
}

// UnifiedDiff renders old→new as a single-hunk unified diff labeled
// a/path and b/path, or "" when the contents are equal. One hunk from
// the first to the last differing line keeps the output deterministic
// and byte-exact for the goldens.
func UnifiedDiff(path string, old, new []byte) string {
	if string(old) == string(new) {
		return ""
	}
	a := splitLines(string(old))
	b := splitLines(string(new))
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	post := 0
	for post < len(a)-pre && post < len(b)-pre && a[len(a)-1-post] == b[len(b)-1-post] {
		post++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", path, path)
	aLen := len(a) - pre - post
	bLen := len(b) - pre - post
	fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", pre+1, aLen, pre+1, bLen)
	for _, line := range a[pre : len(a)-post] {
		sb.WriteString("-" + line + "\n")
	}
	for _, line := range b[pre : len(b)-post] {
		sb.WriteString("+" + line + "\n")
	}
	return sb.String()
}

// splitLines splits on newlines, dropping the empty slot a trailing
// newline produces (every line in the diff output re-adds its "\n").
func splitLines(s string) []string {
	lines := strings.Split(s, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}
