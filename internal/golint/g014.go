package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// G014 resource-lifecycle: every acquired resource — files and
// listeners (Close), timers and tickers (Stop), cancel funcs from
// context.WithCancel/WithTimeout (call them) — must be released on
// every path out of its frame, including the early error returns that
// sit between the acquisition and the first release. Ownership
// transfers (returning the value, storing it, handing it to a callee
// that does not release it) move the obligation to the new owner;
// functions whose transfers are structural rather than visible to the
// positional scan are vetted in resourceOwnerAllowlist.
//
// The interprocedural half runs on the module call graph: a bare pass
// of the resource to a module-internal helper counts as a release
// exactly when that helper's summary releases the parameter (see
// releaseSummaries in lifecycle.go), so `closeAll(f)` satisfies the
// rule and an early return before it still violates it.

func analyzerG014() *Analyzer {
	return &Analyzer{
		ID:       RuleResourceLifecycle,
		Name:     "resource-lifecycle",
		Doc:      "files, listeners, timers, tickers, or cancel funcs not released on every path",
		Severity: Error,
		Run:      runG014,
	}
}

func runG014(p *Pass) []Finding {
	var out []Finding
	rel := p.Mod.releaseOracleOf()
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil || isResourceOwner(p.Pkg.Path, fd.Name.Name) {
				continue
			}
			for _, found := range findAcquisitions(p.Pkg.Info, fd, g014Acquisitions) {
				out = append(out, checkAcquisition(p, found.frame, found.acq, rel)...)
			}
		}
	}
	return out
}

// checkAcquisition runs the shared positional path check for one
// acquisition and renders G014 findings (also used by G016 for
// response bodies, with its own rule ID).
func checkAcquisition(p *Pass, frame *ast.BlockStmt, acq resourceAcq, rel releaseOracle) []Finding {
	return checkAcquisitionAs(p, frame, acq, rel, RuleResourceLifecycle)
}

func checkAcquisitionAs(p *Pass, frame *ast.BlockStmt, acq resourceAcq, rel releaseOracle, rule string) []Finding {
	if acq.obj == nil {
		// The resource result was assigned to the blank identifier:
		// discarding a cancel func (or a file) means nobody can ever
		// release it.
		f := p.finding(rule, Error, acq.pos,
			fmt.Sprintf("%s is discarded, so it can never be released", acq.what),
			"bind the value and release it (defer) or transfer ownership")
		return []Finding{f}
	}
	sc := scanLifecycle(p.Pkg.Info, frame, acq, rel)
	if sc.escaped {
		return nil
	}
	if len(sc.releases) == 0 {
		f := p.finding(rule, Error, acq.pos,
			fmt.Sprintf("%s %s is never released", acq.what, acq.obj.Name()),
			fmt.Sprintf("add `defer %s` after the acquisition's error check", releaseCallText(acq)))
		f.Fix = deferReleaseFix(p, frame, acq)
		return []Finding{f}
	}
	if sc.deferredRelease {
		// A deferred release covers every path after the defer runs; the
		// positional early-return check below only applies to direct
		// releases, where returns before the release line leak.
		return nil
	}
	var out []Finding
	first := sc.releases[0]
	for _, pos := range sc.releases[1:] {
		if pos < first {
			first = pos
		}
	}
	for _, ret := range earlyReturns(p.Pkg.Info, frame, acq, first) {
		out = append(out, p.finding(rule, Error, ret,
			fmt.Sprintf("%s %s is not released on this return path", acq.what, acq.obj.Name()),
			fmt.Sprintf("release with `defer %s` so every return is covered", releaseCallText(acq))))
	}
	return out
}

// releaseCallText renders the releasing call for hints and fixes.
func releaseCallText(acq resourceAcq) string {
	name := "_"
	if acq.obj != nil {
		name = acq.obj.Name()
	}
	switch acq.release {
	case "":
		return name + "()"
	case "Body.Close":
		return name + ".Body.Close()"
	default:
		return name + "." + acq.release + "()"
	}
}

// deferReleaseFix builds the suggested fix for a never-released
// resource: insert `defer x.Close()` (or `defer cancel()`) right after
// the acquisition's error check. The fix is only offered when the
// acquisition is a direct child of a block and the insertion point is
// unambiguous — after the immediately-following `if err != nil` guard
// when the acquisition returns an error, else after the acquisition
// itself; other shapes stay finding-only (see DESIGN.md).
func deferReleaseFix(p *Pass, frame *ast.BlockStmt, acq resourceAcq) *Fix {
	anchor := insertionAnchor(p.Pkg.Info, frame, acq)
	if anchor == token.NoPos {
		return nil
	}
	file := p.Loader.Fset.File(anchor)
	if file == nil {
		return nil
	}
	text := "\ndefer " + releaseCallText(acq)
	return &Fix{
		Description: fmt.Sprintf("insert `defer %s` after the acquisition", releaseCallText(acq)),
		Edits: []TextEdit{{
			File:  p.relFile(anchor),
			Start: file.Offset(anchor),
			End:   file.Offset(anchor),
			Text:  text,
		}},
	}
}

// insertionAnchor finds the position right after which the deferred
// release belongs: the end of the err-check if statement that
// immediately follows the acquisition, or the end of the acquisition
// statement when it returns no error. NoPos when the acquisition is
// not a direct child of any block in the frame (no safe anchor).
func insertionAnchor(info *types.Info, frame *ast.BlockStmt, acq resourceAcq) token.Pos {
	var anchor token.Pos
	ast.Inspect(frame, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range block.List {
			if st != ast.Stmt(acq.stmt) {
				continue
			}
			if acq.errObj == nil {
				anchor = st.End()
				return false
			}
			if i+1 < len(block.List) {
				objs := map[types.Object]bool{acq.errObj: true}
				if ifs, ok := block.List[i+1].(*ast.IfStmt); ok && refersToObject(info, ifs.Cond, objs) {
					anchor = ifs.End()
					return false
				}
			}
			return false
		}
		return true
	})
	return anchor
}
