package golint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// G015 durability-discipline: machine-checks the crash-safety shapes
// DESIGN.md documents for the journal-writing packages (the
// durabilityPackages table in allowlist.go). Four checks, all scoped
// to one function frame:
//
//  1. os.WriteFile is an in-place state write — a crash mid-write
//     leaves a torn file where the old state used to be. State goes
//     through append+Sync (journals) or tmp→fsync→rename (blobs).
//  2. os.Rename that installs a blob must be preceded (positionally,
//     in the same frame) by a Sync call — renaming a never-fsynced
//     temp file publishes bytes the disk may not have.
//  3. os.Rename must be followed by a directory sync — the rename
//     itself lives in the directory, and until the directory is
//     fsynced a crash can forget the installation. A module-internal
//     helper that opens a directory and Syncs it (transitively)
//     satisfies the check; see dirSyncSummaries.
//  4. A file opened with os.O_APPEND (a journal) must be Synced in
//     the frame that writes it — an append that never reaches disk is
//     a state record the recovery replay will not see.
func analyzerG015() *Analyzer {
	return &Analyzer{
		ID:       RuleDurabilityDiscipline,
		Name:     "durability-discipline",
		Doc:      "journal writes without Sync, renames of unsynced blobs, renames without a directory sync",
		Severity: Error,
		Run:      runG015,
	}
}

func runG015(p *Pass) []Finding {
	if !isDurabilityPackage(p.Pkg.Path) {
		return nil
	}
	var out []Finding
	dirSync := p.Mod.dirSyncSummaries()
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, checkDurability(p, fd, dirSync)...)
		}
	}
	return out
}

// frameDurability is one frame's durability-relevant events, collected
// in a single walk.
type frameDurability struct {
	renames   []token.Pos
	syncs     []token.Pos // .Sync() calls on any value
	dirSyncs  []token.Pos // calls into directory-syncing helpers
	appends   []appendOpen
	writeFile []token.Pos // os.WriteFile calls
}

// appendOpen is one os.OpenFile(..., O_APPEND, ...) acquisition.
type appendOpen struct {
	obj types.Object
	pos token.Pos
}

func checkDurability(p *Pass, fd *ast.FuncDecl, dirSync map[*types.Func]bool) []Finding {
	info := p.Pkg.Info
	var fr frameDurability
	opensDir := false // the frame itself opens+syncs (it IS a dir-syncer)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok && len(assign.Rhs) == 1 && len(assign.Lhs) > 0 {
			if call, ok := assign.Rhs[0].(*ast.CallExpr); ok {
				if path, name := pkgQualified(info, call.Fun); path == "os" && name == "OpenFile" &&
					len(call.Args) >= 2 && mentionsAppendFlag(call.Args[1]) {
					if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if obj := assignedObject(info, id); obj != nil {
							fr.appends = append(fr.appends, appendOpen{obj: obj, pos: call.Pos()})
						}
					}
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name := pkgQualified(info, call.Fun)
		switch path + "." + name {
		case "os.WriteFile":
			fr.writeFile = append(fr.writeFile, call.Pos())
			return true
		case "os.Rename":
			fr.renames = append(fr.renames, call.Pos())
			return true
		case "os.Open":
			opensDir = true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
			fr.syncs = append(fr.syncs, call.Pos())
			return true
		}
		if callee := staticCallee(info, call); callee != nil && dirSync[callee] {
			fr.dirSyncs = append(fr.dirSyncs, call.Pos())
		}
		return true
	})
	var out []Finding
	for _, pos := range fr.writeFile {
		out = append(out, p.finding(RuleDurabilityDiscipline, Error, pos,
			"os.WriteFile writes state in place; a crash mid-write tears the old state",
			"journal through append+Sync, or install via tmp→fsync→rename"))
	}
	for _, pos := range fr.renames {
		if !anyBefore(fr.syncs, pos) {
			out = append(out, p.finding(RuleDurabilityDiscipline, Error, pos,
				"os.Rename installs a file that was never fsynced in this frame",
				"call Sync on the temp file before renaming it into place"))
		}
		if opensDir && anyBefore(fr.syncs, pos) && anyAfter(fr.syncs, pos) {
			// The frame syncs both the file and (after the rename) an
			// os.Open-ed handle — it is its own dir-syncer.
			continue
		}
		if !anyAfter(fr.dirSyncs, pos) {
			out = append(out, p.finding(RuleDurabilityDiscipline, Error, pos,
				"os.Rename is not followed by a directory sync; a crash can forget the installed file",
				"fsync the containing directory after the rename (see the store's syncDir helper)"))
		}
	}
	for _, ap := range fr.appends {
		if !syncsObject(info, fd.Body, ap.obj) {
			out = append(out, p.finding(RuleDurabilityDiscipline, Error, ap.pos,
				"journal opened with O_APPEND is never Synced; appended records may not reach disk",
				"Sync the file after writing the record (before Close)"))
		}
	}
	return out
}

// mentionsAppendFlag reports whether the flag expression textually
// includes os.O_APPEND (flags are |-combined selector constants).
func mentionsAppendFlag(e ast.Expr) bool {
	return strings.Contains(exprText(e), "O_APPEND")
}

// anyBefore reports whether any position precedes p.
func anyBefore(ps []token.Pos, p token.Pos) bool {
	for _, x := range ps {
		if x < p {
			return true
		}
	}
	return false
}

// anyAfter reports whether any position follows p.
func anyAfter(ps []token.Pos, p token.Pos) bool {
	for _, x := range ps {
		if x > p {
			return true
		}
	}
	return false
}

// syncsObject reports whether the body calls .Sync() on obj.
func syncsObject(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sync" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// dirSyncSummaries computes (once per Run) which module functions
// fsync a directory: the function os.Opens something and Syncs the
// opened handle, or (transitively) calls a function that does. The
// summary is deliberately coarse — opening and syncing any handle
// counts — because the only reason to Sync a freshly-opened unwritten
// handle is directory durability.
func (m *ModuleFacts) dirSyncSummaries() map[*types.Func]bool {
	if m.dirSyncers != nil {
		return m.dirSyncers
	}
	m.dirSyncers = make(map[*types.Func]bool)
	for _, fn := range m.order {
		ff := m.funcs[fn]
		if opensAndSyncs(ff.pkg.Info, ff.decl.Body) {
			m.dirSyncers[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range m.order {
			if m.dirSyncers[fn] {
				continue
			}
			for _, cs := range m.funcs[fn].calls {
				if m.dirSyncers[cs.callee] {
					m.dirSyncers[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return m.dirSyncers
}

// opensAndSyncs reports whether the body binds an os.Open result and
// calls .Sync() on it.
func opensAndSyncs(info *types.Info, body *ast.BlockStmt) bool {
	var opened []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name := pkgQualified(info, call.Fun); path == "os" && name == "Open" {
			if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := assignedObject(info, id); obj != nil {
					opened = append(opened, obj)
				}
			}
		}
		return true
	})
	for _, obj := range opened {
		if syncsObject(info, body, obj) {
			return true
		}
	}
	return false
}
