package golint

import (
	"go/ast"
	"testing"
)

// TestSelfCheckRepoClean is the self-hosting gate: the analyzers run
// over the entire module and the tree must be clean at warning
// severity. Anything Info-level is reported for visibility but does
// not fail — G005's %w suggestions are advisory by design.
//
// If this test fails after a legitimate, vetted change (say, a new
// timing source in a metrics path), the fix is an entry in the
// allowlist tables in allowlist.go — never a relaxation here.
func TestSelfCheckRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	rep := Run(l, pkgs, Analyzers())
	for _, f := range rep.Filter(Warning) {
		t.Errorf("repo not clean: %s", f)
	}
	for _, f := range rep.Filter(Info) {
		t.Logf("info: %s", f)
	}
}

// TestAllowlistPinned pins the vetted impurity allowlist: these are the
// only sanctioned impurities in the engine tree, and each must remain
// load-bearing (removing the code it covers should shrink this table,
// not silently orphan it).
func TestAllowlistPinned(t *testing.T) {
	want := map[string][]string{
		"internal/serve": {"time.Now", "time.Since"},
		"internal/exp":   {"time.Now", "time.Since"},
		"internal/perf":  {"time.Now", "time.Since"},
	}
	if len(impureAllowlist) != len(want) {
		t.Errorf("allowlist covers %d packages, want %d", len(impureAllowlist), len(want))
	}
	for pkg, symbols := range want {
		for _, s := range symbols {
			if !allowedImpurity("repro/"+pkg, s) {
				t.Errorf("allowlist lost %s for %s", s, pkg)
			}
		}
	}
	if allowedImpurity("repro/internal/fsim", "time.Now") {
		t.Error("time.Now must not be allowlisted for fsim")
	}
	if allowedImpurity("repro/internal/serve", "rand.Intn") {
		t.Error("the global RNG is never allowlisted")
	}
}

// TestHotLoopEntriesPinned pins the G007 measured-loop entry table: the
// innermost loop owners of the four engine packages plus the fixture.
// Adding an entry widens what "hot" means and is a reviewed decision;
// losing one silently blinds the rule to a whole engine.
func TestHotLoopEntriesPinned(t *testing.T) {
	want := map[string][]string{
		"repro/internal/fsim":           {"RunContext"},
		"repro/internal/atpg":           {"search"},
		"repro/internal/tpi":            {"solve", "run"},
		"repro/internal/implic":         {"sweep", "learn"},
		"repro/testdata/codelint/g007":  {"Hot"},
		"repro/internal/does-not-exist": nil,
	}
	total := 0
	for pkg, funcs := range want {
		total += len(funcs)
		for _, fn := range funcs {
			if !isHotLoopEntry(pkg, fn) {
				t.Errorf("hotLoopEntries lost %s.%s", pkg, fn)
			}
		}
	}
	declared := 0
	for _, e := range hotLoopEntries {
		declared += len(e.funcs)
	}
	if declared != total {
		t.Errorf("hotLoopEntries declares %d functions, want %d — update this pin together with the table", declared, total)
	}
	if isHotLoopEntry("repro/internal/fsim", "RunParallelContext") {
		t.Error("the parallel driver is per-run setup, never a measured-loop entry")
	}
	if isHotLoopEntry("repro/internal/atpg", "GenerateTestsContext") {
		t.Error("the ATPG planner is per-fault setup, never a measured-loop entry")
	}
}

// TestHotAllocAllowlistPinned pins the G007 alloc allowlist and its
// justifications: every entry must carry a why, and the only vetted
// engine entries are tpi's DP-output builders.
func TestHotAllocAllowlistPinned(t *testing.T) {
	want := map[string]bool{
		"internal/tpi.computeNode":    true,
		"internal/tpi.exportsOf":      true,
		"testdata/codelint/g007.Warm": true,
	}
	if len(hotAllocAllowlist) != len(want) {
		t.Errorf("hotAllocAllowlist has %d entries, want %d — update this pin together with the table", len(hotAllocAllowlist), len(want))
	}
	for _, e := range hotAllocAllowlist {
		if !want[e.pkg+"."+e.fn] {
			t.Errorf("unexpected allowlist entry %s.%s", e.pkg, e.fn)
		}
		if e.why == "" {
			t.Errorf("allowlist entry %s.%s carries no justification", e.pkg, e.fn)
		}
	}
	if hotAllocAllowed("repro/internal/atpg", "imply") {
		t.Error("imply was the G007 bring-up fix; it must never be allowlisted back")
	}
}

// TestHotAllocAllowlistLoadBearing runs G007 on tpi with the fixture's
// machinery intact and asserts the allowlisted functions still contain
// the allocation sites the entries vet — a stale entry fails here.
func TestHotAllocAllowlistLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks tpi")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/internal/tpi")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(l, pkgs, Analyzers())
	if n := len(rep.ByRule(RuleAllocHotPath)); n != 0 {
		t.Errorf("tpi: %d G007 findings despite allowlist:\n%v", n, rep.ByRule(RuleAllocHotPath))
	}
	// Bypass the allowlist: the vetted sites must still exist in the hot
	// set, proving the entries cover live code.
	m := newModuleFacts(l, pkgs)
	covered := 0
	for _, ff := range m.hotFuncList() {
		if hotAllocAllowed(ff.pkg.Path, ff.fn.Name()) && len(ff.allocs) > 0 {
			covered++
		}
	}
	if covered < 2 {
		t.Errorf("only %d allowlisted tpi functions still hold allocation sites; prune the stale entries", covered)
	}
}

// TestGoroutineAllowlistPinned pins the G008 join waivers: the only
// vetted constructor-shaped spawner in the tree is the job manager's
// New, and every entry must carry a justification naming where the
// join lives.
func TestGoroutineAllowlistPinned(t *testing.T) {
	want := map[string]bool{
		"internal/jobs.New":             true,
		"testdata/codelint/g008.Vetted": true,
	}
	if len(goroutineAllowlist) != len(want) {
		t.Errorf("goroutineAllowlist has %d entries, want %d — update this pin together with the table", len(goroutineAllowlist), len(want))
	}
	for _, e := range goroutineAllowlist {
		if !want[e.pkg+"."+e.fn] {
			t.Errorf("unexpected allowlist entry %s.%s", e.pkg, e.fn)
		}
		if e.why == "" {
			t.Errorf("allowlist entry %s.%s carries no justification", e.pkg, e.fn)
		}
	}
	if goroutineJoinAllowed("repro/internal/serve", "New") {
		t.Error("serve's constructor spawns nothing; the waiver must not leak onto it")
	}
}

// TestGoroutineAllowlistLoadBearing runs G008 on internal/jobs and
// asserts the entry both silences the package and still covers live
// spawns inside New — a stale entry fails here and gets removed. The
// join it waives is itself pinned by jobs.TestCloseJoinsWorkers.
func TestGoroutineAllowlistLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks jobs")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/internal/jobs")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(l, pkgs, Analyzers())
	if n := len(rep.ByRule(RuleGoroutineDiscipline)); n != 0 {
		t.Errorf("jobs: %d G008 findings despite allowlist:\n%v", n, rep.ByRule(RuleGoroutineDiscipline))
	}
	// Bypass the allowlist: New must still contain the spawns the entry
	// vets, proving it covers live code.
	spawns := 0
	for _, file := range pkgs[0].Files {
		for _, fd := range funcDecls(file) {
			if fd.Name.Name != "New" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					spawns++
				}
				return true
			})
		}
	}
	if spawns == 0 {
		t.Error("jobs.New no longer spawns goroutines; prune its goroutineAllowlist entry")
	}
}

// TestEngineCallPackagesPinned pins the G009 engine-call set to the
// four engine packages.
func TestEngineCallPackagesPinned(t *testing.T) {
	want := []string{"internal/fsim", "internal/atpg", "internal/tpi", "internal/implic"}
	if len(engineCallPackages) != len(want) {
		t.Errorf("engineCallPackages has %d entries, want %d", len(engineCallPackages), len(want))
	}
	for _, p := range want {
		if !isEngineCallPackage("repro/" + p) {
			t.Errorf("engineCallPackages lost %s", p)
		}
	}
	if isEngineCallPackage("repro/internal/serve") {
		t.Error("serve is a caller of engines, not an engine")
	}
}

// TestEngineOptionStructsPinned pins the G011 audit surface: the five
// engine option structs the serve run closures hand across, plus the
// fixture. internal/lint.Options stays out by decision — /v1/lint runs
// at defaults and its report is advisory.
func TestEngineOptionStructsPinned(t *testing.T) {
	want := map[string]bool{
		"internal/fsim.Options":             true,
		"internal/atpg.Options":             true,
		"internal/implic.Options":           true,
		"internal/tpi.CPOptions":            true,
		"internal/tpi.OPOptions":            true,
		"testdata/codelint/g011.EngineOpts": true,
		"internal/lint.Options":             false,
		"internal/serve.planOptions":        false,
	}
	declared := 0
	for _, e := range engineOptionStructs {
		declared++
		if !want[e.pkg+"."+e.typ] {
			t.Errorf("unexpected engineOptionStructs entry %s.%s", e.pkg, e.typ)
		}
	}
	if declared != 6 {
		t.Errorf("engineOptionStructs declares %d structs, want 6 — update this pin together with the table", declared)
	}
	if !isEngineOptionStruct("repro/internal/atpg", "Options") {
		t.Error("engineOptionStructs lost atpg.Options")
	}
	if isEngineOptionStruct("repro/internal/lint", "Options") {
		t.Error("lint.Options joined the audit surface without a request surface — revisit the decision in allowlist.go")
	}
}

// TestCacheKeyFieldAllowlistPinned pins the vetted zero-default fields
// and their justifications.
func TestCacheKeyFieldAllowlistPinned(t *testing.T) {
	want := map[string]bool{
		"internal/tpi.CPOptions.COP":               true,
		"internal/tpi.OPOptions.COP":               true,
		"internal/implic.Options.LearnRounds":      true,
		"testdata/codelint/g011.EngineOpts.Tuning": true,
	}
	if len(cacheKeyFieldAllowlist) != len(want) {
		t.Errorf("cacheKeyFieldAllowlist has %d entries, want %d — update this pin together with the table", len(cacheKeyFieldAllowlist), len(want))
	}
	for _, e := range cacheKeyFieldAllowlist {
		if !want[e.pkg+"."+e.typ+"."+e.field] {
			t.Errorf("unexpected allowlist entry %s.%s.%s", e.pkg, e.typ, e.field)
		}
		if e.why == "" {
			t.Errorf("allowlist entry %s.%s.%s carries no justification", e.pkg, e.typ, e.field)
		}
	}
	if cacheKeyFieldAllowed("repro/internal/atpg", "Options", "Learn") {
		t.Error("atpg.Options.Learn is fed by serve and must never be pinned as a constant")
	}
	if !keyExemptField("timeout_ms", "TimeoutMS") || len(keyExemptFields) != 1 {
		t.Error("keyExemptFields must vet exactly timeout_ms (transport concerns only)")
	}
	if keyExemptField("seed", "Seed") {
		t.Error("seed changes engine results and must never be key-exempt")
	}
}

// TestCtxLoopTablesPinned pins the G012 exemptions: the bounded
// request-materialization packages and the two vetted engine walks, all
// with written reasons.
func TestCtxLoopTablesPinned(t *testing.T) {
	wantPkgs := map[string]bool{
		"internal/netlist": true, "internal/bench": true, "internal/gen": true,
		"internal/logic": true, "internal/fault": true, "internal/pattern": true,
		"internal/testability": true, "internal/lint": true,
	}
	if len(ctxLoopExemptPackages) != len(wantPkgs) {
		t.Errorf("ctxLoopExemptPackages has %d entries, want %d — update this pin together with the table", len(ctxLoopExemptPackages), len(wantPkgs))
	}
	for _, e := range ctxLoopExemptPackages {
		if !wantPkgs[e.pkg] {
			t.Errorf("unexpected package exemption %s", e.pkg)
		}
		if e.why == "" {
			t.Errorf("package exemption %s carries no justification", e.pkg)
		}
	}
	for _, engine := range []string{"repro/internal/fsim", "repro/internal/atpg", "repro/internal/tpi", "repro/internal/implic", "repro/internal/serve"} {
		if ctxLoopPackageExempt(engine) {
			t.Errorf("%s must never be package-exempt from G012: its loops are the ones the rule exists for", engine)
		}
	}
	wantFns := map[string]bool{
		"internal/tpi.reconstruct":      true,
		"internal/atpg.backtrace":       true,
		"testdata/codelint/g012.Vetted": true,
	}
	if len(ctxLoopAllowlist) != len(wantFns) {
		t.Errorf("ctxLoopAllowlist has %d entries, want %d — update this pin together with the table", len(ctxLoopAllowlist), len(wantFns))
	}
	for _, e := range ctxLoopAllowlist {
		if !wantFns[e.pkg+"."+e.fn] {
			t.Errorf("unexpected function allowlist entry %s.%s", e.pkg, e.fn)
		}
		if e.why == "" {
			t.Errorf("function allowlist entry %s.%s carries no justification", e.pkg, e.fn)
		}
	}
	if ctxLoopAllowed("repro/internal/implic", "computeDominators") {
		t.Error("computeDominators polls now; it must never return to the allowlist")
	}
}

// TestMutableStateAllowlistPinned pins the G013 exemptions to the
// fixture's scratch buffer alone: the engine tree holds no vetted
// mutable state on the keyed path.
func TestMutableStateAllowlistPinned(t *testing.T) {
	if len(mutableStateAllowlist) != 1 {
		t.Errorf("mutableStateAllowlist has %d entries, want 1 — update this pin together with the table", len(mutableStateAllowlist))
	}
	if !mutableStateAllowed("repro/testdata/codelint/g013", "scratch") {
		t.Error("mutableStateAllowlist lost the fixture's scratch entry")
	}
	if mutableStateAllowed("repro/internal/serve", "scratch") {
		t.Error("the fixture exemption must not leak onto serve")
	}
}

// TestCtxLoopAllowlistLoadBearing asserts the vetted engine functions
// still contain the unbounded loops their entries cover — a stale entry
// fails here and gets removed.
func TestCtxLoopAllowlistLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks tpi and atpg")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/internal/tpi", "repro/internal/atpg")
	if err != nil {
		t.Fatal(err)
	}
	m := newModuleFacts(l, pkgs)
	covered := make(map[string]bool)
	for _, fn := range m.order {
		ff := m.funcs[fn]
		if ctxLoopAllowed(ff.pkg.Path, fn.Name()) && len(ff.loops) > 0 {
			covered[ff.pkg.Path+"."+fn.Name()] = true
		}
	}
	for _, want := range []string{"repro/internal/tpi.reconstruct", "repro/internal/atpg.backtrace"} {
		if !covered[want] {
			t.Errorf("%s no longer holds an unbounded loop; prune its ctxLoopAllowlist entry", want)
		}
	}
}

// TestAllowlistLoadBearing asserts the serve/exp allowlist entries
// still cover real call sites: running G004 with the allowlist
// bypassed must flag time.Now there. This keeps the table honest — a
// stale entry fails here and gets removed.
func TestAllowlistLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks serve and exp")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"repro/internal/serve", "repro/internal/exp", "repro/internal/perf"} {
		pkgs, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		rep := Run(l, pkgs, Analyzers())
		if n := len(rep.ByRule(RuleImpureEngine)); n != 0 {
			t.Errorf("%s: %d G004 findings despite allowlist", path, n)
		}
		// The entries are load-bearing: the packages really do call the
		// allowlisted symbols.
		found := false
		for _, file := range pkgs[0].Files {
			for _, imp := range file.Imports {
				if imp.Path.Value == `"time"` {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s no longer imports time; drop its allowlist entry", path)
		}
	}
}

// TestResourceOwnerAllowlistPinned pins the G014 ownership-transfer
// waivers to the fixture entry alone: the live tree currently holds no
// constructor whose acquisitions outlive the frame by design, so any
// growth here is a reviewed decision.
func TestResourceOwnerAllowlistPinned(t *testing.T) {
	if len(resourceOwnerAllowlist) != 1 {
		t.Errorf("resourceOwnerAllowlist has %d entries, want 1 — update this pin together with the table", len(resourceOwnerAllowlist))
	}
	for _, e := range resourceOwnerAllowlist {
		if e.why == "" {
			t.Errorf("allowlist entry %s.%s carries no justification", e.pkg, e.fn)
		}
	}
	if !isResourceOwner("repro/testdata/codelint/g014", "Vetted") {
		t.Error("resourceOwnerAllowlist lost the fixture's Vetted entry")
	}
	if isResourceOwner("repro/internal/serve", "Vetted") {
		t.Error("the fixture waiver must not leak onto serve")
	}
	if isResourceOwner("repro/testdata/codelint/g014", "LeakFile") {
		t.Error("LeakFile is the fixture's dirty shape and must never be waived")
	}
}

// TestResourceOwnerAllowlistLoadBearing asserts the Vetted entry still
// covers a live acquisition: bypassing the allowlist, the function must
// acquire a G014-tracked resource it never releases — exactly what the
// waiver exists to silence. A Vetted that stops acquiring goes stale
// and fails here.
func TestResourceOwnerAllowlistLoadBearing(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/testdata/codelint/g014")
	if err != nil {
		t.Fatal(err)
	}
	acquires := 0
	for _, file := range pkgs[0].Files {
		for _, fd := range funcDecls(file) {
			if fd.Name.Name != "Vetted" || fd.Body == nil {
				continue
			}
			acquires += len(findAcquisitions(pkgs[0].Info, fd, g014Acquisitions))
		}
	}
	if acquires == 0 {
		t.Error("g014.Vetted no longer acquires a tracked resource; prune its resourceOwnerAllowlist entry")
	}
}

// TestDurabilityPackagesPinned pins the G015 scope: the job journal
// package and the rule's own fixture, each with a written reason.
// Scoping is opt-in because the discipline only makes sense for state
// a process must trust after a crash.
func TestDurabilityPackagesPinned(t *testing.T) {
	if len(durabilityPackages) != 2 {
		t.Errorf("durabilityPackages has %d entries, want 2 — update this pin together with the table", len(durabilityPackages))
	}
	for _, e := range durabilityPackages {
		if e.why == "" {
			t.Errorf("durability entry %s carries no justification", e.pkg)
		}
	}
	for _, pkg := range []string{"repro/internal/jobs", "repro/testdata/codelint/g015"} {
		if !isDurabilityPackage(pkg) {
			t.Errorf("durabilityPackages lost %s", pkg)
		}
	}
	if isDurabilityPackage("repro/internal/serve") {
		t.Error("serve holds no durable state; G015 must not apply to it")
	}
	if isDurabilityPackage("repro/internal/exp") {
		t.Error("exp writes reports, not journals; G015 must not apply to it")
	}
}

// TestDurabilityPackagesLoadBearing asserts the internal/jobs entry
// still covers live durability surface: the package renames blobs into
// place, owns a directory-syncing helper the fixpoint recognizes, and
// passes the rule it is scoped into.
func TestDurabilityPackagesLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks jobs")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/internal/jobs")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(l, pkgs, Analyzers())
	if n := len(rep.ByRule(RuleDurabilityDiscipline)); n != 0 {
		t.Errorf("jobs: %d G015 findings; the scoped package must satisfy its own discipline:\n%v", n, rep.ByRule(RuleDurabilityDiscipline))
	}
	m := newModuleFacts(l, pkgs)
	syncer := false
	for fn := range m.dirSyncSummaries() {
		if fn.Name() == "syncDir" {
			syncer = true
		}
	}
	if !syncer {
		t.Error("jobs no longer owns a recognized directory-sync helper; the G015 scope entry has gone stale")
	}
	renames := 0
	for _, file := range pkgs[0].Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Rename" {
				renames++
			}
			return true
		})
	}
	if renames == 0 {
		t.Error("jobs no longer renames files into place; revisit its durabilityPackages entry")
	}
}
