package golint

import (
	"testing"
)

// TestSelfCheckRepoClean is the self-hosting gate: the analyzers run
// over the entire module and the tree must be clean at warning
// severity. Anything Info-level is reported for visibility but does
// not fail — G005's %w suggestions are advisory by design.
//
// If this test fails after a legitimate, vetted change (say, a new
// timing source in a metrics path), the fix is an entry in the
// allowlist tables in allowlist.go — never a relaxation here.
func TestSelfCheckRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	rep := Run(l, pkgs, Analyzers())
	for _, f := range rep.Filter(Warning) {
		t.Errorf("repo not clean: %s", f)
	}
	for _, f := range rep.Filter(Info) {
		t.Logf("info: %s", f)
	}
}

// TestAllowlistPinned pins the vetted impurity allowlist: these are the
// only sanctioned impurities in the engine tree, and each must remain
// load-bearing (removing the code it covers should shrink this table,
// not silently orphan it).
func TestAllowlistPinned(t *testing.T) {
	want := map[string][]string{
		"internal/serve": {"time.Now", "time.Since"},
		"internal/exp":   {"time.Now", "time.Since"},
		"internal/perf":  {"time.Now", "time.Since"},
	}
	if len(impureAllowlist) != len(want) {
		t.Errorf("allowlist covers %d packages, want %d", len(impureAllowlist), len(want))
	}
	for pkg, symbols := range want {
		for _, s := range symbols {
			if !allowedImpurity("repro/"+pkg, s) {
				t.Errorf("allowlist lost %s for %s", s, pkg)
			}
		}
	}
	if allowedImpurity("repro/internal/fsim", "time.Now") {
		t.Error("time.Now must not be allowlisted for fsim")
	}
	if allowedImpurity("repro/internal/serve", "rand.Intn") {
		t.Error("the global RNG is never allowlisted")
	}
}

// TestHotLoopEntriesPinned pins the G007 measured-loop entry table: the
// innermost loop owners of the four engine packages plus the fixture.
// Adding an entry widens what "hot" means and is a reviewed decision;
// losing one silently blinds the rule to a whole engine.
func TestHotLoopEntriesPinned(t *testing.T) {
	want := map[string][]string{
		"repro/internal/fsim":           {"RunContext"},
		"repro/internal/atpg":           {"search"},
		"repro/internal/tpi":            {"solve", "run"},
		"repro/internal/implic":         {"sweep", "learn"},
		"repro/testdata/codelint/g007":  {"Hot"},
		"repro/internal/does-not-exist": nil,
	}
	total := 0
	for pkg, funcs := range want {
		total += len(funcs)
		for _, fn := range funcs {
			if !isHotLoopEntry(pkg, fn) {
				t.Errorf("hotLoopEntries lost %s.%s", pkg, fn)
			}
		}
	}
	declared := 0
	for _, e := range hotLoopEntries {
		declared += len(e.funcs)
	}
	if declared != total {
		t.Errorf("hotLoopEntries declares %d functions, want %d — update this pin together with the table", declared, total)
	}
	if isHotLoopEntry("repro/internal/fsim", "RunParallelContext") {
		t.Error("the parallel driver is per-run setup, never a measured-loop entry")
	}
	if isHotLoopEntry("repro/internal/atpg", "GenerateTestsContext") {
		t.Error("the ATPG planner is per-fault setup, never a measured-loop entry")
	}
}

// TestHotAllocAllowlistPinned pins the G007 alloc allowlist and its
// justifications: every entry must carry a why, and the only vetted
// engine entries are tpi's DP-output builders.
func TestHotAllocAllowlistPinned(t *testing.T) {
	want := map[string]bool{
		"internal/tpi.computeNode":    true,
		"internal/tpi.exportsOf":      true,
		"testdata/codelint/g007.Warm": true,
	}
	if len(hotAllocAllowlist) != len(want) {
		t.Errorf("hotAllocAllowlist has %d entries, want %d — update this pin together with the table", len(hotAllocAllowlist), len(want))
	}
	for _, e := range hotAllocAllowlist {
		if !want[e.pkg+"."+e.fn] {
			t.Errorf("unexpected allowlist entry %s.%s", e.pkg, e.fn)
		}
		if e.why == "" {
			t.Errorf("allowlist entry %s.%s carries no justification", e.pkg, e.fn)
		}
	}
	if hotAllocAllowed("repro/internal/atpg", "imply") {
		t.Error("imply was the G007 bring-up fix; it must never be allowlisted back")
	}
}

// TestHotAllocAllowlistLoadBearing runs G007 on tpi with the fixture's
// machinery intact and asserts the allowlisted functions still contain
// the allocation sites the entries vet — a stale entry fails here.
func TestHotAllocAllowlistLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks tpi")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/internal/tpi")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(l, pkgs, Analyzers())
	if n := len(rep.ByRule(RuleAllocHotPath)); n != 0 {
		t.Errorf("tpi: %d G007 findings despite allowlist:\n%v", n, rep.ByRule(RuleAllocHotPath))
	}
	// Bypass the allowlist: the vetted sites must still exist in the hot
	// set, proving the entries cover live code.
	m := newModuleFacts(l, pkgs)
	covered := 0
	for _, ff := range m.hotFuncList() {
		if hotAllocAllowed(ff.pkg.Path, ff.fn.Name()) && len(ff.allocs) > 0 {
			covered++
		}
	}
	if covered < 2 {
		t.Errorf("only %d allowlisted tpi functions still hold allocation sites; prune the stale entries", covered)
	}
}

// TestEngineCallPackagesPinned pins the G009 engine-call set to the
// four engine packages.
func TestEngineCallPackagesPinned(t *testing.T) {
	want := []string{"internal/fsim", "internal/atpg", "internal/tpi", "internal/implic"}
	if len(engineCallPackages) != len(want) {
		t.Errorf("engineCallPackages has %d entries, want %d", len(engineCallPackages), len(want))
	}
	for _, p := range want {
		if !isEngineCallPackage("repro/" + p) {
			t.Errorf("engineCallPackages lost %s", p)
		}
	}
	if isEngineCallPackage("repro/internal/serve") {
		t.Error("serve is a caller of engines, not an engine")
	}
}

// TestAllowlistLoadBearing asserts the serve/exp allowlist entries
// still cover real call sites: running G004 with the allowlist
// bypassed must flag time.Now there. This keeps the table honest — a
// stale entry fails here and gets removed.
func TestAllowlistLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks serve and exp")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"repro/internal/serve", "repro/internal/exp", "repro/internal/perf"} {
		pkgs, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		rep := Run(l, pkgs, Analyzers())
		if n := len(rep.ByRule(RuleImpureEngine)); n != 0 {
			t.Errorf("%s: %d G004 findings despite allowlist", path, n)
		}
		// The entries are load-bearing: the packages really do call the
		// allowlisted symbols.
		found := false
		for _, file := range pkgs[0].Files {
			for _, imp := range file.Imports {
				if imp.Path.Value == `"time"` {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s no longer imports time; drop its allowlist entry", path)
		}
	}
}
