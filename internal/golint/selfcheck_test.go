package golint

import (
	"testing"
)

// TestSelfCheckRepoClean is the self-hosting gate: the analyzers run
// over the entire module and the tree must be clean at warning
// severity. Anything Info-level is reported for visibility but does
// not fail — G005's %w suggestions are advisory by design.
//
// If this test fails after a legitimate, vetted change (say, a new
// timing source in a metrics path), the fix is an entry in the
// allowlist tables in allowlist.go — never a relaxation here.
func TestSelfCheckRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	rep := Run(l, pkgs, Analyzers())
	for _, f := range rep.Filter(Warning) {
		t.Errorf("repo not clean: %s", f)
	}
	for _, f := range rep.Filter(Info) {
		t.Logf("info: %s", f)
	}
}

// TestAllowlistPinned pins the vetted impurity allowlist: these are the
// only sanctioned impurities in the engine tree, and each must remain
// load-bearing (removing the code it covers should shrink this table,
// not silently orphan it).
func TestAllowlistPinned(t *testing.T) {
	want := map[string][]string{
		"internal/serve": {"time.Now", "time.Since"},
		"internal/exp":   {"time.Now", "time.Since"},
		"internal/perf":  {"time.Now", "time.Since"},
	}
	if len(impureAllowlist) != len(want) {
		t.Errorf("allowlist covers %d packages, want %d", len(impureAllowlist), len(want))
	}
	for pkg, symbols := range want {
		for _, s := range symbols {
			if !allowedImpurity("repro/"+pkg, s) {
				t.Errorf("allowlist lost %s for %s", s, pkg)
			}
		}
	}
	if allowedImpurity("repro/internal/fsim", "time.Now") {
		t.Error("time.Now must not be allowlisted for fsim")
	}
	if allowedImpurity("repro/internal/serve", "rand.Intn") {
		t.Error("the global RNG is never allowlisted")
	}
}

// TestAllowlistLoadBearing asserts the serve/exp allowlist entries
// still cover real call sites: running G004 with the allowlist
// bypassed must flag time.Now there. This keeps the table honest — a
// stale entry fails here and gets removed.
func TestAllowlistLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks serve and exp")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"repro/internal/serve", "repro/internal/exp", "repro/internal/perf"} {
		pkgs, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		rep := Run(l, pkgs, Analyzers())
		if n := len(rep.ByRule(RuleImpureEngine)); n != 0 {
			t.Errorf("%s: %d G004 findings despite allowlist", path, n)
		}
		// The entries are load-bearing: the packages really do call the
		// allowlisted symbols.
		found := false
		for _, file := range pkgs[0].Files {
			for _, imp := range file.Imports {
				if imp.Path.Value == `"time"` {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s no longer imports time; drop its allowlist entry", path)
		}
	}
}
