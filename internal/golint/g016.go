package golint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// G016 streaming-discipline: the serve-handler contracts that turn
// into wire-level bugs — a panic on a wrapped ResponseWriter, a stream
// a proxy buffers forever, a second status line after an error, a
// leaked connection. Four checks:
//
//	C1  a single-result `w.(http.Flusher)` assertion panics at runtime
//	    when middleware wraps the writer; assert with the comma-ok form
//	    or use http.NewResponseController.
//	C2  an NDJSON stream loop must flush every iteration, and must not
//	    make the flush optional: a comma-ok http.Flusher that is nil on
//	    wrapped writers degrades silently to a response the client only
//	    sees at the end. http.NewResponseController(w).Flush is the
//	    shape that works through wrappers.
//	C3  after a statement that completes an error response — a call to
//	    a module helper that WriteHeaders-and-writes its ResponseWriter
//	    parameter — any later write to the writer in the same block is
//	    a protocol error (and a direct WriteHeader followed by another
//	    header write is a double status line).
//	C4  *http.Response values from client calls must have their Body
//	    closed on every path — the client-side mirror of G014, sharing
//	    its positional path check and ownership-transfer rules.
func analyzerG016() *Analyzer {
	return &Analyzer{
		ID:       RuleStreamingDiscipline,
		Name:     "streaming-discipline",
		Doc:      "bare Flusher asserts, unflushed NDJSON loops, writes after an error response, unclosed response bodies",
		Severity: Error,
		Run:      runG016,
	}
}

// g016ClientAcquisitions is the C4 acquisition table: package-level
// http helpers. Method calls on *http.Client are matched separately.
var g016ClientAcquisitions = map[string]acqSpec{
	"net/http.Get":  {resIdx: 0, errIdx: 1, what: "http.Get response", release: "Body.Close"},
	"net/http.Post": {resIdx: 0, errIdx: 1, what: "http.Post response", release: "Body.Close"},
	"net/http.Head": {resIdx: 0, errIdx: 1, what: "http.Head response", release: "Body.Close"},
}

func runG016(p *Pass) []Finding {
	var out []Finding
	rel := p.Mod.releaseOracleOf()
	writers := p.Mod.headerWriterSummaries()
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, checkFlusherAsserts(p, fd)...)
			out = append(out, checkStreamLoops(p, fd)...)
			out = append(out, checkWriteAfterError(p, fd, writers)...)
			if !isResourceOwner(p.Pkg.Path, fd.Name.Name) {
				out = append(out, checkResponseBodies(p, fd, rel)...)
			}
		}
	}
	return out
}

// checkFlusherAsserts flags C1: single-result http.Flusher assertions.
func checkFlusherAsserts(p *Pass, fd *ast.FuncDecl) []Finding {
	info := p.Pkg.Info
	var out []Finding
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		ta, ok := n.(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil || !isFlusherType(info.TypeOf(ta.Type)) {
			return true
		}
		if commaOkAssert(stack, ta) {
			return true
		}
		out = append(out, p.finding(RuleStreamingDiscipline, Error, ta.Pos(),
			"single-result http.Flusher assertion panics when middleware wraps the ResponseWriter",
			"use the comma-ok form, or http.NewResponseController(w).Flush which works through wrappers"))
		return true
	})
	return out
}

// commaOkAssert reports whether the type assertion sits in a
// two-result context (v, ok := x.(T)) — including a type switch.
func commaOkAssert(stack []ast.Node, ta *ast.TypeAssertExpr) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		return len(parent.Lhs) == 2 && len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(ta)
	case *ast.TypeSwitchStmt:
		return true
	}
	return false
}

// streamFacts tracks the flush-capable objects of one function.
type streamFacts struct {
	// controllers are http.NewResponseController results; flushers are
	// comma-ok http.Flusher assertion results.
	controllers map[types.Object]bool
	flushers    map[types.Object]bool
	ndjson      bool
}

// checkStreamLoops flags C2: NDJSON stream loops with optional or
// missing flushes.
func checkStreamLoops(p *Pass, fd *ast.FuncDecl) []Finding {
	info := p.Pkg.Info
	facts := collectStreamFacts(info, fd)
	if !facts.ndjson {
		return nil
	}
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if !loopWritesResponse(info, body) {
			return true
		}
		kind, pos := loopFlushKind(info, body, facts)
		switch kind {
		case flushNone:
			out = append(out, p.finding(RuleStreamingDiscipline, Error, n.Pos(),
				"NDJSON stream loop never flushes; clients see nothing until the handler returns",
				"flush every iteration with http.NewResponseController(w).Flush"))
		case flushOptional:
			out = append(out, p.finding(RuleStreamingDiscipline, Error, pos,
				"stream flush depends on an optional http.Flusher; a wrapped ResponseWriter silently stops streaming",
				"use http.NewResponseController(w).Flush, which reaches through wrappers"))
		}
		return false // judge the outermost writing loop only
	})
	return out
}

// collectStreamFacts finds the NDJSON marker and the flush-capable
// bindings of the function.
func collectStreamFacts(info *types.Info, fd *ast.FuncDecl) streamFacts {
	facts := streamFacts{
		controllers: make(map[types.Object]bool),
		flushers:    make(map[types.Object]bool),
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.STRING && strings.Contains(n.Value, "ndjson") {
				facts.ndjson = true
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) == 0 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := assignedObject(info, id)
			if obj == nil {
				return true
			}
			if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
				if path, name := pkgQualified(info, call.Fun); path == "net/http" && name == "NewResponseController" {
					facts.controllers[obj] = true
				}
			}
			if ta, ok := n.Rhs[0].(*ast.TypeAssertExpr); ok && ta.Type != nil && isFlusherType(info.TypeOf(ta.Type)) {
				facts.flushers[obj] = true
			}
		}
		return true
	})
	return facts
}

// loopWritesResponse reports whether the loop body writes output per
// iteration (an Encode, Write, or Fprint-family call).
func loopWritesResponse(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Encode", "Write", "WriteString":
				found = true
			}
		}
		if path, name := pkgQualified(info, call.Fun); path == "fmt" && strings.HasPrefix(name, "Fprint") {
			found = true
		}
		return !found
	})
	return found
}

// flush classification for one stream loop.
const (
	flushNone = iota
	flushOptional
	flushSolid
)

// loopFlushKind classifies the loop's flushing: solid (a
// ResponseController flush), optional (a comma-ok Flusher), or none.
func loopFlushKind(info *types.Info, body *ast.BlockStmt, facts streamFacts) (int, token.Pos) {
	kind, pos := flushNone, token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Flush" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		switch {
		case facts.controllers[obj]:
			kind = flushSolid
			return false
		case facts.flushers[obj]:
			if kind == flushNone {
				kind, pos = flushOptional, call.Pos()
			}
		default:
			// A Flush on anything else (a bufio.Writer, a concrete
			// flusher) is taken at face value.
			kind = flushSolid
			return false
		}
		return true
	})
	return kind, pos
}

// checkWriteAfterError flags C3: writes to a ResponseWriter after a
// statement that already completed an error response in the same
// block.
func checkWriteAfterError(p *Pass, fd *ast.FuncDecl, writers map[*types.Func]int) []Finding {
	info := p.Pkg.Info
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		completed := false // an error response has been fully written
		headered := false  // a bare WriteHeader has run
		for _, st := range list {
			switch {
			case stmtCompletesResponse(info, st, writers):
				if completed {
					out = append(out, p.finding(RuleStreamingDiscipline, Error, st.Pos(),
						"error response written after a response was already completed in this block",
						"return after the first error write"))
				}
				completed, headered = true, true
			case stmtCallsWriteHeader(info, st):
				if completed || headered {
					out = append(out, p.finding(RuleStreamingDiscipline, Error, st.Pos(),
						"WriteHeader after a status line was already sent in this block",
						"a response carries exactly one status; return after the first"))
				}
				headered = true
			case completed && stmtWritesResponse(info, st):
				out = append(out, p.finding(RuleStreamingDiscipline, Error, st.Pos(),
					"write to the ResponseWriter after an error response was completed in this block",
					"return immediately after writing the error"))
			}
		}
		return true
	})
	return out
}

// stmtScope limits statement classification to the statement's own
// level: nested blocks (if/for/switch bodies), case and comm clauses
// (mutually exclusive branches, not sequence), and function literals
// get judged as statement lists of their own, and whether they
// execute is not this list's business.
func stmtScope(n ast.Node) bool {
	switch n.(type) {
	case *ast.BlockStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
		return false
	}
	return true
}

// stmtCompletesResponse reports whether the statement calls a module
// helper that completes a response on a ResponseWriter argument.
func stmtCompletesResponse(info *types.Info, st ast.Stmt, writers map[*types.Func]int) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if !stmtScope(n) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if callee := staticCallee(info, call); callee != nil {
			if _, ok := writers[callee]; ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// stmtCallsWriteHeader reports whether the statement calls WriteHeader
// on a ResponseWriter directly.
func stmtCallsWriteHeader(info *types.Info, st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if !stmtScope(n) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteHeader" && isResponseWriter(info.TypeOf(sel.X)) {
			found = true
		}
		return !found
	})
	return found
}

// stmtWritesResponse reports whether the statement writes to a
// ResponseWriter: a direct Write, an Fprint-family call taking one, or
// an Encode on a json encoder (which holds the writer).
func stmtWritesResponse(info *types.Info, st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if !stmtScope(n) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Write" && isResponseWriter(info.TypeOf(sel.X)) {
				found = true
			}
			if sel.Sel.Name == "Encode" {
				found = true
			}
		}
		if path, name := pkgQualified(info, call.Fun); path == "fmt" && strings.HasPrefix(name, "Fprint") {
			for _, a := range call.Args {
				if isResponseWriter(info.TypeOf(a)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkResponseBodies runs the shared lifecycle check (C4) over client
// response acquisitions: package-level http helpers and method calls
// on *http.Client values.
func checkResponseBodies(p *Pass, fd *ast.FuncDecl, rel releaseOracle) []Finding {
	info := p.Pkg.Info
	var out []Finding
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) < 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		spec, ok := clientAcqSpec(info, call)
		if !ok || len(assign.Lhs) <= spec.resIdx {
			return true
		}
		id, ok := assign.Lhs[spec.resIdx].(*ast.Ident)
		if !ok {
			return true
		}
		frame := fd.Body
		if lit := innermostFuncLit(stack); lit != nil {
			frame = lit.Body
		}
		acq := resourceAcq{pos: assign.Pos(), stmt: assign, what: spec.what, release: spec.release}
		if id.Name != "_" {
			acq.obj = assignedObject(info, id)
		}
		if spec.errIdx >= 0 && spec.errIdx < len(assign.Lhs) {
			if eid, ok := assign.Lhs[spec.errIdx].(*ast.Ident); ok && eid.Name != "_" {
				acq.errObj = assignedObject(info, eid)
			}
		}
		out = append(out, checkAcquisitionAs(p, frame, acq, rel, RuleStreamingDiscipline)...)
		return true
	})
	return out
}

// clientAcqSpec matches a client call that returns (*http.Response,
// error): the package-level http helpers or Get/Post/Do/Head/PostForm
// methods on an *http.Client.
func clientAcqSpec(info *types.Info, call *ast.CallExpr) (acqSpec, bool) {
	path, name := pkgQualified(info, call.Fun)
	if spec, ok := g016ClientAcquisitions[path+"."+name]; ok {
		return spec, true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return acqSpec{}, false
	}
	switch sel.Sel.Name {
	case "Do", "Get", "Post", "Head", "PostForm":
	default:
		return acqSpec{}, false
	}
	if !isHTTPClient(info.TypeOf(sel.X)) {
		return acqSpec{}, false
	}
	return acqSpec{resIdx: 0, errIdx: 1,
		what: "http.Client." + sel.Sel.Name + " response", release: "Body.Close"}, true
}

// headerWriterSummaries computes (once per Run) the module functions
// that complete a response on a ResponseWriter parameter: they call
// WriteHeader on it and write a body. The value is the parameter
// index, so C3 can tell which argument carried the writer.
func (m *ModuleFacts) headerWriterSummaries() map[*types.Func]int {
	if m.headerWriters != nil {
		return m.headerWriters
	}
	m.headerWriters = make(map[*types.Func]int)
	for _, fn := range m.order {
		ff := m.funcs[fn]
		params := paramObjects(ff.pkg.Info, ff.decl)
		for i, param := range params {
			if param == nil || !isResponseWriter(param.Type()) {
				continue
			}
			if callsWriteHeaderOn(ff.pkg.Info, ff.decl.Body, param) {
				m.headerWriters[fn] = i
				break
			}
		}
	}
	return m.headerWriters
}

// callsWriteHeaderOn reports whether the body calls WriteHeader on obj.
func callsWriteHeaderOn(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "WriteHeader" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isFlusherType reports whether t is net/http.Flusher.
func isFlusherType(t types.Type) bool {
	return isNamedType(t, "net/http", "Flusher")
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	return isNamedType(t, "net/http", "ResponseWriter")
}

// isHTTPClient reports whether t is net/http.Client (possibly through
// a pointer).
func isHTTPClient(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamedType(t, "net/http", "Client")
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
