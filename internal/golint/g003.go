package golint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzerG003 enforces context discipline. Every engine entry point
// gained a *Context variant in the serving PR so requests can be
// cancelled mid-computation; that guarantee evaporates the moment a
// function receives a context and then drops it or spawns a fresh root.
//
// Module-wide checks (any package):
//
//   - a function with a context.Context parameter that never uses it
//     (rename the parameter to _ only when an interface forces the
//     signature — that is a visible, greppable decision)
//   - a function with a context.Context parameter that still calls
//     context.Background()/TODO(), severing the cancellation chain
//
// Engine-package check (the engineContextPackages table): a
// context.Background()/TODO() call in a function without a context
// parameter is only legal in the sanctioned compat-wrapper shape — a
// single return statement forwarding into the *Context variant.
func analyzerG003() *Analyzer {
	return &Analyzer{
		ID:       RuleContextDiscipline,
		Name:     "context-discipline",
		Doc:      "dropped or shadowed context.Context arguments; fresh root contexts outside compat wrappers",
		Severity: Warning,
		Run:      runG003,
	}
}

func runG003(p *Pass) []Finding {
	var out []Finding
	info := p.Pkg.Info
	isEngine := pathMatchesAny(p.Pkg.Path, engineContextPackages)
	isMainPkg := p.Pkg.Types.Name() == "main"
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil {
				continue
			}
			ctxObj, ctxName := contextParam(info, fd)
			if ctxObj != nil && !usesObject(info, fd.Body, ctxObj) {
				out = append(out, p.finding(RuleContextDiscipline, Warning, fd.Pos(),
					fmt.Sprintf("%s receives context.Context %q but never uses it", fd.Name.Name, ctxName),
					"thread the context into the calls below, or name the parameter _ if an interface forces the signature"))
			}
			inMain := isMainPkg && fd.Recv == nil && fd.Name.Name == "main"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name := pkgQualified(info, call.Fun)
				if pkg != "context" || (name != "Background" && name != "TODO") {
					return true
				}
				switch {
				case ctxObj != nil:
					out = append(out, p.finding(RuleContextDiscipline, Warning, call.Pos(),
						fmt.Sprintf("%s creates context.%s despite receiving %q: cancellation is severed", fd.Name.Name, name, ctxName),
						"derive from the incoming context instead"))
				case isEngine && !inMain && !isCompatWrapper(fd):
					out = append(out, p.finding(RuleContextDiscipline, Warning, call.Pos(),
						fmt.Sprintf("context.%s in engine package outside a compat wrapper", name),
						"accept a context.Context parameter, or make this a single-return wrapper over the *Context variant"))
				}
				return true
			})
		}
	}
	return out
}

// contextParam returns the object and name of the first
// context.Context parameter, or nil. A parameter named _ is an explicit
// opt-out and is not returned.
func contextParam(info *types.Info, fd *ast.FuncDecl) (types.Object, string) {
	if fd.Type.Params == nil {
		return nil, ""
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				return obj, name.Name
			}
		}
	}
	return nil, ""
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	return refersToObject(info, n, map[types.Object]bool{obj: true})
}

// isCompatWrapper reports whether the function body is exactly one
// return statement — the sanctioned shape for a context-free export
// forwarding into its *Context variant.
func isCompatWrapper(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	_, ok := fd.Body.List[0].(*ast.ReturnStmt)
	return ok
}
