package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerG001 flags map iterations whose order leaks into
// order-sensitive sinks. The serve cache replays responses
// byte-identically, so any Go map iteration that feeds bytes into an
// output stream — or fills a slice that is later emitted unsorted — is
// a latent cache-poisoning bug: two runs of the same engine on the same
// input produce different bytes.
//
// Three sink classes are detected inside a `for ... range m` body (m a
// map, with at least one non-blank loop variable):
//
//   - direct writes: fmt.Fprint*/Print* or a Write*/Encode method call
//     whose arguments depend on the iteration
//   - string accumulation: `s += ...` on a string declared outside the
//     loop
//   - slice collection: `s = append(s, ...)` into a slice declared
//     outside the loop, with no later sorting call over it in the same
//     function (sort.*, slices.*, or a local helper named *sort*)
//
// The collect-then-sort idiom is therefore recognized and stays clean.
func analyzerG001() *Analyzer {
	return &Analyzer{
		ID:       RuleNondetIteration,
		Name:     "nondeterministic-iteration",
		Doc:      "map iteration order leaking into output or an unsorted collection",
		Severity: Error,
		Run:      runG001,
	}
}

func runG001(p *Pass) []Finding {
	var out []Finding
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil {
				continue
			}
			body := fd.Body
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				out = append(out, checkMapRange(p, body, rs)...)
				return true
			})
		}
	}
	return out
}

// checkMapRange inspects one map-range statement for order-sensitive
// sinks. funcBody is the enclosing function body, searched for
// post-loop sort calls that launder collected slices.
func checkMapRange(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) []Finding {
	info := p.Pkg.Info

	// Iteration-dependent objects: the non-blank loop variables plus
	// everything declared inside the loop body. A sink that never reads
	// one of these produces identical bytes every iteration and cannot
	// leak order.
	iterObjs := make(map[types.Object]bool)
	addVar := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				iterObjs[obj] = true
			}
			if obj := info.Uses[id]; obj != nil {
				iterObjs[obj] = true
			}
		}
	}
	if rs.Key != nil {
		addVar(rs.Key)
	}
	if rs.Value != nil {
		addVar(rs.Value)
	}
	if len(iterObjs) == 0 {
		// `for range m` runs indistinguishable iterations.
		return nil
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				iterObjs[obj] = true
			}
		}
		return true
	})
	depends := func(n ast.Node) bool { return refersToObject(info, n, iterObjs) }

	mapName := types.ExprString(rs.X)
	var out []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOutputCall(info, n) && depends(n) {
				out = append(out, p.finding(RuleNondetIteration, Error, n.Pos(),
					fmt.Sprintf("output written inside iteration over map %s: iteration order is nondeterministic", mapName),
					"collect the entries, sort them, then emit"))
			}
		case *ast.AssignStmt:
			out = append(out, checkMapRangeAssign(p, funcBody, rs, n, mapName, depends)...)
		}
		return true
	})
	return out
}

// checkMapRangeAssign handles the accumulation sinks: string
// concatenation and slice collection.
func checkMapRangeAssign(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt, mapName string, depends func(ast.Node) bool) []Finding {
	info := p.Pkg.Info
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	target := as.Lhs[0]
	if declaredWithin(info, target, rs) {
		return nil // loop-local accumulator; dies with the iteration
	}

	// s += <iteration-dependent string>: order-sensitive and not
	// fixable by a later sort.
	if as.Tok == token.ADD_ASSIGN {
		t := info.TypeOf(target)
		if t != nil && isStringType(t) && depends(as.Rhs[0]) {
			return []Finding{p.finding(RuleNondetIteration, Error, as.Pos(),
				fmt.Sprintf("string built in iteration order over map %s", mapName),
				"collect the parts, sort them, then join")}
		}
		return nil
	}

	// s = append(s, ...): collection; clean only if a later sort over s
	// in the same function fixes the order.
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != nil && info.Uses[id].Pkg() != nil {
		return nil
	}
	if !depends(call) {
		return nil
	}
	targetStr := types.ExprString(target)
	if sortedAfter(info, funcBody, rs.End(), targetStr) {
		return nil
	}
	return []Finding{p.finding(RuleNondetIteration, Error, as.Pos(),
		fmt.Sprintf("%s collected in iteration order over map %s and never sorted afterwards", targetStr, mapName),
		"sort "+targetStr+" with sort.* or slices.Sort* after the loop")}
}

// declaredWithin reports whether expr is an identifier whose object is
// declared inside the range statement.
func declaredWithin(info *types.Info, expr ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// sortedAfter reports whether a sorting call lexically after pos,
// anywhere in the function body, mentions the target expression. A
// sorting call is anything from the sort or slices packages, or a
// helper whose name contains "sort" (the sortFaults/sortFindings
// idiom this repo uses for multi-key orders).
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortingCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
			}
		}
		return true
	})
	return found
}

// isSortingCall matches sort.*/slices.* calls and local sort helpers.
func isSortingCall(info *types.Info, call *ast.CallExpr) bool {
	if pkg, _ := pkgQualified(info, call.Fun); pkg == "sort" || pkg == "slices" {
		return true
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// isOutputCall reports whether the call streams bytes to an
// order-sensitive destination: the fmt print family (excluding the pure
// Sprint* and Errorf forms) or a Write*/Encode method.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	if pkg, name := pkgQualified(info, call.Fun); pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if _, isMethod := info.Selections[sel]; !isMethod {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return true
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
