package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// analyzerG006 enforces godoc coverage on the API-bearing packages
// (the docCommentPackages table in allowlist.go): every exported
// package-level symbol — function, method on an exported type, type,
// constant, variable — must carry a doc comment whose first word is
// the symbol's name, the form godoc renders and `go doc` searches.
//
// Grouped const/var/type declarations may share one group comment
// (the standard godoc idiom for enumerations); a symbol inside a
// documented group is covered, but a symbol-level comment, when
// present, must still lead with the symbol name. Directive-only
// comments (//go:...) do not count as documentation.
func analyzerG006() *Analyzer {
	return &Analyzer{
		ID:       RuleDocComment,
		Name:     "doc-comment",
		Doc:      "exported symbols in API-bearing packages missing a leading-name godoc comment",
		Severity: Warning,
		Run:      runG006,
	}
}

func runG006(p *Pass) []Finding {
	if !isDocCommentPackage(p.Pkg.Path) {
		return nil
	}
	var out []Finding
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				out = append(out, checkFuncDoc(p, d)...)
			case *ast.GenDecl:
				out = append(out, checkGenDeclDoc(p, d)...)
			}
		}
	}
	return out
}

// checkFuncDoc grades one function or method declaration.
func checkFuncDoc(p *Pass, d *ast.FuncDecl) []Finding {
	if !d.Name.IsExported() {
		return nil
	}
	kind := "function"
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !token.IsExported(recv) {
			return nil // methods on unexported types are not API surface
		}
		kind = "method"
	}
	return docFinding(p, d.Pos(), kind, d.Name.Name, d.Doc, false)
}

// checkGenDeclDoc grades the exported specs of a const, var, or type
// declaration. A doc comment on a parenthesized group covers every
// spec inside it; a spec-level comment, when present, is still held to
// the leading-name form.
func checkGenDeclDoc(p *Pass, d *ast.GenDecl) []Finding {
	var kind string
	switch d.Tok {
	case token.CONST:
		kind = "const"
	case token.VAR:
		kind = "var"
	case token.TYPE:
		kind = "type"
	default:
		return nil
	}
	grouped := d.Lparen.IsValid()
	groupDocumented := grouped && docText(d.Doc) != ""
	var out []Finding
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if !grouped && doc == nil {
				doc = d.Doc
			}
			out = append(out, docFinding(p, s.Pos(), kind, s.Name.Name, doc, groupDocumented)...)
		case *ast.ValueSpec:
			doc := s.Doc
			if !grouped && doc == nil {
				doc = d.Doc
			}
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				out = append(out, docFinding(p, name.Pos(), kind, name.Name, doc, groupDocumented)...)
				break // one finding per spec: further names share the comment
			}
		}
	}
	return out
}

// docFinding applies the two-part rule at one symbol: a doc comment
// must exist (unless the enclosing group carries one), and when a
// symbol-level comment exists its first word must be the symbol name.
func docFinding(p *Pass, pos token.Pos, kind, name string, doc *ast.CommentGroup, groupDocumented bool) []Finding {
	text := docText(doc)
	if text == "" {
		if groupDocumented {
			return nil
		}
		return []Finding{p.finding(RuleDocComment, Warning, pos,
			fmt.Sprintf("exported %s %s has no doc comment", kind, name),
			fmt.Sprintf("add a godoc comment of the form %q", "// "+name+" ..."))}
	}
	if first := firstWord(text); first != name {
		return []Finding{p.finding(RuleDocComment, Warning, pos,
			fmt.Sprintf("doc comment of exported %s %s starts with %q, not the symbol name", kind, name, first),
			fmt.Sprintf("reword the comment to start with %q so godoc and go doc anchor it", name))}
	}
	return nil
}

// docText returns the rendered documentation text of a comment group,
// "" when the group is nil or contains only directives.
func docText(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	return strings.TrimSpace(doc.Text())
}

// firstWord returns the first whitespace-delimited token of the text.
func firstWord(text string) string {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// receiverTypeName resolves the base type name of a method receiver
// ("T" for both T and *T, including generic instantiations).
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
