package golint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the module-qualified import path.
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression, object, and selection
	// facts the analyzers query.
	Info *types.Info
}

// Loader loads and type-checks packages of the enclosing module from
// source, with no dependency on go/packages: module-internal imports
// are resolved recursively from the module tree, everything else
// through the compiler's importer (with a pure-source fallback, so the
// driver works even where no export data is installed).
type Loader struct {
	// Fset is the shared position table for every loaded file.
	Fset *token.FileSet
	// ModRoot is the absolute module root (the directory with go.mod).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the module enclosing dir (walking up to the nearest
// go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("golint: no go.mod at or above %s", dir)
		}
		root = parent
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std: &chainImporter{
			primary:  importer.ForCompiler(fset, "gc", nil),
			fallback: importer.ForCompiler(fset, "source", nil),
		},
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("golint: no module directive in %s", path)
}

// chainImporter tries the fast compiled-export-data importer first and
// falls back to type-checking the dependency from source.
type chainImporter struct {
	primary, fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	p, err := c.primary.Import(path)
	if err == nil {
		return p, nil
	}
	return c.fallback.Import(path)
}

// Load resolves the given patterns to package directories, loads and
// type-checks each (plus its module-internal dependencies), and returns
// the requested packages in deterministic order. Patterns follow the go
// tool's shape: a directory path ("./internal/fsim"), a module import
// path ("repro/internal/fsim"), or a trailing "/..." wildcard that
// walks a subtree — skipping testdata, vendor, and hidden directories
// exactly as the go tool does, unless the walk is rooted inside one
// explicitly.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if base, ok := strings.CutSuffix(p, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = l.ModRoot
			} else {
				base = l.resolveDir(base)
			}
			walked, err := packageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
			continue
		}
		add(l.resolveDir(p))
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// resolveDir maps a pattern element to a directory: module import paths
// resolve against the module root, everything else is a file path.
func (l *Loader) resolveDir(p string) string {
	if p == l.ModPath {
		return l.ModRoot
	}
	if rest, ok := strings.CutPrefix(p, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest))
	}
	if filepath.IsAbs(p) {
		return p
	}
	abs, err := filepath.Abs(p)
	if err != nil {
		return p
	}
	return abs
}

// packageDirs walks base and returns every directory directly holding a
// non-test Go file. Subdirectories named testdata or vendor and hidden
// or underscore-prefixed directories are pruned (the root itself is
// always entered, so explicit walks inside testdata work).
func packageDirs(base string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != base {
			name := d.Name()
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// importPath derives the module-qualified import path of dir.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("golint: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir, loading
// module-internal imports first. Results are cached per import path.
func (l *Loader) loadDir(dir string) (*Package, error) {
	ip, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[ip]; ok {
		return p, nil
	}
	if l.loading[ip] {
		return nil, fmt.Errorf("golint: import cycle through %s", ip)
	}
	l.loading[ip] = true
	defer delete(l.loading, ip)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes) the same way the go tool does, so a tag-guarded file
		// never reaches the type checker under a configuration that
		// excludes it.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			if err != nil {
				return nil, fmt.Errorf("golint: match %s: %w", filepath.Join(dir, name), err)
			}
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("golint: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importFor)}
	tpkg, err := conf.Check(ip, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("golint: typecheck %s: %w", ip, err)
	}
	p := &Package{Path: ip, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[ip] = p
	return p, nil
}

// importFor routes module-internal imports through the source loader
// and everything else through the standard importer chain.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rest := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.loadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rest)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Pass hands one package to one analyzer.
type Pass struct {
	// Loader is the driver that loaded the package (for module facts).
	Loader *Loader
	// Pkg is the package under analysis.
	Pkg *Package
	// Mod is the whole-module call graph and per-function summary set,
	// built once per Run over every requested package. The per-file
	// rules ignore it; the concurrency and allocation rules query it.
	Mod *ModuleFacts
}

// relFile returns the module-relative forward-slash path of the file
// holding pos (the same normalization findings carry).
func (p *Pass) relFile(pos token.Pos) string {
	file := p.Loader.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(p.Loader.ModRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file
}

// finding builds a Finding anchored at pos with the pass's package and
// module-relative file path filled in.
func (p *Pass) finding(rule string, sev Severity, pos token.Pos, msg, hint string) Finding {
	position := p.Loader.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Loader.ModRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return Finding{
		Rule:     rule,
		Severity: sev,
		Package:  p.Pkg.Path,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  msg,
		Hint:     hint,
	}
}
