package golint

import (
	"encoding/json"
	"io"
)

// SARIF rendering: the minimal stable subset of SARIF 2.1.0 that code
// scanning backends ingest — one run, the registry as the rule table,
// one result per finding with a single physical location. Field order
// is fixed by the struct declarations and the encoder is deterministic,
// so the output is byte-stable for a given report (the same contract
// the JSON mode pins with its goldens).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// PartialFingerprints carries the line-number-free finding identity
	// (see fingerprint.go) so code-scanning backends dedupe results
	// across line-shifting commits.
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps the severity scale onto the SARIF level vocabulary;
// Info renders as "note" per the specification.
func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// WriteSARIF renders the report's findings at or above min as a SARIF
// 2.1.0 log. The rule table lists exactly the analyzers that ran, in
// registry order, and each result's ruleIndex points into it. Hints
// ride in the result message, parenthesized, matching the one-line text
// renderer. fps must be the Fingerprints result parallel to
// rep.Findings (nil omits the partialFingerprints properties).
func WriteSARIF(w io.Writer, rep *Report, analyzers []*Analyzer, min Severity, fps []string) error {
	drv := sarifDriver{Name: "codelint", Rules: []sarifRule{}}
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		index[a.ID] = i
		drv.Rules = append(drv.Rules, sarifRule{
			ID:               a.ID,
			Name:             a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := []sarifResult{}
	for i, f := range rep.Findings {
		if f.Severity < min {
			continue
		}
		msg := f.Message
		if f.Hint != "" {
			msg += " (" + f.Hint + ")"
		}
		var prints map[string]string
		if i < len(fps) {
			prints = map[string]string{fingerprintScheme: fps[i]}
		}
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: index[f.Rule],
			Level:     sarifLevel(f.Severity),
			Message:   sarifMessage{Text: msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
			PartialFingerprints: prints,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: drv}, Results: results}},
	})
}
