// Package golint is the self-hosted Go analyzer: a static-analysis
// framework over the repository's own source that enforces the engine
// contracts the netlist analyzer (internal/lint) cannot see. Where
// internal/lint proves properties of circuits, golint proves properties
// of the code that manipulates them — the same tests-as-proofs stance,
// one level up.
//
// The framework is stdlib-only: a hand-rolled driver (see Loader) loads
// and type-checks every package in the module with go/parser and
// go/types, then runs a set of analyzers over the typed syntax. Each
// analyzer encodes one repo invariant:
//
//	G001 nondeterministic-iteration  map iteration order leaking into
//	     output or collected slices — the bug class that breaks the
//	     byte-identical replay contract of the internal/serve cache
//	G002 exit-contract               os.Exit / log.Fatal outside func
//	     main, and exit codes that bypass internal/cli.ExitCode
//	G003 context-discipline          engine entry points that drop or
//	     shadow their context.Context, and context.Background() outside
//	     the sanctioned compat-wrapper shape
//	G004 impure-engine               wall-clock, global RNG, or
//	     environment reads inside deterministic engine packages, modulo
//	     the vetted package allowlist (see allowlist.go)
//	G005 error-hygiene               discarded error returns and
//	     fmt.Errorf wrapping a live error without %w
//	G006 doc-comment                 exported symbols in the API-bearing
//	     packages missing a godoc comment whose first word is the
//	     symbol name (see the docCommentPackages table in allowlist.go)
//	G007 alloc-hot-path              allocation sites reachable (through
//	     the intra-module call graph) from the measured loops of the
//	     engine packages, modulo the pinned hotAllocAllowlist
//	G008 goroutine-discipline        go statements that are never joined,
//	     ignore an in-scope context, or capture loop variables instead
//	     of taking them as arguments
//	G009 lock-discipline             locks without a matching unlock,
//	     channel operations or engine calls made while a mutex is held,
//	     and copies of mutex-bearing values
//	G010 worker-state-sharing        unsynchronized writes from goroutine
//	     closures to variables shared with other writers — the static
//	     complement of the -race test list
//	G011 cache-key-soundness         engine option fields read on the
//	     serve path but absent from the cache-key canonicalization, and
//	     keyed or fed fields nothing ever reads (see taint.go)
//	G012 cancellation-reachability   statically-unbounded loops reachable
//	     from the /v1/* handler wiring that never poll their context
//	     within a bounded number of call frames
//	G013 engine-output-purity        mutable package state or environment
//	     reads on the cache-keyed serve path — the static complement of
//	     the cache's byte-identical-hit tests
//	G014 resource-lifecycle          files, listeners, timers, tickers,
//	     and cancel funcs acquired but not released on every path —
//	     including early error returns — modulo vetted ownership
//	     transfers (see the resourceOwnerAllowlist in allowlist.go)
//	G015 durability-discipline       journal-writing packages (see the
//	     durabilityPackages table): in-place state writes, renames of
//	     never-fsynced blobs, renames with no directory sync, and
//	     journal appends that never reach disk
//	G016 streaming-discipline        serve handlers: bare http.Flusher
//	     assertions, NDJSON stream loops that flush optionally or not at
//	     all, writes after a completed error response, and client
//	     response bodies left open
//
// G001–G006 judge one file at a time; G007–G010 additionally consult
// Pass.Mod, the whole-module call graph built once per Run (see
// callgraph.go). G011–G013 further consult the interprocedural dataflow
// built on top of it (see taint.go): backward reachability from the
// /v1/* handler wiring and forward field-sensitive taint from the
// cache-keyed option structs. G014–G016 reuse the same call graph for
// interprocedural release and header-write summaries (see lifecycle.go).
//
// Findings mirror the internal/lint model — stable rule IDs, the same
// Severity scale, a locus, and a fix hint — so cmd/lint and
// cmd/codelint feel like one system pointed at two artifact kinds. A
// finding may additionally carry a machine-applicable suggested fix
// (see fix.go); cmd/codelint -fix applies them.
package golint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Severity is the shared grading scale; golint reuses the internal/lint
// type so the two linters agree on names, ordering, and JSON encoding.
type Severity = lint.Severity

// Severities, re-exported so golint analyzers read naturally.
const (
	Info    = lint.Info
	Warning = lint.Warning
	Error   = lint.Error
)

// ParseSeverity resolves a severity name ("info", "warning", "error").
func ParseSeverity(s string) (Severity, error) { return lint.ParseSeverity(s) }

// Stable rule identifiers. Like the lint.Rule* constants these are part
// of the output contract: CI filters and goldens key on them, so
// existing IDs must never be renumbered.
const (
	// RuleNondetIteration: map iteration order leaks into output.
	RuleNondetIteration = "G001"
	// RuleExitContract: process exit outside func main, or an exit code
	// that bypasses internal/cli.ExitCode.
	RuleExitContract = "G002"
	// RuleContextDiscipline: a context.Context argument dropped or
	// shadowed, or a fresh root context outside a compat wrapper.
	RuleContextDiscipline = "G003"
	// RuleImpureEngine: wall-clock, global RNG, or environment read
	// inside a deterministic engine package.
	RuleImpureEngine = "G004"
	// RuleErrorHygiene: discarded error return, or fmt.Errorf wrapping
	// an error value without %w.
	RuleErrorHygiene = "G005"
	// RuleDocComment: exported symbol in an API-bearing package missing
	// a godoc comment whose first word is the symbol name.
	RuleDocComment = "G006"
	// RuleAllocHotPath: allocation site reachable from a measured engine
	// loop (see the hotLoopEntries table in allowlist.go).
	RuleAllocHotPath = "G007"
	// RuleGoroutineDiscipline: goroutine spawned without a join, ignoring
	// an in-scope context, or capturing loop variables.
	RuleGoroutineDiscipline = "G008"
	// RuleLockDiscipline: unpaired lock, channel op or engine call under
	// a held mutex, or copy of a mutex-bearing value.
	RuleLockDiscipline = "G009"
	// RuleWorkerStateSharing: unsynchronized goroutine-closure write to a
	// variable shared with other writers.
	RuleWorkerStateSharing = "G010"
	// RuleCacheKeySoundness: engine option field read on the serve path
	// but not consumed by the cache-key canonicalization (or vice versa).
	RuleCacheKeySoundness = "G011"
	// RuleCancelReachability: statically-unbounded loop reachable from a
	// /v1/* handler that never polls its context.
	RuleCancelReachability = "G012"
	// RuleEngineOutputPurity: mutable package state or environment read
	// on the cache-keyed serve path.
	RuleEngineOutputPurity = "G013"
	// RuleResourceLifecycle: an acquired resource (file, listener,
	// timer, ticker, cancel func) not released on every path.
	RuleResourceLifecycle = "G014"
	// RuleDurabilityDiscipline: a journal-writing package breaks the
	// append+Sync or tmp→fsync→rename→dir-sync shape.
	RuleDurabilityDiscipline = "G015"
	// RuleStreamingDiscipline: a serve handler breaks the streaming
	// contract (flusher, write-after-error, unclosed response body).
	RuleStreamingDiscipline = "G016"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Rule is the stable rule ID (one of the Rule* constants).
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Package is the import path of the package the finding is in.
	Package string `json:"package"`
	// File is the module-root-relative path (forward slashes).
	File string `json:"file"`
	// Line and Col are the 1-based position of the offending node.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the defect.
	Message string `json:"message"`
	// Hint suggests a fix, when one is known.
	Hint string `json:"hint,omitempty"`
	// Fix is a machine-applicable suggested fix, present only for the
	// shapes whose repair is mechanical (see DESIGN.md "Autofix
	// safety"); most findings are finding-only and carry nil.
	Fix *Fix `json:"fix,omitempty"`
}

// String renders the finding in the conventional compiler one-liner.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s %s: %s", f.File, f.Line, f.Col, f.Severity, f.Rule, f.Message)
	if f.Hint != "" {
		s += " (" + f.Hint + ")"
	}
	return s
}

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// ID is the stable rule ID every finding of this analyzer carries.
	ID string
	// Name is the short kebab-case analyzer name.
	Name string
	// Doc is the one-line description shown in tool help.
	Doc string
	// Severity is the gravest severity the analyzer emits, shown by
	// `codelint -list` so the registry listing matches the gate math.
	Severity Severity
	// Run inspects one package and returns its findings (unsorted; the
	// driver orders the aggregate).
	Run func(*Pass) []Finding
}

// Analyzers returns the full registry in rule-ID order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerG001(),
		analyzerG002(),
		analyzerG003(),
		analyzerG004(),
		analyzerG005(),
		analyzerG006(),
		analyzerG007(),
		analyzerG008(),
		analyzerG009(),
		analyzerG010(),
		analyzerG011(),
		analyzerG012(),
		analyzerG013(),
		analyzerG014(),
		analyzerG015(),
		analyzerG016(),
	}
}

// Select returns the analyzers whose IDs appear in ids (matched
// case-insensitively). Unknown IDs are reported so callers can reject
// typos instead of silently running nothing.
func Select(all []*Analyzer, ids []string) ([]*Analyzer, error) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if want[a.ID] {
			out = append(out, a)
			delete(want, a.ID)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown rule(s): %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// Report is the result of one Run: every finding from every analyzer
// over every package, in deterministic order.
type Report struct {
	// Module is the analyzed module's path.
	Module string `json:"module"`
	// Findings, ordered by file, line, column, then rule.
	Findings []Finding `json:"findings"`
}

// CountBySeverity returns how many findings carry each severity.
func (r *Report) CountBySeverity() map[Severity]int {
	out := make(map[Severity]int)
	for _, f := range r.Findings {
		out[f.Severity]++
	}
	return out
}

// MaxSeverity returns the gravest severity present and false when the
// report is empty.
func (r *Report) MaxSeverity() (Severity, bool) {
	if len(r.Findings) == 0 {
		return 0, false
	}
	max := r.Findings[0].Severity
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max, true
}

// HasErrors reports whether any Error-severity finding is present.
func (r *Report) HasErrors() bool {
	s, ok := r.MaxSeverity()
	return ok && s >= Error
}

// Filter returns the findings at or above the given severity, in report
// order.
func (r *Report) Filter(min Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}

// ByRule returns the findings carrying the given rule ID, in report
// order.
func (r *Report) ByRule(rule string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// Run executes every analyzer over every package and returns the
// ordered report. Packages are inspected in the order given; the final
// finding order is position-sorted and independent of it. Module facts
// (the call graph) are built once over the full package set, so the
// whole-module rules see every requested package regardless of which
// one the pass currently visits.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) *Report {
	r := &Report{Module: l.ModPath}
	facts := newModuleFacts(l, pkgs)
	for _, pkg := range pkgs {
		pass := &Pass{Loader: l, Pkg: pkg, Mod: facts}
		for _, a := range analyzers {
			r.Findings = append(r.Findings, a.Run(pass)...)
		}
	}
	sortFindings(r.Findings)
	return r
}

// sortFindings orders by file, then position, then rule ID — the stable
// contract the JSON goldens pin.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}
