package golint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the dataflow helpers shared by the concurrency and
// allocation analyzers: ancestor-stack traversal, loop and cold-path
// context, closure-capture resolution, and the syntactic lock-region
// scan G009 and G010 both rest on.

// inspectWithStack walks the AST under root calling fn with the current
// ancestor stack (root's ancestors excluded; stack[len-1] is the direct
// parent). Returning false prunes the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// inLoopAt reports whether pos sits inside the body of a for or range
// statement on the ancestor stack. Positions in a loop's init, cond, or
// post clause run once per iteration too, but only body membership is
// claimed here — the clauses are vanishingly rare allocation sites.
func inLoopAt(stack []ast.Node, pos token.Pos) bool {
	for _, a := range stack {
		var body *ast.BlockStmt
		switch s := a.(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			return true
		}
	}
	return false
}

// enclosingLoop returns the innermost for/range statement on the stack
// whose body contains pos, or nil.
func enclosingLoop(stack []ast.Node, pos token.Pos) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			if s.Body.Pos() <= pos && pos < s.Body.End() {
				return s
			}
		case *ast.RangeStmt:
			if s.Body.Pos() <= pos && pos < s.Body.End() {
				return s
			}
		}
	}
	return nil
}

// onColdPath reports whether the site sits in a block that directly
// returns a non-nil error or panics — a failure path that runs once,
// not per loop iteration. The function's outermost body is never
// considered cold: a function whose main path returns an error is not
// thereby exempt.
func onColdPath(info *types.Info, fd *ast.FuncDecl, stack []ast.Node) bool {
	for _, a := range stack {
		block, ok := a.(*ast.BlockStmt)
		if !ok || block == fd.Body {
			continue
		}
		for _, st := range block.List {
			switch st := st.(type) {
			case *ast.ReturnStmt:
				if len(st.Results) == 0 {
					continue
				}
				last := st.Results[len(st.Results)-1]
				if _, isNil := info.Types[last]; isNil && info.Types[last].IsNil() {
					continue
				}
				if isErrorType(info.TypeOf(last)) {
					return true
				}
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// innermostFuncLit returns the innermost function literal on the stack,
// or nil when the position is in the declared function's own frame.
func innermostFuncLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

// writesEnclosingVar reports whether the assignment or inc/dec
// statement writes (directly, or through an index/selector/deref
// chain) a variable declared outside the innermost function literal on
// the stack — a captured-by-reference write.
func writesEnclosingVar(info *types.Info, n ast.Node, stack []ast.Node) bool {
	lit := innermostFuncLit(stack)
	if lit == nil {
		return false
	}
	for _, obj := range writeRoots(info, n) {
		if capturedBy(obj, lit) {
			return true
		}
	}
	return false
}

// capturedBy reports whether obj is declared outside the function
// literal (so references inside it capture the variable by reference).
func capturedBy(obj types.Object, lit *ast.FuncLit) bool {
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	return pos.IsValid() && (pos < lit.Pos() || pos >= lit.End())
}

// writeRoots returns the root variables written by an assignment or
// inc/dec statement: for x, x[i], x.f, and *x forms the root is x.
// Short variable declarations define rather than write, so their
// newly-defined names are excluded.
func writeRoots(info *types.Info, n ast.Node) []types.Object {
	var out []types.Object
	add := func(e ast.Expr, defining bool) {
		id := rootIdent(e)
		if id == nil {
			return
		}
		if defining {
			if _, isDef := info.Defs[id]; isDef {
				return
			}
		}
		if obj, ok := info.Uses[id].(*types.Var); ok {
			out = append(out, obj)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		defining := n.Tok == token.DEFINE
		for _, lhs := range n.Lhs {
			add(lhs, defining)
		}
	case *ast.IncDecStmt:
		add(n.X, false)
	}
	return out
}

// rootIdent peels index, selector, paren, and deref layers off an
// lvalue and returns its base identifier (nil when the base is not an
// identifier, e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isSyncType reports whether t is sync.<name> or *sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isMutexType reports whether t is a sync.Mutex or sync.RWMutex
// (optionally behind a pointer), or a named type embedding one.
func isMutexType(t types.Type) bool {
	if isSyncType(t, "Mutex") || isSyncType(t, "RWMutex") {
		return true
	}
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Embedded() && (isSyncType(f.Type(), "Mutex") || isSyncType(f.Type(), "RWMutex")) {
					return true
				}
			}
		}
	}
	return false
}

// isWaitGroupType reports whether t is sync.WaitGroup or
// *sync.WaitGroup.
func isWaitGroupType(t types.Type) bool { return isSyncType(t, "WaitGroup") }

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// typeContainsMutex reports whether a value of type t carries a
// sync.Mutex or sync.RWMutex by value (directly, in a struct field, or
// in an array element) — copying such a value duplicates lock state.
func typeContainsMutex(t types.Type) bool {
	return typeContainsMutexRec(t, make(map[types.Type]bool))
}

func typeContainsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isSyncType(t, "Mutex") || isSyncType(t, "RWMutex") {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeContainsMutexRec(u.Elem(), seen)
	}
	return false
}

// mutexCallTarget recognizes calls of the shape x.Lock / x.RLock /
// x.Unlock / x.RUnlock on a mutex-typed receiver and returns the
// receiver's source text (the region key) and the method name.
func mutexCallTarget(info *types.Info, call *ast.CallExpr) (recv, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	if !isMutexType(info.TypeOf(sel.X)) {
		return "", ""
	}
	return exprText(sel.X), sel.Sel.Name
}

// containsMutexCall reports whether any call to the given methods on
// the given receiver text appears under n, excluding calls inside defer
// statements when skipDeferred is set (a deferred unlock does not end
// the locked region) and excluding nested function literals (their
// bodies run on their own schedule).
func containsMutexCall(info *types.Info, n ast.Node, recv string, methods map[string]bool, skipDeferred bool) bool {
	found := false
	inspectWithStack(n, func(c ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		if skipDeferred {
			if _, ok := c.(*ast.DeferStmt); ok {
				return false
			}
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r, m := mutexCallTarget(info, call); r == recv && methods[m] {
			found = true
		}
		return true
	})
	return found
}

// posRange is a half-open source region.
type posRange struct {
	from, to token.Pos
}

// contains reports whether pos falls inside the range.
func (r posRange) contains(pos token.Pos) bool { return r.from <= pos && pos < r.to }

// lockHeldRanges computes, per block of one function frame, the source
// ranges over which some mutex is syntactically held: from the
// statement after x.Lock()/x.RLock() up to (exclusive) the first later
// statement in the same block that contains a matching unlock anywhere
// — the conservative cut, since a branch may release the lock — or to
// the block's end when the unlock is deferred or absent. Nested
// function literals are separate frames and are skipped entirely: a
// closure *defined* under a lock does not *run* under it, and a
// goroutine body does not inherit its creator's lock state. Callers
// analyze each frame's body separately.
func lockHeldRanges(info *types.Info, body *ast.BlockStmt) []posRange {
	var out []posRange
	unlockOf := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}
	var scanBlock func(list []ast.Stmt)
	scanBlock = func(list []ast.Stmt) {
		for i, st := range list {
			call, ok := exprCall(st)
			if !ok {
				continue
			}
			recv, method := mutexCallTarget(info, call)
			if recv == "" || (method != "Lock" && method != "RLock") {
				continue
			}
			end := token.Pos(0)
			if len(list) > 0 {
				end = list[len(list)-1].End()
			}
			for j := i + 1; j < len(list); j++ {
				if containsMutexCall(info, list[j], recv, map[string]bool{unlockOf[method]: true}, true) {
					end = list[j].Pos()
					break
				}
			}
			if st.End() < end {
				out = append(out, posRange{from: st.End(), to: end})
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if block, ok := n.(*ast.BlockStmt); ok {
			scanBlock(block.List)
		}
		return true
	})
	return out
}

// exprCall unwraps an expression statement holding a call.
func exprCall(st ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	return call, ok
}

// inAnyRange reports whether pos falls in any of the ranges.
func inAnyRange(ranges []posRange, pos token.Pos) bool {
	for _, r := range ranges {
		if r.contains(pos) {
			return true
		}
	}
	return false
}
