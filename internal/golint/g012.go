package golint

import (
	"fmt"
	"go/token"
)

// analyzerG012 enforces cancellation reachability: the 504/499 contract
// of the serving layer promises that a request stops consuming CPU soon
// after its deadline fires or its client disconnects. G003 checks that
// contexts are threaded; this rule checks that they are *polled* — every
// statically-unbounded loop in a function reachable from the /v1/*
// handler wiring must reach a context poll within maxPollFrames call
// frames, or the promise is a lie for exactly the inputs big enough to
// matter.
//
// A loop is flagged only when all of these hold:
//
//   - statically unbounded: `for {}`, cond-only `for x {}`, or a
//     3-clause for with no condition (range loops and loops with a post
//     statement are bounded by what they walk);
//   - compound: its body contains another loop, or calls a function
//     within maxLoopFrames of a loop — flat scans complete in one pass
//     of their input and are not worth a poll;
//   - unpolled: no direct poll (ctx.Err(), receive from a
//     struct{}-channel) in the body, and no call in the body to a
//     function whose poll depth is < maxPollFrames;
//   - not nested (same function) inside an unbounded loop that is
//     itself polled — the enclosing poll bounds the latency (documented
//     gap: the inner loop could still run long between outer
//     iterations);
//   - not vetted in ctxLoopExemptPackages / ctxLoopAllowlist.
func analyzerG012() *Analyzer {
	return &Analyzer{
		ID:       RuleCancelReachability,
		Name:     "cancellation-reachability",
		Doc:      "unbounded loops reachable from /v1/* handlers that never poll their context",
		Severity: Error,
		Run:      runG012,
	}
}

func runG012(p *Pass) []Finding {
	g := p.Mod.serveFacts()
	if len(g.roots) == 0 {
		return nil
	}
	var out []Finding
	for _, ff := range g.reachList {
		if ff.pkg != p.Pkg {
			continue
		}
		if ctxLoopPackageExempt(p.Pkg.Path) || ctxLoopAllowed(p.Pkg.Path, ff.fn.Name()) {
			continue
		}
		for _, lp := range ff.loops {
			if !g.compoundLoop(ff, lp) || g.polledLoop(ff, lp) || g.insidePolledLoop(ff, lp) {
				continue
			}
			out = append(out, p.finding(RuleCancelReachability, Error, lp.pos,
				fmt.Sprintf("unbounded loop in %s is reachable from %s but never polls its context (no poll within %d call frames)",
					ff.fn.Name(), g.rootFor(ff.fn), maxPollFrames),
				"poll ctx.Err() or select on the done channel in the loop body, or vet the function in ctxLoopAllowlist"))
		}
	}
	return out
}

// compoundLoop reports whether the loop does per-iteration work worth a
// poll: a nested loop in its body, or a call to a function within
// maxLoopFrames of a loop.
func (g *serveGraph) compoundLoop(ff *funcFacts, lp loopSite) bool {
	if lp.nested {
		return true
	}
	for _, cs := range ff.calls {
		if inBody(lp, cs.pos) && g.loopDepthOf(cs.callee) < maxLoopFrames {
			return true
		}
	}
	return false
}

// polledLoop reports whether the loop body polls the context directly or
// calls a function within maxPollFrames of a direct poll.
func (g *serveGraph) polledLoop(ff *funcFacts, lp loopSite) bool {
	for _, pos := range ff.polls {
		if inBody(lp, pos) {
			return true
		}
	}
	for _, cs := range ff.calls {
		if inBody(lp, cs.pos) && g.pollDepthOf(cs.callee) < maxPollFrames {
			return true
		}
	}
	return false
}

// insidePolledLoop reports whether another recorded unbounded loop of
// the same function encloses this one and is itself polled.
func (g *serveGraph) insidePolledLoop(ff *funcFacts, lp loopSite) bool {
	for _, outer := range ff.loops {
		if outer.body == lp.body {
			continue
		}
		if inBody(outer, lp.pos) && g.polledLoop(ff, outer) {
			return true
		}
	}
	return false
}

// inBody reports whether pos falls inside the loop's body.
func inBody(lp loopSite, pos token.Pos) bool {
	return lp.body.Pos() <= pos && pos <= lp.body.End()
}
