package golint

import (
	"fmt"
	"go/ast"
	"strings"
)

// cliPkgPath is the package that owns the exit-code contract.
const cliPkgPath = "repro/internal/cli"

// analyzerG002 enforces the process-exit contract: only func main of a
// main package may terminate the process, and every nonzero exit code
// must come from the internal/cli contract (the ExitCode mapper or an
// Exit* constant), so that 0/1/2/3 keep one meaning across every tool.
//
// Flagged:
//
//   - os.Exit or log.Fatal*/log.Panic* anywhere outside func main of a
//     main package (libraries must return errors)
//   - os.Exit in func main whose argument is not the literal 0, a
//     cli.Exit* constant, a cli.ExitCode(...) call, or a local variable
//     assigned from one of those
func analyzerG002() *Analyzer {
	return &Analyzer{
		ID:       RuleExitContract,
		Name:     "exit-contract",
		Doc:      "process exits outside func main or bypassing internal/cli.ExitCode",
		Severity: Error,
		Run:      runG002,
	}
}

func runG002(p *Pass) []Finding {
	var out []Finding
	info := p.Pkg.Info
	isMainPkg := p.Pkg.Types.Name() == "main"
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil {
				continue
			}
			inMain := isMainPkg && fd.Recv == nil && fd.Name.Name == "main"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name := pkgQualified(info, call.Fun)
				switch {
				case pkg == "os" && name == "Exit":
					if !inMain {
						out = append(out, p.finding(RuleExitContract, Error, call.Pos(),
							"os.Exit outside func main of a main package",
							"return an error and let main map it through internal/cli.ExitCode"))
						return true
					}
					if len(call.Args) == 1 && !isContractExitCode(p, fd, call.Args[0]) {
						out = append(out, p.finding(RuleExitContract, Error, call.Pos(),
							fmt.Sprintf("exit code %s bypasses the internal/cli exit-code contract", exprText(call.Args[0])),
							"pass 0, a cli.Exit* constant, or cli.ExitCode(err)"))
					}
				case pkg == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
					name == "Panic" || name == "Panicf" || name == "Panicln"):
					if !inMain {
						out = append(out, p.finding(RuleExitContract, Error, call.Pos(),
							"log."+name+" outside func main of a main package",
							"return an error and let main decide how to exit"))
					}
				}
				return true
			})
		}
	}
	return out
}

// isContractExitCode reports whether the os.Exit argument conforms to
// the contract: literal 0, a constant or ExitCode call from
// internal/cli, or a local variable assigned from one of those inside
// the same function.
func isContractExitCode(p *Pass, fd *ast.FuncDecl, arg ast.Expr) bool {
	info := p.Pkg.Info
	if isConstInt(info, arg, 0) {
		return true
	}
	if isCLIExitExpr(p, arg) {
		return true
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	// Accept a local whose every assignment in this function draws from
	// the contract.
	assigned, conforms := false, true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			lobj := info.Defs[lid]
			if lobj == nil {
				lobj = info.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			assigned = true
			if !isCLIExitExpr(p, as.Rhs[i]) {
				conforms = false
			}
		}
		return true
	})
	return assigned && conforms
}

// isCLIExitExpr reports whether expr is a cli.Exit* selector or a
// cli.ExitCode(...) call.
func isCLIExitExpr(p *Pass, expr ast.Expr) bool {
	info := p.Pkg.Info
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		pkg, name := pkgQualified(info, e)
		return pkg == cliPkgPath && strings.HasPrefix(name, "Exit")
	case *ast.CallExpr:
		pkg, name := pkgQualified(info, e.Fun)
		return pkg == cliPkgPath && name == "ExitCode"
	}
	return false
}
