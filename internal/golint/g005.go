package golint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// analyzerG005 enforces error hygiene in non-test code:
//
//   - a call statement that silently discards an error result
//     (warning). Deferred calls and explicit `_ =` assignments are
//     visible decisions and stay clean, as are the writers whose error
//     returns are conventionally ignored: the fmt print family, the
//     never-failing strings.Builder/bytes.Buffer/hash.Hash writers,
//     and bufio.Writer (sticky errors, surfaced by Flush — a discarded
//     Flush is still flagged).
//   - fmt.Errorf over a live error value without %w (info): the message
//     survives but the chain is severed, so errors.Is/As callers —
//     including the internal/cli exit-code mapper — stop seeing the
//     cause. Keeping %v is occasionally right (hiding an internal
//     error); the info severity flags the decision without gating on
//     it.
func analyzerG005() *Analyzer {
	return &Analyzer{
		ID:       RuleErrorHygiene,
		Name:     "error-hygiene",
		Doc:      "discarded error returns and fmt.Errorf wrapping an error without %w",
		Severity: Warning,
		Run:      runG005,
	}
}

func runG005(p *Pass) []Finding {
	var out []Finding
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(info, call) || errorIgnorable(info, call) {
					return true
				}
				out = append(out, p.finding(RuleErrorHygiene, Warning, call.Pos(),
					fmt.Sprintf("error result of %s discarded", callName(call)),
					"handle the error, or assign it to _ to record the decision"))
			case *ast.CallExpr:
				out = append(out, checkErrorfWrap(p, n)...)
			}
			return true
		})
	}
	return out
}

// checkErrorfWrap flags fmt.Errorf calls that interpolate an error
// value without the %w verb.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) []Finding {
	info := p.Pkg.Info
	if pkg, name := pkgQualified(info, call.Fun); pkg != "fmt" || name != "Errorf" {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return nil
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return nil
	}
	for i, arg := range call.Args[1:] {
		t := info.TypeOf(arg)
		if t != nil && isErrorType(t) {
			f := p.finding(RuleErrorHygiene, Info, call.Pos(),
				fmt.Sprintf("fmt.Errorf interpolates error %s without %%w: the error chain is severed", exprText(arg)),
				"use %w to keep errors.Is/As working, or keep %v deliberately to hide the cause")
			f.Fix = wrapVerbFix(p, lit, i)
			return []Finding{f}
		}
	}
	return nil
}

// wrapVerbFix builds the %v→%w suggested fix for the argIdx-th format
// argument. Only the unambiguous shape is offered (see DESIGN.md
// "Autofix safety"): an escape-free double-quoted literal whose verbs
// are all plain `%X` letters, with the error's verb being %v or %s —
// anything fancier stays finding-only.
func wrapVerbFix(p *Pass, lit *ast.BasicLit, argIdx int) *Fix {
	raw := lit.Value
	if len(raw) < 2 || raw[0] != '"' || strings.ContainsRune(raw, '\\') {
		return nil
	}
	verb := -1 // byte offset of argIdx's verb letter within raw
	n := 0
	for i := 0; i+1 < len(raw); i++ {
		if raw[i] != '%' {
			continue
		}
		c := raw[i+1]
		if c == '%' {
			i++
			continue
		}
		if c < 'a' || c > 'z' {
			return nil // flags/width: not the unambiguous shape
		}
		if n == argIdx {
			if c != 'v' && c != 's' {
				return nil
			}
			verb = i + 1
		}
		n++
		i++
	}
	if verb < 0 {
		return nil
	}
	file := p.Loader.Fset.File(lit.Pos())
	if file == nil {
		return nil
	}
	start := file.Offset(lit.Pos()) + verb
	return &Fix{
		Description: "replace the error's %v with %w to keep the error chain",
		Edits: []TextEdit{{
			File:  p.relFile(lit.Pos()),
			Start: start,
			End:   start + 1,
			Text:  "w",
		}},
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// errorIgnorable lists the calls whose error results are
// conventionally discarded: the fmt print family, and writers that
// document they never fail.
func errorIgnorable(info *types.Info, call *ast.CallExpr) bool {
	if pkg, name := pkgQualified(info, call.Fun); pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		// Documented never to fail.
		return true
	case "hash.Hash":
		// hash.Hash.Write is documented never to return an error.
		return true
	case "bufio.Writer":
		// bufio.Writer errors are sticky and surface from Flush, which
		// stays flagged when its own result is discarded.
		return true
	}
	return false
}

// callName renders the called expression for a message.
func callName(call *ast.CallExpr) string { return exprText(call.Fun) }
