package golint

import (
	"strings"
	"testing"
)

func TestLoaderFindsModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModPath != "repro" {
		t.Errorf("module path = %q, want repro", l.ModPath)
	}
	if !strings.HasSuffix(strings.TrimRight(l.ModRoot, "/"), "repo") && l.ModRoot == "" {
		t.Errorf("module root = %q", l.ModRoot)
	}
}

func TestLoaderNoModule(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Error("expected error for a directory with no enclosing go.mod")
	}
}

// TestLoadIntraModuleImports type-checks a package whose dependencies
// are themselves module-internal (cli imports lint, netlist, gen, ...),
// exercising the recursive source resolution path.
func TestLoadIntraModuleImports(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/internal/cli")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/cli" {
		t.Fatalf("loaded %v", pkgs)
	}
	if pkgs[0].Types.Scope().Lookup("ExitCode") == nil {
		t.Error("type-checked package is missing ExitCode")
	}
}

// TestLoadWildcard expands a subtree pattern, skipping nothing when the
// walk is rooted inside testdata explicitly.
func TestLoadWildcard(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("../../testdata/codelint/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 6 {
		var got []string
		for _, p := range pkgs {
			got = append(got, p.Path)
		}
		t.Errorf("loaded %d packages (%v), want 6", len(pkgs), got)
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path >= pkgs[i].Path {
			t.Errorf("packages not in deterministic order: %s >= %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}
}

// TestLoadCaching asserts repeated loads return the identical package,
// so analyzers across a run agree on type identities.
func TestLoadCaching(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Load("repro/internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Load("repro/internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("second load did not hit the package cache")
	}
}

func TestLoadOutsideModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(t.TempDir()); err == nil {
		t.Error("expected error loading a directory outside the module")
	}
}
