package golint

import (
	"strings"
	"testing"
)

func TestLoaderFindsModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModPath != "repro" {
		t.Errorf("module path = %q, want repro", l.ModPath)
	}
	if !strings.HasSuffix(strings.TrimRight(l.ModRoot, "/"), "repo") && l.ModRoot == "" {
		t.Errorf("module root = %q", l.ModRoot)
	}
}

func TestLoaderNoModule(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Error("expected error for a directory with no enclosing go.mod")
	}
}

// TestLoadIntraModuleImports type-checks a package whose dependencies
// are themselves module-internal (cli imports lint, netlist, gen, ...),
// exercising the recursive source resolution path.
func TestLoadIntraModuleImports(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/internal/cli")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/cli" {
		t.Fatalf("loaded %v", pkgs)
	}
	if pkgs[0].Types.Scope().Lookup("ExitCode") == nil {
		t.Error("type-checked package is missing ExitCode")
	}
}

// TestLoadWildcard expands a subtree pattern, skipping nothing when the
// walk is rooted inside testdata explicitly.
func TestLoadWildcard(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("../../testdata/codelint/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 17 {
		var got []string
		for _, p := range pkgs {
			got = append(got, p.Path)
		}
		t.Errorf("loaded %d packages (%v), want 17", len(pkgs), got)
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path >= pkgs[i].Path {
			t.Errorf("packages not in deterministic order: %s >= %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}
}

// TestLoadSkipsBuildConstrainedFiles proves the loader honors build
// constraints: the g007 fixture carries an excluded.go behind a
// never-satisfied build tag that redeclares Hot. If the loader parsed
// it, type-checking the package would fail on the duplicate before any
// finding count could even diverge.
func TestLoadSkipsBuildConstrainedFiles(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/testdata/codelint/g007")
	if err != nil {
		t.Fatalf("build-tag-excluded file reached the type checker: %v", err)
	}
	for _, f := range pkgs[0].Files {
		name := l.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "excluded.go") {
			t.Errorf("loader parsed build-tag-excluded file %s", name)
		}
	}
}

// TestLoadSkipsTestFiles proves _test.go files stay invisible: the g008
// fixture ships a skipped_test.go whose spawn would add a G008 finding
// beyond the golden's three if the loader ever picked test files up.
func TestLoadSkipsTestFiles(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/testdata/codelint/g008")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(pkgs[0].Files); n != 1 {
		t.Errorf("g008 fixture loaded %d files, want 1 (dirty.go only)", n)
	}
	if pkgs[0].Types.Scope().Lookup("Leaky") != nil {
		t.Error("loader type-checked the _test.go file's Leaky")
	}
	rep := Run(l, pkgs, Analyzers())
	if n := len(rep.ByRule(RuleGoroutineDiscipline)); n != 3 {
		t.Errorf("G008 findings = %d, want 3 (extra ones would come from the _test.go file)", n)
	}
}

// TestLoadGenericsAndTagCombos loads the loader fixture: generic
// declarations must type-check and instantiate, the build-tag-excluded
// sibling must stay unparsed, and the _test.go sibling must stay out
// even though its own build constraint is satisfied. Both siblings
// redeclare UseGenerics, so any skip failure breaks the type check
// loudly rather than shifting a count.
func TestLoadGenericsAndTagCombos(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/testdata/codelint/loader")
	if err != nil {
		t.Fatalf("generic fixture failed to load: %v", err)
	}
	p := pkgs[0]
	if n := len(p.Files); n != 1 {
		t.Errorf("loader fixture parsed %d files, want 1 (generics.go only)", n)
	}
	for _, name := range []string{"Pair", "Keys", "Sum", "UseGenerics"} {
		if p.Types.Scope().Lookup(name) == nil {
			t.Errorf("type-checked package is missing %s", name)
		}
	}
	rep := Run(l, pkgs, Analyzers())
	if len(rep.Findings) != 0 {
		t.Errorf("generic fixture should be clean, got %v", rep.Findings)
	}
}

// TestLoadCaching asserts repeated loads return the identical package,
// so analyzers across a run agree on type identities.
func TestLoadCaching(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Load("repro/internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Load("repro/internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("second load did not hit the package cache")
	}
}

func TestLoadOutsideModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(t.TempDir()); err == nil {
		t.Error("expected error loading a directory outside the module")
	}
}
