package golint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// This file is the interprocedural dataflow half of the whole-module
// framework: where callgraph.go summarizes what each function *does*,
// serveGraph derives what the serving layer can *reach* and which data
// can *flow* — the three facts the G011–G013 rules are built on:
//
//   - backward reachability from the /v1/* handler wiring (call edges
//     plus function-value reference edges, so method values, deferred
//     calls, and registered callbacks are all followed),
//   - forward field-sensitive taint from reads of the canonicalized
//     (cache-keyed) option structs through call edges, and
//   - per-function poll/loop depth metrics for the cancellation rule.
//
// Soundness stance, matching the call graph's: interface dispatch and
// calls through function values are not followed (documented gap — the
// serve closures are covered anyway because closure bodies are
// summarized into their enclosing declaration), and taint joins are
// coarse at call boundaries: a call with any tainted argument produces a
// tainted result. Over-taint errs toward "this feed is keyed", which is
// the safe direction for a rule whose error case is "read but not
// keyed".

// pollInf / loopInf are the "no poll / no loop anywhere below" depths.
const (
	pollInf = 1 << 20
	loopInf = 1 << 20
)

// maxPollFrames is how many call-graph frames away a context poll may
// live for an unbounded loop to count as polled: the loop body itself
// (frame 0) or a callee whose poll depth is < maxPollFrames.
const maxPollFrames = 3

// maxLoopFrames bounds the "compound loop" test: an unbounded loop does
// per-iteration work worth polling for when its body contains another
// loop, or calls a function whose loop depth is < maxLoopFrames.
const maxLoopFrames = 3

// keyedField is one field of a canonicalized serve option struct.
type keyedField struct {
	owner *types.TypeName
	obj   *types.Var // field object, for finding positions
	name  string     // Go field name
	tag   string     // json tag name ("" = field name, "-" = excluded)
	// keyed is true when the field participates in the cache key:
	// exported, not tag-excluded, not stripped, not exempt.
	keyed bool
	// excluded is true for `json:"-"` or unexported fields.
	excluded bool
	// stripped is true when a reachable function zeroes the field before
	// it is hashed (the timeout_ms idiom).
	stripped bool
	// exempt is true when the keyExemptFields table vets the exclusion.
	exempt bool
}

// feedFact aggregates every feed of one engine-option field on the
// reachable path.
type feedFact struct {
	fed      bool // any feed exists
	fedKeyed bool // at least one feed's value derives from keyed data
}

// serveGraph is the lazily-built dataflow context over one Run's module
// facts.
type serveGraph struct {
	m *ModuleFacts

	// roots are the handler-wired functions in deterministic wire order.
	roots []*funcFacts
	// reach maps every function reachable from a root to the "pkg.Func"
	// attribution of the root it was first reached from.
	reach map[*types.Func]string
	// reachList is the reachable set in summary order.
	reachList []*funcFacts

	pollDepth map[*types.Func]int
	loopDepth map[*types.Func]int

	// keyedStructs are the canonicalized option structs discovered from
	// root return types, with their field classification.
	keyedStructs []*types.TypeName
	keyedFields  map[string]*keyedField // fieldKey -> classification

	// mutableGlobals are module package-level vars written anywhere
	// outside init functions.
	mutableGlobals map[*types.Var]bool

	// taintVar / taintRet are the forward-taint fixpoint results.
	taintVar map[types.Object]bool
	taintRet map[*types.Func]bool
	changed  bool

	// feeds aggregates engine-option-struct field feeds on the reachable
	// path; reads aggregates reachable field reads (engine and keyed
	// structs alike), keyed by fieldKey, values in summary order.
	feeds map[string]*feedFact
	reads map[string][]fieldUse
	// readBy names the first reachable function reading each field, for
	// messages.
	readBy map[string]string
}

// fieldKey builds the stable identity of a named struct field.
func fieldKey(owner *types.TypeName, field string) string {
	return owner.Pkg().Path() + "." + owner.Name() + "." + field
}

// serveFacts builds (once per Run) the serve-path dataflow context.
func (m *ModuleFacts) serveFacts() *serveGraph {
	if m.serve != nil {
		return m.serve
	}
	g := &serveGraph{
		m:              m,
		reach:          make(map[*types.Func]string),
		pollDepth:      make(map[*types.Func]int),
		loopDepth:      make(map[*types.Func]int),
		keyedFields:    make(map[string]*keyedField),
		mutableGlobals: make(map[*types.Var]bool),
		taintVar:       make(map[types.Object]bool),
		taintRet:       make(map[*types.Func]bool),
		feeds:          make(map[string]*feedFact),
		reads:          make(map[string][]fieldUse),
		readBy:         make(map[string]string),
	}
	m.serve = g
	g.findRoots()
	g.computeReach()
	g.findKeyedStructs()
	g.findMutableGlobals()
	g.taintFixpoint()
	g.collectFlows()
	return g
}

// findRoots collects the handler-wired functions in wire order.
func (g *serveGraph) findRoots() {
	type wired struct {
		fn  *types.Func
		pos token.Pos
	}
	var all []wired
	for _, fn := range g.m.order {
		for _, w := range g.m.funcs[fn].wires {
			all = append(all, wired{fn: w.callee, pos: w.pos})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	seen := make(map[*types.Func]bool)
	for _, w := range all {
		if seen[w.fn] {
			continue
		}
		seen[w.fn] = true
		if ff := g.m.factsOf(w.fn); ff != nil {
			g.roots = append(g.roots, ff)
		}
	}
}

// computeReach runs the breadth-first closure from the roots over call
// and reference edges, attributing every function to the first root that
// reaches it.
func (g *serveGraph) computeReach() {
	type seed struct {
		fn   *types.Func
		root string
	}
	var queue []seed
	for _, ff := range g.roots {
		root := ff.pkg.Types.Name() + "." + ff.fn.Name()
		queue = append(queue, seed{fn: ff.fn, root: root})
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if _, ok := g.reach[s.fn]; ok {
			continue
		}
		ff := g.m.factsOf(s.fn)
		if ff == nil {
			continue
		}
		g.reach[s.fn] = s.root
		for _, cs := range ff.calls {
			queue = append(queue, seed{fn: cs.callee, root: s.root})
		}
		for _, cs := range ff.refs {
			queue = append(queue, seed{fn: cs.callee, root: s.root})
		}
	}
	for _, fn := range g.m.order {
		if _, ok := g.reach[fn]; ok {
			g.reachList = append(g.reachList, g.m.funcs[fn])
		}
	}
}

// pollDepthOf returns how many call frames separate fn from a direct
// context poll: 0 when fn polls itself, 1 + min over callees otherwise,
// pollInf when no poll is reachable. Cycles contribute pollInf (a poll
// beyond a back edge is not a per-iteration guarantee).
func (g *serveGraph) pollDepthOf(fn *types.Func) int {
	return g.depthOf(fn, g.pollDepth, func(ff *funcFacts) bool { return len(ff.polls) > 0 }, pollInf)
}

// loopDepthOf returns how many call frames separate fn from a loop: 0
// when fn's body loops, 1 + min over callees otherwise.
func (g *serveGraph) loopDepthOf(fn *types.Func) int {
	return g.depthOf(fn, g.loopDepth, func(ff *funcFacts) bool { return ff.hasLoop }, loopInf)
}

// depthOf is the shared memoized DFS for the two depth metrics.
func (g *serveGraph) depthOf(fn *types.Func, memo map[*types.Func]int, hit func(*funcFacts) bool, inf int) int {
	if d, ok := memo[fn]; ok {
		return d
	}
	ff := g.m.factsOf(fn)
	if ff == nil {
		return inf // outside the analyzed set: assumed flat / unpolled
	}
	memo[fn] = inf // cycle guard: back edges read as "nothing below"
	best := inf
	if hit(ff) {
		best = 0
	} else {
		for _, cs := range ff.calls {
			if d := g.depthOf(cs.callee, memo, hit, inf); d < inf && d+1 < best {
				best = d + 1
			}
		}
	}
	memo[fn] = best
	return best
}

// findKeyedStructs discovers the canonicalized option structs: for every
// root function, the static type of the first operand of its own (non-
// closure) return statements, when that is a module-declared struct.
// Fields are classified against json tags, strip assignments on the
// reachable path, and the keyExemptFields table.
func (g *serveGraph) findKeyedStructs() {
	seen := make(map[*types.TypeName]bool)
	for _, ff := range g.roots {
		info := ff.pkg.Info
		inspectWithStack(ff.decl.Body, func(n ast.Node, stack []ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) == 0 || innermostFuncLit(stack) != nil {
				return true
			}
			owner := namedStructOf(info.TypeOf(ret.Results[0]))
			if owner == nil || owner.Pkg() == nil || !isModulePath(g.m.modPath, owner.Pkg().Path()) {
				return true
			}
			if !seen[owner] {
				seen[owner] = true
				g.keyedStructs = append(g.keyedStructs, owner)
				g.classifyFields(owner)
			}
			return true
		})
	}
	// Strip detection: a reachable feed that zeroes a keyed-struct field
	// before hashing removes it from the key.
	for _, ff := range g.reachList {
		for _, fs := range ff.fieldFeeds {
			kf := g.keyedFields[fieldKey(fs.owner, fs.field)]
			if kf == nil || fs.value == nil || !isZeroExpr(ff.pkg.Info, fs.value) {
				continue
			}
			kf.stripped = true
			if !kf.exempt {
				kf.keyed = false
			}
		}
	}
}

// classifyFields records the field classification of one keyed struct.
func (g *serveGraph) classifyFields(owner *types.TypeName) {
	st := owner.Type().Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if idx := strings.Index(tag, ","); idx >= 0 {
			tag = tag[:idx]
		}
		kf := &keyedField{owner: owner, obj: f, name: f.Name(), tag: tag}
		switch {
		case !f.Exported() || tag == "-":
			kf.excluded = true
		case keyExemptField(tag, f.Name()):
			kf.exempt = true
		default:
			kf.keyed = true
		}
		g.keyedFields[fieldKey(owner, f.Name())] = kf
	}
}

// findMutableGlobals unions the global-write sets of every summarized
// function except init: state written only during package initialization
// is constant for the life of the process and cannot split cached
// results.
func (g *serveGraph) findMutableGlobals() {
	for _, fn := range g.m.order {
		ff := g.m.funcs[fn]
		if ff.decl.Recv == nil && ff.decl.Name.Name == "init" {
			continue
		}
		for _, v := range ff.globalWrites {
			g.mutableGlobals[v] = true
		}
	}
}

// taintFixpoint runs the forward taint propagation over the reachable
// set to a fixed point: seeds are reads of keyed option-struct fields;
// taint flows through assignments, range statements, call arguments into
// callee parameters, and callee returns.
func (g *serveGraph) taintFixpoint() {
	const maxPasses = 32
	for pass := 0; pass < maxPasses; pass++ {
		g.changed = false
		for _, ff := range g.reachList {
			g.taintWalk(ff)
		}
		if !g.changed {
			return
		}
	}
}

// taintWalk runs one propagation pass over a function body.
func (g *serveGraph) taintWalk(ff *funcFacts) {
	info := ff.pkg.Info
	inspectWithStack(ff.decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if g.exprTainted(ff, n.Rhs[0]) {
					for _, lhs := range n.Lhs {
						g.markLhs(info, lhs)
					}
				}
				return true
			}
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && g.exprTainted(ff, rhs) {
					g.markLhs(info, n.Lhs[i])
				}
			}
		case *ast.RangeStmt:
			if g.exprTainted(ff, n.X) {
				if n.Key != nil {
					g.markLhs(info, n.Key)
				}
				if n.Value != nil {
					g.markLhs(info, n.Value)
				}
			}
		case *ast.ReturnStmt:
			if innermostFuncLit(stack) != nil {
				return true
			}
			for _, res := range n.Results {
				if g.exprTainted(ff, res) {
					g.markRet(ff.fn)
				}
			}
		case *ast.CallExpr:
			g.callTainted(ff, n)
		}
		return true
	})
}

// exprTainted reports whether the expression's value derives from keyed
// option data.
func (g *serveGraph) exprTainted(ff *funcFacts, e ast.Expr) bool {
	info := ff.pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return g.taintVar[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if owner := namedStructOf(sel.Recv()); owner != nil {
				if kf := g.keyedFields[fieldKey(owner, e.Sel.Name)]; kf != nil && kf.keyed {
					return true
				}
			}
		}
		return g.exprTainted(ff, e.X)
	case *ast.CallExpr:
		return g.callTainted(ff, e)
	case *ast.BinaryExpr:
		return g.exprTainted(ff, e.X) || g.exprTainted(ff, e.Y)
	case *ast.UnaryExpr:
		return g.exprTainted(ff, e.X)
	case *ast.StarExpr:
		return g.exprTainted(ff, e.X)
	case *ast.ParenExpr:
		return g.exprTainted(ff, e.X)
	case *ast.IndexExpr:
		return g.exprTainted(ff, e.X) || g.exprTainted(ff, e.Index)
	case *ast.SliceExpr:
		return g.exprTainted(ff, e.X)
	case *ast.TypeAssertExpr:
		return g.exprTainted(ff, e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if g.exprTainted(ff, elt) {
				return true
			}
		}
	}
	return false
}

// callTainted propagates taint through one call: tainted arguments taint
// the resolved callee's parameters, and the result is tainted when any
// argument (or the receiver) is tainted or the callee's return is.
func (g *serveGraph) callTainted(ff *funcFacts, call *ast.CallExpr) bool {
	info := ff.pkg.Info
	anyIn := false
	var taintedArgs []int
	for i, a := range call.Args {
		if g.exprTainted(ff, a) {
			anyIn = true
			taintedArgs = append(taintedArgs, i)
		}
	}
	recvTainted := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if g.exprTainted(ff, sel.X) {
			anyIn = true
			recvTainted = true
		}
	}
	callee := staticCallee(info, call)
	if callee == nil {
		return anyIn
	}
	if cff := g.m.factsOf(callee); cff != nil {
		g.taintParams(cff, taintedArgs, recvTainted)
	}
	return anyIn || g.taintRet[callee]
}

// taintParams marks the callee's parameter objects for the tainted
// argument indices (variadic overflow collapses onto the last
// parameter), plus the receiver when the receiver expression is tainted.
func (g *serveGraph) taintParams(cff *funcFacts, taintedArgs []int, recvTainted bool) {
	if recvTainted && cff.decl.Recv != nil {
		for _, f := range cff.decl.Recv.List {
			for _, name := range f.Names {
				g.markObj(cff.pkg.Info.Defs[name])
			}
		}
	}
	if len(taintedArgs) == 0 {
		return
	}
	var params []*ast.Ident
	for _, f := range cff.decl.Type.Params.List {
		if len(f.Names) == 0 {
			params = append(params, nil) // unnamed parameter: nothing to taint
			continue
		}
		for _, name := range f.Names {
			params = append(params, name)
		}
	}
	for _, i := range taintedArgs {
		if i >= len(params) {
			i = len(params) - 1
		}
		if i >= 0 && params[i] != nil {
			g.markObj(cff.pkg.Info.Defs[params[i]])
		}
	}
}

// markLhs taints the root variable of an assignment target.
func (g *serveGraph) markLhs(info *types.Info, lhs ast.Expr) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	if obj := info.Defs[id]; obj != nil {
		g.markObj(obj)
		return
	}
	g.markObj(info.Uses[id])
}

// markObj taints one object, recording progress for the fixpoint.
func (g *serveGraph) markObj(obj types.Object) {
	if obj == nil || g.taintVar[obj] {
		return
	}
	g.taintVar[obj] = true
	g.changed = true
}

// markRet taints a function's return values.
func (g *serveGraph) markRet(fn *types.Func) {
	if g.taintRet[fn] {
		return
	}
	g.taintRet[fn] = true
	g.changed = true
}

// collectFlows aggregates (after the fixpoint) the reachable field reads
// and the engine-option feeds with their final taint verdicts.
func (g *serveGraph) collectFlows() {
	for _, ff := range g.reachList {
		fnName := ff.pkg.Types.Name() + "." + ff.fn.Name()
		for _, fr := range ff.fieldReads {
			key := fieldKey(fr.owner, fr.field)
			g.reads[key] = append(g.reads[key], fr)
			if _, ok := g.readBy[key]; !ok {
				g.readBy[key] = fnName
			}
		}
		for _, fs := range ff.fieldFeeds {
			if fs.owner.Pkg() == nil || !isEngineOptionStruct(fs.owner.Pkg().Path(), fs.owner.Name()) {
				continue
			}
			key := fieldKey(fs.owner, fs.field)
			fact := g.feeds[key]
			if fact == nil {
				fact = &feedFact{}
				g.feeds[key] = fact
			}
			fact.fed = true
			if fs.value != nil && g.exprTainted(ff, fs.value) {
				fact.fedKeyed = true
			}
		}
	}
}

// readInReach reports whether the field is read anywhere on the
// reachable path.
func (g *serveGraph) readInReach(owner *types.TypeName, field string) bool {
	return len(g.reads[fieldKey(owner, field)]) > 0
}

// rootFor returns the root attribution for a reachable function ("" when
// unreachable).
func (g *serveGraph) rootFor(fn *types.Func) string { return g.reach[fn] }

// isZeroExpr reports whether the expression is a zero value: constant 0,
// "", false, or nil.
func isZeroExpr(info *types.Info, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.String() {
	case "0", `""`, "false":
		return true
	}
	return false
}
