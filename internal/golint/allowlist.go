package golint

import "strings"

// The allowlist tables below are the single maintained source of truth
// for which packages the engine-contract analyzers cover and which
// vetted impurities they tolerate. Changing repo policy means editing a
// table here (and the self-check test that pins it) — never sprinkling
// per-site suppression comments through the tree.

// engineContextPackages are the packages whose exported entry points
// must thread context.Context end to end (G003): creating a fresh root
// context there is only legal inside a single-return compat wrapper.
// The testdata entry keeps the rule's golden fixture honest.
var engineContextPackages = []string{
	"internal/fsim",
	"internal/atpg",
	"internal/tpi",
	"internal/exp",
	"testdata/codelint/g003",
}

// docCommentPackages are the packages whose exported symbols must
// carry leading-name godoc comments (G006): the engine and serving
// packages whose APIs the README, DESIGN.md, and godoc render. The
// testdata entry keeps the rule's golden fixture honest.
var docCommentPackages = []string{
	"internal/fsim",
	"internal/atpg",
	"internal/tpi",
	"internal/implic",
	"internal/fault",
	"internal/netlist",
	"internal/serve",
	"internal/perf",
	"testdata/codelint/g006",
}

// isDocCommentPackage reports whether G006 applies to the package.
func isDocCommentPackage(path string) bool {
	return pathMatchesAny(path, docCommentPackages)
}

// deterministicExtraPackages extends G004's deterministic-engine set
// (every package under internal/) with paths outside internal/ that
// must obey the same purity contract.
var deterministicExtraPackages = []string{
	"testdata/codelint/g004",
}

// isDeterministicPackage reports whether G004 applies to the package:
// the whole internal/ tree plus the table above. Engine results must be
// a pure function of their inputs — the serve cache replays them
// byte-identically, so a wall-clock read or global-RNG draw inside an
// engine is a cache-poisoning bug, not a style issue.
func isDeterministicPackage(path string) bool {
	if pathMatchesAny(path, deterministicExtraPackages) {
		return true
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// impureAllowlist enumerates the vetted impurities per package (keyed
// by path suffix, values are "pkg/path.Name" symbols). Every entry
// documents why the impurity cannot poison cached engine results.
var impureAllowlist = map[string][]string{
	// serve measures request latency for its metrics endpoints; the
	// timings feed /v1/stats only, never a cached engine response body.
	"internal/serve": {"time.Now", "time.Since"},
	// exp reports wall-clock runtime as an experiment column; timing is
	// the measurement itself, not state any engine result depends on.
	"internal/exp": {"time.Now", "time.Since"},
	// perf is the benchmark harness: wall-clock reads are its entire
	// purpose, and its reports are never cached engine results.
	"internal/perf": {"time.Now", "time.Since"},
}

// allowedImpurity reports whether the qualified symbol (e.g.
// "time.Now") is allowlisted for the package.
func allowedImpurity(pkgPath, symbol string) bool {
	for suffix, symbols := range impureAllowlist {
		if pkgPath == suffix || pathMatchesAny(pkgPath, []string{suffix}) {
			for _, s := range symbols {
				if s == symbol {
					return true
				}
			}
		}
	}
	return false
}
