package golint

import "strings"

// The allowlist tables below are the single maintained source of truth
// for which packages the engine-contract analyzers cover and which
// vetted impurities they tolerate. Changing repo policy means editing a
// table here (and the self-check test that pins it) — never sprinkling
// per-site suppression comments through the tree.

// engineContextPackages are the packages whose exported entry points
// must thread context.Context end to end (G003): creating a fresh root
// context there is only legal inside a single-return compat wrapper.
// The testdata entry keeps the rule's golden fixture honest.
var engineContextPackages = []string{
	"internal/fsim",
	"internal/atpg",
	"internal/tpi",
	"internal/exp",
	"testdata/codelint/g003",
}

// docCommentPackages are the packages whose exported symbols must
// carry leading-name godoc comments (G006): the engine and serving
// packages whose APIs the README, DESIGN.md, and godoc render. The
// testdata entry keeps the rule's golden fixture honest.
var docCommentPackages = []string{
	"internal/fsim",
	"internal/atpg",
	"internal/tpi",
	"internal/implic",
	"internal/fault",
	"internal/netlist",
	"internal/serve",
	"internal/perf",
	"testdata/codelint/g006",
}

// isDocCommentPackage reports whether G006 applies to the package.
func isDocCommentPackage(path string) bool {
	return pathMatchesAny(path, docCommentPackages)
}

// deterministicExtraPackages extends G004's deterministic-engine set
// (every package under internal/) with paths outside internal/ that
// must obey the same purity contract.
var deterministicExtraPackages = []string{
	"testdata/codelint/g004",
}

// isDeterministicPackage reports whether G004 applies to the package:
// the whole internal/ tree plus the table above. Engine results must be
// a pure function of their inputs — the serve cache replays them
// byte-identically, so a wall-clock read or global-RNG draw inside an
// engine is a cache-poisoning bug, not a style issue.
func isDeterministicPackage(path string) bool {
	if pathMatchesAny(path, deterministicExtraPackages) {
		return true
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// impureAllowlist enumerates the vetted impurities per package (keyed
// by path suffix, values are "pkg/path.Name" symbols). Every entry
// documents why the impurity cannot poison cached engine results.
var impureAllowlist = map[string][]string{
	// serve measures request latency for its metrics endpoints; the
	// timings feed /v1/stats only, never a cached engine response body.
	"internal/serve": {"time.Now", "time.Since"},
	// exp reports wall-clock runtime as an experiment column; timing is
	// the measurement itself, not state any engine result depends on.
	"internal/exp": {"time.Now", "time.Since"},
	// perf is the benchmark harness: wall-clock reads are its entire
	// purpose, and its reports are never cached engine results.
	"internal/perf": {"time.Now", "time.Since"},
}

// hotLoopEntries pins the measured-loop entry functions for G007: the
// innermost engine functions whose main loop is what the benchmarks
// time. Allocation sites inside those loops — and in everything the
// loops call, transitively — are hot-path findings. The table names the
// innermost loop owners deliberately: planners and parallel drivers
// above them (GenerateTestsContext, RunParallelContext, …) do per-run
// setup that is allowed to allocate. Matching is by function name
// within the package (methods included), which is unambiguous for the
// pinned set and keeps the table free of receiver spellings. The
// testdata entry keeps the rule's golden fixture honest.
var hotLoopEntries = []struct {
	pkg   string
	funcs []string
}{
	{"internal/fsim", []string{"RunContext"}},
	{"internal/atpg", []string{"search"}},
	{"internal/tpi", []string{"solve", "run"}},
	{"internal/implic", []string{"sweep", "learn"}},
	{"testdata/codelint/g007", []string{"Hot"}},
}

// isHotLoopEntry reports whether the function is a pinned measured-loop
// entry for G007.
func isHotLoopEntry(pkgPath, fn string) bool {
	for _, e := range hotLoopEntries {
		if !pathMatchesAny(pkgPath, []string{e.pkg}) {
			continue
		}
		for _, f := range e.funcs {
			if f == fn {
				return true
			}
		}
	}
	return false
}

// hotAllocAllowlist enumerates the vetted allocation-bearing functions
// reachable from a measured loop (G007). Every entry must say why the
// allocation cannot dominate the steady state — typically because the
// function builds the algorithm's *output* (amortized once per node or
// region, not once per pattern). The self-check test pins this table;
// growing it is a reviewed decision, not a reflex.
var hotAllocAllowlist = []struct {
	pkg, fn, why string
}{
	// The cut DP builds one result row per processed node; its slices
	// ARE the dynamic-programming table, sized by circuit shape, not by
	// pattern count.
	{"internal/tpi", "computeNode", "DP table rows are the output, amortized once per node"},
	{"internal/tpi", "exportsOf", "export rows are DP output, amortized once per node"},
	// The fixture entry proves a listed function's sites go quiet while
	// its unlisted neighbors still fire.
	{"testdata/codelint/g007", "Warm", "fixture: vetted setup-phase allocation"},
}

// hotAllocAllowed reports whether the function's allocation sites are
// vetted for G007.
func hotAllocAllowed(pkgPath, fn string) bool {
	for _, e := range hotAllocAllowlist {
		if e.fn == fn && pathMatchesAny(pkgPath, []string{e.pkg}) {
			return true
		}
	}
	return false
}

// goroutineAllowlist vets spawner functions whose goroutines are
// joined by *another* method of the same type (G008). The per-spawn
// analysis only trusts a join it can see in the spawning function —
// a constructor that starts workers and hands the wg.Wait to a Close
// method is invisible to it by design. Every entry must name the join
// owner and the test that pins the join actually happening; the
// self-check test pins this table.
var goroutineAllowlist = []struct {
	pkg, fn, why string
}{
	// The job manager's constructor starts the worker pool and the GC
	// loop; both call m.wg.Done and Close joins them with m.wg.Wait.
	// jobs.TestCloseJoinsWorkers pins that Close really waits.
	{"internal/jobs", "New",
		"workers and the GC loop are joined by Close via m.wg.Wait; pinned by TestCloseJoinsWorkers"},
	// The fixture entry proves a listed spawner goes quiet while its
	// unlisted neighbors still fire.
	{"testdata/codelint/g008", "Vetted",
		"fixture: vetted constructor-shaped spawn joined elsewhere"},
}

// goroutineJoinAllowed reports whether the function's spawns are
// vetted for G008's join check. The context and loop-variable checks
// still apply to listed functions — only the join is waived.
func goroutineJoinAllowed(pkgPath, fn string) bool {
	for _, e := range goroutineAllowlist {
		if e.fn == fn && pathMatchesAny(pkgPath, []string{e.pkg}) {
			return true
		}
	}
	return false
}

// engineCallPackages are the packages whose entry points run engine
// work: calling into them while holding a mutex serializes the engines
// behind the lock (G009). The testdata entry is exercised by the g009
// fixture through internal/implic.
var engineCallPackages = []string{
	"internal/fsim",
	"internal/atpg",
	"internal/tpi",
	"internal/implic",
}

// isEngineCallPackage reports whether calls into the package count as
// engine calls for G009.
func isEngineCallPackage(path string) bool {
	return pathMatchesAny(path, engineCallPackages)
}

// engineOptionStructs pins the option structs whose fields G011 audits
// against the cache-key canonicalization: every struct the serve run
// closures hand to an engine. internal/lint.Options is deliberately
// absent — /v1/lint runs it at defaults and its report is advisory;
// adding it is a one-line policy change here when lint options get a
// request surface. The testdata entry keeps the rule's golden fixture
// honest.
var engineOptionStructs = []struct {
	pkg, typ string
}{
	{"internal/fsim", "Options"},
	{"internal/atpg", "Options"},
	{"internal/implic", "Options"},
	{"internal/tpi", "CPOptions"},
	{"internal/tpi", "OPOptions"},
	{"testdata/codelint/g011", "EngineOpts"},
}

// isEngineOptionStruct reports whether the named struct is pinned for
// G011 feed tracking.
func isEngineOptionStruct(pkgPath, typ string) bool {
	for _, e := range engineOptionStructs {
		if e.typ == typ && pathMatchesAny(pkgPath, []string{e.pkg}) {
			return true
		}
	}
	return false
}

// cacheKeyFieldAllowlist vets engine option fields that are read on the
// serve path but deliberately pinned at their zero-value defaults —
// constant inputs cannot split or poison the cache. The allowlist only
// holds while no feed exists: feeding a listed field from unkeyed data
// re-raises the error (see g011.go).
var cacheKeyFieldAllowlist = []struct {
	pkg, typ, field, why string
}{
	{"internal/tpi", "CPOptions", "COP",
		"serve pins COP tuning to its zero-value defaults; a constant cannot split the cache"},
	{"internal/tpi", "OPOptions", "COP",
		"serve pins COP tuning to its zero-value defaults; a constant cannot split the cache"},
	{"internal/implic", "Options", "LearnRounds",
		"serve pins the contrapositive-learning depth to the engine default; constant input"},
	{"testdata/codelint/g011", "EngineOpts", "Tuning",
		"fixture: vetted zero-value default pin"},
}

// cacheKeyFieldAllowed reports whether the field's zero-default pin is
// vetted for G011.
func cacheKeyFieldAllowed(pkgPath, typ, field string) bool {
	for _, e := range cacheKeyFieldAllowlist {
		if e.typ == typ && e.field == field && pathMatchesAny(pkgPath, []string{e.pkg}) {
			return true
		}
	}
	return false
}

// keyExemptFields vets serve option fields excluded from the cache key
// on purpose, matched by json tag name across every canonicalized
// struct. Keep this list about *transport* concerns only — anything
// that can change an engine result must be keyed.
var keyExemptFields = []struct {
	tag, why string
}{
	{"timeout_ms",
		"deadlines shape latency and the 504 contract, never the engine result; stripped before hashing so an impatient client still hits the patient client's cache entry"},
}

// keyExemptField reports whether a serve option field is a vetted
// key exclusion.
func keyExemptField(tag, name string) bool {
	match := tag
	if match == "" {
		match = name
	}
	for _, e := range keyExemptFields {
		if e.tag == match {
			return true
		}
	}
	return false
}

// ctxLoopExemptPackages vets whole packages out of G012: request-
// materialization and analysis primitives whose loops are bounded by
// the circuit or pattern block they walk, completing between the polls
// of the engine loops above them. Every entry says why the latency is
// bounded without a poll.
var ctxLoopExemptPackages = []struct {
	pkg, why string
}{
	{"internal/netlist",
		"parse/validate/insert worklists are bounded by gate count and run once per request, before any engine loop"},
	{"internal/bench",
		"bench parsing and writing walk the netlist once; bounded by input size"},
	{"internal/gen",
		"circuit generators emit a fixed structure per spec; bounded by the requested size"},
	{"internal/logic",
		"truth-table evaluation is bounded by fanin width"},
	{"internal/fault",
		"fault collapsing walks the gate list a constant number of times"},
	{"internal/pattern",
		"pattern sources emit one vector per call; no loop outlives a block"},
	{"internal/testability",
		"COP fixpoints are bounded by topological depth; called per candidate between planner polls"},
	{"internal/lint",
		"lint rules run single-pass worklists bounded by gate count; the implication-based rules reach cancellation through implic.NewContext"},
}

// ctxLoopPackageExempt reports whether the package is vetted out of
// G012.
func ctxLoopPackageExempt(path string) bool {
	for _, e := range ctxLoopExemptPackages {
		if pathMatchesAny(path, []string{e.pkg}) {
			return true
		}
	}
	return false
}

// ctxLoopAllowlist vets individual functions whose unbounded loops are
// tolerated without a poll, with a written reason each.
var ctxLoopAllowlist = []struct {
	pkg, fn, why string
}{
	{"internal/tpi", "reconstruct",
		"replays the finished DP decision chain once after solve returns; bounded by node count, and solve itself polls per node"},
	{"internal/atpg", "backtrace",
		"walks a single objective-to-input path, bounded by circuit depth; the enclosing search loop polls once per decision"},
	{"testdata/codelint/g012", "Vetted",
		"fixture: proves the allowlist silences a listed function while its neighbors still fire"},
}

// ctxLoopAllowed reports whether the function's loops are vetted for
// G012.
func ctxLoopAllowed(pkgPath, fn string) bool {
	for _, e := range ctxLoopAllowlist {
		if e.fn == fn && pathMatchesAny(pkgPath, []string{e.pkg}) {
			return true
		}
	}
	return false
}

// mutableStateAllowlist vets reads of mutable package state on the
// cache-keyed path (G013). Entries must never feed a response body —
// synchronization primitives and metrics only.
var mutableStateAllowlist = []struct {
	pkg, name, why string
}{
	{"testdata/codelint/g013", "scratch",
		"fixture: vetted reusable scratch buffer whose content never reaches a response"},
}

// mutableStateAllowed reports whether the package-level variable is
// vetted for G013.
func mutableStateAllowed(pkgPath, name string) bool {
	for _, e := range mutableStateAllowlist {
		if e.name == name && pathMatchesAny(pkgPath, []string{e.pkg}) {
			return true
		}
	}
	return false
}

// allowedImpurity reports whether the qualified symbol (e.g.
// "time.Now") is allowlisted for the package.
func allowedImpurity(pkgPath, symbol string) bool {
	for suffix, symbols := range impureAllowlist {
		if pkgPath == suffix || pathMatchesAny(pkgPath, []string{suffix}) {
			for _, s := range symbols {
				if s == symbol {
					return true
				}
			}
		}
	}
	return false
}

// resourceOwnerAllowlist vets functions whose resource acquisitions
// (G014) are ownership transfers the positional scan cannot see —
// constructors that hand the resource to a long-lived owner, pools
// that release on their own schedule. Entries suppress every G014
// finding in the named function, so each one must say who the real
// owner is.
var resourceOwnerAllowlist = []struct {
	pkg, fn, why string
}{
	{"testdata/codelint/g014", "Vetted",
		"fixture: proves the allowlist silences a listed function while its neighbors still fire"},
}

// isResourceOwner reports whether the function's acquisitions are
// vetted ownership transfers for G014/G016.
func isResourceOwner(pkgPath, fn string) bool {
	for _, e := range resourceOwnerAllowlist {
		if e.fn == fn && pathMatchesAny(pkgPath, []string{e.pkg}) {
			return true
		}
	}
	return false
}

// durabilityPackages scopes G015: the packages that persist state the
// process must be able to trust after a crash. Only journals and
// result blobs live here; adding a package opts its writes into the
// append+Sync / tmp→fsync→rename→dir-sync discipline.
var durabilityPackages = []struct {
	pkg, why string
}{
	{"internal/jobs",
		"owns the job journal and result blobs; DESIGN.md's durability invariants are this package's contract"},
	{"testdata/codelint/g015",
		"fixture: exercises every dirty and clean durability shape the rule knows"},
}

// isDurabilityPackage reports whether the package's writes are held to
// the G015 durability discipline.
func isDurabilityPackage(pkgPath string) bool {
	for _, e := range durabilityPackages {
		if pathMatchesAny(pkgPath, []string{e.pkg}) {
			return true
		}
	}
	return false
}
