package golint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared machinery of the resource-lifecycle rules:
// G014 (files, listeners, timers, tickers, cancel funcs) and the
// response-body half of G016 both reduce to the same question — is a
// value acquired here released on every path out of its frame? — so
// they share one acquisition model, one positional path check, and one
// interprocedural release summary computed over the module call graph.
//
// The analysis is deliberately positional rather than a full CFG: a
// resource is "released" when a release call (deferred or direct,
// including a call to a module-internal helper whose summary releases
// that parameter) appears anywhere in its frame, and an early return is
// flagged only when it sits between the acquisition and the first
// release without being guarded by the acquisition's own error check.
// Ownership transfers — returning the value, storing it in a field or
// composite literal, passing the bare identifier to a callee that does
// not release it — end the obligation in the caller: the new owner is
// judged in its own frame (or vetted through resourceOwnerAllowlist).

// resourceAcq is one tracked acquisition site.
type resourceAcq struct {
	// obj is the acquired value's object: the file/listener/timer
	// variable, or the cancel func for context acquisitions.
	obj types.Object
	// errObj is the paired error variable (nil when the acquiring call
	// returns none); returns guarded by a condition mentioning it are
	// legitimate pre-acquisition-failure exits.
	errObj types.Object
	// pos anchors findings; stmt is the acquiring assignment.
	pos  token.Pos
	stmt *ast.AssignStmt
	// what names the resource in messages ("os.Open file", ...).
	what string
	// release is the releasing method name ("Close", "Stop"), "" when
	// the resource is itself a func to call (cancel funcs), or
	// "Body.Close" for *http.Response values.
	release string
}

// acqSpec describes one acquiring call: which result is the resource,
// which (if any) is the error, and how the resource is released.
type acqSpec struct {
	resIdx  int
	errIdx  int // -1 when the call returns no error
	what    string
	release string
}

// g014Acquisitions maps "pkg.Func" for the G014 resource table.
var g014Acquisitions = map[string]acqSpec{
	"os.Open":             {resIdx: 0, errIdx: 1, what: "os.Open file", release: "Close"},
	"os.Create":           {resIdx: 0, errIdx: 1, what: "os.Create file", release: "Close"},
	"net.Listen":          {resIdx: 0, errIdx: 1, what: "net.Listen listener", release: "Close"},
	"time.NewTimer":       {resIdx: 0, errIdx: -1, what: "time.NewTimer timer", release: "Stop"},
	"time.NewTicker":      {resIdx: 0, errIdx: -1, what: "time.NewTicker ticker", release: "Stop"},
	"context.WithCancel":  {resIdx: 1, errIdx: -1, what: "context.WithCancel cancel func", release: ""},
	"context.WithTimeout": {resIdx: 1, errIdx: -1, what: "context.WithTimeout cancel func", release: ""},
}

// findAcquisitions scans one declared function and returns its tracked
// acquisitions from the given spec table, each paired with the body of
// its innermost enclosing function (the frame the path check runs in).
func findAcquisitions(info *types.Info, fd *ast.FuncDecl, specs map[string]acqSpec) []struct {
	acq   resourceAcq
	frame *ast.BlockStmt
} {
	var out []struct {
		acq   resourceAcq
		frame *ast.BlockStmt
	}
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name := pkgQualified(info, call.Fun)
		spec, ok := specs[path+"."+name]
		if !ok || spec.resIdx >= len(assign.Lhs) {
			return true
		}
		id, ok := assign.Lhs[spec.resIdx].(*ast.Ident)
		if !ok {
			return true // stored straight into a field/index: transferred
		}
		frame := fd.Body
		if lit := innermostFuncLit(stack); lit != nil {
			frame = lit.Body
		}
		acq := resourceAcq{pos: assign.Pos(), stmt: assign, what: spec.what, release: spec.release}
		if id.Name != "_" {
			acq.obj = assignedObject(info, id)
		}
		if spec.errIdx >= 0 && spec.errIdx < len(assign.Lhs) {
			if eid, ok := assign.Lhs[spec.errIdx].(*ast.Ident); ok && eid.Name != "_" {
				acq.errObj = assignedObject(info, eid)
			}
		}
		out = append(out, struct {
			acq   resourceAcq
			frame *ast.BlockStmt
		}{acq, frame})
		return true
	})
	return out
}

// assignedObject resolves the object an assignment's left-hand ident
// binds: a definition under :=, a use under plain =.
func assignedObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// lifecycleScan is the result of one frame walk for one acquisition.
type lifecycleScan struct {
	// releases are the positions of release calls (deferred or not);
	// deferredRelease is true when at least one sits under a defer.
	releases        []token.Pos
	deferredRelease bool
	// escaped is true when ownership left the frame: the value was
	// returned, stored, sent, or handed to a non-releasing callee.
	escaped bool
}

// scanLifecycle walks the frame classifying every use of acq.obj as a
// release, an escape, or a plain use. rel answers whether a callee
// releases its n-th parameter (the interprocedural edge).
func scanLifecycle(info *types.Info, frame *ast.BlockStmt, acq resourceAcq, rel releaseOracle) lifecycleScan {
	var sc lifecycleScan
	obj := acq.obj
	if obj == nil {
		return sc
	}
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	inspectWithStack(frame, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isReleaseCall(info, n, acq, isObj) {
				sc.releases = append(sc.releases, n.Pos())
				if underDefer(stack) {
					sc.deferredRelease = true
				}
				return true
			}
			// A bare pass of the resource to a callee either releases it
			// there (module summary) or transfers ownership.
			for i, a := range n.Args {
				if !isObj(a) {
					continue
				}
				if callee := staticCallee(info, n); callee != nil && rel != nil && rel(callee, i) {
					sc.releases = append(sc.releases, n.Pos())
					if underDefer(stack) {
						sc.deferredRelease = true
					}
				} else {
					sc.escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if bareIdentIn(info, r, obj) {
					sc.escaped = true
				}
			}
		case *ast.AssignStmt:
			if n == acq.stmt {
				return true
			}
			for _, r := range n.Rhs {
				if bareIdentIn(info, r, obj) {
					sc.escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if bareIdentIn(info, e, obj) {
					sc.escaped = true
				}
			}
		case *ast.SendStmt:
			if bareIdentIn(info, n.Value, obj) {
				sc.escaped = true
			}
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				if bareIdentIn(info, a, obj) {
					sc.escaped = true
				}
			}
		}
		return true
	})
	return sc
}

// isReleaseCall reports whether the call releases the acquisition:
// obj.Close()/obj.Stop(), obj() for cancel funcs, or obj.Body.Close()
// for response bodies.
func isReleaseCall(info *types.Info, call *ast.CallExpr, acq resourceAcq, isObj func(ast.Expr) bool) bool {
	switch acq.release {
	case "":
		return isObj(call.Fun)
	case "Body.Close":
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return false
		}
		body, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		return ok && body.Sel.Name == "Body" && isObj(body.X)
	default:
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == acq.release && isObj(sel.X)
	}
}

// bareIdentIn reports whether the expression mentions obj as a bare
// value — not as the receiver of a field or method selection. Reading
// resp.StatusCode does not move ownership; returning resp (or handing
// it to a composite literal or call) does.
func bareIdentIn(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	inspectWithStack(e, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return !found
		}
		if len(stack) > 0 {
			if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
				return true // field/method access, not a value use
			}
		}
		found = true
		return false
	})
	return found
}

// underDefer reports whether the ancestor stack passes through a defer
// statement (directly or via a deferred function literal).
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// earlyReturns lists the returns of the frame's own function (nested
// function literals excluded) that sit strictly between the acquisition
// and the first release and are not guarded by the acquisition's error
// check — the "early error return leaks it" shape.
func earlyReturns(info *types.Info, frame *ast.BlockStmt, acq resourceAcq, firstRel token.Pos) []token.Pos {
	var out []token.Pos
	inspectWithStack(frame, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= acq.stmt.End() || ret.Pos() >= firstRel {
			return true
		}
		if guardedByErrCheck(info, stack, acq.errObj) {
			return true
		}
		out = append(out, ret.Pos())
		return true
	})
	return out
}

// guardedByErrCheck reports whether the stack passes through an if (or
// else-if) whose condition mentions the acquisition's error variable —
// the return inside `if err != nil { ... }` does not leak a resource
// that was never acquired.
func guardedByErrCheck(info *types.Info, stack []ast.Node, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	objs := map[types.Object]bool{errObj: true}
	for _, n := range stack {
		if ifs, ok := n.(*ast.IfStmt); ok && refersToObject(info, ifs.Cond, objs) {
			return true
		}
	}
	return false
}

// releaseOracle answers whether a callee releases its n-th parameter.
type releaseOracle func(fn *types.Func, param int) bool

// releaseSummaries computes (once per Run) which functions release
// which of their parameters: a parameter is released when the body
// calls Close/Stop on it, calls it (cancel funcs), closes its Body, or
// forwards it bare to another module function that releases it — a
// fixpoint over the call graph, so release helpers compose.
func (m *ModuleFacts) releaseSummaries() map[*types.Func]map[int]bool {
	if m.released != nil {
		return m.released
	}
	m.released = make(map[*types.Func]map[int]bool)
	// forwards[fn][i] lists (callee, param) pairs fn forwards its i-th
	// parameter to; the fixpoint propagates release facts across them.
	type fwd struct {
		callee *types.Func
		param  int
	}
	forwards := make(map[*types.Func]map[int][]fwd)
	for _, fn := range m.order {
		ff := m.funcs[fn]
		params := paramObjects(ff.pkg.Info, ff.decl)
		if len(params) == 0 {
			continue
		}
		info := ff.pkg.Info
		ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if i, ok := releasedParamIndex(info, call, params); ok {
				set := m.released[fn]
				if set == nil {
					set = make(map[int]bool)
					m.released[fn] = set
				}
				set[i] = true
				return true
			}
			callee := staticCallee(info, call)
			if callee == nil {
				return true
			}
			for ai, a := range call.Args {
				id, ok := ast.Unparen(a).(*ast.Ident)
				if !ok {
					continue
				}
				for pi, p := range params {
					if info.Uses[id] == p {
						fm := forwards[fn]
						if fm == nil {
							fm = make(map[int][]fwd)
							forwards[fn] = fm
						}
						fm[pi] = append(fm[pi], fwd{callee: callee, param: ai})
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range m.order {
			for pi, fwds := range forwards[fn] {
				if m.released[fn][pi] {
					continue
				}
				for _, f := range fwds {
					if m.released[f.callee][f.param] {
						set := m.released[fn]
						if set == nil {
							set = make(map[int]bool)
							m.released[fn] = set
						}
						set[pi] = true
						changed = true
					}
				}
			}
		}
	}
	return m.released
}

// releaseOracleOf adapts the summaries to the scan callback.
func (m *ModuleFacts) releaseOracleOf() releaseOracle {
	sums := m.releaseSummaries()
	return func(fn *types.Func, param int) bool { return sums[fn][param] }
}

// paramObjects returns the declared parameter objects of fd in order
// (blank and grouped parameters included).
func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed: never releasable
		}
	}
	return out
}

// releasedParamIndex reports which parameter (if any) the call releases
// directly: p.Close(), p.Stop(), p(), or p.Body.Close().
func releasedParamIndex(info *types.Info, call *ast.CallExpr, params []types.Object) (int, bool) {
	target := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		for i, p := range params {
			if p != nil && info.Uses[id] == p {
				return i, true
			}
		}
		return 0, false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return target(fun)
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Close", "Stop":
			if i, ok := target(fun.X); ok {
				return i, true
			}
			if body, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok && body.Sel.Name == "Body" && fun.Sel.Name == "Close" {
				return target(body.X)
			}
		}
	}
	return 0, false
}
