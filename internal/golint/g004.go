package golint

import (
	"fmt"
	"go/ast"
)

// analyzerG004 keeps the deterministic engine packages pure. Engine
// results are cached content-addressed and replayed byte-identically by
// internal/serve, and the experiment tables are regenerated and diffed;
// a wall-clock read, a draw from the global math/rand source, or an
// environment read inside an engine makes the same input produce
// different output — silently poisoning both.
//
// The impure symbols: time.Now/Since/Until, every package-level
// math/rand function except the explicit-source constructors
// (New/NewSource), and os.Getenv/LookupEnv/Environ. Vetted exceptions
// live in the impureAllowlist table in allowlist.go — a reviewable
// table, not scattered suppression comments.
func analyzerG004() *Analyzer {
	return &Analyzer{
		ID:       RuleImpureEngine,
		Name:     "impure-engine",
		Doc:      "wall-clock, global RNG, or environment reads inside deterministic engine packages",
		Severity: Warning,
		Run:      runG004,
	}
}

func runG004(p *Pass) []Finding {
	if !isDeterministicPackage(p.Pkg.Path) {
		return nil
	}
	var out []Finding
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgQualified(info, call.Fun)
			symbol, reason := impureSymbol(pkg, name)
			if symbol == "" {
				return true
			}
			if allowedImpurity(p.Pkg.Path, symbol) {
				return true
			}
			out = append(out, p.finding(RuleImpureEngine, Warning, call.Pos(),
				fmt.Sprintf("%s inside deterministic engine package: %s", symbol, reason),
				"inject the value from the caller, or add a vetted entry to the impureAllowlist table in internal/golint"))
			return true
		})
	}
	return out
}

// impureSymbol classifies a package-qualified call; it returns the
// canonical symbol ("time.Now") and why it breaks determinism, or
// ("", "") for pure calls.
func impureSymbol(pkg, name string) (symbol, reason string) {
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "time." + name, "wall-clock reads vary run to run"
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return "", "" // explicit-source constructors are the fix, not the bug
		}
		return "rand." + name, "the global source is seeded per process"
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + name, "environment reads make results machine-dependent"
		}
	}
	return "", ""
}
