package golint

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The baseline ratchet. A baseline file lists the fingerprints of
// known findings so CI can gate at a stricter severity than the tree
// currently satisfies: existing debt is suppressed by fingerprint, new
// findings fail, and entries whose findings were fixed go stale —
// ratchet down by regenerating with -write-baseline. Because the
// fingerprint excludes line numbers (see fingerprint.go), rebasing and
// unrelated edits do not invalidate entries.

// baselineHeader is the required first line of a baseline file.
const baselineHeader = "# codelint baseline v1"

// Baseline is a parsed suppression set.
type Baseline struct {
	entries map[string]bool
}

// ParseBaseline reads a baseline file: the version header, then one
// finding per line as "<fingerprint> <rule> <file>" (rule and file are
// human context only; the fingerprint is the key). Blank lines and #
// comments are ignored after the header.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("golint: empty baseline file")
	}
	if strings.TrimSpace(sc.Text()) != baselineHeader {
		return nil, fmt.Errorf("golint: baseline must start with %q, got %q", baselineHeader, sc.Text())
	}
	b := &Baseline{entries: make(map[string]bool)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		b.entries[fields[0]] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("golint: read baseline: %w", err)
	}
	return b, nil
}

// WriteBaseline writes the findings as a baseline file. fps must be
// the parallel Fingerprints result. Entries are written in report
// order (position-sorted), one per finding.
func WriteBaseline(w io.Writer, findings []Finding, fps []string) error {
	if len(findings) != len(fps) {
		return fmt.Errorf("golint: %d findings but %d fingerprints", len(findings), len(fps))
	}
	if _, err := fmt.Fprintln(w, baselineHeader); err != nil {
		return err
	}
	for i, f := range findings {
		if _, err := fmt.Fprintf(w, "%s %s %s\n", fps[i], f.Rule, f.File); err != nil {
			return err
		}
	}
	return nil
}

// Apply splits the findings into kept (not suppressed) and counts the
// suppressed ones; stale returns the baseline entries no finding
// matched, sorted, so callers can report ratchet-down opportunities.
// fps must be the parallel Fingerprints result.
func (b *Baseline) Apply(findings []Finding, fps []string) (kept []Finding, keptFps []string, suppressed int, stale []string) {
	used := make(map[string]bool)
	for i, f := range findings {
		if b.entries[fps[i]] {
			used[fps[i]] = true
			suppressed++
			continue
		}
		kept = append(kept, f)
		keptFps = append(keptFps, fps[i])
	}
	for fp := range b.entries {
		if !used[fp] {
			stale = append(stale, fp)
		}
	}
	sort.Strings(stale)
	return kept, keptFps, suppressed, stale
}

// Size reports how many entries the baseline holds.
func (b *Baseline) Size() int { return len(b.entries) }
