package golint

import "fmt"

// G007 alloc-hot-path: no allocation inside a measured engine loop.
//
// The benchmarks time the inner loops pinned in hotLoopEntries; an
// allocation that executes per iteration — directly inside an entry's
// loop, or anywhere in a function those loops reach through the call
// graph — is what makes allocs/op scale with pattern count and what the
// per-worker-arena rewrite must never reintroduce. Tolerated shapes are
// classified at summary time (callgraph.go): the x = append(x, …) reuse
// idiom, cold error/panic paths, and the pinned hotAllocAllowlist of
// functions whose allocations are the algorithm's amortized output.
//
// Soundness gap, by design: calls through interfaces and function
// values are not resolved (staticCallee returns nil), so work hidden
// behind dynamic dispatch is not traced. The engines keep their hot
// loops monomorphic, which is itself part of the contract.

func analyzerG007() *Analyzer {
	return &Analyzer{
		ID:       RuleAllocHotPath,
		Name:     "alloc-hot-path",
		Doc:      "allocation reachable from a measured engine loop",
		Severity: Warning,
		Run:      runG007,
	}
}

func runG007(p *Pass) []Finding {
	var out []Finding
	m := p.Mod
	if m == nil {
		return nil
	}
	hot := m.hotFuncs()
	for _, fn := range m.order {
		ff := m.funcs[fn]
		if ff.pkg != p.Pkg {
			continue
		}
		isEntry := isHotLoopEntry(ff.pkg.Path, fn.Name())
		via, isHot := hot[fn]
		if !isEntry && !isHot {
			continue
		}
		if hotAllocAllowed(ff.pkg.Path, fn.Name()) {
			continue
		}
		for _, site := range ff.allocs {
			if site.cold {
				continue
			}
			var msg string
			switch {
			case isEntry && !site.inLoop:
				// The entry's own setup phase runs once per call, not per
				// iteration — only its loop bodies are measured.
				continue
			case isEntry:
				msg = fmt.Sprintf("%s inside the measured loop of %s.%s",
					site.what, ff.pkg.Types.Name(), fn.Name())
			default:
				msg = fmt.Sprintf("%s in %s, which runs per iteration of the measured loop of %s",
					site.what, fn.Name(), via)
			}
			out = append(out, p.finding(RuleAllocHotPath, Warning, site.pos, msg,
				"hoist into a buffer reused across iterations, or vet the function in hotAllocAllowlist with a justification"))
		}
	}
	return out
}
