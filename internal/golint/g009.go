package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// G009 lock-discipline: every Lock has a matching Unlock in the same
// function, no channel operation or engine call happens while a mutex
// is syntactically held, and mutex-bearing values are never copied.
//
// The held region is computed per function frame by lockHeldRanges
// (flow.go): conservative by construction, it ends at the first
// statement that could release the lock, so the single-flight shape in
// the serve cache — lock, consult the map, unlock inside the hit
// branch, then wait on a channel — is recognized as lock-free at the
// wait. What the rule forbids is the deadlock-and-latency class:
// blocking on a channel, or running a whole engine, while every other
// worker queues behind the mutex.

func analyzerG009() *Analyzer {
	return &Analyzer{
		ID:       RuleLockDiscipline,
		Name:     "lock-discipline",
		Doc:      "unpaired lock, channel op or engine call under a mutex, or mutex copy",
		Severity: Warning,
		Run:      runG009,
	}
}

func runG009(p *Pass) []Finding {
	var out []Finding
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, fd := range funcDecls(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, checkLockPairing(p, info, fd)...)
			for _, frame := range frames(fd) {
				out = append(out, checkHeldRegions(p, info, frame)...)
			}
			out = append(out, checkMutexCopies(p, info, fd)...)
		}
	}
	return out
}

// frames returns the function's own body plus the body of every
// function literal under it — each analyzed as its own lock frame.
func frames(fd *ast.FuncDecl) []*ast.BlockStmt {
	out := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// checkLockPairing flags Lock/RLock calls with no matching unlock
// anywhere in the function (deferred or not). The whole declaration is
// one scope here: a closure may legitimately release its spawner's
// lock, but a lock nobody in the function releases is a leak.
func checkLockPairing(p *Pass, info *types.Info, fd *ast.FuncDecl) []Finding {
	var out []Finding
	unlockOf := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method := mutexCallTarget(info, call)
		if recv == "" || (method != "Lock" && method != "RLock") {
			return true
		}
		if !anyMutexCall(info, fd.Body, recv, unlockOf[method]) {
			out = append(out, p.finding(RuleLockDiscipline, Warning, call.Pos(),
				fmt.Sprintf("%s.%s() has no matching %s in %s", recv, method, unlockOf[method], fd.Name.Name),
				"release the lock on every path, conventionally with defer "+recv+"."+unlockOf[method]+"()"))
		}
		return true
	})
	return out
}

// anyMutexCall reports whether a call recv.method appears anywhere
// under root, nested closures included — pairing treats the whole
// declaration as one scope, since a worker closure may legitimately be
// the one that releases its spawner's lock.
func anyMutexCall(info *types.Info, root ast.Node, recv, method string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if r, m := mutexCallTarget(info, call); r == recv && m == method {
				found = true
			}
		}
		return true
	})
	return found
}

// checkHeldRegions flags channel operations and engine calls inside the
// frame's lock-held ranges.
func checkHeldRegions(p *Pass, info *types.Info, frame *ast.BlockStmt) []Finding {
	held := lockHeldRanges(info, frame)
	if len(held) == 0 {
		return nil
	}
	var out []Finding
	flag := func(pos token.Pos, what string) {
		out = append(out, p.finding(RuleLockDiscipline, Warning, pos,
			what+" while a mutex is held",
			"shrink the critical section: release the lock before blocking or running engine work"))
	}
	ast.Inspect(frame, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != frame {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if inAnyRange(held, n.Pos()) {
				flag(n.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && inAnyRange(held, n.Pos()) {
				flag(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if inAnyRange(held, n.Pos()) {
				flag(n.Pos(), "select")
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) && inAnyRange(held, n.Pos()) {
				flag(n.Pos(), "range over a channel")
			}
		case *ast.CallExpr:
			callee := staticCallee(info, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if isEngineCallPackage(callee.Pkg().Path()) && inAnyRange(held, n.Pos()) {
				flag(n.Pos(), "call into engine package "+callee.Pkg().Name())
			}
		}
		return true
	})
	return out
}

// checkMutexCopies flags assignments that copy an existing mutex-
// bearing value. Fresh composite literals and pointer hand-offs are
// fine; duplicating live lock state is not — the copy and the original
// then guard nothing together.
func checkMutexCopies(p *Pass, info *types.Info, fd *ast.FuncDecl) []Finding {
	var out []Finding
	check := func(rhs ast.Expr) {
		if !isExistingValue(rhs) {
			return
		}
		t := info.TypeOf(rhs)
		if t == nil || !typeContainsMutex(t) {
			return
		}
		out = append(out, p.finding(RuleLockDiscipline, Warning, rhs.Pos(),
			fmt.Sprintf("copying %s duplicates the mutex it contains", exprText(rhs)),
			"pass a pointer instead of copying the lock-bearing value"))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				check(rhs)
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							check(v)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// isExistingValue reports whether e denotes an already-live value (an
// identifier, field, element, or dereference) rather than a fresh
// literal, address, or call result.
func isExistingValue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}
