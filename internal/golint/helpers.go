package golint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// pkgQualified resolves a call of the form pkg.Name where pkg is an
// imported package name, returning the package's import path and the
// selected name. It returns ("", "") for method calls, locals, and
// anything else.
func pkgQualified(info *types.Info, fun ast.Expr) (path, name string) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// funcDecls yields every function declaration in the file.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out = append(out, fd)
		}
	}
	return out
}

// refersToObject reports whether any identifier under n resolves to one
// of the given objects.
func refersToObject(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// isConstInt reports whether expr is a constant integer equal to v.
func isConstInt(info *types.Info, expr ast.Expr, v int64) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	got, exact := constant.Int64Val(tv.Value)
	return exact && got == v
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// pathMatchesAny reports whether the module-qualified import path ends
// in one of the given suffixes (each matched at a path-segment
// boundary).
func pathMatchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// exprText renders an expression as source text (for messages and the
// textual sort-suppression match).
func exprText(e ast.Expr) string { return types.ExprString(e) }

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.AssignableTo(t, errorType)
}
