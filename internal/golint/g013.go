package golint

import "fmt"

// analyzerG013 enforces engine-output purity on the cache-keyed path:
// the serve cache replays responses byte-identically for identical keys,
// so any input an engine reads that is *not* in the key must be constant
// for the life of the process. Two ambient-input classes violate that
// statically:
//
//   - reads of mutable package state: a module package-level variable
//     that any non-init function writes (assignment, ++/--, or
//     address-taken) — if a function reachable from the /v1/* wiring
//     touches it, two requests with identical keys can observe
//     different values;
//   - environment reads (os.Getenv / LookupEnv / Environ) anywhere on
//     the reachable path — env is ambient config outside the key.
//
// Immutable package state (error sentinels, lookup tables written only
// by init) is fine: constant inputs cannot split the cache. Vetted
// exceptions live in mutableStateAllowlist with a written reason —
// typically synchronization primitives or metrics that never feed a
// response body. This rule is the static complement of G004 (which
// flags impure *calls* per package): G013 follows the call graph, so it
// catches a global read three helpers below a handler that G004's
// per-package scoping would vet or miss.
func analyzerG013() *Analyzer {
	return &Analyzer{
		ID:       RuleEngineOutputPurity,
		Name:     "engine-output-purity",
		Doc:      "mutable package state or environment reads on the cache-keyed serve path",
		Severity: Error,
		Run:      runG013,
	}
}

func runG013(p *Pass) []Finding {
	g := p.Mod.serveFacts()
	if len(g.roots) == 0 {
		return nil
	}
	var out []Finding
	for _, ff := range g.reachList {
		if ff.pkg != p.Pkg {
			continue
		}
		for _, use := range ff.globalUses {
			if !g.mutableGlobals[use.obj] {
				continue
			}
			if mutableStateAllowed(p.Pkg.Path, use.obj.Name()) {
				continue
			}
			out = append(out, p.finding(RuleEngineOutputPurity, Error, use.pos,
				fmt.Sprintf("%s (reachable from %s) touches mutable package state %q, which is outside the cache key",
					ff.fn.Name(), g.rootFor(ff.fn), use.obj.Name()),
				"pass the value through the request options (keyed), make it immutable, or vet it in mutableStateAllowlist"))
		}
		for _, ec := range ff.envCalls {
			out = append(out, p.finding(RuleEngineOutputPurity, Error, ec.pos,
				fmt.Sprintf("%s (reachable from %s) reads the process environment via %s — ambient config outside the cache key",
					ff.fn.Name(), g.rootFor(ff.fn), ec.name),
				"resolve environment at startup and pass the value through configuration, never on the request path"))
		}
	}
	return out
}
