package golint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fixtureDir resolves a path under the repo's testdata/codelint tree.
func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "testdata", "codelint", name)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("fixture %s missing: %v", name, err)
	}
	return p
}

// analyzeFixture loads one fixture package and runs every analyzer.
func analyzeFixture(t *testing.T, name string) *Report {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(fixtureDir(t, name))
	if err != nil {
		t.Fatal(err)
	}
	return Run(l, pkgs, Analyzers())
}

// goldenReport reads the pinned JSON golden for a fixture.
func goldenReport(t *testing.T, name string) []Finding {
	t.Helper()
	data, err := os.ReadFile(fixtureDir(t, "") + "/" + name + ".golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	return rep.Findings
}

// TestFixturesMatchGoldens pins, per rule, the exact findings — rule
// ID, locus, severity, message, hint — the analyzers produce on the
// intentionally-dirty fixture packages.
func TestFixturesMatchGoldens(t *testing.T) {
	for _, fixture := range []struct {
		name string
		rule string
		want int // findings carrying the fixture's own rule
	}{
		{"g001", RuleNondetIteration, 3},
		{"g002", RuleExitContract, 3},
		{"g003", RuleContextDiscipline, 4},
		{"g004", RuleImpureEngine, 3},
		{"g005", RuleErrorHygiene, 2},
		{"g006", RuleDocComment, 4},
		{"g007", RuleAllocHotPath, 2},
		{"g008", RuleGoroutineDiscipline, 3},
		{"g009", RuleLockDiscipline, 4},
		{"g010", RuleWorkerStateSharing, 2},
		{"g011", RuleCacheKeySoundness, 4},
		{"g012", RuleCancelReachability, 2},
		{"g013", RuleEngineOutputPurity, 3},
		{"g014", RuleResourceLifecycle, 5},
		{"g015", RuleDurabilityDiscipline, 4},
		{"g016", RuleStreamingDiscipline, 7},
	} {
		t.Run(fixture.name, func(t *testing.T) {
			rep := analyzeFixture(t, fixture.name)
			if got := len(rep.ByRule(fixture.rule)); got != fixture.want {
				t.Errorf("%s findings = %d, want %d\n%v", fixture.rule, got, fixture.want, rep.Findings)
			}
			// Dirty fixtures must trip only their own rule: cross-rule
			// noise would mean an analyzer overreaches.
			for _, f := range rep.Findings {
				if f.Rule != fixture.rule {
					t.Errorf("unexpected cross-rule finding: %v", f)
				}
			}
			want := goldenReport(t, fixture.name)
			if !reflect.DeepEqual(rep.Findings, want) {
				t.Errorf("findings diverge from golden\ngot:  %v\nwant: %v", rep.Findings, want)
			}
		})
	}
}

// TestRunDeterministic asserts two independent loads of the same
// fixtures produce identical reports — the property the serve cache
// story rests on, applied to the analyzer itself.
func TestRunDeterministic(t *testing.T) {
	a := analyzeFixture(t, "g001")
	b := analyzeFixture(t, "g001")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ between runs:\n%v\n%v", a, b)
	}
}

// TestReportHelpers exercises the severity accounting mirrored from
// internal/lint.
func TestReportHelpers(t *testing.T) {
	rep := analyzeFixture(t, "g005")
	counts := rep.CountBySeverity()
	if counts[Warning] != 1 || counts[Info] != 1 || counts[Error] != 0 {
		t.Errorf("counts = %v", counts)
	}
	if s, ok := rep.MaxSeverity(); !ok || s != Warning {
		t.Errorf("MaxSeverity = %v, %v", s, ok)
	}
	if rep.HasErrors() {
		t.Error("HasErrors = true for a warning-level report")
	}
	if got := len(rep.Filter(Warning)); got != 1 {
		t.Errorf("Filter(Warning) = %d findings, want 1", got)
	}
	empty := &Report{}
	if _, ok := empty.MaxSeverity(); ok {
		t.Error("MaxSeverity on empty report reported ok")
	}
}

// TestAnalyzerRegistry pins the registry's IDs and order: rule IDs are
// an output contract and must never be renumbered.
func TestAnalyzerRegistry(t *testing.T) {
	var ids []string
	for _, a := range Analyzers() {
		ids = append(ids, a.ID)
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s incompletely declared", a.ID)
		}
	}
	want := []string{"G001", "G002", "G003", "G004", "G005", "G006", "G007", "G008",
		"G009", "G010", "G011", "G012", "G013", "G014", "G015", "G016"}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("registry IDs = %v, want %v", ids, want)
	}
}

// TestSelect covers the -only rule-selection surface: exact IDs,
// case-insensitivity, registry order, and typo rejection.
func TestSelect(t *testing.T) {
	all := Analyzers()
	got, err := Select(all, []string{"g010", "G007"})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, a := range got {
		ids = append(ids, a.ID)
	}
	if want := []string{"G007", "G010"}; !reflect.DeepEqual(ids, want) {
		t.Errorf("Select = %v, want %v (registry order, case-insensitive)", ids, want)
	}
	if _, err := Select(all, []string{"g007", "g999"}); err == nil {
		t.Error("Select accepted unknown rule g999")
	}
}

// TestCombinedOrderGolden pins the deterministic finding order across
// the four whole-module rules when their fixtures are analyzed in one
// run: file, then line, then column, then rule — independent of load
// order.
func TestCombinedOrderGolden(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately load in non-sorted order; the report order must not
	// care.
	pkgs, err := l.Load(
		fixtureDir(t, "g010"),
		fixtureDir(t, "g013"),
		fixtureDir(t, "g008"),
		fixtureDir(t, "g011"),
		fixtureDir(t, "g009"),
		fixtureDir(t, "g007"),
		fixtureDir(t, "g012"),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(l, pkgs, Analyzers())
	want := goldenReport(t, "combined")
	if !reflect.DeepEqual(rep.Findings, want) {
		t.Errorf("combined findings diverge from golden\ngot:  %v\nwant: %v", rep.Findings, want)
	}
}

// TestCleanShapesStayClean asserts the sanctioned idioms inside the
// fixtures (collect-then-sort, compat wrapper, seeded RNG, %w, `_ =`)
// produce no findings at their declaration sites.
func TestCleanShapesStayClean(t *testing.T) {
	cleanFuncs := map[string][]int{
		// dirty.go line ranges of the clean functions per fixture, as
		// flat start,end pairs (a fixture may pin several regions).
		"g001": {37, 55},                   // SortedKeys, Total
		"g003": {26, 38},                   // Compat, step
		"g004": {27, 30},                   // Seeded
		"g005": {21, 29},                   // WrapWell, CleanupRecorded
		"g006": {6, 7},                     // Threshold (documented with the leading name)
		"g007": {34, 44},                   // warmup, Warm (hotAllocAllowlist entry)
		"g008": {47, 74},                   // Joined (wg-joined, ctx-observing, arg-passing), Vetted (goroutineAllowlist entry)
		"g009": {45, 50},                   // Bump (lock/defer-unlock critical section)
		"g010": {38, 68},                   // Guarded, Sharded
		"g011": {30, 60},                   // mount, Register, parseThing, buildOpts, runThing
		"g012": {48, 76},                   // polled, Vetted, step, pending
		"g013": {35, 40},                   // limit comparison, vetted scratch writes
		"g014": {84, 152},                  // DeferClose through the helper tail
		"g015": {67, 117},                  // AppendSynced, InstallBlob, syncDir
		"g016": {53, 63, 79, 95, 120, 127}, // StreamSolid; GuardedError, fail; FetchJSON
	}
	for name, spans := range cleanFuncs {
		rep := analyzeFixture(t, name)
		for i := 0; i+1 < len(spans); i += 2 {
			for _, f := range rep.Findings {
				if f.Line >= spans[i] && f.Line <= spans[i+1] {
					t.Errorf("%s: finding inside clean region %v-%v: %v", name, spans[i], spans[i+1], f)
				}
			}
		}
	}
}
