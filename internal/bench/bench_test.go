package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netlist"
)

const c17Text = `
# c17 ISCAS'85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseC17(t *testing.T) {
	c, err := ParseString(c17Text, "c17")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 || c.NumGates() != 11 {
		t.Errorf("got %v", c)
	}
	g16, ok := c.GateByName("16")
	if !ok || c.Type(g16) != netlist.Nand {
		t.Errorf("gate 16 missing or wrong type")
	}
}

func TestParseForwardReferences(t *testing.T) {
	// Gates defined before their fanins (legal in .bench).
	text := `
INPUT(a)
OUTPUT(z)
z = NOT(m)
m = AND(a, n)
n = NOT(a)
`
	c, err := ParseString(text, "fwd")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if c.NumGates() != 4 {
		t.Errorf("gates = %d, want 4", c.NumGates())
	}
}

func TestParseSingleInputShorthand(t *testing.T) {
	text := `
INPUT(a)
OUTPUT(w)
OUTPUT(x)
OUTPUT(y)
OUTPUT(z)
w = AND(a)
x = NAND(a)
y = OR(a)
z = NOR(a)
`
	c, err := ParseString(text, "sh")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	w, _ := c.GateByName("w")
	x, _ := c.GateByName("x")
	y, _ := c.GateByName("y")
	z, _ := c.GateByName("z")
	if c.Type(w) != netlist.Buf || c.Type(y) != netlist.Buf {
		t.Error("1-input AND/OR must read as BUF")
	}
	if c.Type(x) != netlist.Not || c.Type(z) != netlist.Not {
		t.Error("1-input NAND/NOR must read as NOT")
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	text := "input(a)\ninput(b)\noutput(z)\nz = nand(a, b)\n"
	c, err := ParseString(text, "ci")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	z, _ := c.GateByName("z")
	if c.Type(z) != netlist.Nand {
		t.Errorf("type = %v", c.Type(z))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown gate":     "INPUT(a)\nOUTPUT(z)\nz = FROB(a, a)\n",
		"undefined signal": "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n",
		"undriven output":  "INPUT(a)\nOUTPUT(z)\n",
		"double define":    "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\nz = OR(a, b)\n",
		"malformed decl":   "INPUT a\nOUTPUT(z)\nz = NOT(a)\n",
		"malformed rhs":    "INPUT(a)\nOUTPUT(z)\nz = NOT a\n",
		"empty fanin":      "INPUT(a)\nOUTPUT(z)\nz = AND(a, )\n",
		"loop":             "INPUT(a)\nOUTPUT(z)\nz = AND(a, y)\ny = NOT(z)\n",
		"duplicate input":  "INPUT(a)\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n",
	}
	for name, text := range cases {
		if _, err := ParseString(text, name); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := ParseString(c17Text, "c17")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatalf("write: %v", err)
	}
	c2, err := ParseString(sb.String(), "c17")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if c2.NumGates() != c.NumGates() || c2.NumInputs() != c.NumInputs() || c2.NumOutputs() != c.NumOutputs() {
		t.Errorf("round trip mismatch: %v vs %v", c2, c)
	}
	// Functional equivalence across all 32 vectors.
	for v := 0; v < 32; v++ {
		for i, o := range c.Outputs() {
			if evalOutput(c, v, o) != evalOutput(c2, v, c2.Outputs()[i]) {
				t.Fatalf("vector %d output %d differs after round trip", v, i)
			}
		}
	}
}

func evalOutput(c *netlist.Circuit, vec, out int) bool {
	vals := make([]bool, c.NumGates())
	for i, in := range c.Inputs() {
		vals[in] = vec>>i&1 == 1
	}
	buf := make([]bool, 0, 8)
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		buf = buf[:0]
		for _, f := range g.Fanin {
			buf = append(buf, vals[f])
		}
		vals[id] = g.Type.Eval(buf)
	}
	return vals[out]
}

func TestParseTestdataFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.bench"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no testdata .bench files")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "DFF") {
			continue // sequential benches belong to internal/scan
		}
		c, err := ParseString(string(data), filepath.Base(f))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if c.NumGates() == 0 {
			t.Errorf("%s: empty circuit", f)
		}
	}
}
