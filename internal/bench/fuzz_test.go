package bench

import (
	"os"
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that anything it accepts
// survives a write/re-parse round trip with the same shape.
func FuzzParse(f *testing.F) {
	f.Add(c17Text)
	// The lint fixtures exercise comment styles and multi-output shapes
	// the inline seeds don't.
	if b, err := os.ReadFile("../../testdata/lint/redundant.bench"); err == nil {
		f.Add(string(b))
	}
	f.Add("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = XOR(a, b)\n")
	f.Add("# only a comment\n")
	f.Add("INPUT(a)\nOUTPUT(z)\nz = AND(a)\n")
	f.Add("garbage = = (((\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, "fuzz")
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, c); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		c2, err := ParseString(sb.String(), "fuzz2")
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\n%s", err, sb.String())
		}
		if c2.NumGates() != c.NumGates() || c2.NumInputs() != c.NumInputs() || c2.NumOutputs() != c.NumOutputs() {
			t.Fatalf("round trip changed shape: %v vs %v", c2, c)
		}
	})
}
