// Package bench reads and writes combinational circuits in the ISCAS'85
// ".bench" netlist format used by the classic DFT benchmark suites:
//
//	# comment
//	INPUT(a)
//	OUTPUT(z)
//	n1 = NAND(a, b)
//	z  = NOT(n1)
//
// Gate mnemonics are case-insensitive. One-input AND/OR gates are read as
// buffers; one-input NAND/NOR as inverters (some published netlists use
// this shorthand).
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// ParseError describes a syntax or structural error in a .bench stream.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg) }

type rawGate struct {
	name  string
	fn    string
	fanin []string
	line  int
}

// Parse reads a .bench netlist and returns the validated circuit. The
// name is used as the circuit name.
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var inputs, outputs []string
	var raws []rawGate
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			sig, err := parseDecl(line, "INPUT", lineNo)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, sig)
		case hasPrefixFold(line, "OUTPUT"):
			sig, err := parseDecl(line, "OUTPUT", lineNo)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, sig)
		default:
			g, err := parseAssign(line, lineNo)
			if err != nil {
				return nil, err
			}
			raws = append(raws, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}
	return assemble(name, inputs, outputs, raws)
}

// ParseString is Parse over an in-memory netlist.
func ParseString(s, name string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(s), name)
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

// parseDecl parses "INPUT(sig)" / "OUTPUT(sig)".
func parseDecl(line, kw string, lineNo int) (string, error) {
	rest := strings.TrimSpace(line[len(kw):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", &ParseError{lineNo, fmt.Sprintf("malformed %s declaration %q", kw, line)}
	}
	sig := strings.TrimSpace(rest[1 : len(rest)-1])
	if sig == "" {
		return "", &ParseError{lineNo, fmt.Sprintf("empty signal in %s declaration", kw)}
	}
	return sig, nil
}

// parseAssign parses "name = FN(a, b, ...)".
func parseAssign(line string, lineNo int) (rawGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("expected assignment, got %q", line)}
	}
	name := strings.TrimSpace(line[:eq])
	if name == "" {
		return rawGate{}, &ParseError{lineNo, "empty signal name on left-hand side"}
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("malformed gate expression %q", rhs)}
	}
	fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var fanin []string
	for _, part := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return rawGate{}, &ParseError{lineNo, "empty fanin signal"}
		}
		fanin = append(fanin, part)
	}
	if len(fanin) == 0 {
		return rawGate{}, &ParseError{lineNo, "gate with no fanin"}
	}
	return rawGate{name: name, fn: fn, fanin: fanin, line: lineNo}, nil
}

// gateType maps a mnemonic and arity onto a netlist gate type, applying
// the single-input shorthand rules.
func gateType(fn string, arity, lineNo int) (netlist.GateType, error) {
	switch fn {
	case "BUF", "BUFF":
		return netlist.Buf, nil
	case "NOT", "INV":
		return netlist.Not, nil
	case "AND":
		if arity == 1 {
			return netlist.Buf, nil
		}
		return netlist.And, nil
	case "NAND":
		if arity == 1 {
			return netlist.Not, nil
		}
		return netlist.Nand, nil
	case "OR":
		if arity == 1 {
			return netlist.Buf, nil
		}
		return netlist.Or, nil
	case "NOR":
		if arity == 1 {
			return netlist.Not, nil
		}
		return netlist.Nor, nil
	case "XOR":
		if arity == 1 {
			return netlist.Buf, nil
		}
		return netlist.Xor, nil
	case "XNOR":
		if arity == 1 {
			return netlist.Not, nil
		}
		return netlist.Xnor, nil
	}
	return 0, &ParseError{lineNo, fmt.Sprintf("unknown gate function %q", fn)}
}

// assemble resolves names and builds the circuit.
func assemble(name string, inputs, outputs []string, raws []rawGate) (*netlist.Circuit, error) {
	b := netlist.NewBuilder(name)
	ids := make(map[string]int, len(inputs)+len(raws))
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("bench: duplicate INPUT declaration %q", in)
		}
		ids[in] = b.Input(in)
	}
	// Gates may be declared in any order; resolve with a worklist keyed on
	// how many fanins are already defined.
	pending := make([]rawGate, len(raws))
	copy(pending, raws)
	for len(pending) > 0 {
		progressed := false
		remaining := pending[:0]
		for _, g := range pending {
			ready := true
			for _, f := range g.fanin {
				if _, ok := ids[f]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				remaining = append(remaining, g)
				continue
			}
			t, err := gateType(g.fn, len(g.fanin), g.line)
			if err != nil {
				return nil, err
			}
			fanin := make([]int, 0, len(g.fanin))
			// Single-input shorthand keeps only the first fanin.
			n := len(g.fanin)
			if t == netlist.Buf || t == netlist.Not {
				n = 1
			}
			for _, f := range g.fanin[:n] {
				fanin = append(fanin, ids[f])
			}
			if _, dup := ids[g.name]; dup {
				return nil, &ParseError{g.line, fmt.Sprintf("signal %q defined twice", g.name)}
			}
			ids[g.name] = b.Add(t, g.name, fanin...)
			progressed = true
		}
		pending = remaining
		if !progressed {
			// Either an undefined signal or a cycle; report the first.
			g := pending[0]
			for _, f := range g.fanin {
				if _, ok := ids[f]; !ok {
					return nil, &ParseError{g.line, fmt.Sprintf("undefined signal %q (or combinational loop)", f)}
				}
			}
			return nil, &ParseError{g.line, "combinational loop"}
		}
	}
	for _, o := range outputs {
		id, ok := ids[o]
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT %q has no driver", o)
		}
		b.MarkOutput(id)
	}
	return b.Build()
}

// Write emits the circuit in .bench format. Gates appear in topological
// order so the output parses without forward references even in strict
// readers.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n# %d inputs, %d outputs, %d gates\n",
		c.Name(), c.NumInputs(), c.NumOutputs(), c.NumGates()-c.NumInputs())
	for _, in := range c.Inputs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.GateName(in))
	}
	outs := append([]int(nil), c.Outputs()...)
	sort.Ints(outs)
	for _, o := range outs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.GateName(o))
	}
	bw.WriteByte('\n')
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.GateName(f)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, mnemonic(g.Type), strings.Join(names, ", "))
	}
	return bw.Flush()
}

func mnemonic(t netlist.GateType) string {
	if t == netlist.Buf {
		return "BUFF"
	}
	return t.String()
}
