package netlist

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the circuit as a Graphviz digraph for visual
// inspection. Primary inputs are drawn as triangles, primary outputs with
// a double border.
func (c *Circuit) WriteDot(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", c.name)
	for id, g := range c.gates {
		shape := "box"
		if g.Type == Input {
			shape = "triangle"
		}
		peripheries := 1
		if c.isOutput[id] {
			peripheries = 2
		}
		fmt.Fprintf(&b, "  g%d [label=%q shape=%s peripheries=%d];\n",
			id, fmt.Sprintf("%s\\n%s", g.Name, g.Type), shape, peripheries)
	}
	for id, g := range c.gates {
		for _, f := range g.Fanin {
			fmt.Fprintf(&b, "  g%d -> g%d;\n", f, id)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
