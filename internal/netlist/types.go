// Package netlist defines the gate-level combinational circuit model used
// throughout the repository: construction, validation, structural analysis
// (levelization, fanout-free regions, tree detection) and the netlist
// rewrites that implement test point insertion.
//
// A circuit is a DAG of gates. Every gate drives exactly one signal, so
// signals are identified by the ID of their driving gate. Primary inputs
// are modelled as gates of type Input with no fanin. A signal may both
// feed other gates and be designated a primary output.
package netlist

import "fmt"

// GateType enumerates the primitive gate functions supported by the model.
type GateType uint8

// Supported gate types. Input is a primary input pseudo-gate with no fanin.
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	numGateTypes
)

var gateTypeNames = [numGateTypes]string{
	Input: "INPUT",
	Buf:   "BUF",
	Not:   "NOT",
	And:   "AND",
	Nand:  "NAND",
	Or:    "OR",
	Nor:   "NOR",
	Xor:   "XOR",
	Xnor:  "XNOR",
}

// String returns the canonical upper-case mnemonic of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Valid reports whether t is one of the defined gate types.
func (t GateType) Valid() bool { return t < numGateTypes }

// MinFanin returns the minimum number of fanin signals a gate of type t
// must have.
func (t GateType) MinFanin() int {
	switch t {
	case Input:
		return 0
	case Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum number of fanin signals a gate of type t may
// have, or -1 if unbounded.
func (t GateType) MaxFanin() int {
	switch t {
	case Input:
		return 0
	case Buf, Not:
		return 1
	default:
		return -1
	}
}

// Inverting reports whether the gate complements its underlying monotone
// function (NOT, NAND, NOR, XNOR).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// Unate reports whether every input of a gate of type t is unate (the
// output is a monotone function of each input, possibly after inversion).
// XOR and XNOR are binate.
func (t GateType) Unate() bool { return t != Xor && t != Xnor }

// ControllingValue returns the controlling input value of the gate type and
// whether one exists. An input at the controlling value determines the
// output regardless of the other inputs (0 for AND/NAND, 1 for OR/NOR).
func (t GateType) ControllingValue() (v bool, ok bool) {
	switch t {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// Eval computes the gate function over the given input values. It panics
// if the arity is invalid for the type; callers evaluating validated
// circuits never trip this.
func (t GateType) Eval(in []bool) bool {
	switch t {
	case Input:
		panic("netlist: Eval on Input gate")
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if t == Xnor {
			return !v
		}
		return v
	}
	panic("netlist: Eval on invalid gate type")
}

// EvalWords computes the gate function bit-parallel over 64-bit packed
// input words.
func (t GateType) EvalWords(in []uint64) uint64 {
	switch t {
	case Input:
		panic("netlist: EvalWords on Input gate")
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := ^uint64(0)
		for _, x := range in {
			v &= x
		}
		if t == Nand {
			return ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, x := range in {
			v |= x
		}
		if t == Nor {
			return ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, x := range in {
			v ^= x
		}
		if t == Xnor {
			return ^v
		}
		return v
	}
	panic("netlist: EvalWords on invalid gate type")
}

// Gate is a single gate instance inside a Circuit. The gate's output
// signal carries the same ID as the gate itself.
type Gate struct {
	Type  GateType
	Name  string
	Fanin []int // IDs of driving gates, in pin order
}
