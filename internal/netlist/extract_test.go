package netlist

import (
	"testing"
	"testing/quick"
)

func TestExtractConeC17(t *testing.T) {
	c := buildC17(t)
	g22, _ := c.GateByName("22")
	cone, idMap, err := c.ExtractCone(g22)
	if err != nil {
		t.Fatal(err)
	}
	// Cone of 22: inputs 1,2,3,6 and gates 10,11,16,22 = 8 gates.
	if cone.NumGates() != 8 {
		t.Errorf("cone gates = %d, want 8", cone.NumGates())
	}
	if cone.NumInputs() != 4 {
		t.Errorf("cone inputs = %d, want 4", cone.NumInputs())
	}
	if cone.NumOutputs() != 1 {
		t.Errorf("cone outputs = %d, want 1", cone.NumOutputs())
	}
	// Names survive.
	if _, ok := cone.GateByName("16"); !ok {
		t.Error("cone lost gate 16")
	}
	// Functional agreement on the shared support for all assignments.
	for v := 0; v < 32; v++ {
		ins := make(map[int]bool)
		for i, in := range c.Inputs() {
			ins[in] = v>>uint(i)&1 == 1
		}
		origVals := evalAll(c, ins)
		coneIns := make(map[int]bool)
		for origID, coneID := range idMap {
			if c.Type(origID) == Input {
				coneIns[coneID] = ins[origID]
			}
		}
		coneVals := evalAll(cone, coneIns)
		if coneVals[cone.Outputs()[0]] != origVals[g22] {
			t.Fatalf("vector %d: cone output disagrees with original", v)
		}
	}
}

func TestExtractConeMultipleRoots(t *testing.T) {
	c := buildC17(t)
	g22, _ := c.GateByName("22")
	g23, _ := c.GateByName("23")
	cone, _, err := c.ExtractCone(g22, g23)
	if err != nil {
		t.Fatal(err)
	}
	// Union of both cones is the whole circuit.
	if cone.NumGates() != c.NumGates() {
		t.Errorf("combined cone = %d gates, want %d", cone.NumGates(), c.NumGates())
	}
	if cone.NumOutputs() != 2 {
		t.Errorf("outputs = %d, want 2", cone.NumOutputs())
	}
}

func TestExtractConeErrors(t *testing.T) {
	c := buildC17(t)
	if _, _, err := c.ExtractCone(); err == nil {
		t.Error("expected error for no signals")
	}
	if _, _, err := c.ExtractCone(999); err == nil {
		t.Error("expected error for out-of-range signal")
	}
}

// TestExtractConeQuickProperty: extracting the cone of any signal yields
// a valid circuit whose output equals the original signal on random
// vectors.
func TestExtractConeQuickProperty(t *testing.T) {
	c := buildC17(t)
	f := func(sigRaw uint8, vec uint8) bool {
		sig := int(sigRaw) % c.NumGates()
		cone, idMap, err := c.ExtractCone(sig)
		if err != nil {
			return false
		}
		ins := make(map[int]bool)
		for i, in := range c.Inputs() {
			ins[in] = vec>>uint(i)&1 == 1
		}
		origVals := evalAll(c, ins)
		coneIns := make(map[int]bool)
		for origID, coneID := range idMap {
			if c.Type(origID) == Input {
				coneIns[coneID] = ins[origID]
			}
		}
		coneVals := evalAll(cone, coneIns)
		return coneVals[cone.Outputs()[0]] == origVals[sig]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
