package netlist

import "fmt"

// Validate re-checks the structural invariants that newCircuit
// establishes at build time: gate/fanin well-formedness, fanin/fanout
// symmetry, topological-order and level consistency (which together imply
// acyclicity), and the input/output bookkeeping. A freshly built Circuit
// always passes; the method exists so the lint pass and tests can confirm
// the invariants still hold after rewrite pipelines (transform.go,
// internal/opt) that rebuild circuits, catching any future rewrite bug at
// its source instead of deep inside a simulator.
func (c *Circuit) Validate() error {
	n := len(c.gates)

	// Gates: types, names, arity, fanin ranges, name index.
	if len(c.byName) != n {
		return fmt.Errorf("netlist: name index has %d entries for %d gates", len(c.byName), n)
	}
	inputs := 0
	for id, g := range c.gates {
		if !g.Type.Valid() {
			return fmt.Errorf("netlist: gate %d (%q): invalid type", id, g.Name)
		}
		if g.Name == "" {
			return fmt.Errorf("netlist: gate %d: empty name", id)
		}
		if got, ok := c.byName[g.Name]; !ok || got != id {
			return fmt.Errorf("netlist: name index maps %q to %d, want %d", g.Name, got, id)
		}
		if cnt, min, max := len(g.Fanin), g.Type.MinFanin(), g.Type.MaxFanin(); cnt < min || (max >= 0 && cnt > max) {
			return fmt.Errorf("netlist: gate %q (%s): fanin count %d out of range", g.Name, g.Type, cnt)
		}
		for pin, f := range g.Fanin {
			if f < 0 || f >= n {
				return fmt.Errorf("netlist: gate %q pin %d: fanin id %d out of range", g.Name, pin, f)
			}
		}
		if g.Type == Input {
			inputs++
		}
	}

	// Input list: exactly the Input-typed gates, in ascending ID order.
	if len(c.inputs) != inputs {
		return fmt.Errorf("netlist: input list has %d entries, circuit has %d Input gates", len(c.inputs), inputs)
	}
	prev := -1
	for _, id := range c.inputs {
		if id <= prev || id >= n || c.gates[id].Type != Input {
			return fmt.Errorf("netlist: input list entry %d is not a fresh Input gate", id)
		}
		prev = id
	}

	// Output list and flags.
	if len(c.outputs) == 0 {
		return fmt.Errorf("netlist: circuit has no primary outputs")
	}
	if len(c.isOutput) != n {
		return fmt.Errorf("netlist: output flag slice has %d entries for %d gates", len(c.isOutput), n)
	}
	marked := 0
	seen := make(map[int]bool, len(c.outputs))
	for _, o := range c.outputs {
		if o < 0 || o >= n {
			return fmt.Errorf("netlist: output id %d out of range", o)
		}
		if seen[o] {
			return fmt.Errorf("netlist: output id %d listed twice", o)
		}
		seen[o] = true
		if !c.isOutput[o] {
			return fmt.Errorf("netlist: output id %d not flagged", o)
		}
	}
	for id, f := range c.isOutput {
		if f {
			marked++
			if !seen[id] {
				return fmt.Errorf("netlist: gate %d flagged as output but not listed", id)
			}
		}
	}
	if marked != len(c.outputs) {
		return fmt.Errorf("netlist: %d gates flagged as outputs, %d listed", marked, len(c.outputs))
	}

	// Fanin/fanout symmetry: the fanout lists must be exactly the
	// transpose of the fanin lists, with one entry per consuming pin, in
	// gate-ID order (the order newCircuit builds them in).
	if len(c.fanout) != n {
		return fmt.Errorf("netlist: fanout table has %d entries for %d gates", len(c.fanout), n)
	}
	want := make([][]int, n)
	for id, g := range c.gates {
		for _, f := range g.Fanin {
			want[f] = append(want[f], id)
		}
	}
	for id := range want {
		if len(want[id]) != len(c.fanout[id]) {
			return fmt.Errorf("netlist: signal %d: fanout count %d, transpose of fanin gives %d",
				id, len(c.fanout[id]), len(want[id]))
		}
		for i, s := range want[id] {
			if c.fanout[id][i] != s {
				return fmt.Errorf("netlist: signal %d: fanout entry %d is %d, transpose of fanin gives %d",
					id, i, c.fanout[id][i], s)
			}
		}
	}

	// Topological order: a permutation in which every gate follows all of
	// its fanins. Together with the fanin range checks this implies the
	// circuit is acyclic.
	if len(c.order) != n {
		return fmt.Errorf("netlist: topo order has %d entries for %d gates", len(c.order), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range c.order {
		if id < 0 || id >= n {
			return fmt.Errorf("netlist: topo order entry %d out of range", id)
		}
		if pos[id] != -1 {
			return fmt.Errorf("netlist: gate %d appears twice in topo order", id)
		}
		pos[id] = i
	}
	for id, g := range c.gates {
		for _, f := range g.Fanin {
			if pos[f] >= pos[id] {
				return fmt.Errorf("netlist: topo order places gate %d before its fanin %d", id, f)
			}
		}
	}

	// Levels: 0 for fanin-free gates, 1 + max(fanin levels) otherwise.
	if len(c.level) != n {
		return fmt.Errorf("netlist: level slice has %d entries for %d gates", len(c.level), n)
	}
	for id, g := range c.gates {
		want := 0
		for _, f := range g.Fanin {
			if l := c.level[f] + 1; l > want {
				want = l
			}
		}
		if c.level[id] != want {
			return fmt.Errorf("netlist: gate %d has level %d, want %d", id, c.level[id], want)
		}
	}
	return nil
}
