package netlist

import "testing"

// evalAll evaluates the circuit on the given input assignment and returns
// all signal values.
func evalAll(c *Circuit, inputs map[int]bool) []bool {
	vals := make([]bool, c.NumGates())
	buf := make([]bool, 0, 8)
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == Input {
			vals[id] = inputs[id]
			continue
		}
		buf = buf[:0]
		for _, f := range g.Fanin {
			buf = append(buf, vals[f])
		}
		vals[id] = g.Type.Eval(buf)
	}
	return vals
}

func TestInsertObservationPoint(t *testing.T) {
	c := buildC17(t)
	g11, _ := c.GateByName("11")
	mod, err := c.InsertTestPoints([]TestPoint{{Signal: g11, Kind: Observe}})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if got, want := mod.NumOutputs(), c.NumOutputs()+1; got != want {
		t.Errorf("outputs = %d, want %d", got, want)
	}
	if got, want := mod.NumInputs(), c.NumInputs(); got != want {
		t.Errorf("inputs = %d, want %d", got, want)
	}
	// Functional equivalence on original outputs for all 32 input vectors.
	for v := 0; v < 32; v++ {
		ins := make(map[int]bool)
		for i, in := range c.Inputs() {
			ins[in] = v>>i&1 == 1
		}
		origVals := evalAll(c, ins)
		modIns := make(map[int]bool)
		for i := range c.Inputs() {
			modIns[mod.Inputs()[i]] = v>>i&1 == 1
		}
		modVals := evalAll(mod, modIns)
		for i, o := range c.Outputs() {
			if origVals[o] != modVals[mod.Outputs()[i]] {
				t.Fatalf("vector %d: output %d differs after observe insertion", v, i)
			}
		}
		// The observation output must equal the tapped signal.
		obs := mod.Outputs()[len(mod.Outputs())-1]
		if modVals[obs] != origVals[g11] {
			t.Fatalf("vector %d: observation point value mismatch", v)
		}
	}
}

func TestInsertControlPoints(t *testing.T) {
	c := buildC17(t)
	g11, _ := c.GateByName("11")
	for _, kind := range []TestPointKind{Control0, Control1} {
		mod, err := c.InsertTestPoints([]TestPoint{{Signal: g11, Kind: kind}})
		if err != nil {
			t.Fatalf("insert %v: %v", kind, err)
		}
		if got, want := mod.NumInputs(), c.NumInputs()+1; got != want {
			t.Errorf("%v: inputs = %d, want %d", kind, got, want)
		}
		// With the test input at its passive value the circuit must be
		// functionally identical. Passive value: 1 for Control0 (AND),
		// 0 for Control1 (OR).
		passive := kind == Control0
		tpIn := mod.Inputs()[len(mod.Inputs())-1]
		for v := 0; v < 32; v++ {
			ins := make(map[int]bool)
			for i, in := range c.Inputs() {
				ins[in] = v>>i&1 == 1
			}
			origVals := evalAll(c, ins)
			modIns := make(map[int]bool)
			for i := range c.Inputs() {
				modIns[mod.Inputs()[i]] = v>>i&1 == 1
			}
			modIns[tpIn] = passive
			modVals := evalAll(mod, modIns)
			for i, o := range c.Outputs() {
				if origVals[o] != modVals[mod.Outputs()[i]] {
					t.Fatalf("%v vector %d: output differs with passive test input", kind, v)
				}
			}
			// With the active value, the gated line is forced.
			modIns[tpIn] = !passive
			modVals = evalAll(mod, modIns)
			gated, ok := mod.GateByName(c.GateName(g11) + "_cp0")
			if !ok {
				t.Fatal("gated signal not found")
			}
			forced := kind == Control1
			if modVals[gated] != forced {
				t.Fatalf("%v vector %d: gated line = %v, want forced %v", kind, v, modVals[gated], forced)
			}
		}
	}
}

func TestInsertFullCut(t *testing.T) {
	c := buildC17(t)
	g11, _ := c.GateByName("11")
	mod, err := c.InsertTestPoints([]TestPoint{{Signal: g11, Kind: FullCut}})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if got, want := mod.NumInputs(), c.NumInputs()+1; got != want {
		t.Errorf("inputs = %d, want %d", got, want)
	}
	if got, want := mod.NumOutputs(), c.NumOutputs()+1; got != want {
		t.Errorf("outputs = %d, want %d", got, want)
	}
	// With the cut input driven to the value the cut signal computes, the
	// circuit is functionally identical.
	tpIn := mod.Inputs()[len(mod.Inputs())-1]
	for v := 0; v < 32; v++ {
		ins := make(map[int]bool)
		for i, in := range c.Inputs() {
			ins[in] = v>>i&1 == 1
		}
		origVals := evalAll(c, ins)
		modIns := make(map[int]bool)
		for i := range c.Inputs() {
			modIns[mod.Inputs()[i]] = v>>i&1 == 1
		}
		modIns[tpIn] = origVals[g11]
		modVals := evalAll(mod, modIns)
		for i, o := range c.Outputs() {
			if origVals[o] != modVals[mod.Outputs()[i]] {
				t.Fatalf("vector %d: output differs with consistent cut input", v)
			}
		}
	}
}

func TestInsertMultipleControlPointsSameSignal(t *testing.T) {
	// Two control points on the same signal must compose, not dangle.
	b := NewBuilder("chain")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	o := b.BufGate("o", g)
	b.MarkOutput(o)
	c := b.MustBuild()
	gid, _ := c.GateByName("g")
	mod, err := c.InsertTestPoints([]TestPoint{
		{Signal: gid, Kind: Control0},
		{Signal: gid, Kind: Control1},
	})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Inputs: a, b, tp0, tp1. With tp0 passive(1) and tp1 active(1) the
	// output is forced to 1 regardless of a,b. With tp0 active(0) and tp1
	// passive(0) the output is forced to 0.
	if mod.NumInputs() != 4 {
		t.Fatalf("inputs = %d, want 4", mod.NumInputs())
	}
	tp0 := mod.Inputs()[2]
	tp1 := mod.Inputs()[3]
	for v := 0; v < 4; v++ {
		ins := map[int]bool{
			mod.Inputs()[0]: v&1 == 1,
			mod.Inputs()[1]: v&2 == 2,
			tp0:             true, // passive for Control0
			tp1:             true, // active for Control1
		}
		vals := evalAll(mod, ins)
		if !vals[mod.Outputs()[0]] {
			t.Errorf("vector %d: Control1 active should force output 1", v)
		}
		ins[tp0] = false // active for Control0
		ins[tp1] = false // passive for Control1
		vals = evalAll(mod, ins)
		if vals[mod.Outputs()[0]] {
			t.Errorf("vector %d: Control0 active should force output 0", v)
		}
	}
}

func TestInsertTestPointBadSignal(t *testing.T) {
	c := buildC17(t)
	if _, err := c.InsertTestPoints([]TestPoint{{Signal: 999, Kind: Observe}}); err == nil {
		t.Error("expected error for out-of-range signal")
	}
}

func TestExpandXor(t *testing.T) {
	b := NewBuilder("xors")
	a := b.Input("a")
	x := b.Input("b")
	y := b.Input("c")
	g1 := b.XorGate("g1", a, x, y) // 3-input XOR
	g2 := b.XnorGate("g2", g1, a)
	b.MarkOutput(g2)
	c := b.MustBuild()
	exp, err := c.ExpandXor()
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for id := 0; id < exp.NumGates(); id++ {
		if tp := exp.Type(id); tp == Xor || tp == Xnor {
			t.Fatalf("expanded circuit still contains %v", tp)
		}
	}
	// Functional equivalence across all 8 input vectors.
	for v := 0; v < 8; v++ {
		ins := make(map[int]bool)
		expIns := make(map[int]bool)
		for i := range c.Inputs() {
			bit := v>>i&1 == 1
			ins[c.Inputs()[i]] = bit
			expIns[exp.Inputs()[i]] = bit
		}
		got := evalAll(exp, expIns)[exp.Outputs()[0]]
		want := evalAll(c, ins)[c.Outputs()[0]]
		if got != want {
			t.Errorf("vector %d: expanded = %v, original = %v", v, got, want)
		}
	}
	// Original names must survive expansion.
	if _, ok := exp.GateByName("g1"); !ok {
		t.Error("expanded circuit lost name g1")
	}
}

func TestTestPointKindString(t *testing.T) {
	for k, want := range map[TestPointKind]string{
		Observe: "observe", Control0: "control0", Control1: "control1", FullCut: "cut",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
