package netlist

// IsStem reports whether the signal is a stem: a primary output or a
// signal with fanout count other than exactly one. Stems head fanout-free
// regions; every fault effect inside an FFR must pass through its stem.
func (c *Circuit) IsStem(id int) bool {
	return c.isOutput[id] || len(c.fanout[id]) != 1
}

// IsFanoutFree reports whether the circuit is a forest: every signal feeds
// at most one gate pin, no signal is both a primary output and an internal
// fanin, and no gate consumes the same signal on two pins.
func (c *Circuit) IsFanoutFree() bool {
	for id := range c.gates {
		n := len(c.fanout[id])
		if n > 1 {
			return false
		}
		if c.isOutput[id] && n != 0 {
			return false
		}
	}
	return true
}

// FFR describes one fanout-free region: the maximal single-fanout cone
// feeding a stem.
type FFR struct {
	Stem  int   // the stem signal heading the region
	Gates []int // all gates whose effects reach the stem inside the region, including the stem
}

// FFRs decomposes the circuit into fanout-free regions. Every gate belongs
// to exactly one region: the one headed by the first stem reached when
// walking forward through single-fanout signals. Regions are returned in
// topological order of their stems; Gates within each region are in
// topological order.
func (c *Circuit) FFRs() []FFR {
	regionOf := make([]int, len(c.gates)) // gate -> stem id
	for _, id := range c.order {
		if c.IsStem(id) {
			regionOf[id] = id
		}
	}
	// Walk in reverse topological order so a non-stem gate inherits the
	// region of its unique consumer.
	for i := len(c.order) - 1; i >= 0; i-- {
		id := c.order[i]
		if !c.IsStem(id) {
			regionOf[id] = regionOf[c.fanout[id][0]]
		}
	}
	byStem := make(map[int]*FFR)
	var stems []int
	for _, id := range c.order {
		stem := regionOf[id]
		r, ok := byStem[stem]
		if !ok {
			r = &FFR{Stem: stem}
			byStem[stem] = r
			stems = append(stems, stem)
		}
		r.Gates = append(r.Gates, id)
	}
	out := make([]FFR, 0, len(stems))
	for _, stem := range stems {
		out = append(out, *byStem[stem])
	}
	return out
}

// RegionOf returns, for every gate, the stem heading its fanout-free
// region.
func (c *Circuit) RegionOf() []int {
	regionOf := make([]int, len(c.gates))
	for i := len(c.order) - 1; i >= 0; i-- {
		id := c.order[i]
		if c.IsStem(id) {
			regionOf[id] = id
		} else {
			regionOf[id] = regionOf[c.fanout[id][0]]
		}
	}
	return regionOf
}

// FaninCone returns all gate IDs (including roots and the target) in the
// transitive fanin of id, in topological order.
func (c *Circuit) FaninCone(id int) []int {
	seen := make(map[int]bool)
	var stack []int
	stack = append(stack, id)
	seen[id] = true
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.gates[g].Fanin {
			if !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	cone := make([]int, 0, len(seen))
	for _, g := range c.order {
		if seen[g] {
			cone = append(cone, g)
		}
	}
	return cone
}

// FanoutCone returns all gate IDs (including the source) in the transitive
// fanout of id, in topological order.
func (c *Circuit) FanoutCone(id int) []int {
	seen := make(map[int]bool)
	stack := []int{id}
	seen[id] = true
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.fanout[g] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	cone := make([]int, 0, len(seen))
	for _, g := range c.order {
		if seen[g] {
			cone = append(cone, g)
		}
	}
	return cone
}

// HasReconvergentFanout reports whether any stem's fanout branches
// reconverge at a common gate, the structural property that makes optimal
// test point insertion NP-complete.
func (c *Circuit) HasReconvergentFanout() bool {
	// A stem s is reconvergent if two distinct fanout branches both reach
	// some gate. Equivalently, walking the fanout cone of s, some gate is
	// reachable from two different immediate successors of s.
	mark := make([]int, len(c.gates)) // bitmask of branch indices (capped)
	for id := range c.gates {
		outs := c.fanout[id]
		if len(outs) < 2 {
			continue
		}
		for i := range mark {
			mark[i] = 0
		}
		// Propagate per-branch bits forward in topological order.
		limit := len(outs)
		if limit > 62 {
			limit = 62
		}
		for b := 0; b < limit; b++ {
			mark[outs[b]] |= 1 << b
		}
		for _, g := range c.order {
			if c.level[g] <= c.level[id] {
				continue
			}
			m := mark[g]
			for _, f := range c.gates[g].Fanin {
				m |= mark[f]
			}
			if m != 0 && m&(m-1) != 0 {
				return true // two branch bits met
			}
			mark[g] = m
		}
	}
	return false
}
