package netlist

import (
	"strings"
	"testing"
)

// validateTestCircuit builds a small reconvergent circuit with every gate
// type represented.
func validateTestCircuit(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("val")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	n1 := b.NandGate("n1", a, bb)
	n2 := b.NorGate("n2", bb, cc)
	x := b.XorGate("x", n1, n2)
	inv := b.NotGate("inv", n1)
	buf := b.BufGate("buf", inv)
	z1 := b.AndGate("z1", x, buf)
	z2 := b.XnorGate("z2", x, cc)
	z3 := b.OrGate("z3", z1, z2)
	b.MarkOutput(z3)
	b.MarkOutput(z2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidateFreshCircuit(t *testing.T) {
	if err := validateTestCircuit(t).Validate(); err != nil {
		t.Errorf("freshly built circuit must validate: %v", err)
	}
}

// TestValidateAfterTransforms re-checks the invariants on the outputs of
// every netlist rewrite: test point insertion of each kind and XOR
// expansion.
func TestValidateAfterTransforms(t *testing.T) {
	c := validateTestCircuit(t)
	n1, _ := c.GateByName("n1")
	x, _ := c.GateByName("x")
	for _, kind := range []TestPointKind{Observe, Control0, Control1, FullCut} {
		mod, err := c.InsertTestPoints([]TestPoint{{Signal: n1, Kind: kind}, {Signal: x, Kind: Observe}})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := mod.Validate(); err != nil {
			t.Errorf("after inserting %v: %v", kind, err)
		}
	}
	exp, err := c.ExpandXor()
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(); err != nil {
		t.Errorf("after ExpandXor: %v", err)
	}
}

// TestValidateCatchesCorruption tampers with each private invariant in
// turn and asserts Validate reports it. Each case gets a fresh circuit.
func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(c *Circuit)
		wantSub string
	}{
		{"level", func(c *Circuit) { c.level[len(c.level)-1] += 3 }, "level"},
		{"topo-order", func(c *Circuit) {
			c.order[0], c.order[len(c.order)-1] = c.order[len(c.order)-1], c.order[0]
		}, "topo order"},
		{"topo-dup", func(c *Circuit) { c.order[1] = c.order[0] }, "twice"},
		{"fanout-missing", func(c *Circuit) {
			for id := range c.fanout {
				if len(c.fanout[id]) > 0 {
					c.fanout[id] = c.fanout[id][:len(c.fanout[id])-1]
					break
				}
			}
		}, "fanout"},
		{"name-index", func(c *Circuit) {
			c.byName[c.gates[0].Name] = 1
			c.byName[c.gates[1].Name] = 0
		}, "name index"},
		{"output-flag", func(c *Circuit) {
			for id := range c.isOutput {
				if !c.isOutput[id] {
					c.isOutput[id] = true
					break
				}
			}
		}, "output"},
		{"output-list", func(c *Circuit) { c.outputs = append(c.outputs, c.outputs[0]) }, "output"},
		{"input-list", func(c *Circuit) { c.inputs = c.inputs[:len(c.inputs)-1] }, "input"},
		{"gate-name", func(c *Circuit) { c.gates[2].Name = "" }, "name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validateTestCircuit(t)
			tc.corrupt(c)
			err := c.Validate()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
