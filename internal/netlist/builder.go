package netlist

import "fmt"

// Builder accumulates gates and produces a validated Circuit. The zero
// Builder is not usable; call NewBuilder.
type Builder struct {
	name     string
	gates    []Gate
	outputs  []int
	names    map[string]int
	reserved map[string]bool
	anon     int
}

// NewBuilder returns an empty Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, names: make(map[string]int), reserved: make(map[string]bool)}
}

// ReserveNames marks names as taken for FreshName/UniqueName generation
// without adding gates. Rewrite passes reserve every original name up
// front so generated names cannot collide with originals added later.
func (b *Builder) ReserveNames(names ...string) {
	for _, n := range names {
		b.reserved[n] = true
	}
}

// SetName changes the name of the circuit under construction.
func (b *Builder) SetName(name string) { b.name = name }

// NumGates returns the number of gates added so far.
func (b *Builder) NumGates() int { return len(b.gates) }

// FreshName returns a generated signal name guaranteed not to collide with
// any name added so far.
func (b *Builder) FreshName(prefix string) string {
	for {
		b.anon++
		name := fmt.Sprintf("%s_%d", prefix, b.anon)
		if _, taken := b.names[name]; !taken && !b.reserved[name] {
			return name
		}
	}
}

// UniqueName returns preferred when no gate holds it yet, otherwise a
// fresh generated variant.
func (b *Builder) UniqueName(preferred string) string {
	if _, taken := b.names[preferred]; !taken && !b.reserved[preferred] {
		return preferred
	}
	return b.FreshName(preferred)
}

// Add appends a gate with the given type, name and fanin IDs, returning the
// new gate's ID. An empty name is replaced with a fresh generated name.
// Structural errors (bad arity, duplicate names, dangling fanin) are
// reported by Build, so call sites can chain Adds without per-call checks.
func (b *Builder) Add(t GateType, name string, fanin ...int) int {
	if name == "" {
		name = b.FreshName(typePrefix(t))
	}
	id := len(b.gates)
	b.gates = append(b.gates, Gate{Type: t, Name: name, Fanin: fanin})
	if _, taken := b.names[name]; !taken {
		b.names[name] = id
	}
	return id
}

func typePrefix(t GateType) string {
	switch t {
	case Input:
		return "in"
	case Not:
		return "inv"
	default:
		return "n"
	}
}

// Input adds a primary input.
func (b *Builder) Input(name string) int { return b.Add(Input, name) }

// BufGate adds a buffer.
func (b *Builder) BufGate(name string, in int) int { return b.Add(Buf, name, in) }

// NotGate adds an inverter.
func (b *Builder) NotGate(name string, in int) int { return b.Add(Not, name, in) }

// AndGate adds an AND gate.
func (b *Builder) AndGate(name string, in ...int) int { return b.Add(And, name, in...) }

// NandGate adds a NAND gate.
func (b *Builder) NandGate(name string, in ...int) int { return b.Add(Nand, name, in...) }

// OrGate adds an OR gate.
func (b *Builder) OrGate(name string, in ...int) int { return b.Add(Or, name, in...) }

// NorGate adds a NOR gate.
func (b *Builder) NorGate(name string, in ...int) int { return b.Add(Nor, name, in...) }

// XorGate adds an XOR gate.
func (b *Builder) XorGate(name string, in ...int) int { return b.Add(Xor, name, in...) }

// XnorGate adds an XNOR gate.
func (b *Builder) XnorGate(name string, in ...int) int { return b.Add(Xnor, name, in...) }

// MarkOutput designates the signal as a primary output. Duplicate marks
// are tolerated.
func (b *Builder) MarkOutput(id int) { b.outputs = append(b.outputs, id) }

// IsMarkedOutput reports whether the signal has been marked as a primary
// output so far.
func (b *Builder) IsMarkedOutput(id int) bool {
	for _, o := range b.outputs {
		if o == id {
			return true
		}
	}
	return false
}

// GateByName returns the ID of the first gate added with the given name.
func (b *Builder) GateByName(name string) (int, bool) {
	id, ok := b.names[name]
	return id, ok
}

// Gate returns the gate with the given ID as currently recorded. The
// Fanin slice aliases builder state; treat it as read-only.
func (b *Builder) Gate(id int) Gate { return b.gates[id] }

// ReplaceFanin rewires pin of gate id to the signal newIn. Used by the
// test point insertion rewrites.
func (b *Builder) ReplaceFanin(id, pin, newIn int) {
	b.gates[id].Fanin[pin] = newIn
}

// Build validates the accumulated gates and returns the Circuit.
func (b *Builder) Build() (*Circuit, error) {
	gates := make([]Gate, len(b.gates))
	for id, g := range b.gates {
		fanin := make([]int, len(g.Fanin))
		copy(fanin, g.Fanin)
		gates[id] = Gate{Type: g.Type, Name: g.Name, Fanin: fanin}
	}
	return newCircuit(b.name, gates, append([]int(nil), b.outputs...))
}

// MustBuild is Build for circuits that are known-correct by construction
// (generators, tests); it panics on error.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("netlist: MustBuild: %v", err))
	}
	return c
}
