package netlist

import "fmt"

// ExtractCone builds a standalone circuit containing exactly the combined
// transitive fanin cones of the given signals, which become its primary
// outputs. Signals that cross the cone boundary keep their names, so
// analyses on the extracted circuit map back to the original by name.
// The returned map translates original gate IDs to extracted IDs.
//
// Use it to isolate the logic feeding a hard fault for exhaustive
// analysis that would be infeasible on the whole circuit.
func (c *Circuit) ExtractCone(signals ...int) (*Circuit, map[int]int, error) {
	if len(signals) == 0 {
		return nil, nil, fmt.Errorf("netlist: ExtractCone needs at least one signal")
	}
	inCone := make(map[int]bool)
	for _, s := range signals {
		if s < 0 || s >= len(c.gates) {
			return nil, nil, fmt.Errorf("netlist: ExtractCone signal %d out of range", s)
		}
		for _, g := range c.FaninCone(s) {
			inCone[g] = true
		}
	}
	b := NewBuilder(c.name + "_cone")
	idMap := make(map[int]int, len(inCone))
	for _, id := range c.order {
		if !inCone[id] {
			continue
		}
		g := c.gates[id]
		if g.Type == Input {
			idMap[id] = b.Input(g.Name)
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for pin, f := range g.Fanin {
			fanin[pin] = idMap[f]
		}
		idMap[id] = b.Add(g.Type, g.Name, fanin...)
	}
	for _, s := range signals {
		b.MarkOutput(idMap[s])
	}
	ckt, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return ckt, idMap, nil
}
