package netlist

import "fmt"

// TestPointKind enumerates the kinds of test points that can be inserted
// into a circuit.
type TestPointKind uint8

// Test point kinds. Observe taps a signal to a new primary output.
// Control0/Control1 gate a signal with a new test input through an
// AND/OR gate so the tester can force it to 0/1. FullCut observes the
// original signal and replaces all its consumers with a fresh primary
// input — the "cut" used by the Hayes–Friedman test-count objective,
// equivalent to a combined control-and-observation point.
const (
	Observe TestPointKind = iota
	Control0
	Control1
	FullCut
)

// String returns the mnemonic of the test point kind.
func (k TestPointKind) String() string {
	switch k {
	case Observe:
		return "observe"
	case Control0:
		return "control0"
	case Control1:
		return "control1"
	case FullCut:
		return "cut"
	}
	return fmt.Sprintf("TestPointKind(%d)", uint8(k))
}

// TestPoint is a placement decision: insert a test point of the given kind
// at the named signal.
type TestPoint struct {
	Signal int // signal ID in the original circuit
	Kind   TestPointKind
}

// InsertTestPoints returns a new circuit with the given test points
// inserted. Signal IDs in the plan refer to the receiver circuit; gate IDs
// of pre-existing gates are preserved in the result (new gates are
// appended), so analyses carried out on the original circuit can be mapped
// onto the modified one.
//
// Rewrites per kind:
//   - Observe: signal is additionally marked as a primary output (through a
//     dedicated observation buffer so the tap is itself a distinct line).
//   - Control0: consumers of signal s are rewired to AND(s, tp_in) where
//     tp_in is a new primary input; driving tp_in=0 forces the line to 0.
//   - Control1: likewise through OR(s, tp_in); tp_in=1 forces the line to 1.
//   - FullCut: signal is observed via a buffer marked as a primary output,
//     and all consumers are rewired to a fresh primary input.
func (c *Circuit) InsertTestPoints(points []TestPoint) (*Circuit, error) {
	for _, p := range points {
		if p.Signal < 0 || p.Signal >= len(c.gates) {
			return nil, fmt.Errorf("netlist: test point signal %d out of range", p.Signal)
		}
	}
	b := c.Clone()
	// cur maps an original signal to the signal its consumers should read
	// after the rewrites applied so far, so multiple test points on the
	// same signal compose in insertion order.
	cur := make(map[int]int)
	current := func(s int) int {
		if r, ok := cur[s]; ok {
			return r
		}
		return s
	}
	for i, p := range points {
		s := p.Signal
		name := c.gates[s].Name
		switch p.Kind {
		case Observe:
			op := b.BufGate(b.UniqueName(fmt.Sprintf("%s_op%d", name, i)), current(s))
			b.MarkOutput(op)
		case Control0, Control1:
			tpIn := b.Input(b.UniqueName(fmt.Sprintf("%s_tp%d", name, i)))
			var gated int
			if p.Kind == Control0 {
				gated = b.AndGate(b.UniqueName(fmt.Sprintf("%s_cp%d", name, i)), current(s), tpIn)
			} else {
				gated = b.OrGate(b.UniqueName(fmt.Sprintf("%s_cp%d", name, i)), current(s), tpIn)
			}
			c.rewireConsumers(b, s, current(s), gated)
			cur[s] = gated
		case FullCut:
			op := b.BufGate(b.UniqueName(fmt.Sprintf("%s_op%d", name, i)), current(s))
			b.MarkOutput(op)
			tpIn := b.Input(b.UniqueName(fmt.Sprintf("%s_tp%d", name, i)))
			c.rewireConsumers(b, s, current(s), tpIn)
			cur[s] = tpIn
		default:
			return nil, fmt.Errorf("netlist: unknown test point kind %v", p.Kind)
		}
	}
	return b.Build()
}

// rewireConsumers redirects every pin of the original consumers of signal
// s that currently reads `from` to read `to` instead. Only gates that
// existed in the original circuit are touched; gates inserted for earlier
// test points keep their connections.
func (c *Circuit) rewireConsumers(b *Builder, s, from, to int) {
	for _, consumer := range c.fanout[s] {
		g := b.Gate(consumer)
		for pin, f := range g.Fanin {
			if f == from {
				b.ReplaceFanin(consumer, pin, to)
			}
		}
	}
}

// ExpandXor returns a functionally equivalent circuit in which every XOR
// and XNOR gate has been decomposed into AND/OR/NOT gates. Multi-input
// XORs are decomposed as a balanced chain of 2-input XORs first. The
// Hayes–Friedman test-count theory applies only to unate gate networks, so
// analyses in internal/testcount require expanded circuits.
//
// Note the expansion introduces fanout (each XOR input feeds two gates), so
// an expanded circuit is generally not fanout-free even if the original
// was.
func (c *Circuit) ExpandXor() (*Circuit, error) {
	b := NewBuilder(c.name)
	// Reserve every original name so generated decomposition names cannot
	// collide with originals copied later in topological order.
	for _, g := range c.gates {
		b.ReserveNames(g.Name)
	}
	newID := make([]int, len(c.gates))
	for _, id := range c.order {
		g := c.gates[id]
		fanin := make([]int, len(g.Fanin))
		for pin, f := range g.Fanin {
			fanin[pin] = newID[f]
		}
		switch g.Type {
		case Xor, Xnor:
			cur := fanin[0]
			for i := 1; i < len(fanin); i++ {
				cur = expandXor2(b, cur, fanin[i])
			}
			if g.Type == Xnor {
				cur = b.NotGate("", cur)
			}
			// Preserve the original name on the final signal via a buffer
			// so GateByName lookups keep working.
			newID[id] = b.BufGate(g.Name, cur)
		default:
			newID[id] = b.Add(g.Type, g.Name, fanin...)
		}
	}
	for _, o := range c.outputs {
		b.MarkOutput(newID[o])
	}
	return b.Build()
}

// expandXor2 emits a ^ b = (a AND NOT b) OR (NOT a AND b).
func expandXor2(b *Builder, a, x int) int {
	na := b.NotGate("", a)
	nx := b.NotGate("", x)
	t1 := b.AndGate("", a, nx)
	t2 := b.AndGate("", na, x)
	return b.OrGate("", t1, t2)
}
