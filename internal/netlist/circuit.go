package netlist

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Circuit is an immutable, validated gate-level combinational circuit.
// Construct one with a Builder or by parsing a .bench file. All derived
// structure (fanout lists, levels, topological order) is computed once at
// build time.
type Circuit struct {
	name    string
	gates   []Gate
	inputs  []int
	outputs []int

	isOutput []bool
	fanout   [][]int // consumer gate IDs per signal (duplicates if multi-pin)
	level    []int   // logic level; inputs are level 0
	order    []int   // topological order, inputs first
	byName   map[string]int
}

// ErrCombinationalLoop is returned when a circuit under construction
// contains a cycle.
var ErrCombinationalLoop = errors.New("netlist: combinational loop")

// newCircuit validates the raw gate list and computes derived structure.
func newCircuit(name string, gates []Gate, outputs []int) (*Circuit, error) {
	c := &Circuit{
		name:   name,
		gates:  gates,
		byName: make(map[string]int, len(gates)),
	}
	for id, g := range gates {
		if !g.Type.Valid() {
			return nil, fmt.Errorf("netlist: gate %d (%q): invalid type", id, g.Name)
		}
		if g.Name == "" {
			return nil, fmt.Errorf("netlist: gate %d: empty name", id)
		}
		if prev, dup := c.byName[g.Name]; dup {
			return nil, fmt.Errorf("netlist: duplicate gate name %q (ids %d and %d)", g.Name, prev, id)
		}
		c.byName[g.Name] = id
		if n, min, max := len(g.Fanin), g.Type.MinFanin(), g.Type.MaxFanin(); n < min || (max >= 0 && n > max) {
			return nil, fmt.Errorf("netlist: gate %q (%s): fanin count %d out of range", g.Name, g.Type, n)
		}
		for pin, f := range g.Fanin {
			if f < 0 || f >= len(gates) {
				return nil, fmt.Errorf("netlist: gate %q pin %d: fanin id %d out of range", g.Name, pin, f)
			}
		}
		if g.Type == Input {
			c.inputs = append(c.inputs, id)
		}
	}

	c.isOutput = make([]bool, len(gates))
	for _, o := range outputs {
		if o < 0 || o >= len(gates) {
			return nil, fmt.Errorf("netlist: output id %d out of range", o)
		}
		if c.isOutput[o] {
			continue // tolerate duplicate output declarations
		}
		c.isOutput[o] = true
		c.outputs = append(c.outputs, o)
	}
	if len(c.outputs) == 0 {
		return nil, errors.New("netlist: circuit has no primary outputs")
	}

	c.fanout = make([][]int, len(gates))
	for id, g := range gates {
		for _, f := range g.Fanin {
			c.fanout[f] = append(c.fanout[f], id)
		}
	}

	if err := c.levelize(); err != nil {
		return nil, err
	}
	return c, nil
}

// levelize computes the topological order and logic levels via Kahn's
// algorithm, detecting combinational loops.
func (c *Circuit) levelize() error {
	n := len(c.gates)
	c.level = make([]int, n)
	c.order = make([]int, 0, n)
	indeg := make([]int, n)
	for id := range c.gates {
		indeg[id] = len(c.gates[id].Fanin)
	}
	queue := make([]int, 0, n)
	for id := range c.gates {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		c.order = append(c.order, id)
		for _, s := range c.fanout[id] {
			if l := c.level[id] + 1; l > c.level[s] {
				c.level[s] = l
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(c.order) != n {
		return ErrCombinationalLoop
	}
	return nil
}

// Name returns the circuit name.
func (c *Circuit) Name() string { return c.name }

// NumGates returns the total number of gates including primary inputs.
func (c *Circuit) NumGates() int { return len(c.gates) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.outputs) }

// Gate returns the gate with the given ID.
func (c *Circuit) Gate(id int) Gate { return c.gates[id] }

// Type returns the gate type of the given ID.
func (c *Circuit) Type(id int) GateType { return c.gates[id].Type }

// GateName returns the name of the given gate.
func (c *Circuit) GateName(id int) string { return c.gates[id].Name }

// Fanin returns the fanin signal IDs of the given gate. The returned slice
// must not be modified.
func (c *Circuit) Fanin(id int) []int { return c.gates[id].Fanin }

// Fanout returns the consumer gate IDs of the given signal (one entry per
// consuming pin, so a gate consuming the signal twice appears twice). The
// returned slice must not be modified.
func (c *Circuit) Fanout(id int) []int { return c.fanout[id] }

// FanoutCount returns the number of consuming pins of signal id.
func (c *Circuit) FanoutCount(id int) int { return len(c.fanout[id]) }

// Inputs returns the primary input IDs in declaration order. The returned
// slice must not be modified.
func (c *Circuit) Inputs() []int { return c.inputs }

// Outputs returns the primary output IDs in declaration order. The
// returned slice must not be modified.
func (c *Circuit) Outputs() []int { return c.outputs }

// IsOutput reports whether the signal is a primary output.
func (c *Circuit) IsOutput(id int) bool { return c.isOutput[id] }

// Level returns the logic level of the gate (primary inputs are level 0).
func (c *Circuit) Level(id int) int { return c.level[id] }

// Depth returns the maximum logic level over all gates.
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.level {
		if l > d {
			d = l
		}
	}
	return d
}

// TopoOrder returns the gate IDs in a topological order (fanin before
// fanout). The returned slice must not be modified.
func (c *Circuit) TopoOrder() []int { return c.order }

// GateByName returns the ID of the gate with the given name.
func (c *Circuit) GateByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// Clone returns a Builder pre-loaded with a deep copy of the circuit,
// ready for modification.
func (c *Circuit) Clone() *Builder {
	b := NewBuilder(c.name)
	b.gates = make([]Gate, len(c.gates))
	for id, g := range c.gates {
		fanin := make([]int, len(g.Fanin))
		copy(fanin, g.Fanin)
		b.gates[id] = Gate{Type: g.Type, Name: g.Name, Fanin: fanin}
		b.names[g.Name] = id
	}
	b.outputs = append([]int(nil), c.outputs...)
	return b
}

// Stats summarises the structural properties of a circuit.
type Stats struct {
	Gates      int // total gates including inputs
	Inputs     int
	Outputs    int
	Levels     int // circuit depth
	Stems      int // signals with fanout count != 1
	Lines      int // fault sites: stems plus fanout branches
	ByType     map[GateType]int
	FanoutFree bool
}

// Stats computes structural statistics for the circuit.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Gates:      len(c.gates),
		Inputs:     len(c.inputs),
		Outputs:    len(c.outputs),
		Levels:     c.Depth(),
		ByType:     make(map[GateType]int),
		FanoutFree: c.IsFanoutFree(),
	}
	for id, g := range c.gates {
		s.ByType[g.Type]++
		if c.IsStem(id) {
			s.Stems++
		}
		s.Lines++ // the stem itself
		if len(c.fanout[id]) > 1 {
			s.Lines += len(c.fanout[id])
		}
	}
	return s
}

// String renders a compact human-readable summary.
func (c *Circuit) String() string {
	s := c.Stats()
	types := make([]string, 0, len(s.ByType))
	keys := make([]int, 0, len(s.ByType))
	for t := range s.ByType {
		keys = append(keys, int(t))
	}
	sort.Ints(keys)
	for _, t := range keys {
		types = append(types, fmt.Sprintf("%s=%d", GateType(t), s.ByType[GateType(t)]))
	}
	return fmt.Sprintf("%s: %d gates (%d PI, %d PO, depth %d; %s)",
		c.name, s.Gates, s.Inputs, s.Outputs, s.Levels, strings.Join(types, " "))
}
