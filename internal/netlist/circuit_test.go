package netlist

import (
	"strings"
	"testing"
)

// buildC17 constructs the ISCAS'85 c17 benchmark: 5 inputs, 2 outputs,
// 6 NAND gates, with reconvergent fanout at gates 3 and 11.
func buildC17(t testing.TB) *Circuit {
	t.Helper()
	b := NewBuilder("c17")
	g1 := b.Input("1")
	g2 := b.Input("2")
	g3 := b.Input("3")
	g6 := b.Input("6")
	g7 := b.Input("7")
	g10 := b.NandGate("10", g1, g3)
	g11 := b.NandGate("11", g3, g6)
	g16 := b.NandGate("16", g2, g11)
	g19 := b.NandGate("19", g11, g7)
	g22 := b.NandGate("22", g10, g16)
	g23 := b.NandGate("23", g16, g19)
	b.MarkOutput(g22)
	b.MarkOutput(g23)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("c17 build: %v", err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := buildC17(t)
	if got, want := c.NumGates(), 11; got != want {
		t.Errorf("NumGates = %d, want %d", got, want)
	}
	if got, want := c.NumInputs(), 5; got != want {
		t.Errorf("NumInputs = %d, want %d", got, want)
	}
	if got, want := c.NumOutputs(), 2; got != want {
		t.Errorf("NumOutputs = %d, want %d", got, want)
	}
	if got, want := c.Depth(), 3; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
	id, ok := c.GateByName("16")
	if !ok {
		t.Fatal("GateByName(16) not found")
	}
	if c.Type(id) != Nand {
		t.Errorf("gate 16 type = %v, want Nand", c.Type(id))
	}
	if len(c.Fanin(id)) != 2 {
		t.Errorf("gate 16 fanin = %d, want 2", len(c.Fanin(id)))
	}
}

func TestLevelization(t *testing.T) {
	c := buildC17(t)
	for _, in := range c.Inputs() {
		if c.Level(in) != 0 {
			t.Errorf("input %s level = %d, want 0", c.GateName(in), c.Level(in))
		}
	}
	// Every gate must be levelized strictly above all its fanins.
	for _, id := range c.TopoOrder() {
		for _, f := range c.Fanin(id) {
			if c.Level(id) <= c.Level(f) {
				t.Errorf("gate %s level %d not above fanin %s level %d",
					c.GateName(id), c.Level(id), c.GateName(f), c.Level(f))
			}
		}
	}
	// Topological order property: each gate appears after its fanins.
	pos := make(map[int]int)
	for i, id := range c.TopoOrder() {
		pos[id] = i
	}
	for _, id := range c.TopoOrder() {
		for _, f := range c.Fanin(id) {
			if pos[f] >= pos[id] {
				t.Errorf("topo order violated: %s before %s", c.GateName(id), c.GateName(f))
			}
		}
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	b := NewBuilder("loop")
	a := b.Input("a")
	// Create a cycle by self-referencing a future gate ID.
	g1 := b.AndGate("g1", a, 2) // 2 will be g2
	g2 := b.OrGate("g2", g1, a)
	b.MarkOutput(g2)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected combinational loop error, got nil")
	}
}

func TestValidationErrors(t *testing.T) {
	t.Run("no outputs", func(t *testing.T) {
		b := NewBuilder("x")
		b.Input("a")
		if _, err := b.Build(); err == nil {
			t.Error("expected error for circuit with no outputs")
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		b := NewBuilder("x")
		a := b.Input("a")
		b.Add(Buf, "a", a)
		b.MarkOutput(a)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for duplicate name")
		}
	})
	t.Run("bad arity", func(t *testing.T) {
		b := NewBuilder("x")
		a := b.Input("a")
		g := b.Add(And, "g", a) // AND with one input
		b.MarkOutput(g)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for 1-input AND")
		}
	})
	t.Run("fanin out of range", func(t *testing.T) {
		b := NewBuilder("x")
		a := b.Input("a")
		g := b.Add(Buf, "g", a+100)
		b.MarkOutput(g)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for out-of-range fanin")
		}
	})
}

func TestFanoutComputation(t *testing.T) {
	c := buildC17(t)
	g11, _ := c.GateByName("11")
	if got := c.FanoutCount(g11); got != 2 {
		t.Errorf("fanout(11) = %d, want 2", got)
	}
	g22, _ := c.GateByName("22")
	if got := c.FanoutCount(g22); got != 0 {
		t.Errorf("fanout(22) = %d, want 0", got)
	}
	in3, _ := c.GateByName("3")
	if got := c.FanoutCount(in3); got != 2 {
		t.Errorf("fanout(3) = %d, want 2", got)
	}
}

func TestStemsAndFFRs(t *testing.T) {
	c := buildC17(t)
	// Stems in c17: input 3 (fanout 2), gate 11 (fanout 2), gate 16
	// (fanout 2), POs 22 and 23, and inputs 1,2,6,7 have fanout 1 so they
	// are not stems, gates 10 and 19 have fanout 1 so not stems.
	wantStems := map[string]bool{"3": true, "11": true, "16": true, "22": true, "23": true}
	for id := 0; id < c.NumGates(); id++ {
		name := c.GateName(id)
		if got, want := c.IsStem(id), wantStems[name]; got != want {
			t.Errorf("IsStem(%s) = %v, want %v", name, got, want)
		}
	}
	ffrs := c.FFRs()
	// One FFR per stem.
	if len(ffrs) != len(wantStems) {
		t.Fatalf("got %d FFRs, want %d", len(ffrs), len(wantStems))
	}
	total := 0
	for _, r := range ffrs {
		total += len(r.Gates)
		if !c.IsStem(r.Stem) {
			t.Errorf("FFR stem %s is not a stem", c.GateName(r.Stem))
		}
	}
	if total != c.NumGates() {
		t.Errorf("FFRs cover %d gates, want %d (partition property)", total, c.NumGates())
	}
	// Gate 10 must be in the FFR of 22, gate 19 in the FFR of 23.
	region := c.RegionOf()
	g10, _ := c.GateByName("10")
	g22, _ := c.GateByName("22")
	if region[g10] != g22 {
		t.Errorf("region of 10 = %s, want 22", c.GateName(region[g10]))
	}
	g19, _ := c.GateByName("19")
	g23, _ := c.GateByName("23")
	if region[g19] != g23 {
		t.Errorf("region of 19 = %s, want 23", c.GateName(region[g19]))
	}
}

func TestIsFanoutFree(t *testing.T) {
	if buildC17(t).IsFanoutFree() {
		t.Error("c17 reported fanout-free; it has fanout stems")
	}
	b := NewBuilder("tree")
	a := b.Input("a")
	x := b.Input("b")
	y := b.Input("c")
	g1 := b.AndGate("g1", a, x)
	g2 := b.OrGate("g2", g1, y)
	b.MarkOutput(g2)
	c := b.MustBuild()
	if !c.IsFanoutFree() {
		t.Error("tree circuit reported not fanout-free")
	}
}

func TestHasReconvergentFanout(t *testing.T) {
	if !buildC17(t).HasReconvergentFanout() {
		t.Error("c17 must have reconvergent fanout (stem 11 reconverges at 23 via 16 and 19)")
	}
	// A circuit with fanout but no reconvergence.
	b := NewBuilder("fan")
	a := b.Input("a")
	x := b.Input("b")
	g1 := b.NotGate("g1", a)
	o1 := b.AndGate("o1", g1, x)
	o2 := b.BufGate("o2", g1)
	b.MarkOutput(o1)
	b.MarkOutput(o2)
	c := b.MustBuild()
	if c.HasReconvergentFanout() {
		t.Error("non-reconvergent fanout circuit reported reconvergent")
	}
}

func TestFaninFanoutCones(t *testing.T) {
	c := buildC17(t)
	g22, _ := c.GateByName("22")
	cone := c.FaninCone(g22)
	names := make(map[string]bool)
	for _, id := range cone {
		names[c.GateName(id)] = true
	}
	for _, want := range []string{"1", "2", "3", "6", "10", "11", "16", "22"} {
		if !names[want] {
			t.Errorf("fanin cone of 22 missing %s", want)
		}
	}
	if names["7"] || names["19"] || names["23"] {
		t.Errorf("fanin cone of 22 contains gates outside the cone: %v", names)
	}

	g11, _ := c.GateByName("11")
	fcone := c.FanoutCone(g11)
	fnames := make(map[string]bool)
	for _, id := range fcone {
		fnames[c.GateName(id)] = true
	}
	for _, want := range []string{"11", "16", "19", "22", "23"} {
		if !fnames[want] {
			t.Errorf("fanout cone of 11 missing %s", want)
		}
	}
	if fnames["10"] {
		t.Error("fanout cone of 11 must not contain 10")
	}
}

func TestCloneRoundTrip(t *testing.T) {
	c := buildC17(t)
	c2, err := c.Clone().Build()
	if err != nil {
		t.Fatalf("clone build: %v", err)
	}
	if c2.NumGates() != c.NumGates() || c2.NumOutputs() != c.NumOutputs() {
		t.Errorf("clone mismatch: %v vs %v", c2, c)
	}
	for id := 0; id < c.NumGates(); id++ {
		if c.GateName(id) != c2.GateName(id) || c.Type(id) != c2.Type(id) {
			t.Errorf("gate %d differs after clone", id)
		}
	}
}

func TestStatsAndString(t *testing.T) {
	c := buildC17(t)
	s := c.Stats()
	if s.Gates != 11 || s.Inputs != 5 || s.Outputs != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[Nand] != 6 {
		t.Errorf("NAND count = %d, want 6", s.ByType[Nand])
	}
	if s.FanoutFree {
		t.Error("c17 stats claim fanout-free")
	}
	// Lines: every signal is a line; fanout branches add FanoutCount lines
	// for stems with fanout>1. c17: 11 stems + branches of 3,11,16 (2 each) = 17.
	if s.Lines != 17 {
		t.Errorf("Lines = %d, want 17", s.Lines)
	}
	str := c.String()
	if !strings.Contains(str, "c17") || !strings.Contains(str, "NAND=6") {
		t.Errorf("String() = %q", str)
	}
}

func TestWriteDot(t *testing.T) {
	c := buildC17(t)
	var sb strings.Builder
	if err := c.WriteDot(&sb); err != nil {
		t.Fatalf("WriteDot: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Errorf("dot output malformed: %s", out)
	}
}

func TestGateTypeProperties(t *testing.T) {
	cases := []struct {
		t          GateType
		inverting  bool
		unate      bool
		hasCtrl    bool
		ctrlVal    bool
		minF, maxF int
	}{
		{And, false, true, true, false, 2, -1},
		{Nand, true, true, true, false, 2, -1},
		{Or, false, true, true, true, 2, -1},
		{Nor, true, true, true, true, 2, -1},
		{Xor, false, false, false, false, 2, -1},
		{Xnor, true, false, false, false, 2, -1},
		{Not, true, true, false, false, 1, 1},
		{Buf, false, true, false, false, 1, 1},
		{Input, false, true, false, false, 0, 0},
	}
	for _, tc := range cases {
		if tc.t.Inverting() != tc.inverting {
			t.Errorf("%v Inverting = %v", tc.t, tc.t.Inverting())
		}
		if tc.t.Unate() != tc.unate {
			t.Errorf("%v Unate = %v", tc.t, tc.t.Unate())
		}
		v, ok := tc.t.ControllingValue()
		if ok != tc.hasCtrl || (ok && v != tc.ctrlVal) {
			t.Errorf("%v ControllingValue = %v,%v", tc.t, v, ok)
		}
		if tc.t.MinFanin() != tc.minF || tc.t.MaxFanin() != tc.maxF {
			t.Errorf("%v fanin bounds = %d,%d", tc.t, tc.t.MinFanin(), tc.t.MaxFanin())
		}
	}
}

func TestGateTypeEval(t *testing.T) {
	tt := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{Buf, []bool{true}, true},
		{Not, []bool{true}, false},
		{And, []bool{true, true, true}, true},
		{And, []bool{true, false, true}, false},
		{Nand, []bool{true, true}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, true, true}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, false}, false},
	}
	for _, tc := range tt {
		if got := tc.t.Eval(tc.in); got != tc.want {
			t.Errorf("%v.Eval(%v) = %v, want %v", tc.t, tc.in, got, tc.want)
		}
		// EvalWords must agree bitwise with Eval on replicated inputs.
		words := make([]uint64, len(tc.in))
		for i, b := range tc.in {
			if b {
				words[i] = ^uint64(0)
			}
		}
		w := tc.t.EvalWords(words)
		if (w == ^uint64(0)) != tc.want || (w == 0) == tc.want {
			t.Errorf("%v.EvalWords(%v) = %x, disagrees with Eval", tc.t, tc.in, w)
		}
	}
}
