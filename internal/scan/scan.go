// Package scan models the full-scan environment around a combinational
// core, the setting the TPI literature assumes: sequential circuits whose
// flip-flops are stitched into scan chains, so the tester (or BIST
// controller) sees a pure combinational test problem plus a shift cost
// per pattern. The package reads sequential ISCAS'89-style .bench files
// (with DFF gates), performs the full-scan transformation — every
// flip-flop output becomes a pseudo primary input, every flip-flop input
// a pseudo primary output — and computes test application time under a
// scan-cycle cost model, which is what test point insertion ultimately
// buys down.
package scan

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/bench"
	"repro/internal/netlist"
)

// FF records one scanned flip-flop of the original sequential design.
type FF struct {
	Name string
	// D is the core signal feeding the flip-flop (a pseudo primary
	// output of the core).
	D int
	// Q is the core input standing for the flip-flop output (a pseudo
	// primary input).
	Q int
}

// Design is a full-scan design: a combinational core whose inputs are the
// true primary inputs plus one pseudo-input per flip-flop, and whose
// outputs are the true primary outputs plus one pseudo-output per
// flip-flop.
type Design struct {
	Core *netlist.Circuit
	FFs  []FF
	// TruePIs/TruePOs index into Core.Inputs()/Core.Outputs() order:
	// true[i] reports whether the i-th core input/output is a real pin
	// rather than a scan pseudo-pin.
	TruePIs []bool
	TruePOs []bool
	// Chains is the number of scan chains the flip-flops are stitched
	// into (1 if unset).
	Chains int
}

// NumFFs returns the flip-flop count.
func (d *Design) NumFFs() int { return len(d.FFs) }

// ChainLength returns the longest scan chain length under balanced
// stitching.
func (d *Design) ChainLength() int {
	chains := d.Chains
	if chains < 1 {
		chains = 1
	}
	return (len(d.FFs) + chains - 1) / chains
}

// TestCycles returns the tester clock cycles to apply n scan patterns:
// each pattern shifts in through the longest chain (ChainLength cycles),
// applies one capture cycle, and the final response shifts out overlapped
// with the next shift-in; the last unload adds one chain length.
func (d *Design) TestCycles(n int) int {
	if n <= 0 {
		return 0
	}
	L := d.ChainLength()
	return n*(L+1) + L
}

// ParseSequentialBench reads an ISCAS'89-style .bench netlist containing
// DFF gates and returns the full-scan design: `q = DFF(d)` is rewritten
// into INPUT(q) + OUTPUT(d), and the remaining combinational logic is
// parsed as usual. chains selects the scan stitching (<=0 means 1).
func ParseSequentialBench(r io.Reader, name string, chains int) (*Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var combLines []string
	type rawFF struct{ q, d string }
	var ffs []rawFF
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq >= 0 {
			rhs := strings.TrimSpace(line[eq+1:])
			upper := strings.ToUpper(rhs)
			if strings.HasPrefix(upper, "DFF") {
				open := strings.IndexByte(rhs, '(')
				if open < 0 || !strings.HasSuffix(rhs, ")") {
					return nil, fmt.Errorf("scan: line %d: malformed DFF %q", lineNo, line)
				}
				d := strings.TrimSpace(rhs[open+1 : len(rhs)-1])
				if d == "" || strings.ContainsRune(d, ',') {
					return nil, fmt.Errorf("scan: line %d: DFF must have exactly one input", lineNo)
				}
				q := strings.TrimSpace(line[:eq])
				ffs = append(ffs, rawFF{q: q, d: d})
				continue
			}
		}
		combLines = append(combLines, raw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan: read: %w", err)
	}
	// Synthesize the scan-transformed netlist: pseudo PIs and POs for the
	// flip-flops, appended after the original declarations.
	var b strings.Builder
	for _, l := range combLines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, ff := range ffs {
		fmt.Fprintf(&b, "INPUT(%s)\nOUTPUT(%s)\n", ff.q, ff.d)
	}
	core, err := bench.Parse(strings.NewReader(b.String()), name)
	if err != nil {
		return nil, err
	}
	if chains <= 0 {
		chains = 1
	}
	design := &Design{Core: core, Chains: chains}
	pseudoIn := make(map[string]bool, len(ffs))
	pseudoOut := make(map[string]bool, len(ffs))
	for _, ff := range ffs {
		q, ok := core.GateByName(ff.q)
		if !ok {
			return nil, fmt.Errorf("scan: flip-flop output %q missing from core", ff.q)
		}
		d, ok := core.GateByName(ff.d)
		if !ok {
			return nil, fmt.Errorf("scan: flip-flop input %q missing from core", ff.d)
		}
		design.FFs = append(design.FFs, FF{Name: ff.q, Q: q, D: d})
		pseudoIn[ff.q] = true
		pseudoOut[ff.d] = true
	}
	design.TruePIs = make([]bool, core.NumInputs())
	for i, in := range core.Inputs() {
		design.TruePIs[i] = !pseudoIn[core.GateName(in)]
	}
	design.TruePOs = make([]bool, core.NumOutputs())
	for i, o := range core.Outputs() {
		design.TruePOs[i] = !pseudoOut[core.GateName(o)]
	}
	return design, nil
}

// WrapCombinational treats an existing combinational circuit as the core
// of a full-scan design in which the given numbers of leading inputs and
// outputs are scan pseudo-pins. Used by generators and experiments that
// want a scan cost model without a sequential netlist.
func WrapCombinational(core *netlist.Circuit, pseudoIns, pseudoOuts, chains int) (*Design, error) {
	if pseudoIns > core.NumInputs() || pseudoOuts > core.NumOutputs() {
		return nil, fmt.Errorf("scan: pseudo pin counts exceed core pins")
	}
	if pseudoIns != pseudoOuts {
		return nil, fmt.Errorf("scan: flip-flop count mismatch: %d pseudo-ins vs %d pseudo-outs", pseudoIns, pseudoOuts)
	}
	if chains <= 0 {
		chains = 1
	}
	d := &Design{Core: core, Chains: chains}
	d.TruePIs = make([]bool, core.NumInputs())
	d.TruePOs = make([]bool, core.NumOutputs())
	for i := range d.TruePIs {
		d.TruePIs[i] = i >= pseudoIns
	}
	for i := range d.TruePOs {
		d.TruePOs[i] = i >= pseudoOuts
	}
	for i := 0; i < pseudoIns; i++ {
		d.FFs = append(d.FFs, FF{
			Name: core.GateName(core.Inputs()[i]),
			Q:    core.Inputs()[i],
			D:    core.Outputs()[i],
		})
	}
	return d, nil
}
