package scan

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/tpi"
)

// seqBench is a small sequential circuit in ISCAS'89 style: 2 PIs, 1 PO,
// 3 flip-flops forming a shift-ish structure with feedback.
const seqBench = `
# tiny sequential benchmark
INPUT(a)
INPUT(b)
OUTPUT(z)

q1 = DFF(d1)
q2 = DFF(d2)
q3 = DFF(d3)

n1 = AND(a, q1)
d1 = XOR(b, q3)
d2 = NAND(n1, q2)
d3 = OR(q2, a)
z  = NOR(n1, q3)
`

func TestParseSequentialBench(t *testing.T) {
	d, err := ParseSequentialBench(strings.NewReader(seqBench), "seq", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFFs() != 3 {
		t.Fatalf("FFs = %d, want 3", d.NumFFs())
	}
	// Core: 2 true PIs + 3 pseudo = 5 inputs; 1 true PO + 3 pseudo = 4.
	if d.Core.NumInputs() != 5 {
		t.Errorf("core inputs = %d, want 5", d.Core.NumInputs())
	}
	if d.Core.NumOutputs() != 4 {
		t.Errorf("core outputs = %d, want 4", d.Core.NumOutputs())
	}
	trueIns := 0
	for _, v := range d.TruePIs {
		if v {
			trueIns++
		}
	}
	if trueIns != 2 {
		t.Errorf("true PIs = %d, want 2", trueIns)
	}
	trueOuts := 0
	for _, v := range d.TruePOs {
		if v {
			trueOuts++
		}
	}
	if trueOuts != 1 {
		t.Errorf("true POs = %d, want 1", trueOuts)
	}
	// The scan core is an ordinary combinational circuit: fault simulate it.
	res, err := fsim.Run(d.Core, fault.CollapsedUniverse(d.Core), pattern.NewLFSR(1),
		fsim.Options{MaxPatterns: 1024, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.9 {
		t.Errorf("scan core coverage %.3f suspiciously low", res.Coverage())
	}
}

func TestParseSequentialBenchErrors(t *testing.T) {
	cases := map[string]string{
		"multi-input DFF": "INPUT(a)\nOUTPUT(z)\nq = DFF(a, z)\nz = NOT(q)\n",
		"malformed DFF":   "INPUT(a)\nOUTPUT(z)\nq = DFF a\nz = NOT(q)\n",
		"dangling d":      "INPUT(a)\nOUTPUT(z)\nq = DFF(ghost)\nz = NOT(q)\n",
	}
	for name, text := range cases {
		if _, err := ParseSequentialBench(strings.NewReader(text), name, 1); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestChainLengthAndCycles(t *testing.T) {
	d, err := ParseSequentialBench(strings.NewReader(seqBench), "seq", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChainLength() != 3 {
		t.Errorf("chain length = %d, want 3", d.ChainLength())
	}
	// n patterns: n*(L+1)+L cycles.
	if got, want := d.TestCycles(10), 10*4+3; got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	if d.TestCycles(0) != 0 {
		t.Error("zero patterns must cost zero cycles")
	}
	// Two chains halve the shift depth.
	d.Chains = 2
	if d.ChainLength() != 2 {
		t.Errorf("2-chain length = %d, want 2", d.ChainLength())
	}
	if d.TestCycles(10) >= 10*4+3 {
		t.Error("more chains must reduce test time")
	}
}

func TestWrapCombinational(t *testing.T) {
	c := gen.RippleCarryAdder(4) // 9 inputs, 5 outputs
	d, err := WrapCombinational(c, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFFs() != 4 || d.ChainLength() != 2 {
		t.Errorf("FFs=%d chainLen=%d", d.NumFFs(), d.ChainLength())
	}
	if _, err := WrapCombinational(c, 3, 4, 1); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := WrapCombinational(c, 99, 99, 1); err == nil {
		t.Error("expected out-of-range error")
	}
}

// patternsToTarget returns the smallest multiple of 64 patterns at which
// the run's coverage reaches the target, or -1.
func patternsToTarget(res *fsim.Result, total int, target float64) int {
	for n := 64; n <= res.Patterns; n += 64 {
		det := 0
		for _, idx := range res.FirstDetect {
			if idx < n {
				det++
			}
		}
		if float64(det)/float64(total) >= target {
			return n
		}
	}
	return -1
}

func TestScanTPIReducesTestTime(t *testing.T) {
	// The economic argument: test points cut the patterns needed for a
	// coverage target, which multiplies into scan cycles saved.
	core := gen.RPResistant(7, 2, 12, 60)
	d, err := WrapCombinational(core, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(core)
	const target = 0.95
	before, err := fsim.Run(core, faults, pattern.NewLFSR(3), fsim.Options{MaxPatterns: 16384, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	nBefore := patternsToTarget(before, len(faults), target)
	if nBefore < 0 {
		t.Skip("original core does not reach the target within the budget")
	}
	// Plan observation points on the core and re-measure; the modified
	// core must need no more patterns, hence no more scan cycles.
	plan, err := tpi.PlanObservationPointsDP(core, faults, 4, 1.0/2048, tpi.OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := core.InsertTestPoints(plan.TestPoints())
	if err != nil {
		t.Fatal(err)
	}
	after, err := fsim.Run(mod, faults, pattern.NewLFSR(3), fsim.Options{MaxPatterns: 16384, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	nAfter := patternsToTarget(after, len(faults), target)
	if nAfter < 0 {
		t.Fatal("modified core regressed below the target")
	}
	if nAfter > nBefore {
		t.Errorf("test points increased patterns to target: %d -> %d", nBefore, nAfter)
	}
	if d.TestCycles(nAfter) > d.TestCycles(nBefore) {
		t.Errorf("scan cycles increased: %d -> %d", d.TestCycles(nBefore), d.TestCycles(nAfter))
	}
	if d.TestCycles(nBefore) <= nBefore {
		t.Errorf("scan cycles %d must exceed pattern count %d", d.TestCycles(nBefore), nBefore)
	}
}

func TestParseSequentialBenchFromTestdata(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "testdata", "seq3.bench"))
	if err != nil {
		t.Skip("testdata missing")
	}
	defer f.Close()
	d, err := ParseSequentialBench(f, "seq3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFFs() != 3 {
		t.Errorf("FFs = %d, want 3", d.NumFFs())
	}
}
