package lint

import (
	"fmt"

	"repro/internal/implic"
	"repro/internal/netlist"
)

// The static-implication pass runs the internal/implic engine — direct
// implications, SOCRATES-style learned implications and dominator
// analysis — and reports two things the cheaper passes cannot see:
//
//   - S001: stuck-at faults proven untestable by implication reasoning
//     (excitation forces a dominator side input to its controlling
//     value, or the line is constant for non-syntactic reasons). These
//     extend the C002 set and join Report.Untestable, with the same
//     contract: every reported fault is confirmed redundant by PODEM in
//     the cross-check tests.
//   - S002: single-fanout signals whose immediate dominator is a
//     buffer or inverter consumer. Observing such a signal is
//     equivalent (up to inversion) to observing its dominator, so an
//     observation-point planner can collapse the pair and score one
//     site instead of two.
//
// The engine's sweep is quadratic-ish in gate count, so the pass is
// gated by Options.ImplicationGateLimit.

// checkStatic runs the implication/dominator pass. It must run after
// checkConstants so S001 can skip faults C002 already reported.
func checkStatic(c *netlist.Circuit, opts Options, r *Report) {
	limit := opts.ImplicationGateLimit
	if limit == 0 {
		limit = 3000
	}
	if limit < 0 || c.NumGates() > limit {
		return
	}
	eng := implic.New(c, implic.Options{})

	seen := make(map[string]bool, len(r.untestable))
	for _, f := range r.untestable {
		seen[f.Name(c)] = true
	}
	for _, rf := range eng.Redundant() {
		name := rf.F.Name(c)
		if seen[name] {
			continue
		}
		seen[name] = true
		r.untestable = append(r.untestable, rf.F)
		r.Findings = append(r.Findings, Finding{
			Rule:     RuleStaticRedundant,
			Severity: Warning,
			Signal:   rf.F.Gate,
			Name:     c.GateName(rf.F.Gate),
			Message:  fmt.Sprintf("fault %s is statically redundant: %s", name, rf.Reason),
			Hint:     "exclude it from the fault universe before planning test points",
		})
	}

	for id := 0; id < c.NumGates(); id++ {
		if c.IsOutput(id) || c.FanoutCount(id) != 1 {
			continue
		}
		dom, ok := eng.Dominator(id)
		if !ok {
			continue
		}
		if t := c.Type(dom); t != netlist.Buf && t != netlist.Not {
			continue
		}
		r.Findings = append(r.Findings, Finding{
			Rule:     RuleCollapsibleSite,
			Severity: Info,
			Signal:   id,
			Name:     c.GateName(id),
			Message: fmt.Sprintf("observation site collapses onto its dominator %s (single-fanout line into a %v)",
				c.GateName(dom), c.Type(dom)),
			Hint: "an observation point on the dominator observes this line too; score only one of them",
		})
	}
}
