package lint

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/testability"
)

// checkHotspots ranks FFR stems by COP-estimated random-pattern
// resistance: for every stem, the hardest collapsed fault inside its
// fanout-free region. No simulation is run — this is the analytic
// forward/backward COP pass from internal/testability, so the score is
// exact on fanout-free circuits and a standard estimate under
// reconvergence. The reported stems are precisely the candidates the TPI
// planners (cmd/tpi -mode observe/hybrid) should target.
func checkHotspots(c *netlist.Circuit, opts Options, r *Report) {
	if opts.TopStems < 0 {
		return
	}
	co := testability.NewCOP(c, testability.COPOptions{InputProb: opts.InputProb})
	region := c.RegionOf()

	type stemScore struct {
		stem  int
		prob  float64
		worst fault.Fault
	}
	byStem := make(map[int]*stemScore)
	for _, f := range fault.CollapsedUniverse(c) {
		stem := region[f.Gate]
		dp := co.DetectProb(f)
		s, ok := byStem[stem]
		if !ok {
			byStem[stem] = &stemScore{stem: stem, prob: dp, worst: f}
		} else if dp < s.prob {
			s.prob, s.worst = dp, f
		}
	}

	hard := make([]*stemScore, 0, len(byStem))
	for _, s := range byStem {
		if s.prob < opts.HardThreshold {
			hard = append(hard, s)
		}
	}
	sort.Slice(hard, func(i, j int) bool {
		if hard[i].prob != hard[j].prob {
			return hard[i].prob < hard[j].prob
		}
		return hard[i].stem < hard[j].stem
	})
	if len(hard) > opts.TopStems {
		hard = hard[:opts.TopStems]
	}
	for _, s := range hard {
		r.Findings = append(r.Findings, Finding{
			Rule:     RuleHardStem,
			Severity: Info,
			Signal:   s.stem,
			Name:     c.GateName(s.stem),
			Message: fmt.Sprintf("FFR stem is random-pattern resistant: hardest fault %s has COP detect prob %.3e (~%.3g patterns for 99%% confidence)",
				s.worst.Name(c), s.prob, testability.TestLength(s.prob, 0.99)),
			Hint: "candidate test point; try cmd/tpi -mode observe or -mode hybrid",
		})
	}
}
