package lint

import (
	"fmt"

	"repro/internal/netlist"
)

// checkStructure reports the fanout-free decomposition and whether the
// circuit has reconvergent fanout — the structural property that decides
// which planner applies: Krishnamurthy's cut DP is exact on fanout-free
// circuits, while reconvergence makes optimal insertion NP-complete and
// sends the planners to the per-FFR heuristics.
func checkStructure(c *netlist.Circuit, r *Report) {
	ffrs := c.FFRs()
	largest, largestStem := 0, -1
	stems := 0
	for _, f := range ffrs {
		if len(f.Gates) > largest {
			largest, largestStem = len(f.Gates), f.Stem
		}
		stems++
	}
	msg := fmt.Sprintf("%d fanout-free regions over %d gates", stems, c.NumGates())
	if largestStem >= 0 {
		msg += fmt.Sprintf("; largest has %d gates (stem %s)", largest, c.GateName(largestStem))
	}
	r.Findings = append(r.Findings, Finding{
		Rule:     RuleFFRSummary,
		Severity: Info,
		Signal:   -1,
		Message:  msg,
	})

	if c.IsFanoutFree() {
		r.Findings = append(r.Findings, Finding{
			Rule:     RuleReconvergence,
			Severity: Info,
			Signal:   -1,
			Message:  "circuit is fanout-free: the exact cut DP applies and is optimal",
			Hint:     "use cmd/tpi -mode cuts -planner dp",
		})
	} else if c.HasReconvergentFanout() {
		r.Findings = append(r.Findings, Finding{
			Rule:     RuleReconvergence,
			Severity: Info,
			Signal:   -1,
			Message:  "reconvergent fanout present: optimal test point insertion is NP-complete here",
			Hint:     "planners fall back to per-FFR heuristics; expect approximate placements",
		})
	} else {
		r.Findings = append(r.Findings, Finding{
			Rule:     RuleReconvergence,
			Severity: Info,
			Signal:   -1,
			Message:  "fanout present but no branch reconverges: COP estimates are exact",
		})
	}
}
