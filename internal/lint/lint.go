// Package lint is the static netlist analyzer: a multi-pass inspection of
// a validated Circuit that produces typed findings without applying a
// single simulation pattern. It is the cheap preprocessing gate in front
// of the fault simulator, the ATPG engine and the test point planners —
// structural defects it catches (constant lines, duplicate cones, dead
// logic) waste planner budget on faults that are structurally
// undetectable.
//
// The passes, in order:
//
//  1. invariants — re-checks the Circuit structural invariants (Validate)
//  2. hygiene    — unused inputs, dead gates, duplicate fanin pins,
//     pathological fanout and depth
//  3. constants  — literal-aware constant propagation proving lines stuck
//     at 0/1 and enumerating the stuck-at faults that makes untestable
//  4. duplicates — structural hashing of isomorphic cones (redundancy
//     suspects)
//  5. hotspots   — COP-based random-pattern-resistance ranking of FFR
//     stems (the candidates the TPI planners should target)
//  6. structure  — fanout-free region and reconvergence reporting, so
//     users know whether the exact DP or the FFR heuristics apply
//
// Every finding carries a stable rule ID (see the Rule* constants), a
// severity, a signal locus and a fix hint. Analyze never mutates the
// circuit.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// Severity grades a finding.
type Severity uint8

// Severities, in increasing order of gravity. Error findings denote
// structure that makes parts of the circuit untestable or violates the
// netlist invariants; tools running with -lint reject such circuits.
const (
	Info Severity = iota
	Warning
	Error
)

var severityNames = [...]string{Info: "info", Warning: "warning", Error: "error"}

// String returns the lower-case severity name.
func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// MarshalJSON encodes the severity as its name string, the stable form
// consumers of `cmd/lint -json` match on.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity name string.
func (s *Severity) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("malformed severity %s", b)
	}
	v, err := ParseSeverity(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity resolves a severity name ("info", "warning", "error").
func ParseSeverity(s string) (Severity, error) {
	for sev, name := range severityNames {
		if s == name {
			return Severity(sev), nil
		}
	}
	return 0, fmt.Errorf("unknown severity %q (want info|warning|error)", s)
}

// Stable rule identifiers. These are part of the tool's output contract:
// tests, CI filters and downstream consumers key on them, so existing IDs
// must never be renumbered.
const (
	// RuleInvariant: the circuit violates a netlist structural invariant.
	RuleInvariant = "V001"
	// RuleUnusedInput: a primary input drives no gate and no output.
	RuleUnusedInput = "H001"
	// RuleDeadGate: a gate with no structural path to any primary output.
	RuleDeadGate = "H002"
	// RuleDuplicateFanin: a gate consumes the same signal on two pins.
	RuleDuplicateFanin = "H003"
	// RuleHighFanout: a signal's fanout exceeds the configured bound.
	RuleHighFanout = "H004"
	// RuleDeepLogic: the circuit depth exceeds the configured bound.
	RuleDeepLogic = "H005"
	// RuleConstantLine: a signal is structurally proven constant.
	RuleConstantLine = "C001"
	// RuleUntestableFault: a stuck-at fault proven undetectable by the
	// constant-propagation pass (redundant by construction).
	RuleUntestableFault = "C002"
	// RuleConstantShadow: a non-constant gate whose every consumer is
	// proven constant (constant-implied dead logic).
	RuleConstantShadow = "C003"
	// RuleDuplicateCone: a gate computes the same function as an earlier
	// gate over the same (canonicalized) fanin cone.
	RuleDuplicateCone = "R001"
	// RuleHardStem: an FFR stem ranked random-pattern-resistant by COP.
	RuleHardStem = "T001"
	// RuleFFRSummary: fanout-free region statistics.
	RuleFFRSummary = "F001"
	// RuleReconvergence: reconvergent fanout present (exact cut DP
	// inapplicable) or absent (exact DP optimal).
	RuleReconvergence = "F002"
	// RuleStaticRedundant: a stuck-at fault proven untestable by the
	// static implication engine (dominator-blocked propagation or
	// implication-derived constants; strictly stronger than C002).
	RuleStaticRedundant = "S001"
	// RuleCollapsibleSite: a single-fanout signal whose immediate
	// dominator is a buffer/inverter, so one observation point covers
	// both lines.
	RuleCollapsibleSite = "S002"
)

// Finding is one diagnostic produced by a lint pass.
type Finding struct {
	// Rule is the stable rule ID (one of the Rule* constants).
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Signal is the gate/signal ID the finding is anchored to, or -1 for
	// circuit-wide findings.
	Signal int `json:"signal"`
	// Name is the signal name for anchored findings, "" otherwise.
	Name string `json:"name,omitempty"`
	// Message describes the defect.
	Message string `json:"message"`
	// Hint suggests a fix or follow-up, when one is known.
	Hint string `json:"hint,omitempty"`
}

// String renders the finding in the conventional one-line compiler form.
func (f Finding) String() string {
	locus := ""
	if f.Signal >= 0 {
		locus = fmt.Sprintf(" %s:", f.Name)
	}
	s := fmt.Sprintf("%s %s:%s %s", f.Severity, f.Rule, locus, f.Message)
	if f.Hint != "" {
		s += " (" + f.Hint + ")"
	}
	return s
}

// Options configures the analyzer. The zero value runs every pass with
// the default thresholds.
type Options struct {
	// MaxFanout flags signals whose fanout exceeds this bound
	// (0 = default 64, negative = disabled).
	MaxFanout int
	// MaxDepth flags circuits deeper than this bound
	// (0 = default 512, negative = disabled).
	MaxDepth int
	// HardThreshold is the COP detection probability below which a fault
	// counts as random-pattern resistant (0 = default 1e-3).
	HardThreshold float64
	// TopStems bounds how many hard FFR stems are reported
	// (0 = default 5, negative = disabled).
	TopStems int
	// InputProb optionally gives P(input=1) per primary input for the COP
	// pass, as in testability.COPOptions.
	InputProb []float64
	// ImplicationGateLimit bounds the circuit size for the static
	// implication pass (S001/S002), whose learning sweep is roughly
	// quadratic in gate count (0 = default 3000, negative = disabled).
	ImplicationGateLimit int
}

func (o *Options) defaults() {
	if o.MaxFanout == 0 {
		o.MaxFanout = 64
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 512
	}
	if o.HardThreshold == 0 {
		o.HardThreshold = 1e-3
	}
	if o.TopStems == 0 {
		o.TopStems = 5
	}
}

// Report is the result of one Analyze run.
type Report struct {
	// Circuit is the analyzed circuit's name.
	Circuit string `json:"circuit"`
	// Findings, ordered by severity (most severe first), then rule, then
	// signal ID.
	Findings []Finding `json:"findings"`
	// untestable lists the stuck-at faults the constant pass proved
	// structurally undetectable.
	untestable []fault.Fault
}

// Untestable returns the stuck-at faults proven structurally undetectable
// (a subset of the uncollapsed universe; each is redundant by
// construction, which the tests confirm against PODEM).
func (r *Report) Untestable() []fault.Fault {
	return append([]fault.Fault(nil), r.untestable...)
}

// CountBySeverity returns how many findings carry each severity.
func (r *Report) CountBySeverity() map[Severity]int {
	out := make(map[Severity]int)
	for _, f := range r.Findings {
		out[f.Severity]++
	}
	return out
}

// MaxSeverity returns the gravest severity present and false when the
// report is empty.
func (r *Report) MaxSeverity() (Severity, bool) {
	if len(r.Findings) == 0 {
		return 0, false
	}
	max := r.Findings[0].Severity
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max, true
}

// HasErrors reports whether any Error-severity finding is present.
func (r *Report) HasErrors() bool {
	s, ok := r.MaxSeverity()
	return ok && s >= Error
}

// Filter returns the findings at or above the given severity, in report
// order.
func (r *Report) Filter(min Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}

// ByRule returns the findings carrying the given rule ID, in report
// order.
func (r *Report) ByRule(rule string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// Analyze runs every lint pass over the circuit and returns the ordered
// report. The circuit is not modified.
func Analyze(c *netlist.Circuit, opts Options) *Report {
	opts.defaults()
	r := &Report{Circuit: c.Name()}

	// Pass 1: invariants. A Circuit that fails its own invariants makes
	// the structural passes unreliable, so report and stop early.
	if err := c.Validate(); err != nil {
		r.Findings = append(r.Findings, Finding{
			Rule:     RuleInvariant,
			Severity: Error,
			Signal:   -1,
			Message:  fmt.Sprintf("circuit violates netlist invariants: %v", err),
			Hint:     "rebuild the circuit through netlist.Builder",
		})
		return r
	}

	checkHygiene(c, opts, r)
	checkConstants(c, r)
	checkStatic(c, opts, r)
	checkDuplicateCones(c, r)
	checkHotspots(c, opts, r)
	checkStructure(c, r)

	sortFindings(r.Findings)
	return r
}

// sortFindings orders most-severe first, then by rule ID, then by signal.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Signal < b.Signal
	})
}
