package lint

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// The constant pass runs a literal-aware abstract interpretation over the
// gate network. Each signal's abstract value is one of:
//
//   - a constant 0/1, proven regardless of the primary inputs
//   - a literal: equal to some other signal up to inversion
//   - unknown
//
// Literals are what make the pass useful on circuits with no constant
// sources: AND(a, NOT(a)) is 0, XOR(a, a) is 0, OR(b, XNOR(a,a)) is a
// literal of b, and constants then propagate forward through controlling
// inputs. Everything proven here is sound — a line proven constant v
// makes its s-a-v fault redundant by construction, which the tests
// confirm against PODEM.

type absKind uint8

const (
	absUnknown absKind = iota
	absConst
	absLit
)

// absVal is the abstract value of one signal.
type absVal struct {
	kind absKind
	b    bool // constant value when kind == absConst
	root int  // signal ID when kind == absLit
	neg  bool // literal phase when kind == absLit
}

func constVal(b bool) absVal { return absVal{kind: absConst, b: b} }
func litVal(root int) absVal { return absVal{kind: absLit, root: root} }
func (v absVal) invert() absVal {
	switch v.kind {
	case absConst:
		v.b = !v.b
	case absLit:
		v.neg = !v.neg
	}
	return v
}

// sameLit reports whether a and b are literals of the same root, and
// whether their phases agree.
func sameLit(a, b absVal) (same, equalPhase bool) {
	if a.kind == absLit && b.kind == absLit && a.root == b.root {
		return true, a.neg == b.neg
	}
	return false, false
}

// propagate computes the abstract value of every signal in topological
// order.
func propagate(c *netlist.Circuit) []absVal {
	vals := make([]absVal, c.NumGates())
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			vals[id] = litVal(id)
			continue
		}
		in := make([]absVal, len(g.Fanin))
		for i, f := range g.Fanin {
			in[i] = vals[f]
			// Canonicalize pass-through literals so complementary-pair
			// detection sees through buffers and inverters.
			if in[i].kind == absUnknown {
				in[i] = litVal(f)
			}
		}
		vals[id] = evalAbs(g.Type, in)
	}
	return vals
}

// evalAbs evaluates one gate over abstract fanin values.
func evalAbs(t netlist.GateType, in []absVal) absVal {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return in[0].invert()
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
		// ctl is the controlling constant (0 for AND, 1 for OR); an input
		// at ctl forces the output, an input at !ctl is neutral.
		ctl := t == netlist.Or || t == netlist.Nor
		inv := t == netlist.Nand || t == netlist.Nor
		out := func(v absVal) absVal {
			if inv {
				return v.invert()
			}
			return v
		}
		var lits []absVal
		for _, v := range in {
			switch v.kind {
			case absConst:
				if v.b == ctl {
					return out(constVal(ctl))
				}
				// neutral constant: drop
			default:
				lits = append(lits, v)
			}
		}
		// Complementary literal pair forces the controlling value.
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				if same, eq := sameLit(lits[i], lits[j]); same && !eq {
					return out(constVal(ctl))
				}
			}
		}
		if len(lits) == 0 {
			return out(constVal(!ctl)) // all inputs neutral
		}
		// A single distinct known literal (possibly repeated) passes
		// through; any unknown operand blocks the reduction.
		first := lits[0]
		if first.kind == absLit {
			single := true
			for _, v := range lits[1:] {
				same, eq := sameLit(first, v)
				if !same || !eq {
					single = false
					break
				}
			}
			if single {
				return out(first)
			}
		}
		return absVal{}
	case netlist.Xor, netlist.Xnor:
		// Fold pairwise; XOR of two same-root literals is a constant.
		acc := constVal(false)
		for _, v := range in {
			acc = xorAbs(acc, v)
		}
		if t == netlist.Xnor {
			acc = acc.invert()
		}
		return acc
	}
	return absVal{}
}

// xorAbs combines two abstract values under XOR.
func xorAbs(a, b absVal) absVal {
	if a.kind == absUnknown || b.kind == absUnknown {
		return absVal{}
	}
	switch {
	case a.kind == absConst && b.kind == absConst:
		return constVal(a.b != b.b)
	case a.kind == absConst:
		if a.b {
			return b.invert()
		}
		return b
	case b.kind == absConst:
		if b.b {
			return a.invert()
		}
		return a
	}
	if same, eq := sameLit(a, b); same {
		return constVal(!eq)
	}
	return absVal{}
}

// checkConstants reports proven-constant lines, the stuck-at faults they
// make untestable, and constant-implied dead logic.
func checkConstants(c *netlist.Circuit, r *Report) {
	vals := propagate(c)
	isConst := make([]bool, c.NumGates())

	for id := 0; id < c.NumGates(); id++ {
		v := vals[id]
		if v.kind != absConst {
			continue
		}
		isConst[id] = true
		bit := 0
		if v.b {
			bit = 1
		}
		r.Findings = append(r.Findings, Finding{
			Rule:     RuleConstantLine,
			Severity: Error,
			Signal:   id,
			Name:     c.GateName(id),
			Message:  fmt.Sprintf("line is structurally stuck at %d for every input vector", bit),
			Hint:     fmt.Sprintf("its s-a-%d fault is untestable; rewrite the cone or remove it (internal/opt)", bit),
		})

		// The stem always carries v, so s-a-v on the stem — and on every
		// fanout branch when the stem has multiple consumers — never
		// changes any signal: redundant by construction.
		stuck := []fault.Fault{{Gate: id, Pin: -1, Stuck: v.b}}
		if c.FanoutCount(id) > 1 {
			for _, consumer := range c.Fanout(id) {
				for pin, f := range c.Fanin(consumer) {
					if f == id {
						stuck = append(stuck, fault.Fault{Gate: consumer, Pin: pin, Stuck: v.b})
					}
				}
			}
		}
		for _, sf := range stuck {
			r.untestable = append(r.untestable, sf)
			r.Findings = append(r.Findings, Finding{
				Rule:     RuleUntestableFault,
				Severity: Warning,
				Signal:   sf.Gate,
				Name:     c.GateName(sf.Gate),
				Message:  fmt.Sprintf("fault %s is structurally untestable (line proven constant)", sf.Name(c)),
				Hint:     "exclude it from the fault universe before planning test points",
			})
		}
	}

	// Constant-implied dead logic: a non-constant gate whose every
	// consumer is proven constant cannot influence any output through
	// those consumers. Only flagged when the gate has consumers and is
	// not itself observed as a primary output.
	for id := 0; id < c.NumGates(); id++ {
		if isConst[id] || c.IsOutput(id) || c.FanoutCount(id) == 0 {
			continue
		}
		shadowed := true
		for _, consumer := range c.Fanout(id) {
			if !isConst[consumer] {
				shadowed = false
				break
			}
		}
		if shadowed {
			r.Findings = append(r.Findings, Finding{
				Rule:     RuleConstantShadow,
				Severity: Warning,
				Signal:   id,
				Name:     c.GateName(id),
				Message:  "every consumer of this signal is proven constant (constant-implied dead logic)",
				Hint:     "the cone feeding it is unobservable; remove it or add an observation point",
			})
		}
	}
}
