package lint

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/netlist"
)

// TestUntestableFaultsAreRedundant is the soundness cross-check promised
// by the constant pass: every fault lint marks structurally untestable
// must be proven redundant by an exhaustive PODEM search. Circuits are
// small enough that PODEM always reaches a conclusion.
func TestUntestableFaultsAreRedundant(t *testing.T) {
	circuits := []*netlist.Circuit{
		stuckCircuit(),
		parseFixture(t, "stuck.bench"),
	}
	// A fanout case: the constant feeds two consumers, so branch faults
	// are claimed untestable too.
	b := netlist.NewBuilder("fanoutconst")
	a := b.Input("a")
	bb := b.Input("b")
	na := b.NotGate("na", a)
	k := b.AndGate("k", a, na)
	u := b.OrGate("u", bb, k)
	v := b.AndGate("v", a, k) // also constant 0
	b.MarkOutput(u)
	b.MarkOutput(v)
	circuits = append(circuits, b.MustBuild())

	// An XOR-pair case exercising the parity rules.
	b = netlist.NewBuilder("xorpair")
	a = b.Input("a")
	bb = b.Input("b")
	x := b.XorGate("x", a, a)
	z := b.OrGate("z", bb, x)
	w := b.XnorGate("w", z, z)
	y := b.AndGate("y", w, z)
	b.MarkOutput(y)
	circuits = append(circuits, b.MustBuild())

	total := 0
	for _, c := range circuits {
		r := Analyze(c, Options{})
		un := r.Untestable()
		if len(un) == 0 {
			t.Errorf("%s: expected at least one untestable fault", c.Name())
			continue
		}
		for _, f := range un {
			res, err := atpg.Generate(c, f, atpg.Options{BacktrackLimit: 100000})
			if err != nil {
				t.Errorf("%s: PODEM on %s: %v", c.Name(), f.Name(c), err)
				continue
			}
			if res.Status != atpg.Redundant {
				t.Errorf("%s: lint claims %s untestable but PODEM says %s",
					c.Name(), f.Name(c), res.Status)
			}
			total++
		}
	}
	if total < 5 {
		t.Errorf("cross-check covered only %d faults; expected a richer set", total)
	}
}
