package lint

import (
	"fmt"

	"repro/internal/netlist"
)

// checkHygiene runs the structural hygiene pass: unused inputs, gates
// with no path to an output, duplicate fanin pins, and pathological
// fanout/depth statistics.
func checkHygiene(c *netlist.Circuit, opts Options, r *Report) {
	n := c.NumGates()

	// live[g] = g reaches some primary output (backward reachability over
	// the fanin relation from the outputs).
	live := make([]bool, n)
	stack := append([]int(nil), c.Outputs()...)
	for _, o := range c.Outputs() {
		live[o] = true
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Fanin(g) {
			if !live[f] {
				live[f] = true
				stack = append(stack, f)
			}
		}
	}

	for id := 0; id < n; id++ {
		g := c.Gate(id)
		if live[id] {
			continue
		}
		if g.Type == netlist.Input {
			r.Findings = append(r.Findings, Finding{
				Rule:     RuleUnusedInput,
				Severity: Warning,
				Signal:   id,
				Name:     g.Name,
				Message:  "primary input drives no logic reaching an output",
				Hint:     "drop the input or connect it; unused inputs inflate the pattern space",
			})
		} else {
			r.Findings = append(r.Findings, Finding{
				Rule:     RuleDeadGate,
				Severity: Warning,
				Signal:   id,
				Name:     g.Name,
				Message:  "gate has no structural path to any primary output (dead logic)",
				Hint:     "remove it or mark its signal OUTPUT; every fault on it is undetectable",
			})
		}
	}

	// Duplicate fanin pins: the same signal consumed on two pins of one
	// gate. For unate gates the extra pin is redundant; for XOR/XNOR the
	// pair cancels outright (the constant pass picks that up too).
	for id := 0; id < n; id++ {
		fanin := c.Fanin(id)
		if len(fanin) < 2 {
			continue
		}
		seen := make(map[int]bool, len(fanin))
		reported := false
		for _, f := range fanin {
			if seen[f] && !reported {
				r.Findings = append(r.Findings, Finding{
					Rule:     RuleDuplicateFanin,
					Severity: Warning,
					Signal:   id,
					Name:     c.GateName(id),
					Message:  fmt.Sprintf("gate consumes signal %s on multiple pins", c.GateName(f)),
					Hint:     "deduplicate the pins; see internal/opt idempotent collapse",
				})
				reported = true
			}
			seen[f] = true
		}
	}

	if opts.MaxFanout > 0 {
		for id := 0; id < n; id++ {
			if fo := c.FanoutCount(id); fo > opts.MaxFanout {
				r.Findings = append(r.Findings, Finding{
					Rule:     RuleHighFanout,
					Severity: Info,
					Signal:   id,
					Name:     c.GateName(id),
					Message:  fmt.Sprintf("fanout %d exceeds bound %d", fo, opts.MaxFanout),
					Hint:     "high-fanout stems dominate observability loss; consider buffering or an observation point",
				})
			}
		}
	}
	if opts.MaxDepth > 0 {
		if d := c.Depth(); d > opts.MaxDepth {
			r.Findings = append(r.Findings, Finding{
				Rule:     RuleDeepLogic,
				Severity: Info,
				Signal:   -1,
				Message:  fmt.Sprintf("circuit depth %d exceeds bound %d", d, opts.MaxDepth),
				Hint:     "deep cones are random-pattern resistant; test points shorten them",
			})
		}
	}
}
