package lint

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// blockedCircuit: n1 = AND(a,b); z = OR(n1, a). Exciting n1 s-a-0 needs
// n1=1, which implies a=1, the controlling value at the dominator z: the
// fault is redundant but no line is constant, so only S001 can see it.
func blockedCircuit() *netlist.Circuit {
	b := netlist.NewBuilder("blocked")
	a := b.Input("a")
	x := b.Input("b")
	n1 := b.AndGate("n1", a, x)
	z := b.OrGate("z", n1, a)
	b.MarkOutput(z)
	return b.MustBuild()
}

func TestStaticRedundantFinding(t *testing.T) {
	c := blockedCircuit()
	r := Analyze(c, Options{})
	s001 := r.ByRule(RuleStaticRedundant)
	if len(s001) == 0 {
		t.Fatalf("expected S001 findings, report: %v", r.Findings)
	}
	n1, _ := c.GateByName("n1")
	want := fault.Fault{Gate: n1, Pin: -1, Stuck: false}
	found := false
	for _, f := range r.Untestable() {
		if f == want {
			found = true
		}
	}
	if !found {
		t.Errorf("n1 s-a-0 missing from Untestable(): %v", r.Untestable())
	}
	// No constant line exists here, so C001/C002 must stay silent: S001
	// is strictly stronger than the constant pass on this circuit.
	if n := len(r.ByRule(RuleConstantLine)) + len(r.ByRule(RuleUntestableFault)); n != 0 {
		t.Errorf("constant pass produced %d findings on a constant-free circuit", n)
	}
}

func TestStaticPassExtendsConstantUntestables(t *testing.T) {
	c := stuckCircuit()
	constOnly := Analyze(c, Options{ImplicationGateLimit: -1}).Untestable()
	full := Analyze(c, Options{}).Untestable()
	if len(full) <= len(constOnly) {
		t.Errorf("implication pass found nothing beyond the constant pass: %d vs %d", len(full), len(constOnly))
	}
	set := make(map[fault.Fault]bool)
	for _, f := range full {
		set[f] = true
	}
	for _, f := range constOnly {
		if !set[f] {
			t.Errorf("constant-pass fault %v lost by the full analysis", f)
		}
	}
	// No duplicates: findings and untestable list stay one-per-fault.
	if len(set) != len(full) {
		t.Errorf("Untestable() contains duplicates: %v", full)
	}
}

func TestCollapsibleSiteFinding(t *testing.T) {
	// g = AND(a,b) feeds only an inverter: observing g is observing z.
	b := netlist.NewBuilder("collapse")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	z := b.NotGate("z", g)
	b.MarkOutput(z)
	c := b.MustBuild()
	r := Analyze(c, Options{})
	hit := false
	for _, f := range r.ByRule(RuleCollapsibleSite) {
		if f.Name == "g" {
			hit = true
			if f.Severity != Info {
				t.Errorf("S002 must be Info, got %v", f.Severity)
			}
		}
		// Primary inputs a and b also each feed exactly one gate, but
		// their dominators are AND-typed, so they must not be flagged.
		if f.Name == "a" || f.Name == "b" {
			t.Errorf("S002 wrongly flagged %s (dominator is not Buf/Not)", f.Name)
		}
	}
	if !hit {
		t.Errorf("expected S002 on g, findings: %v", r.Findings)
	}
}

func TestStaticPassGateLimit(t *testing.T) {
	c := blockedCircuit()
	r := Analyze(c, Options{ImplicationGateLimit: 2}) // below NumGates
	if n := len(r.ByRule(RuleStaticRedundant)); n != 0 {
		t.Errorf("pass must be skipped above the gate limit, got %d S001 findings", n)
	}
	if n := len(Analyze(c, Options{ImplicationGateLimit: -1}).ByRule(RuleStaticRedundant)); n != 0 {
		t.Errorf("negative limit must disable the pass, got %d S001 findings", n)
	}
}

func TestStaticPassSilentOnC17(t *testing.T) {
	r := Analyze(gen.C17(), Options{})
	if n := len(r.ByRule(RuleStaticRedundant)); n != 0 {
		t.Errorf("c17 is fully testable; got %d S001 findings", n)
	}
}
