package lint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// checkDuplicateCones finds structurally isomorphic cones by hashing
// every gate over (type, canonicalized fanin classes) in topological
// order. Because fanins are resolved through their class representatives,
// whole duplicated subcircuits collapse transitively: the roots of two
// copies of an N-gate cone land in the same class even though their gate
// IDs differ everywhere. Duplicates are redundancy suspects — they add
// fault sites whose tests are pairwise identical and they hide single
// faults from diagnosis.
func checkDuplicateCones(c *netlist.Circuit, r *Report) {
	n := c.NumGates()
	class := make([]int, n) // gate -> representative gate ID
	byKey := make(map[string]int)

	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			class[id] = id
			continue
		}
		reps := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			reps[i] = class[f]
		}
		if commutative(g.Type) {
			sort.Ints(reps)
		}
		var sb strings.Builder
		sb.WriteString(g.Type.String())
		for _, f := range reps {
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(f))
		}
		key := sb.String()
		if rep, ok := byKey[key]; ok {
			class[id] = rep
			r.Findings = append(r.Findings, Finding{
				Rule:     RuleDuplicateCone,
				Severity: Warning,
				Signal:   id,
				Name:     g.Name,
				Message:  fmt.Sprintf("computes the same function as %s (duplicate cone)", c.GateName(rep)),
				Hint:     "merge the cones (internal/opt structural CSE); duplicated faults are equivalent",
			})
		} else {
			byKey[key] = id
			class[id] = id
		}
	}
}

// commutative reports whether pin order is irrelevant for the gate type.
func commutative(t netlist.GateType) bool {
	switch t {
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
		return true
	}
	return false
}
