package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/netlist"
)

func parseFixture(t *testing.T, name string) *netlist.Circuit {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "testdata", "lint", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := bench.Parse(f, strings.TrimSuffix(name, ".bench"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// stuckCircuit builds k = AND(a, NOT a), a line provably stuck at 0.
func stuckCircuit() *netlist.Circuit {
	b := netlist.NewBuilder("stuck")
	a := b.Input("a")
	bb := b.Input("b")
	na := b.NotGate("na", a)
	k := b.AndGate("k", a, na)
	z := b.OrGate("z", bb, k)
	b.MarkOutput(z)
	return b.MustBuild()
}

func TestConstantLineStuckAt0(t *testing.T) {
	c := stuckCircuit()
	// The implication pass (S001) proves additional faults redundant;
	// disable it to test the constant pass in isolation.
	r := Analyze(c, Options{ImplicationGateLimit: -1})
	consts := r.ByRule(RuleConstantLine)
	if len(consts) != 1 {
		t.Fatalf("want 1 %s finding, got %d: %v", RuleConstantLine, len(consts), r.Findings)
	}
	if consts[0].Name != "k" || consts[0].Severity != Error {
		t.Errorf("unexpected constant finding: %+v", consts[0])
	}
	k, _ := c.GateByName("k")
	want := fault.Fault{Gate: k, Pin: -1, Stuck: false}
	un := r.Untestable()
	if len(un) != 1 || un[0] != want {
		t.Errorf("untestable = %v, want [%v]", un, want)
	}
	if !r.HasErrors() {
		t.Error("report with a constant line must have errors")
	}
}

func TestConstantXorPair(t *testing.T) {
	b := netlist.NewBuilder("xorpair")
	a := b.Input("a")
	x := b.XorGate("x", a, a)  // constant 0
	y := b.XnorGate("y", a, a) // constant 1
	z := b.OrGate("z", x, y)   // constant 1
	b.MarkOutput(z)
	c := b.MustBuild()
	r := Analyze(c, Options{})
	byName := map[string]bool{}
	for _, f := range r.ByRule(RuleConstantLine) {
		byName[f.Name] = true
	}
	for _, want := range []string{"x", "y", "z"} {
		if !byName[want] {
			t.Errorf("expected constant finding on %s; findings: %v", want, r.Findings)
		}
	}
}

// TestConstantPropagationThroughControllingInput checks that a proven
// constant forces downstream gates through controlling values.
func TestConstantPropagationThroughControllingInput(t *testing.T) {
	b := netlist.NewBuilder("chain")
	a := b.Input("a")
	bb := b.Input("b")
	na := b.NotGate("na", a)
	k := b.AndGate("k", a, na) // 0
	m := b.AndGate("m", bb, k) // 0 via controlling input
	n := b.NorGate("n", bb, k) // NOT b: literal, not constant
	z := b.XorGate("z", m, n)  // literal of n
	b.MarkOutput(z)
	c := b.MustBuild()
	r := Analyze(c, Options{})
	constNames := map[string]bool{}
	for _, f := range r.ByRule(RuleConstantLine) {
		constNames[f.Name] = true
	}
	if !constNames["k"] || !constNames["m"] {
		t.Errorf("expected k and m constant, got %v", constNames)
	}
	if constNames["n"] || constNames["z"] {
		t.Errorf("n/z wrongly proven constant: %v", constNames)
	}
}

func TestBranchFaultsUntestableOnFanoutConstant(t *testing.T) {
	b := netlist.NewBuilder("fanoutconst")
	a := b.Input("a")
	bb := b.Input("b")
	na := b.NotGate("na", a)
	k := b.AndGate("k", a, na) // constant 0, fans out twice
	u := b.OrGate("u", bb, k)
	v := b.OrGate("v", a, k)
	b.MarkOutput(u)
	b.MarkOutput(v)
	c := b.MustBuild()
	r := Analyze(c, Options{ImplicationGateLimit: -1})
	un := r.Untestable()
	// Stem fault plus one branch fault per consumer.
	if len(un) != 3 {
		t.Fatalf("want 3 untestable faults (stem + 2 branches), got %v", un)
	}
	for _, f := range un {
		if f.Stuck {
			t.Errorf("only s-a-0 faults should be untestable here, got %v", f)
		}
	}
	_ = k
}

func TestHygieneFindings(t *testing.T) {
	b := netlist.NewBuilder("hyg")
	a := b.Input("a")
	bb := b.Input("b")
	b.Input("unused")
	dang := b.AndGate("dang", a, bb)
	dup := b.OrGate("dup", a, a)
	z := b.AndGate("z", dup, bb)
	b.MarkOutput(z)
	c := b.MustBuild()
	r := Analyze(c, Options{})
	if got := r.ByRule(RuleUnusedInput); len(got) != 1 || got[0].Name != "unused" {
		t.Errorf("H001: got %v", got)
	}
	deads := r.ByRule(RuleDeadGate)
	if len(deads) != 1 || deads[0].Name != "dang" {
		t.Errorf("H002: got %v", deads)
	}
	if got := r.ByRule(RuleDuplicateFanin); len(got) != 1 || got[0].Name != "dup" {
		t.Errorf("H003: got %v", got)
	}
	_ = dang
}

func TestHighFanoutAndDepthThresholds(t *testing.T) {
	b := netlist.NewBuilder("wide")
	a := b.Input("a")
	bb := b.Input("b")
	prev := b.AndGate("", a, bb)
	for i := 0; i < 4; i++ {
		prev = b.AndGate("", prev, bb)
	}
	b.MarkOutput(prev)
	c := b.MustBuild()
	r := Analyze(c, Options{MaxFanout: 3, MaxDepth: 2})
	if len(r.ByRule(RuleHighFanout)) == 0 {
		t.Errorf("expected a high-fanout finding on b; findings: %v", r.Findings)
	}
	if len(r.ByRule(RuleDeepLogic)) != 1 {
		t.Errorf("expected a deep-logic finding; findings: %v", r.Findings)
	}
	// Disabled thresholds must silence both rules.
	r = Analyze(c, Options{MaxFanout: -1, MaxDepth: -1})
	if len(r.ByRule(RuleHighFanout))+len(r.ByRule(RuleDeepLogic)) != 0 {
		t.Errorf("disabled thresholds still fired: %v", r.Findings)
	}
}

// TestDuplicateConeTransitive checks that structural hashing sees through
// commuted pins and collapses whole duplicated cones, not just leaf gates.
func TestDuplicateConeTransitive(t *testing.T) {
	c := parseFixture(t, "dupcone.bench")
	r := Analyze(c, Options{})
	dups := r.ByRule(RuleDuplicateCone)
	names := map[string]bool{}
	for _, f := range dups {
		names[f.Name] = true
	}
	if !names["u2"] || !names["v2"] {
		t.Errorf("expected duplicate findings on u2 and v2, got %v", dups)
	}
}

func TestFixtureGolden(t *testing.T) {
	cases := []struct {
		file  string
		rules []string // rule IDs that must appear
		clean bool     // no findings above Info
	}{
		{"clean.bench", []string{RuleFFRSummary, RuleReconvergence}, true},
		{"stuck.bench", []string{RuleConstantLine, RuleUntestableFault, RuleConstantShadow}, false},
		{"dupcone.bench", []string{RuleDuplicateCone}, false},
		{"undriven.bench", []string{RuleUnusedInput, RuleDeadGate}, false},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			r := Analyze(parseFixture(t, tc.file), Options{})
			for _, rule := range tc.rules {
				if len(r.ByRule(rule)) == 0 {
					t.Errorf("missing rule %s; findings: %v", rule, r.Findings)
				}
			}
			if max, ok := r.MaxSeverity(); tc.clean && ok && max > Info {
				t.Errorf("expected only info findings, got %v", r.Findings)
			}
		})
	}
}

func TestReportOrderingAndHelpers(t *testing.T) {
	r := Analyze(parseFixture(t, "stuck.bench"), Options{})
	for i := 1; i < len(r.Findings); i++ {
		if r.Findings[i].Severity > r.Findings[i-1].Severity {
			t.Fatalf("findings not ordered by severity: %v", r.Findings)
		}
	}
	counts := r.CountBySeverity()
	if counts[Error] != 1 {
		t.Errorf("want 1 error, got %d", counts[Error])
	}
	if got := len(r.Filter(Warning)); got != counts[Error]+counts[Warning] {
		t.Errorf("Filter(Warning) returned %d findings", got)
	}
	max, ok := r.MaxSeverity()
	if !ok || max != Error {
		t.Errorf("MaxSeverity = %v, %v", max, ok)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip %v -> %s -> %v", s, b, got)
		}
		parsed, err := ParseSeverity(s.String())
		if err != nil || parsed != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), parsed, err)
		}
	}
	if _, err := ParseSeverity("frob"); err == nil {
		t.Error("expected error for unknown severity")
	}
	var s Severity
	if err := json.Unmarshal([]byte(`42`), &s); err == nil {
		t.Error("expected error for non-string severity")
	}
}

func TestCleanGeneratorsHaveNoErrors(t *testing.T) {
	c := parseFixture(t, "clean.bench")
	r := Analyze(c, Options{})
	if r.HasErrors() {
		t.Errorf("c17 must lint clean: %v", r.Findings)
	}
	if len(r.Untestable()) != 0 {
		t.Errorf("c17 has no untestable faults, lint claims %v", r.Untestable())
	}
}
