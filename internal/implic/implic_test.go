package implic

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// indirectCircuit is the classic SOCRATES motivating example:
// z = OR(AND(a,b), AND(a,c)). Direct propagation of z=1 fixes nothing,
// but a=0 forces z=0, so the learned contrapositive yields z=1 => a=1.
func indirectCircuit() (*netlist.Circuit, int, int) {
	b := netlist.NewBuilder("indirect")
	a := b.Input("a")
	x := b.Input("b")
	y := b.Input("c")
	g1 := b.AndGate("g1", a, x)
	g2 := b.AndGate("g2", a, y)
	z := b.OrGate("z", g1, g2)
	b.MarkOutput(z)
	return b.MustBuild(), z, a
}

func TestDirectImplications(t *testing.T) {
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	e := New(c, Options{})

	// g=1 implies a=1 and b=1 (backward justification).
	if !e.Implies(MkLit(g, true), MkLit(a, true)) || !e.Implies(MkLit(g, true), MkLit(x, true)) {
		t.Errorf("AND output 1 must imply both inputs 1; got %v", e.Implied(MkLit(g, true)))
	}
	// a=0 implies g=0 (forward controlling value).
	if !e.Implies(MkLit(a, false), MkLit(g, false)) {
		t.Errorf("controlling input must imply the output")
	}
	// a=1 implies nothing about g.
	if e.Implies(MkLit(a, true), MkLit(g, true)) || e.Implies(MkLit(a, true), MkLit(g, false)) {
		t.Errorf("non-controlling input alone must not fix the output")
	}
}

func TestLearnedIndirectImplication(t *testing.T) {
	c, z, a := indirectCircuit()

	direct := New(c, Options{LearnRounds: -1})
	if direct.Implies(MkLit(z, true), MkLit(a, true)) {
		t.Fatalf("z=1 => a=1 is not derivable by direct propagation; learning is off")
	}
	learned := New(c, Options{})
	if !learned.Implies(MkLit(z, true), MkLit(a, true)) {
		t.Errorf("learning must discover z=1 => a=1; got %v", learned.Implied(MkLit(z, true)))
	}
	if learned.NumLearned() == 0 {
		t.Errorf("expected learned implications, got none")
	}
}

func TestConstantDetection(t *testing.T) {
	// k = AND(a, NOT a) is constant 0; the engine proves it by conflict.
	b := netlist.NewBuilder("const")
	a := b.Input("a")
	na := b.NotGate("na", a)
	k := b.AndGate("k", a, na)
	z := b.OrGate("z", b.Input("b"), k)
	b.MarkOutput(z)
	c := b.MustBuild()
	e := New(c, Options{})

	v, ok := e.ConstValue(k)
	if !ok || v {
		t.Fatalf("k must be proven constant 0; got ok=%v v=%v", ok, v)
	}
	if e.Feasible(MkLit(k, true)) {
		t.Errorf("k=1 must be infeasible")
	}
	if !e.Feasible(MkLit(k, false)) {
		t.Errorf("k=0 must be feasible")
	}
	if got := e.Constants(); len(got) != 1 || got[0] != k {
		t.Errorf("Constants() = %v, want [%d]", got, k)
	}
}

func TestXorImplications(t *testing.T) {
	b := netlist.NewBuilder("xor")
	a := b.Input("a")
	x := b.Input("b")
	g := b.XorGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	e := New(c, Options{})

	// XOR output with one known input determines the other... only once
	// two of the three lines are known, so single-literal propagation
	// cannot fix anything here.
	if len(e.Implied(MkLit(g, true))) != 0 {
		t.Errorf("XOR output alone must imply nothing, got %v", e.Implied(MkLit(g, true)))
	}
	// But x = XOR(a, a) folds to constant 0 by propagation... via the
	// duplicate-pin parity rule once a is assigned: check the engine
	// stays sound (no constant claimed for plain XOR).
	if len(e.Constants()) != 0 {
		t.Errorf("plain XOR has no constants, got %v", e.Constants())
	}
}

func TestDominatorsChain(t *testing.T) {
	// a -> g1=AND(a,b) -> g2=OR(g1,c) -> out; the chain of g1 is g2.
	b := netlist.NewBuilder("chain")
	a := b.Input("a")
	x := b.Input("b")
	y := b.Input("c")
	g1 := b.AndGate("g1", a, x)
	g2 := b.OrGate("g2", g1, y)
	b.MarkOutput(g2)
	c := b.MustBuild()
	e := New(c, Options{})

	if d, ok := e.Dominator(g1); !ok || d != g2 {
		t.Errorf("Dominator(g1) = %d,%v want %d,true", d, ok, g2)
	}
	if got := e.Dominators(a); len(got) != 2 || got[0] != g1 || got[1] != g2 {
		t.Errorf("Dominators(a) = %v, want [%d %d]", got, g1, g2)
	}
	// The output itself has no gate dominator.
	if _, ok := e.Dominator(g2); ok {
		t.Errorf("a primary output must have no gate dominator")
	}
}

func TestDominatorsReconvergence(t *testing.T) {
	// s fans out to g1 and g2 which reconverge at z: neither g1 nor g2
	// dominates s, but z does.
	b := netlist.NewBuilder("reconv")
	a := b.Input("a")
	x := b.Input("b")
	s := b.BufGate("s", a)
	g1 := b.AndGate("g1", s, x)
	g2 := b.OrGate("g2", s, x)
	z := b.XorGate("z", g1, g2)
	b.MarkOutput(z)
	c := b.MustBuild()
	e := New(c, Options{})

	if d, ok := e.Dominator(s); !ok || d != z {
		t.Errorf("Dominator(s) = %d,%v want %d,true", d, ok, z)
	}
}

func TestDeadLogicUnobservable(t *testing.T) {
	b := netlist.NewBuilder("dead")
	a := b.Input("a")
	x := b.Input("b")
	dead := b.AndGate("dead", a, x) // no fanout, not an output
	z := b.OrGate("z", a, x)
	b.MarkOutput(z)
	c := b.MustBuild()
	e := New(c, Options{})
	if e.Observable(dead) {
		t.Errorf("gate with no path to an output must be unobservable")
	}
	if e.Dominators(dead) != nil {
		t.Errorf("dead gate must have no dominators")
	}
	if !e.Observable(z) || !e.Observable(a) {
		t.Errorf("live signals must be observable")
	}
}

func TestRedundantDominatorBlocked(t *testing.T) {
	// n1 = AND(a,b); z = OR(n1, a). Exciting n1 s-a-0 needs n1=1, which
	// implies a=1, the controlling value of the dominator z: redundant.
	b := netlist.NewBuilder("blocked")
	a := b.Input("a")
	x := b.Input("b")
	n1 := b.AndGate("n1", a, x)
	z := b.OrGate("z", n1, a)
	b.MarkOutput(z)
	c := b.MustBuild()
	e := New(c, Options{})

	red := e.RedundantSet()
	if !red[fault.Fault{Gate: n1, Pin: -1, Stuck: false}] {
		t.Errorf("n1 s-a-0 must be statically redundant; got %v", e.Redundant())
	}
	if red[fault.Fault{Gate: n1, Pin: -1, Stuck: true}] {
		t.Errorf("n1 s-a-1 is testable (a=0, b=1) and must not be reported")
	}
}

func TestRedundantNoneOnC17(t *testing.T) {
	// c17 is fully testable: the pass must stay silent.
	e := New(gen.C17(), Options{})
	if r := e.Redundant(); len(r) != 0 {
		t.Errorf("c17 has no redundant faults, engine claims %v", r)
	}
}

func TestCollapseDropsRedundantClasses(t *testing.T) {
	b := netlist.NewBuilder("blocked")
	a := b.Input("a")
	x := b.Input("b")
	n1 := b.AndGate("n1", a, x)
	z := b.OrGate("z", n1, a)
	b.MarkOutput(z)
	c := b.MustBuild()
	e := New(c, Options{})

	collapsed := e.Collapse()
	for _, f := range collapsed {
		if e.RedundantSet()[f] {
			t.Errorf("collapsed list contains redundant fault %v", f)
		}
	}
	plain := fault.CollapseWithDominance(c)
	if len(collapsed) >= len(plain) {
		t.Errorf("engine collapse %d must be smaller than plain dominance %d", len(collapsed), len(plain))
	}
}

func TestImpliedListsSortedAndConsistent(t *testing.T) {
	c := gen.RandomDAG(3, 8, 60, gen.DAGOptions{})
	e := New(c, Options{})
	for l := Lit(0); int(l) < 2*c.NumGates(); l++ {
		list := e.Implied(l)
		for i := 1; i < len(list); i++ {
			if list[i-1] >= list[i] {
				t.Fatalf("implied list of %d not strictly sorted: %v", l, list)
			}
		}
		for _, b := range list {
			if b.Signal() == l.Signal() && b != l {
				t.Fatalf("literal %d implies its own negation %d without being infeasible", l, b)
			}
		}
	}
}

func TestStats(t *testing.T) {
	c := gen.C17()
	e := New(c, Options{})
	s := e.Stats()
	if s.Gates != c.NumGates() || s.Redundant != 0 || s.Dead != 0 {
		t.Errorf("unexpected stats %+v", s)
	}
	if s.Implications == 0 {
		t.Errorf("c17 must produce a non-empty implication database")
	}
}
