// Package implic_test holds the cross-engine property tests. They live
// in an external test package because they drive internal/atpg and
// internal/fsim, which themselves import implic.
package implic_test

import (
	"os"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/implic"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// crossCircuits are small enough for exhaustive PODEM and per-vector
// fault simulation.
func crossCircuits(t *testing.T) map[string]*netlist.Circuit {
	t.Helper()
	out := map[string]*netlist.Circuit{
		"c17":    gen.C17(),
		"parity": gen.ParityTree(4),
		"rca":    gen.RippleCarryAdder(2),
		"dag1":   gen.RandomDAG(7, 6, 40, gen.DAGOptions{}),
		"dag2":   gen.RandomDAG(19, 7, 60, gen.DAGOptions{}),
	}
	for _, p := range []string{"redundant", "stuck"} {
		f, err := os.Open("../../testdata/lint/" + p + ".bench")
		if err != nil {
			t.Fatal(err)
		}
		c, err := bench.Parse(f, p)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		out[p] = c
	}
	return out
}

// TestRedundantFaultsArePODEMUntestable is the zero-false-positive
// guarantee: every fault the engine declares redundant must exhaust
// PODEM's complete search without a test.
func TestRedundantFaultsArePODEMUntestable(t *testing.T) {
	for name, c := range crossCircuits(t) {
		t.Run(name, func(t *testing.T) {
			e := implic.New(c, implic.Options{})
			for _, r := range e.Redundant() {
				res, err := atpg.Generate(c, r.F, atpg.Options{BacktrackLimit: 1 << 20})
				if err != nil {
					t.Fatalf("PODEM on %v: %v", r.F, err)
				}
				if res.Status != atpg.Redundant {
					t.Errorf("engine claims %v redundant (%s) but PODEM says %v", r.F, r.Reason, res.Status)
				}
			}
		})
	}
}

// exhaustiveDetectSets returns, per fault, the set of input vectors
// (as indices) that detect it, via one single-vector fsim run each.
func exhaustiveDetectSets(t *testing.T, c *netlist.Circuit, faults []fault.Fault) map[fault.Fault]map[int]bool {
	t.Helper()
	n := c.NumInputs()
	if n > 10 {
		t.Fatalf("circuit too wide for exhaustive detect sets: %d inputs", n)
	}
	sets := make(map[fault.Fault]map[int]bool, len(faults))
	for _, f := range faults {
		sets[f] = map[int]bool{}
	}
	for v := 0; v < 1<<n; v++ {
		vec := make([]bool, n)
		for i := range vec {
			vec[i] = v>>i&1 == 1
		}
		res, err := fsim.Run(c, faults, pattern.NewVectors([][]bool{vec}), fsim.Options{MaxPatterns: 1})
		if err != nil {
			t.Fatal(err)
		}
		for f := range res.FirstDetect {
			sets[f][v] = true
		}
	}
	return sets
}

// TestEquivalenceClassesShareDetectSets verifies the collapsing premise
// the engine's Collapse relies on: structurally equivalent faults are
// detected by exactly the same input vectors.
func TestEquivalenceClassesShareDetectSets(t *testing.T) {
	for name, c := range crossCircuits(t) {
		t.Run(name, func(t *testing.T) {
			all := fault.Universe(c)
			sets := exhaustiveDetectSets(t, c, all)
			for _, class := range fault.EquivalenceClasses(c, all) {
				if len(class) < 2 {
					continue
				}
				ref := sets[class[0]]
				for _, f := range class[1:] {
					got := sets[f]
					same := len(got) == len(ref)
					if same {
						for v := range ref {
							if !got[v] {
								same = false
								break
							}
						}
					}
					if !same {
						t.Errorf("faults %v and %v are in one equivalence class but have different detect sets (%d vs %d vectors)",
							class[0], f, len(ref), len(got))
					}
				}
			}
		})
	}
}

// TestCollapseCompleteness checks the engine-backed collapse end to end:
// statically redundant faults have empty detect sets (the
// zero-false-positive guarantee again, via simulation this time), and a
// vector set detecting every kept fault also detects every detectable
// dropped fault. Undetectable-but-unproven faults may survive in either
// group — the pass is documented as conservative — and are only logged.
func TestCollapseCompleteness(t *testing.T) {
	for name, c := range crossCircuits(t) {
		t.Run(name, func(t *testing.T) {
			e := implic.New(c, implic.Options{})
			all := fault.Universe(c)
			sets := exhaustiveDetectSets(t, c, all)
			red := e.RedundantSet()
			for f := range red {
				if len(sets[f]) != 0 {
					t.Fatalf("redundant fault %v detected by %d vectors", f, len(sets[f]))
				}
			}
			kept := e.Collapse()
			keptSet := make(map[fault.Fault]bool, len(kept))
			for _, f := range kept {
				keptSet[f] = true
			}
			// One concrete covering vector set: the lowest-index detecting
			// vector of each detectable kept fault.
			cover := map[int]bool{}
			for _, f := range kept {
				best := -1
				for v := range sets[f] {
					if best < 0 || v < best {
						best = v
					}
				}
				if best < 0 {
					t.Logf("conservatism gap: kept fault %v is undetectable but not statically proven", f)
					continue
				}
				cover[best] = true
			}
			for _, f := range all {
				if keptSet[f] || red[f] || len(sets[f]) == 0 {
					continue
				}
				hit := false
				for v := range cover {
					if sets[f][v] {
						hit = true
						break
					}
				}
				if !hit {
					t.Errorf("dropped fault %v not detected by the covering set for the collapsed list", f)
				}
			}
		})
	}
}
