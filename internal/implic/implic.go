// Package implic is the static implication engine over a gate-level
// netlist: the reasoning layer between the purely structural lint passes
// and the search-based tools (PODEM, the TPI planners).
//
// The engine computes three kinds of static knowledge, none of which
// applies a single simulation pattern:
//
//   - direct implications: assigning a line to 0 or 1 and propagating
//     gate semantics forward (controlling values) and backward
//     (justification) to a fixpoint;
//   - indirect implications, learned SOCRATES-style: whenever
//     propagating a => b, the contrapositive !b => !a is recorded and
//     replayed in later propagations, which discovers implications that
//     no single forward/backward pass can see (e.g. z=1 => a=1 for
//     z = OR(AND(a,b), AND(a,c)));
//   - structural dominators: for every line, the gates that every path
//     to a primary output must pass through (computed over the fanout
//     graph against a virtual sink fed by all primary outputs).
//
// On top of those, redundancy.go proves stuck-at faults untestable
// without invoking ATPG, and Collapse folds that proof plus
// equivalence/dominance collapsing into a reduced fault universe.
//
// A propagation that conflicts proves the seed infeasible, so the line
// is constant at the opposite value; constants are re-seeded into every
// later propagation, letting constant knowledge compound across
// learning rounds.
package implic

import (
	"context"
	"sort"

	"repro/internal/netlist"
)

// Lit encodes one (signal, value) assignment as 2*signal+value.
type Lit int32

// MkLit builds the literal for signal sig carrying value val.
func MkLit(sig int, val bool) Lit {
	l := Lit(sig) << 1
	if val {
		l |= 1
	}
	return l
}

// Signal returns the literal's signal ID.
func (l Lit) Signal() int { return int(l >> 1) }

// Val returns the literal's value.
func (l Lit) Val() bool { return l&1 == 1 }

// Neg returns the literal with the value complemented.
func (l Lit) Neg() Lit { return l ^ 1 }

// Options configures the engine build.
type Options struct {
	// LearnRounds bounds the SOCRATES contrapositive learning
	// iterations (0 = default 2, negative = direct implications only).
	// Each round re-propagates every literal with the implications
	// learned so far, so later rounds can only add knowledge.
	LearnRounds int
}

// Engine holds the implication database, the proven constants and the
// dominator tree of one circuit. Build it once with New; all queries
// are read-only afterwards except the lazily-computed redundancy pass.
type Engine struct {
	c       *netlist.Circuit
	imp     [][]Lit // imp[l]: literals implied by l (sorted, l excluded)
	learned [][]Lit // contrapositive edges replayed during propagation
	nLearn  int
	consts  []int8 // proven constant value per signal (-1 = none)
	feas    []bool // per literal: assigning it does not conflict

	// dominators (dominator.go); sink == NumGates() is the virtual sink
	idom []int
	rpo  []int // reverse-postorder number per node, -1 = dead
	sink int

	// lazily computed redundancy pass (redundancy.go)
	redundant []RedundantFault

	// propagation scratch
	val     []int8
	touched []int32
	gq      []int32
	inq     []bool

	// build-time cancellation (context.go); cleared before build returns
	// so post-build queries never observe a dead request context.
	buildCtx  context.Context
	buildDone <-chan struct{}
}

// New builds the engine: dominators, then LearnRounds+1 implication
// sweeps over every literal with contrapositive learning in between.
// Use NewContext to bound the build by a request deadline.
func New(c *netlist.Circuit, opts Options) *Engine {
	e, err := NewContext(context.Background(), c, opts)
	if err != nil {
		panic(err) // unreachable: the background context is never done
	}
	return e
}

// build is the engine constructor body shared by New and NewContext.
func build(ctx context.Context, c *netlist.Circuit, opts Options) *Engine {
	n := c.NumGates()
	e := &Engine{
		c:       c,
		imp:     make([][]Lit, 2*n),
		learned: make([][]Lit, 2*n),
		consts:  make([]int8, n),
		feas:    make([]bool, 2*n),
		val:     make([]int8, n),
		inq:     make([]bool, n),
	}
	for i := range e.consts {
		e.consts[i] = -1
	}
	for i := range e.val {
		e.val[i] = -1
	}
	e.buildCtx = ctx
	e.buildDone = ctx.Done()
	defer func() {
		e.buildCtx = nil
		e.buildDone = nil
	}()
	e.computeDominators()

	rounds := opts.LearnRounds
	if rounds == 0 {
		rounds = 2
	}
	if rounds < 0 {
		rounds = 0
	}
	for iter := 0; ; iter++ {
		e.pollBuild()
		newConst := e.sweep()
		if iter >= rounds {
			break
		}
		if !e.learn() && !newConst {
			break
		}
	}
	return e
}

// Circuit returns the analyzed circuit.
func (e *Engine) Circuit() *netlist.Circuit { return e.c }

// NumLearned returns how many contrapositive implications were learned.
func (e *Engine) NumLearned() int { return e.nLearn }

// NumImplications returns the total size of the implication database
// (implied literals summed over all feasible seed literals).
func (e *Engine) NumImplications() int {
	n := 0
	for _, l := range e.imp {
		n += len(l)
	}
	return n
}

// ConstValue reports whether the signal is proven constant and at which
// value.
func (e *Engine) ConstValue(sig int) (val, ok bool) {
	if v := e.consts[sig]; v >= 0 {
		return v == 1, true
	}
	return false, false
}

// Constants returns the proven-constant signal IDs in ascending order.
func (e *Engine) Constants() []int {
	var out []int
	for sig, v := range e.consts {
		if v >= 0 {
			out = append(out, sig)
		}
	}
	return out
}

// Feasible reports whether assigning the literal is consistent with the
// circuit (false exactly when the signal is constant at the opposite
// value).
func (e *Engine) Feasible(l Lit) bool { return e.feas[l] }

// Implied returns the literals implied by l, sorted by literal value.
// The slice is nil when l is infeasible and must not be modified.
func (e *Engine) Implied(l Lit) []Lit { return e.imp[l] }

// ForEachImplied calls fn for every (signal, value) implied by
// assigning sig to val. Infeasible seeds yield no calls.
func (e *Engine) ForEachImplied(sig int, val bool, fn func(sig int, val bool)) {
	for _, l := range e.imp[MkLit(sig, val)] {
		fn(l.Signal(), l.Val())
	}
}

// Implies reports whether assigning `from` implies `to`.
func (e *Engine) Implies(from, to Lit) bool {
	list := e.imp[from]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= to })
	return i < len(list) && list[i] == to
}

// sweep recomputes the implied set of every literal under the current
// learned database and constants, and reports whether a new constant was
// proven.
func (e *Engine) sweep() (newConst bool) {
	n := e.c.NumGates()
	for sig := 0; sig < n; sig++ {
		for v := int8(0); v <= 1; v++ {
			l := MkLit(sig, v == 1)
			if cv := e.consts[sig]; cv >= 0 && cv != v {
				e.feas[l] = false
				e.imp[l] = nil
				continue
			}
			if e.run(l) {
				e.reset()
				e.feas[l] = false
				e.imp[l] = nil
				if e.consts[sig] < 0 {
					e.consts[sig] = 1 - v
					newConst = true
				}
				continue
			}
			e.feas[l] = true
			out := e.imp[l][:0]
			for _, t := range e.touched {
				if int(t) == sig {
					continue
				}
				out = append(out, MkLit(int(t), e.val[t] == 1))
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			e.imp[l] = out
			e.reset()
		}
	}
	return newConst
}

// learn records the contrapositive of every implication not already in
// the database: a => b yields !b => !a. Reports whether anything new was
// learned.
func (e *Engine) learn() bool {
	added := false
	for li, list := range e.imp {
		a := Lit(li)
		if !e.feas[a] {
			continue
		}
		for _, b := range list {
			nb, na := b.Neg(), a.Neg()
			if !e.feas[nb] || e.Implies(nb, na) {
				continue
			}
			dup := false
			for _, x := range e.learned[nb] {
				if x == na {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			e.learned[nb] = append(e.learned[nb], na)
			e.nLearn++
			added = true
		}
	}
	return added
}

// run propagates the seed literals plus every known constant to a
// fixpoint, leaving the assignment in e.val (-1 = unassigned), and
// reports whether a conflict arose. Callers must call reset afterwards.
func (e *Engine) run(seeds ...Lit) (conflict bool) {
	var pending []Lit
	assign := func(sig int, v int8) {
		switch e.val[sig] {
		case v:
			return
		case -1:
			e.val[sig] = v
			e.touched = append(e.touched, int32(sig))
			pending = append(pending, MkLit(sig, v == 1))
			if !e.inq[sig] {
				e.inq[sig] = true
				e.gq = append(e.gq, int32(sig))
			}
			for _, g := range e.c.Fanout(sig) {
				if !e.inq[g] {
					e.inq[g] = true
					e.gq = append(e.gq, int32(g))
				}
			}
		default:
			conflict = true
		}
	}
	for sig, cv := range e.consts {
		if cv >= 0 {
			assign(sig, cv)
		}
	}
	for _, s := range seeds {
		v := int8(0)
		if s.Val() {
			v = 1
		}
		assign(s.Signal(), v)
	}
	// Poll the build context every 1024 worklist steps: propagation is
	// the hot inner loop of the sweeps, so the select is amortized the
	// same way fsim amortizes its per-block poll.
	steps := 0
	for !conflict && (len(pending) > 0 || len(e.gq) > 0) {
		if steps++; steps&1023 == 0 {
			e.pollBuild()
		}
		if len(pending) > 0 {
			l := pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			for _, t := range e.learned[l] {
				v := int8(0)
				if t.Val() {
					v = 1
				}
				assign(t.Signal(), v)
			}
			continue
		}
		g := int(e.gq[len(e.gq)-1])
		e.gq = e.gq[:len(e.gq)-1]
		e.inq[g] = false
		e.evalGate(g, assign)
	}
	return conflict
}

// reset clears the propagation scratch for the next run.
func (e *Engine) reset() {
	for _, t := range e.touched {
		e.val[t] = -1
	}
	e.touched = e.touched[:0]
	for _, g := range e.gq {
		e.inq[g] = false
	}
	e.gq = e.gq[:0]
}

// evalGate applies the bidirectional gate rules of gate id under the
// current partial assignment:
//
//   - forward: a controlling input (or all inputs known) fixes the
//     output;
//   - backward: the uncontrolled output value fixes every input to the
//     non-controlling value; the controlled output value with exactly
//     one unknown input and no controlling input justifies that input;
//   - XOR/XNOR: all-but-one known pins determine the last, in either
//     direction.
func (e *Engine) evalGate(id int, assign func(int, int8)) {
	g := e.c.Gate(id)
	switch g.Type {
	case netlist.Input:
	case netlist.Buf:
		in := g.Fanin[0]
		if v := e.val[in]; v >= 0 {
			assign(id, v)
		}
		if v := e.val[id]; v >= 0 {
			assign(in, v)
		}
	case netlist.Not:
		in := g.Fanin[0]
		if v := e.val[in]; v >= 0 {
			assign(id, 1-v)
		}
		if v := e.val[id]; v >= 0 {
			assign(in, 1-v)
		}
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
		cv := int8(0) // controlling input value
		if g.Type == netlist.Or || g.Type == netlist.Nor {
			cv = 1
		}
		ov := cv // controlled output value
		if g.Type.Inverting() {
			ov = 1 - ov
		}
		unknown, last := 0, -1
		anyCtl := false
		for _, in := range g.Fanin {
			switch e.val[in] {
			case -1:
				unknown++
				last = in
			case cv:
				anyCtl = true
			}
		}
		if anyCtl {
			assign(id, ov)
		} else if unknown == 0 {
			assign(id, 1-ov)
		}
		switch e.val[id] {
		case 1 - ov:
			for _, in := range g.Fanin {
				assign(in, 1-cv)
			}
		case ov:
			if !anyCtl && unknown == 1 {
				assign(last, cv)
			}
		}
	case netlist.Xor, netlist.Xnor:
		unknown, last := 0, -1
		acc := int8(0)
		for _, in := range g.Fanin {
			switch e.val[in] {
			case -1:
				unknown++
				last = in
			case 1:
				acc ^= 1
			}
		}
		inv := int8(0)
		if g.Type == netlist.Xnor {
			inv = 1
		}
		if unknown == 0 {
			assign(id, acc^inv)
		} else if unknown == 1 {
			if v := e.val[id]; v >= 0 {
				assign(last, v^inv^acc)
			}
		}
	}
}

// Stats summarises the engine for reporting.
type Stats struct {
	Gates        int // circuit size
	Learned      int // contrapositive implications learned
	Implications int // total implied literals stored
	Constants    int // lines proven constant
	Dead         int // lines with no structural path to an output
	Redundant    int // stuck-at faults proven untestable
}

// Stats computes the summary (forcing the redundancy pass).
func (e *Engine) Stats() Stats {
	s := Stats{
		Gates:        e.c.NumGates(),
		Learned:      e.nLearn,
		Implications: e.NumImplications(),
		Constants:    len(e.Constants()),
		Redundant:    len(e.Redundant()),
	}
	for sig := 0; sig < e.c.NumGates(); sig++ {
		if !e.Observable(sig) {
			s.Dead++
		}
	}
	return s
}
