package implic_test

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/implic"
	"repro/internal/netlist"
)

// benchCircuits are the largest generator outputs, matching the sizes
// the E-series experiments plan over.
func benchCircuits() map[string]*netlist.Circuit {
	return map[string]*netlist.Circuit{
		"mul8":     gen.Multiplier(8),
		"bshift32": gen.BarrelShifter(32),
		"alu16":    gen.ALUSlice(16),
		"dag600":   gen.RandomDAG(42, 24, 600, gen.DAGOptions{}),
		"rpr":      gen.RPResistant(7, 6, 10, 4),
	}
}

// BenchmarkBuild measures full engine construction: direct sweep,
// learning rounds, dominators and the redundancy pass.
func BenchmarkBuild(b *testing.B) {
	for name, c := range benchCircuits() {
		b.Run(name, func(b *testing.B) {
			var st implic.Stats
			for i := 0; i < b.N; i++ {
				st = implic.New(c, implic.Options{}).Stats()
			}
			b.ReportMetric(float64(st.Gates), "gates")
			b.ReportMetric(float64(st.Implications), "implications")
			b.ReportMetric(float64(st.Learned), "learned")
		})
	}
}

// BenchmarkBuildDirectOnly isolates the cost of learning by building
// with the contrapositive rounds disabled.
func BenchmarkBuildDirectOnly(b *testing.B) {
	for name, c := range benchCircuits() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				implic.New(c, implic.Options{LearnRounds: -1})
			}
		})
	}
}

// benchmarkPODEM runs full-universe test generation and reports total
// backtracks, with or without the learned-implication pruning.
func benchmarkPODEM(b *testing.B, c *netlist.Circuit, eng *implic.Engine) {
	faults := fault.Universe(c)
	backs := 0
	for i := 0; i < b.N; i++ {
		backs = 0
		for _, f := range faults {
			res, err := atpg.Generate(c, f, atpg.Options{Learn: eng})
			if err != nil {
				b.Fatal(err)
			}
			backs += res.Backtracks
		}
	}
	b.ReportMetric(float64(backs), "backtracks")
	b.ReportMetric(float64(len(faults)), "faults")
}

// BenchmarkPODEMBaseline generates tests for the full universe without
// implication assistance.
func BenchmarkPODEMBaseline(b *testing.B) {
	for name, c := range benchCircuits() {
		b.Run(name, func(b *testing.B) {
			benchmarkPODEM(b, c, nil)
		})
	}
}

// BenchmarkPODEMLearned is the same generation with the engine's
// learned implications pruning the search. The engine build is outside
// the timed loop: it is shared across all faults of a circuit in real
// flows.
func BenchmarkPODEMLearned(b *testing.B) {
	for name, c := range benchCircuits() {
		eng := implic.New(c, implic.Options{})
		b.Run(name, func(b *testing.B) {
			benchmarkPODEM(b, c, eng)
		})
	}
}
