package implic

import (
	"context"
	"errors"
	"testing"
)

// TestNewContextCanceledBeforeBuild: a context that is already done
// aborts the build before any sweep and surfaces the context's error.
func TestNewContextCanceledBeforeBuild(t *testing.T) {
	c, _, _ := indirectCircuit()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := NewContext(ctx, c, Options{})
	if e != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("NewContext on a canceled context: engine=%v err=%v, want nil engine and context.Canceled", e, err)
	}
}

// TestNewContextMatchesNew: threading a live context through the build
// must not change what is learned.
func TestNewContextMatchesNew(t *testing.T) {
	c, z, a := indirectCircuit()
	plain := New(c, Options{})
	ctxed, err := NewContext(context.Background(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ctxed.Implies(MkLit(z, true), MkLit(a, true)) {
		t.Error("context-built engine lost the learned implication z=1 => a=1")
	}
	if plain.NumImplications() != ctxed.NumImplications() || plain.NumLearned() != ctxed.NumLearned() {
		t.Errorf("context-built engine diverged: %d/%d implications, %d/%d learned",
			ctxed.NumImplications(), plain.NumImplications(), ctxed.NumLearned(), plain.NumLearned())
	}
}

// TestQueriesAfterCanceledContextBuild: the build context is cleared
// once the database is built, so canceling it afterwards must not
// poison later queries (which may lazily run the propagation engine).
func TestQueriesAfterCanceledContextBuild(t *testing.T) {
	c, z, a := indirectCircuit()
	ctx, cancel := context.WithCancel(context.Background())
	e, err := NewContext(ctx, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if !e.Implies(MkLit(z, true), MkLit(a, true)) {
		t.Error("query failed after the build context was canceled")
	}
	// The lazy redundancy analysis re-runs the propagation engine; it
	// must not observe the dead build context.
	_ = e.RedundantFaults()
}
