package implic

import (
	"fmt"

	"repro/internal/fault"
)

// The static redundancy pass proves single stuck-at faults untestable by
// combining the three kinds of engine knowledge. A fault is redundant
// when any sound necessary condition for detection fails:
//
//  1. observability: the fault site has no structural path to a primary
//     output;
//  2. excitation: the faulted line is proven constant at the stuck
//     value, so no input vector ever creates a good/faulty difference;
//  3. propagation: exciting the fault implies (in the fault-free
//     circuit) that a side input of some dominator of the site holds
//     its controlling value. Every sensitized path must pass through
//     every dominator, and a side input outside the fault's fanout cone
//     carries the same value in both circuit copies, so a controlling
//     side value fixes the dominator output identically in both copies
//     and the fault effect dies there.
//
// Every proof here is conservative: the pass can miss redundant faults,
// but a fault it reports is genuinely untestable, which the tests
// cross-check against exhaustive PODEM runs.

// RedundantFault pairs a proven-untestable fault with the reason the
// proof found.
type RedundantFault struct {
	F      fault.Fault
	Reason string
}

// Redundant returns the statically-proven-untestable faults of the full
// uncollapsed universe, in universe order. Computed once and cached.
func (e *Engine) Redundant() []RedundantFault {
	if e.redundant == nil {
		e.redundant = e.computeRedundant()
	}
	return e.redundant
}

// RedundantFaults returns just the faults of Redundant.
func (e *Engine) RedundantFaults() []fault.Fault {
	det := e.Redundant()
	out := make([]fault.Fault, len(det))
	for i, r := range det {
		out[i] = r.F
	}
	return out
}

// RedundantSet returns the redundant faults as a membership set.
func (e *Engine) RedundantSet() map[fault.Fault]bool {
	out := make(map[fault.Fault]bool)
	for _, r := range e.Redundant() {
		out[r.F] = true
	}
	return out
}

func (e *Engine) computeRedundant() []RedundantFault {
	out := []RedundantFault{}
	cone := make([]bool, e.c.NumGates())
	var marked []int
	for _, f := range fault.Universe(e.c) {
		if reason, ok := e.redundantReason(f, cone, &marked); ok {
			out = append(out, RedundantFault{F: f, Reason: reason})
		}
	}
	return out
}

// redundantReason checks the three conditions for one fault. cone and
// marked are caller-owned scratch for the fanout-cone marking.
func (e *Engine) redundantReason(f fault.Fault, cone []bool, marked *[]int) (string, bool) {
	c := e.c
	// site: the signal whose good value must oppose the stuck value.
	site := f.Gate
	if !f.IsStem() {
		site = c.Fanin(f.Gate)[f.Pin]
	}

	// 1. Observability: the corrupted values live in the fanout cone of
	// f.Gate (the stem itself, or the branch's consuming gate).
	if !e.Observable(f.Gate) {
		return "no structural path from the fault site to a primary output", true
	}

	// 2. Excitation: a line constant at the stuck value never diverges.
	if cv := e.consts[site]; cv >= 0 && (cv == 1) == f.Stuck {
		return fmt.Sprintf("line %s is proven constant %d, matching the stuck value", c.GateName(site), cv), true
	}
	want := MkLit(site, !f.Stuck)
	if !e.feas[want] {
		// Only reachable if the constant table lags the feasibility
		// table; semantically the same proof as above.
		return fmt.Sprintf("excitation %s=%v is infeasible", c.GateName(site), !f.Stuck), true
	}

	// 3. Propagation through dominators under the conditions every
	// detecting vector must satisfy: the excitation, and — for a branch
	// fault — every side pin of the consuming gate at its
	// non-controlling value (a controlling side value kills the effect
	// before it leaves the gate). Side pins are fanins of the consuming
	// gate, so acyclicity keeps them outside the fault's fanout cone and
	// the conditions refer to fault-free values only.
	seeds := []Lit{want}
	if !f.IsStem() {
		if cvb, hasCtl := c.Type(f.Gate).ControllingValue(); hasCtl {
			for pin, w := range c.Fanin(f.Gate) {
				if pin != f.Pin {
					seeds = append(seeds, MkLit(w, !cvb))
				}
			}
		}
	}
	if e.run(seeds...) {
		defer e.reset()
		return fmt.Sprintf("the conditions for detecting %s (excitation plus non-controlling side pins) conflict", f.Name(c)), true
	}
	defer e.reset()

	// Mark the fanout cone of the corrupted signals.
	*marked = (*marked)[:0]
	mark := func(s int) {
		if !cone[s] {
			cone[s] = true
			*marked = append(*marked, s)
		}
	}
	mark(f.Gate)
	for i := 0; i < len(*marked); i++ {
		for _, g := range c.Fanout((*marked)[i]) {
			mark(g)
		}
	}
	defer func() {
		for _, s := range *marked {
			cone[s] = false
		}
	}()

	// For a branch fault the effect first crosses the consuming gate,
	// whose other pins always carry fault-free values; then the
	// dominator chain of that gate. For a stem fault the chain alone.
	check := func(d int, skipPin int) (string, bool) {
		t := c.Type(d)
		cvb, hasCtl := t.ControllingValue()
		if !hasCtl {
			return "", false // XOR-likes and BUF/NOT never block
		}
		cv := int8(0)
		if cvb {
			cv = 1
		}
		for pin, w := range c.Fanin(d) {
			if pin == skipPin || cone[w] {
				continue
			}
			if e.val[w] == cv {
				return fmt.Sprintf("blocked at dominator %s: side input %s is implied to its controlling value by the excitation",
					c.GateName(d), c.GateName(w)), true
			}
		}
		return "", false
	}
	if !f.IsStem() {
		if reason, ok := check(f.Gate, f.Pin); ok {
			return reason, true
		}
	}
	for _, d := range e.Dominators(f.Gate) {
		if reason, ok := check(d, -1); ok {
			return reason, true
		}
	}
	return "", false
}

// Collapse returns the engine-backed collapsed fault list: structural
// equivalence plus dominance collapsing (internal/fault) with every
// class containing a statically redundant fault removed, and dominance
// drops restricted to witnesses whose detection is still guaranteed.
func (e *Engine) Collapse() []fault.Fault {
	return fault.CollapseExcluding(e.c, e.RedundantFaults())
}
