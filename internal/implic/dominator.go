package implic

// Dominator analysis over the fanout graph. A virtual sink node is fed
// by every primary output; gate d dominates signal s when every
// structural path from s to any primary output passes through d. The
// classic use in test generation: a fault on s can only be observed if
// it propagates through every dominator of s, so a dominator whose side
// inputs are forced to the controlling value blocks the fault for good.
//
// The tree is computed with the Cooper–Harvey–Kennedy iterative
// algorithm on the edge-reversed graph (sink -> outputs -> fanins),
// which needs no sophisticated data structures and converges in a
// couple of passes on netlist-shaped DAGs.

// computeDominators fills e.idom and e.rpo. Nodes with no path to a
// primary output get rpo -1 and no dominator.
func (e *Engine) computeDominators() {
	c := e.c
	n := c.NumGates()
	sink := n
	e.sink = sink

	// Postorder DFS from the sink over reversed edges.
	succs := func(u int) []int {
		if u == sink {
			return c.Outputs()
		}
		return c.Fanin(u)
	}
	type frame struct{ node, idx int }
	state := make([]uint8, n+1)
	post := make([]int, 0, n+1)
	stack := []frame{{sink, 0}}
	state[sink] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := succs(f.node)
		if f.idx < len(ss) {
			nx := ss[f.idx]
			f.idx++
			if state[nx] == 0 {
				state[nx] = 1
				stack = append(stack, frame{nx, 0})
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}

	rpo := make([]int, n+1)
	for i := range rpo {
		rpo[i] = -1
	}
	order := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo[post[i]] = len(order)
		order = append(order, post[i])
	}

	// Predecessors in the reversed graph are the original consumers
	// (deduplicated; a multi-pin consumer appears once) plus the sink
	// for primary outputs.
	preds := make([][]int, n)
	for u := 0; u < n; u++ {
		var ps []int
		for _, g := range c.Fanout(u) {
			dup := false
			for _, p := range ps {
				if p == g {
					dup = true
					break
				}
			}
			if !dup {
				ps = append(ps, g)
			}
		}
		if c.IsOutput(u) {
			ps = append(ps, sink)
		}
		preds[u] = ps
	}

	idom := make([]int, n+1)
	for i := range idom {
		idom[i] = -1
	}
	idom[sink] = sink
	intersect := func(a, b int) int {
		for a != b {
			e.pollBuild()
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		e.pollBuild()
		changed = false
		for _, b := range order[1:] {
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	e.idom = idom
	e.rpo = rpo
}

// Observable reports whether the signal has a structural path to a
// primary output (a primary output observes itself).
func (e *Engine) Observable(sig int) bool { return e.rpo[sig] >= 0 }

// Dominator returns the immediate dominator gate of the signal. ok is
// false when the signal is dead, or when no single gate dominates it
// (it is a primary output, or its fanout reaches the outputs along
// disjoint paths).
func (e *Engine) Dominator(sig int) (dom int, ok bool) {
	if e.rpo[sig] < 0 {
		return -1, false
	}
	d := e.idom[sig]
	if d < 0 || d == e.sink {
		return -1, false
	}
	return d, true
}

// Dominators returns the dominator chain of the signal from the nearest
// dominator outward, excluding the virtual sink. Dead signals yield
// nil.
func (e *Engine) Dominators(sig int) []int {
	if e.rpo[sig] < 0 {
		return nil
	}
	var out []int
	for d := e.idom[sig]; d >= 0 && d != e.sink; d = e.idom[d] {
		out = append(out, d)
	}
	return out
}
