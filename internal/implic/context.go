package implic

import (
	"context"

	"repro/internal/netlist"
)

// Cancellation support for the engine build. Constructing the database
// is the expensive phase — a dominator fixpoint plus LearnRounds+1
// implication sweeps over every literal — and it runs on the serve
// request path (directly for /v1/lint's static rules, and for /v1/atpg
// when learned-implication pruning is requested). Like the tpi
// planners, cancellation aborts via a private panic value recovered in
// the exported wrapper, so the recursive/worklist internals need no
// error plumbing. Queries after a successful build are read-only table
// lookups and never poll.
type ctxAbort struct{ err error }

// pollBuild panics with ctxAbort when the build context is done. The
// done channel is nil outside NewContext (and for context.Background),
// making the select arm never ready — the non-cancellable path pays one
// cheap select.
func (e *Engine) pollBuild() {
	select {
	case <-e.buildDone:
		panic(ctxAbort{e.buildCtx.Err()})
	default:
	}
}

// recoverCtx converts a ctxAbort panic into *err; any other panic is
// re-raised.
func recoverCtx(err *error) {
	switch r := recover().(type) {
	case nil:
	case ctxAbort:
		*err = r.err
	default:
		panic(r)
	}
}

// NewContext builds the engine like New but honors ctx: the dominator
// fixpoint, the implication sweeps, and the propagation worklists poll
// the context and abort with its error once it is done. The returned
// engine is nil on abort.
func NewContext(ctx context.Context, c *netlist.Circuit, opts Options) (e *Engine, err error) {
	defer recoverCtx(&err)
	e = build(ctx, c, opts)
	return e, nil
}
