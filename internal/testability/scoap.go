package testability

import "repro/internal/netlist"

// SCOAP holds the classic integer testability measures: CC0/CC1 count the
// minimum number of line assignments needed to set a signal to 0/1, CO
// counts the assignments needed to observe it at a primary output. Large
// values flag hard-to-control/observe logic; unlike COP these are
// combinatorial difficulty measures, not probabilities.
type SCOAP struct {
	CC0, CC1 []int
	CO       []int
}

// scoapInf is the sentinel for unobservable/uncontrollable (should not
// occur in validated circuits but keeps arithmetic safe).
const scoapInf = 1 << 30

// NewSCOAP computes the SCOAP measures.
func NewSCOAP(c *netlist.Circuit) *SCOAP {
	n := c.NumGates()
	s := &SCOAP{
		CC0: make([]int, n),
		CC1: make([]int, n),
		CO:  make([]int, n),
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		switch g.Type {
		case netlist.Input:
			s.CC0[id], s.CC1[id] = 1, 1
		case netlist.Buf:
			s.CC0[id] = s.CC0[g.Fanin[0]] + 1
			s.CC1[id] = s.CC1[g.Fanin[0]] + 1
		case netlist.Not:
			s.CC0[id] = s.CC1[g.Fanin[0]] + 1
			s.CC1[id] = s.CC0[g.Fanin[0]] + 1
		case netlist.And, netlist.Nand:
			sum1, min0 := 0, scoapInf
			for _, f := range g.Fanin {
				sum1 += s.CC1[f]
				if s.CC0[f] < min0 {
					min0 = s.CC0[f]
				}
			}
			if g.Type == netlist.And {
				s.CC1[id], s.CC0[id] = sum1+1, min0+1
			} else {
				s.CC0[id], s.CC1[id] = sum1+1, min0+1
			}
		case netlist.Or, netlist.Nor:
			sum0, min1 := 0, scoapInf
			for _, f := range g.Fanin {
				sum0 += s.CC0[f]
				if s.CC1[f] < min1 {
					min1 = s.CC1[f]
				}
			}
			if g.Type == netlist.Or {
				s.CC0[id], s.CC1[id] = sum0+1, min1+1
			} else {
				s.CC1[id], s.CC0[id] = sum0+1, min1+1
			}
		case netlist.Xor, netlist.Xnor:
			// Fold pairwise: cost of parity-0 / parity-1 over the prefix.
			c0, c1 := s.CC0[g.Fanin[0]], s.CC1[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				n0, n1 := s.CC0[f], s.CC1[f]
				c0, c1 = minInt(c0+n0, c1+n1), minInt(c0+n1, c1+n0)
			}
			if g.Type == netlist.Xor {
				s.CC0[id], s.CC1[id] = c0+1, c1+1
			} else {
				s.CC0[id], s.CC1[id] = c1+1, c0+1
			}
		}
	}
	// Observability, reverse topological.
	order := c.TopoOrder()
	for _, id := range order {
		s.CO[id] = scoapInf
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if c.IsOutput(id) {
			s.CO[id] = 0
		}
		for _, consumer := range c.Fanout(id) {
			g := c.Gate(consumer)
			for pin, f := range g.Fanin {
				if f != id {
					continue
				}
				cost := s.CO[consumer] + 1
				switch g.Type {
				case netlist.And, netlist.Nand:
					for j, other := range g.Fanin {
						if j != pin {
							cost += s.CC1[other]
						}
					}
				case netlist.Or, netlist.Nor:
					for j, other := range g.Fanin {
						if j != pin {
							cost += s.CC0[other]
						}
					}
				case netlist.Xor, netlist.Xnor:
					for j, other := range g.Fanin {
						if j != pin {
							cost += minInt(s.CC0[other], s.CC1[other])
						}
					}
				}
				if cost < s.CO[id] {
					s.CO[id] = cost
				}
			}
		}
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
