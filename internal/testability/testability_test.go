package testability

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// exactDetectProb computes the true detection probability of a fault
// under uniform random patterns by exhaustive fault simulation.
func exactDetectProb(t *testing.T, c *netlist.Circuit, f fault.Fault) float64 {
	t.Helper()
	res, err := fsim.Run(c, []fault.Fault{f}, pattern.NewCounter(c.NumInputs()), fsim.Options{
		MaxPatterns:     1 << uint(c.NumInputs()),
		DropFaults:      false,
		CountDetections: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return float64(res.DetectCount[f]) / float64(uint(1)<<uint(c.NumInputs()))
}

// exactSignalProb computes P(signal=1) exhaustively.
func exactSignalProb(t *testing.T, c *netlist.Circuit, id int) float64 {
	t.Helper()
	n := c.NumInputs()
	count := 0
	vals := make([]bool, c.NumGates())
	in := make([]bool, 0, 8)
	for v := 0; v < 1<<uint(n); v++ {
		for i, pi := range c.Inputs() {
			vals[pi] = v>>uint(i)&1 == 1
		}
		for _, g := range c.TopoOrder() {
			gg := c.Gate(g)
			if gg.Type == netlist.Input {
				continue
			}
			in = in[:0]
			for _, f := range gg.Fanin {
				in = append(in, vals[f])
			}
			vals[g] = gg.Type.Eval(in)
		}
		if vals[id] {
			count++
		}
	}
	return float64(count) / float64(uint(1)<<uint(n))
}

func TestCOPControllabilityExactOnTrees(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := gen.RandomTree(seed, 8, gen.TreeOptions{})
		co := NewCOP(c, COPOptions{})
		for id := 0; id < c.NumGates(); id++ {
			want := exactSignalProb(t, c, id)
			if got := co.Controllability(id); math.Abs(got-want) > 1e-9 {
				t.Errorf("tree seed %d gate %s: COP c1=%.6f exact=%.6f", seed, c.GateName(id), got, want)
			}
		}
	}
}

func TestCOPDetectProbExactOnTrees(t *testing.T) {
	// On fanout-free circuits the COP detection probability is exact:
	// excitation and propagation events are independent and the sensitized
	// path is unique.
	for seed := int64(0); seed < 5; seed++ {
		c := gen.RandomTree(seed, 8, gen.TreeOptions{})
		co := NewCOP(c, COPOptions{})
		for _, f := range fault.Universe(c) {
			want := exactDetectProb(t, c, f)
			if got := co.DetectProb(f); math.Abs(got-want) > 1e-9 {
				t.Errorf("tree seed %d fault %s: COP dp=%.6f exact=%.6f", seed, f.Name(c), got, want)
			}
		}
	}
}

func TestCOPXorHandling(t *testing.T) {
	c := gen.ParityTree(5)
	co := NewCOP(c, COPOptions{})
	// Every signal in a balanced XOR tree has P(1)=0.5 and observability 1.
	for id := 0; id < c.NumGates(); id++ {
		if math.Abs(co.Controllability(id)-0.5) > 1e-12 {
			t.Errorf("XOR tree gate %s c1=%.4f, want 0.5", c.GateName(id), co.Controllability(id))
		}
		if math.Abs(co.Observability(id)-1.0) > 1e-12 {
			t.Errorf("XOR tree gate %s obs=%.4f, want 1.0", c.GateName(id), co.Observability(id))
		}
	}
}

func TestCOPAndConeProbabilities(t *testing.T) {
	c := gen.AndCone(8)
	co := NewCOP(c, COPOptions{})
	out := c.Outputs()[0]
	if got, want := co.Controllability(out), math.Pow(0.5, 8); math.Abs(got-want) > 1e-12 {
		t.Errorf("cone output c1=%.8f, want %.8f", got, want)
	}
	// Output s-a-0 detection probability = excitation = 2^-8.
	dp := co.DetectProb(fault.Fault{Gate: out, Pin: -1, Stuck: false})
	if math.Abs(dp-math.Pow(0.5, 8)) > 1e-12 {
		t.Errorf("cone output s-a-0 dp=%.8f", dp)
	}
	// Input s-a-1 observability through the cone: all 7 other inputs at 1.
	in0 := c.Inputs()[0]
	dp = co.DetectProb(fault.Fault{Gate: in0, Pin: -1, Stuck: true})
	if want := 0.5 * math.Pow(0.5, 7); math.Abs(dp-want) > 1e-12 {
		t.Errorf("cone input s-a-1 dp=%.8f, want %.8f", dp, want)
	}
}

func TestCOPBoundsOnReconvergent(t *testing.T) {
	// On reconvergent circuits COP is approximate but must stay in [0,1]
	// and be finite.
	for seed := int64(0); seed < 5; seed++ {
		c := gen.RandomDAG(seed, 10, 80, gen.DAGOptions{})
		for _, mode := range []StemCombine{CombineMax, CombineOr} {
			co := NewCOP(c, COPOptions{Combine: mode})
			for id := 0; id < c.NumGates(); id++ {
				c1 := co.Controllability(id)
				ob := co.Observability(id)
				if c1 < 0 || c1 > 1 || math.IsNaN(c1) {
					t.Fatalf("c1 out of range: %f", c1)
				}
				if ob < 0 || ob > 1 || math.IsNaN(ob) {
					t.Fatalf("obs out of range: %f", ob)
				}
			}
			for _, f := range fault.Universe(c) {
				dp := co.DetectProb(f)
				if dp < 0 || dp > 1 || math.IsNaN(dp) {
					t.Fatalf("dp out of range: %f for %v", dp, f)
				}
			}
		}
	}
}

func TestCombineOrGeqMax(t *testing.T) {
	c := gen.C17()
	max := NewCOP(c, COPOptions{Combine: CombineMax})
	or := NewCOP(c, COPOptions{Combine: CombineOr})
	for id := 0; id < c.NumGates(); id++ {
		if or.Observability(id) < max.Observability(id)-1e-12 {
			t.Errorf("gate %s: or-combined obs %.6f < max-combined %.6f",
				c.GateName(id), or.Observability(id), max.Observability(id))
		}
	}
}

func TestCOPC17AgainstExhaustive(t *testing.T) {
	// c17 is small enough for exact numbers; COP with max-combining should
	// be within coarse tolerance despite reconvergence.
	c := gen.C17()
	co := NewCOP(c, COPOptions{})
	for id := 0; id < c.NumGates(); id++ {
		want := exactSignalProb(t, c, id)
		if got := co.Controllability(id); math.Abs(got-want) > 0.15 {
			t.Errorf("gate %s: COP c1=%.4f exact=%.4f (error too large)", c.GateName(id), got, want)
		}
	}
}

func TestInputProbOption(t *testing.T) {
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	co := NewCOP(c, COPOptions{InputProb: []float64{0.9, 0.8}})
	if got := co.Controllability(g); math.Abs(got-0.72) > 1e-12 {
		t.Errorf("weighted AND c1=%.4f, want 0.72", got)
	}
}

func TestHardFaults(t *testing.T) {
	c := gen.AndCone(16)
	co := NewCOP(c, COPOptions{})
	hard := co.HardFaults(fault.CollapsedUniverse(c), 1.0/4096)
	if len(hard) == 0 {
		t.Error("16-wide AND cone must have random-pattern-resistant faults")
	}
	// The output s-a-0 (or its representative) must be among them.
	found := false
	for _, f := range hard {
		if co.DetectProb(f) < 1.0/4096 {
			found = true
		}
	}
	if !found {
		t.Error("hard list contains no hard fault")
	}
}

func TestTestLengthMath(t *testing.T) {
	// p=0.5, 99% confidence: N = ln(0.01)/ln(0.5) ≈ 6.64.
	if n := TestLength(0.5, 0.99); math.Abs(n-6.6438) > 0.01 {
		t.Errorf("TestLength(0.5,0.99)=%f", n)
	}
	if !math.IsInf(TestLength(0, 0.99), 1) {
		t.Error("TestLength(0) must be +Inf")
	}
	if n := TestLength(1, 0.99); n != 1 {
		t.Errorf("TestLength(1)=%f, want 1", n)
	}
	if p := EscapeProb(0.5, 3); math.Abs(p-0.125) > 1e-12 {
		t.Errorf("EscapeProb=%f", p)
	}
}

func TestExpectedCoverageMonotone(t *testing.T) {
	c := gen.RandomDAG(2, 10, 60, gen.DAGOptions{})
	co := NewCOP(c, COPOptions{})
	faults := fault.CollapsedUniverse(c)
	prev := 0.0
	for _, n := range []int{10, 100, 1000, 10000} {
		cov := ExpectedCoverage(co, faults, n)
		if cov < prev {
			t.Errorf("expected coverage decreased at n=%d: %f < %f", n, cov, prev)
		}
		if cov < 0 || cov > 1 {
			t.Errorf("expected coverage out of range: %f", cov)
		}
		prev = cov
	}
}

func TestSCOAPBasics(t *testing.T) {
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	s := NewSCOAP(c)
	if s.CC0[a] != 1 || s.CC1[a] != 1 {
		t.Errorf("input CC = %d/%d, want 1/1", s.CC0[a], s.CC1[a])
	}
	// AND: CC1 = CC1(a)+CC1(b)+1 = 3; CC0 = min(CC0)+1 = 2.
	if s.CC1[g] != 3 || s.CC0[g] != 2 {
		t.Errorf("AND CC = CC0 %d / CC1 %d, want 2/3", s.CC0[g], s.CC1[g])
	}
	if s.CO[g] != 0 {
		t.Errorf("PO CO = %d, want 0", s.CO[g])
	}
	// CO(a) = CO(g) + CC1(b) + 1 = 2.
	if s.CO[a] != 2 {
		t.Errorf("CO(a) = %d, want 2", s.CO[a])
	}
}

func TestSCOAPInverterAndXor(t *testing.T) {
	b := netlist.NewBuilder("mix")
	a := b.Input("a")
	x := b.Input("b")
	n := b.NotGate("n", a)
	g := b.XorGate("g", n, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	s := NewSCOAP(c)
	if s.CC0[n] != 2 || s.CC1[n] != 2 {
		t.Errorf("NOT CC = %d/%d, want 2/2", s.CC0[n], s.CC1[n])
	}
	// XOR: CC0 = min(CC0n+CC0b, CC1n+CC1b)+1 = min(3,3)+1 = 4.
	if s.CC0[g] != 4 || s.CC1[g] != 4 {
		t.Errorf("XOR CC = %d/%d, want 4/4", s.CC0[g], s.CC1[g])
	}
	// CO(x) = CO(g) + min(CC0n, CC1n) + 1 = 0+2+1 = 3.
	if s.CO[x] != 3 {
		t.Errorf("CO(x) = %d, want 3", s.CO[x])
	}
}

func TestSCOAPDeepCircuitFinite(t *testing.T) {
	c := gen.Multiplier(6)
	s := NewSCOAP(c)
	for id := 0; id < c.NumGates(); id++ {
		if s.CC0[id] >= scoapInf || s.CC1[id] >= scoapInf || s.CO[id] >= scoapInf {
			t.Fatalf("gate %s has infinite SCOAP measure", c.GateName(id))
		}
	}
}

func TestMeasuredCOPMatchesAnalyticOnTrees(t *testing.T) {
	// On fanout-free circuits the analytic c1 is exact, so measured
	// probabilities converge to it (within sampling error).
	c := gen.RandomTree(3, 10, gen.TreeOptions{})
	analytic := NewCOP(c, COPOptions{})
	measured, err := NewCOPMeasured(c, pattern.NewLFSR(5), 1<<16, COPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.NumGates(); id++ {
		if d := math.Abs(analytic.Controllability(id) - measured.Controllability(id)); d > 0.02 {
			t.Errorf("gate %s: measured c1 off by %.4f", c.GateName(id), d)
		}
	}
}

func TestMeasuredCOPBeatsAnalyticUnderReconvergence(t *testing.T) {
	// On reconvergent circuits the measured controllabilities must be at
	// least as accurate in aggregate as the independence-assuming pass.
	c := gen.RandomDAG(4, 10, 60, gen.DAGOptions{})
	analytic := NewCOP(c, COPOptions{})
	measured, err := NewCOPMeasured(c, pattern.NewLFSR(5), 1<<16, COPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var errAnalytic, errMeasured float64
	for id := 0; id < c.NumGates(); id++ {
		exact := exactSignalProb(t, c, id)
		errAnalytic += math.Abs(analytic.Controllability(id) - exact)
		errMeasured += math.Abs(measured.Controllability(id) - exact)
	}
	n := float64(c.NumGates())
	if errMeasured/n > errAnalytic/n+0.005 {
		t.Errorf("measured mean error %.4f worse than analytic %.4f", errMeasured/n, errAnalytic/n)
	}
	t.Logf("mean |c1 error|: analytic %.4f, measured %.4f", errAnalytic/n, errMeasured/n)
}

func TestMeasuredCOPExhaustedSource(t *testing.T) {
	// A counter source exhausts; the constructor must cope.
	c := gen.C17()
	co, err := NewCOPMeasured(c, pattern.NewCounter(5), 1<<10, COPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive measurement is exact.
	for id := 0; id < c.NumGates(); id++ {
		if d := math.Abs(co.Controllability(id) - exactSignalProb(t, c, id)); d > 1e-12 {
			t.Errorf("gate %s: exhaustive measured c1 off by %g", c.GateName(id), d)
		}
	}
}
