// Package testability implements analytic testability measures for
// combinational circuits: the COP controllability/observability
// probabilities, per-fault detection probability estimates, the integer
// SCOAP measures, and random-pattern test length estimation. On
// fanout-free circuits the COP probabilities are exact; reconvergent
// fanout introduces the correlation error that motivates validating
// against the fault simulator.
package testability

import (
	"math"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// StemCombine selects how branch observabilities merge into a stem
// observability in the presence of fanout.
type StemCombine uint8

const (
	// CombineMax takes the best single branch: a lower bound, the
	// conventional COP choice (a fault propagates at least as well as its
	// best branch).
	CombineMax StemCombine = iota
	// CombineOr treats branches as independent detection events:
	// 1 - Π(1-ob_i), an optimistic estimate under reconvergence.
	CombineOr
)

// COPOptions configures the analysis.
type COPOptions struct {
	// InputProb gives P(input=1) per primary input in Inputs() order;
	// inputs beyond the slice default to 0.5.
	InputProb []float64
	// Combine selects the stem observability rule (default CombineMax).
	Combine StemCombine
}

// COP holds the computed controllability and observability probabilities
// of a circuit.
type COP struct {
	c *netlist.Circuit
	// c1[g] = P(signal g = 1) assuming signal independence.
	c1 []float64
	// obs[g] = P(a value change at g is visible at some primary output).
	obs []float64
	// branchObs[g][pin] = P(change on that fanin branch propagates to a PO
	// through gate g).
	branchObs [][]float64
}

// NewCOP computes the COP measures for the circuit.
func NewCOP(c *netlist.Circuit, opts COPOptions) *COP {
	c1 := make([]float64, c.NumGates())
	for i, in := range c.Inputs() {
		p := 0.5
		if i < len(opts.InputProb) {
			p = opts.InputProb[i]
		}
		c1[in] = p
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		c1[id] = gateProb(g.Type, g.Fanin, c1)
	}
	return newCOPFromC1(c, c1, opts)
}

// NewCOPMeasured computes the measures with signal probabilities taken
// from logic simulation of `patterns` vectors from src rather than from
// the analytic forward pass. Measured controllabilities capture the
// reconvergence correlation the independence assumption misses; the
// backward observability pass still assumes independent side inputs.
func NewCOPMeasured(c *netlist.Circuit, src pattern.Source, patterns int, opts COPOptions) (*COP, error) {
	if patterns <= 0 {
		patterns = 4096
	}
	sim := logic.New(c)
	stats := logic.NewSignalStats(c)
	words := make([]uint64, c.NumInputs())
	applied := 0
	for applied < patterns {
		n := src.FillBlock(words)
		if n == 0 {
			break
		}
		if applied+n > patterns {
			n = patterns - applied
		}
		if err := sim.Run(words); err != nil {
			return nil, err
		}
		stats.Accumulate(sim, n)
		applied += n
	}
	c1 := make([]float64, c.NumGates())
	for id := range c1 {
		c1[id] = stats.Probability(id)
	}
	return newCOPFromC1(c, c1, opts), nil
}

// newCOPFromC1 runs the backward observability pass over given signal
// probabilities.
func newCOPFromC1(c *netlist.Circuit, c1 []float64, opts COPOptions) *COP {
	co := &COP{
		c:         c,
		c1:        c1,
		obs:       make([]float64, c.NumGates()),
		branchObs: make([][]float64, c.NumGates()),
	}
	// Backward pass: observability.
	order := c.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := c.Gate(id)
		co.branchObs[id] = make([]float64, len(g.Fanin))
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		// Stem observability of id: direct PO observation or via branches.
		var ob float64
		if c.IsOutput(id) {
			ob = 1
		}
		for _, consumer := range c.Fanout(id) {
			cg := c.Gate(consumer)
			for pin, f := range cg.Fanin {
				if f != id {
					continue
				}
				bo := co.pinObservability(consumer, pin) * co.obs[consumer]
				co.branchObs[consumer][pin] = bo
				switch opts.Combine {
				case CombineOr:
					ob = 1 - (1-ob)*(1-bo)
				default:
					if bo > ob {
						ob = bo
					}
				}
			}
		}
		co.obs[id] = ob
	}
	return co
}

// PinObservability returns P(other inputs of the gate are at
// non-controlling values): the local probability that a change on input
// pin `pin` of the gate propagates through the gate, excluding any
// downstream observability factor. Exact on independent inputs.
func (co *COP) PinObservability(gate, pin int) float64 {
	return co.pinObservability(gate, pin)
}

// pinObservability returns P(other inputs of the gate are at
// non-controlling values), the local propagation probability through one
// gate pin (excluding the downstream observability factor).
func (co *COP) pinObservability(gate, pin int) float64 {
	g := co.c.Gate(gate)
	switch g.Type {
	case netlist.Buf, netlist.Not:
		return 1
	case netlist.Xor, netlist.Xnor:
		// A change on one XOR input always flips the output.
		return 1
	case netlist.And, netlist.Nand:
		p := 1.0
		for i, f := range g.Fanin {
			if i != pin {
				p *= co.c1[f]
			}
		}
		return p
	case netlist.Or, netlist.Nor:
		p := 1.0
		for i, f := range g.Fanin {
			if i != pin {
				p *= 1 - co.c1[f]
			}
		}
		return p
	}
	return 0
}

// gateProb computes P(out=1) for a gate given fanin 1-probabilities,
// assuming input independence.
func gateProb(t netlist.GateType, fanin []int, c1 []float64) float64 {
	switch t {
	case netlist.Buf:
		return c1[fanin[0]]
	case netlist.Not:
		return 1 - c1[fanin[0]]
	case netlist.And, netlist.Nand:
		p := 1.0
		for _, f := range fanin {
			p *= c1[f]
		}
		if t == netlist.Nand {
			return 1 - p
		}
		return p
	case netlist.Or, netlist.Nor:
		q := 1.0
		for _, f := range fanin {
			q *= 1 - c1[f]
		}
		if t == netlist.Nor {
			return q
		}
		return 1 - q
	case netlist.Xor, netlist.Xnor:
		// P(odd number of ones) folded pairwise.
		p := 0.0
		for i, f := range fanin {
			q := c1[f]
			if i == 0 {
				p = q
			} else {
				p = p*(1-q) + (1-p)*q
			}
		}
		if t == netlist.Xnor {
			return 1 - p
		}
		return p
	}
	return 0
}

// Controllability returns P(signal = 1).
func (co *COP) Controllability(id int) float64 { return co.c1[id] }

// Observability returns the stem observability of the signal.
func (co *COP) Observability(id int) float64 { return co.obs[id] }

// BranchObservability returns the observability of input pin `pin` of the
// gate: the probability a change on that branch reaches a primary output.
func (co *COP) BranchObservability(gate, pin int) float64 {
	return co.branchObs[gate][pin]
}

// DetectProb estimates the detection probability of a stuck-at fault
// under one random pattern: P(excite) x P(propagate).
func (co *COP) DetectProb(f fault.Fault) float64 {
	if f.IsStem() {
		exc := co.c1[f.Gate]
		if f.Stuck {
			exc = 1 - exc
		}
		return exc * co.obs[f.Gate]
	}
	driver := co.c.Fanin(f.Gate)[f.Pin]
	exc := co.c1[driver]
	if f.Stuck {
		exc = 1 - exc
	}
	return exc * co.branchObs[f.Gate][f.Pin]
}

// HardFaults returns the faults whose estimated detection probability
// falls below the threshold, i.e. the random-pattern-resistant set.
func (co *COP) HardFaults(faults []fault.Fault, threshold float64) []fault.Fault {
	var out []fault.Fault
	for _, f := range faults {
		if co.DetectProb(f) < threshold {
			out = append(out, f)
		}
	}
	return out
}

// TestLength estimates the number of random patterns needed to detect a
// fault of detection probability p with the given confidence:
// N = ln(1-confidence)/ln(1-p). Returns +Inf for p <= 0.
func TestLength(p, confidence float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return 1
	}
	return math.Log(1-confidence) / math.Log(1-p)
}

// EscapeProb returns the probability that a fault with detection
// probability p survives n random patterns: (1-p)^n.
func EscapeProb(p float64, n int) float64 {
	return math.Pow(1-p, float64(n))
}

// ExpectedCoverage estimates the expected fault coverage after n random
// patterns from per-fault detection probabilities: the mean of
// 1-(1-p_i)^n.
func ExpectedCoverage(co *COP, faults []fault.Fault, n int) float64 {
	if len(faults) == 0 {
		return 1
	}
	sum := 0.0
	for _, f := range faults {
		sum += 1 - EscapeProb(co.DetectProb(f), n)
	}
	return sum / float64(len(faults))
}
