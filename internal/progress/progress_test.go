package progress

import (
	"context"
	"testing"
)

func TestReportReachesAttachedReporter(t *testing.T) {
	type sample struct {
		stage       string
		done, total int64
	}
	var got []sample
	ctx := With(context.Background(), func(stage string, done, total int64) {
		got = append(got, sample{stage, done, total})
	})
	Report(ctx, "patterns", 64, 4096)
	Report(ctx, "patterns", 128, 4096)
	if len(got) != 2 || got[0] != (sample{"patterns", 64, 4096}) || got[1] != (sample{"patterns", 128, 4096}) {
		t.Fatalf("samples = %+v", got)
	}
}

func TestReportWithoutReporterIsNoOp(t *testing.T) {
	Report(context.Background(), "patterns", 1, 2) // must not panic
	if f := FromContext(context.Background()); f != nil {
		t.Fatal("FromContext on a bare context returned a reporter")
	}
}

func TestFromContextSurvivesNesting(t *testing.T) {
	calls := 0
	ctx := With(context.Background(), func(string, int64, int64) { calls++ })
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if f := FromContext(ctx); f == nil {
		t.Fatal("reporter lost through WithCancel")
	} else {
		f("x", 1, 1)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}
