// Package progress carries a per-run progress reporter through a
// context.Context, so long-running engine executions can surface
// monotonic progress to whoever launched them (the async job subsystem
// in internal/jobs) without the engines importing any serving code.
//
// The engines call Report (or hoist FromContext outside their hot
// loops) at the same granularity as their existing cancellation polls:
// fault simulation once per 64-pattern block, ATPG once per targeted
// fault, the planners once per selection round or region. A context
// without a reporter makes every call a no-op, so the synchronous
// paths pay one nil check and nothing else.
package progress

import "context"

// Func receives one progress sample: stage names the unit of work
// ("patterns", "faults", ...), done counts completed units, and total
// is the known bound (0 when unknown). Samples for a fixed stage must
// be monotonically non-decreasing in done; consumers may clamp.
type Func func(stage string, done, total int64)

// ctxKey is the private context key carrying the reporter.
type ctxKey struct{}

// With returns a context that carries f as its progress reporter.
func With(ctx context.Context, f Func) context.Context {
	return context.WithValue(ctx, ctxKey{}, f)
}

// FromContext returns the context's reporter, or nil when none is
// attached. Engine loops hoist this lookup outside the measured region
// and nil-check the returned func per sample.
func FromContext(ctx context.Context) Func {
	f, _ := ctx.Value(ctxKey{}).(Func)
	return f
}

// Report sends one sample to the context's reporter, if any.
func Report(ctx context.Context, stage string, done, total int64) {
	if f := FromContext(ctx); f != nil {
		f(stage, done, total)
	}
}
