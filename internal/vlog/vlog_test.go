package vlog

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

const c17Verilog = `
// c17 benchmark, structural style
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
`

func TestParseC17(t *testing.T) {
	c, err := Parse(strings.NewReader(c17Verilog))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "c17" {
		t.Errorf("name = %q", c.Name())
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 || c.NumGates() != 11 {
		t.Errorf("shape: %v", c)
	}
	n16, ok := c.GateByName("N16")
	if !ok || c.Type(n16) != netlist.Nand {
		t.Error("N16 missing or wrong type")
	}
	// Functional equivalence with the built-in c17 (same structure).
	ref := gen.C17()
	for v := 0; v < 32; v++ {
		for oi := range ref.Outputs() {
			if evalOut(ref, v, oi) != evalOut(c, v, oi) {
				t.Fatalf("vector %d output %d differs from reference c17", v, oi)
			}
		}
	}
}

func evalOut(c *netlist.Circuit, vec, oi int) bool {
	vals := make([]bool, c.NumGates())
	for i, in := range c.Inputs() {
		vals[in] = vec>>uint(i)&1 == 1
	}
	buf := make([]bool, 0, 8)
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		buf = buf[:0]
		for _, f := range g.Fanin {
			buf = append(buf, vals[f])
		}
		vals[id] = g.Type.Eval(buf)
	}
	return vals[c.Outputs()[oi]]
}

func TestParseComments(t *testing.T) {
	src := `
/* block
   comment */ module t (a, z); // ports
  input a;
  output z;
  not g1 (z, /* inline */ a);
endmodule
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 {
		t.Errorf("gates = %d", c.NumGates())
	}
}

func TestParseOutOfOrderInstantiations(t *testing.T) {
	src := `
module t (a, z);
  input a;
  output z;
  wire m, n;
  not g3 (z, m);
  and g2 (m, a, n);
  not g1 (n, a);
endmodule
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 4 {
		t.Errorf("gates = %d", c.NumGates())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no module":     "input a;\n",
		"no endmodule":  "module t (a, z);\ninput a;\noutput z;\nnot g (z, a);\n",
		"unsupported":   "module t (a, z);\ninput a;\noutput z;\nalways @(a) z = a;\nendmodule\n",
		"double driver": "module t (a, z);\ninput a;\noutput z;\nnot g1 (z, a);\nnot g2 (z, a);\nendmodule\n",
		"undriven out":  "module t (a, z);\ninput a;\noutput z;\nendmodule\n",
		"loop":          "module t (a, z);\ninput a;\noutput z;\nand g1 (z, a, w);\nnot g2 (w, z);\nendmodule\n",
		"short inst":    "module t (a, z);\ninput a;\noutput z;\nnot g1 (z);\nendmodule\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	for _, c := range []*netlist.Circuit{
		gen.C17(),
		gen.RandomDAG(3, 8, 40, gen.DAGOptions{}),
		gen.RippleCarryAdder(3),
		gen.RandomTree(5, 12, gen.TreeOptions{}),
	} {
		var sb strings.Builder
		if err := Write(&sb, c); err != nil {
			t.Fatalf("%s: write: %v", c.Name(), err)
		}
		c2, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", c.Name(), err, sb.String())
		}
		if c2.NumGates() != c.NumGates() || c2.NumInputs() != c.NumInputs() || c2.NumOutputs() != c.NumOutputs() {
			t.Fatalf("%s: shape changed: %v vs %v", c.Name(), c2, c)
		}
		limit := 1 << uint(c.NumInputs())
		if limit > 256 {
			limit = 256
		}
		for v := 0; v < limit; v++ {
			for oi := range c.Outputs() {
				if evalOut(c, v, oi) != evalOut(c2, v, oi) {
					t.Fatalf("%s: vector %d output %d differs after round trip", c.Name(), v, oi)
				}
			}
		}
	}
}

func TestSanitizeModuleNames(t *testing.T) {
	b := netlist.NewBuilder("weird name-1")
	a := b.Input("a")
	z := b.NotGate("z", a)
	b.MarkOutput(z)
	c := b.MustBuild()
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "module weird_name_1") {
		t.Errorf("module name not sanitised: %s", sb.String())
	}
}

func TestEscapedIdentifiersRoundTrip(t *testing.T) {
	// c17 signal names are numeric, which forces escaped identifiers.
	c := gen.C17()
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `\22`) {
		t.Fatalf("expected escaped identifiers in output:\n%s", sb.String())
	}
	c2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if _, ok := c2.GateByName("22"); !ok {
		t.Error("escaped identifier did not round-trip to original name")
	}
	for v := 0; v < 32; v++ {
		for oi := range c.Outputs() {
			if evalOut(c, v, oi) != evalOut(c2, v, oi) {
				t.Fatalf("vector %d output %d differs after escaped round trip", v, oi)
			}
		}
	}
}
