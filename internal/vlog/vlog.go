// Package vlog reads and writes the structural Verilog subset the classic
// gate-level benchmark distributions use: a single module whose body is
// input/output/wire declarations plus primitive gate instantiations with
// the output as the first terminal:
//
//	module c17 (N1, N2, N3, N6, N7, N22, N23);
//	  input N1, N2, N3, N6, N7;
//	  output N22, N23;
//	  wire N10, N11, N16, N19;
//	  nand NAND2_1 (N10, N1, N3);
//	  nand NAND2_2 (N11, N3, N6);
//	  ...
//	endmodule
//
// Both // line and /* block */ comments are handled. No behavioural
// constructs, no vectors, no assigns — structural primitives only.
package vlog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/netlist"
)

// ParseError reports a syntax or structural problem.
type ParseError struct {
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return "vlog: " + e.Msg }

var primitives = map[string]netlist.GateType{
	"buf":  netlist.Buf,
	"not":  netlist.Not,
	"and":  netlist.And,
	"nand": netlist.Nand,
	"or":   netlist.Or,
	"nor":  netlist.Nor,
	"xor":  netlist.Xor,
	"xnor": netlist.Xnor,
}

// Parse reads one structural Verilog module and returns the circuit.
func Parse(r io.Reader) (*netlist.Circuit, error) {
	text, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("vlog: read: %w", err)
	}
	stmts, err := split(string(text))
	if err != nil {
		return nil, err
	}
	var (
		moduleName string
		inputs     []string
		outputs    []string
		inModule   bool
		ended      bool
	)
	type inst struct {
		gate      netlist.GateType
		terminals []string
	}
	var insts []inst
	for _, st := range stmts {
		fields := strings.Fields(st)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "module":
			if inModule {
				return nil, &ParseError{"nested or repeated module"}
			}
			inModule = true
			rest := strings.TrimSpace(st[len("module"):])
			if i := strings.IndexByte(rest, '('); i >= 0 {
				moduleName = strings.TrimSpace(rest[:i])
			} else {
				moduleName = rest
			}
			if moduleName == "" {
				return nil, &ParseError{"module without a name"}
			}
		case "endmodule":
			ended = true
		case "input":
			inputs = append(inputs, parseNameList(st[len("input"):])...)
		case "output":
			outputs = append(outputs, parseNameList(st[len("output"):])...)
		case "wire":
			// Declarations only; connectivity comes from instantiations.
		default:
			gt, ok := primitives[fields[0]]
			if !ok {
				return nil, &ParseError{fmt.Sprintf("unsupported construct %q", fields[0])}
			}
			open := strings.IndexByte(st, '(')
			closep := strings.LastIndexByte(st, ')')
			if open < 0 || closep < open {
				return nil, &ParseError{fmt.Sprintf("malformed instantiation %q", st)}
			}
			terms := parseNameList(st[open+1 : closep])
			if len(terms) < 2 {
				return nil, &ParseError{fmt.Sprintf("instantiation %q needs an output and at least one input", st)}
			}
			insts = append(insts, inst{gate: gt, terminals: terms})
		}
	}
	if !inModule {
		return nil, &ParseError{"no module found"}
	}
	if !ended {
		return nil, &ParseError{"missing endmodule"}
	}

	b := netlist.NewBuilder(moduleName)
	ids := make(map[string]int, len(inputs)+len(insts))
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, &ParseError{fmt.Sprintf("input %q declared twice", in)}
		}
		ids[in] = b.Input(in)
	}
	// Instantiations may appear in any order; worklist until resolved.
	pending := insts
	for len(pending) > 0 {
		progressed := false
		remaining := pending[:0]
		for _, in := range pending {
			ready := true
			for _, t := range in.terminals[1:] {
				if _, ok := ids[t]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				remaining = append(remaining, in)
				continue
			}
			out := in.terminals[0]
			if _, dup := ids[out]; dup {
				return nil, &ParseError{fmt.Sprintf("signal %q driven twice", out)}
			}
			gt := in.gate
			// Single-input and/or shorthand does not exist in Verilog;
			// enforce arity through the builder instead.
			fanin := make([]int, 0, len(in.terminals)-1)
			for _, t := range in.terminals[1:] {
				fanin = append(fanin, ids[t])
			}
			ids[out] = b.Add(gt, out, fanin...)
			progressed = true
		}
		pending = remaining
		if !progressed {
			for _, t := range pending[0].terminals[1:] {
				if _, ok := ids[t]; !ok {
					return nil, &ParseError{fmt.Sprintf("undriven signal %q (or combinational loop)", t)}
				}
			}
			return nil, &ParseError{"combinational loop"}
		}
	}
	for _, o := range outputs {
		id, ok := ids[o]
		if !ok {
			return nil, &ParseError{fmt.Sprintf("output %q has no driver", o)}
		}
		b.MarkOutput(id)
	}
	return b.Build()
}

// split strips comments and splits the source into ';'-terminated
// statements ("module ...", "endmodule" are also statements).
func split(src string) ([]string, error) {
	var clean strings.Builder
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	inBlock := false
	for sc.Scan() {
		line := sc.Text()
		for {
			if inBlock {
				end := strings.Index(line, "*/")
				if end < 0 {
					line = ""
					break
				}
				line = line[end+2:]
				inBlock = false
			}
			start := strings.Index(line, "/*")
			if start < 0 {
				break
			}
			rest := line[start+2:]
			line = line[:start]
			end := strings.Index(rest, "*/")
			if end < 0 {
				inBlock = true
			} else {
				line += rest[end+2:]
			}
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vlog: read: %w", err)
	}
	var stmts []string
	for _, part := range strings.Split(clean.String(), ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// "endmodule" has no semicolon; it may be glued to the previous
		// statement's tail.
		for _, kw := range []string{"endmodule"} {
			if strings.HasSuffix(part, kw) && part != kw {
				stmts = append(stmts, strings.TrimSpace(strings.TrimSuffix(part, kw)))
				part = kw
				break
			}
		}
		stmts = append(stmts, part)
	}
	return stmts, nil
}

// parseNameList splits "a, b , c" into identifiers, tolerating the
// enclosing parens already stripped. Verilog escaped identifiers
// (backslash prefix, whitespace terminated) are unescaped.
func parseNameList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "\\")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// identOK reports whether a name is a plain Verilog identifier.
func identOK(name string) bool {
	for i, r := range name {
		switch {
		case r == '_' || r == '$':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return name != ""
}

// sigName renders a signal name, using an escaped identifier (backslash
// prefix plus mandatory trailing space) when the name is not a plain
// identifier.
func sigName(name string) string {
	if identOK(name) {
		return name
	}
	return "\\" + name + " "
}

// Write emits the circuit as a structural Verilog module in topological
// order.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	var ports []string
	for _, in := range c.Inputs() {
		ports = append(ports, sigName(c.GateName(in)))
	}
	for _, o := range c.Outputs() {
		ports = append(ports, sigName(c.GateName(o)))
	}
	fmt.Fprintf(bw, "module %s (%s);\n", sanitize(c.Name()), strings.Join(ports, ", "))
	fmt.Fprintf(bw, "  input %s;\n", strings.Join(ports[:c.NumInputs()], ", "))
	fmt.Fprintf(bw, "  output %s;\n", strings.Join(ports[c.NumInputs():], ", "))
	var wires []string
	for id := 0; id < c.NumGates(); id++ {
		if c.Type(id) != netlist.Input && !c.IsOutput(id) {
			wires = append(wires, sigName(c.GateName(id)))
		}
	}
	if len(wires) > 0 {
		fmt.Fprintf(bw, "  wire %s;\n", strings.Join(wires, ", "))
	}
	n := 0
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		prim := strings.ToLower(g.Type.String())
		if g.Type == netlist.Buf {
			prim = "buf"
		}
		terms := []string{sigName(g.Name)}
		for _, f := range g.Fanin {
			terms = append(terms, sigName(c.GateName(f)))
		}
		n++
		fmt.Fprintf(bw, "  %s g%d (%s);\n", prim, n, strings.Join(terms, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// sanitize keeps module names identifier-shaped.
func sanitize(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "top"
	}
	return b.String()
}
