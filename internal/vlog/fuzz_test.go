package vlog

import (
	"strings"
	"testing"
)

// FuzzParse asserts the Verilog reader never panics and that accepted
// inputs round-trip through the writer.
func FuzzParse(f *testing.F) {
	f.Add(c17Verilog)
	f.Add("module t (a, z);\ninput a;\noutput z;\nnot g (z, a);\nendmodule\n")
	f.Add("module t (a);\ninput a;\nendmodule\n")
	f.Add("/* unterminated\n")
	f.Add("module ; endmodule")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, c); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		c2, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\n%s", err, sb.String())
		}
		if c2.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed gate count: %d vs %d", c2.NumGates(), c.NumGates())
		}
	})
}
