// Package gen produces deterministic, seeded synthetic benchmark circuits
// spanning the structural classes the 1987 evaluation needed: fanout-free
// trees (where the dynamic program is exact), reconvergent DAGs (where the
// problem is NP-complete), arithmetic blocks, and random-pattern-resistant
// cones. Every generator is a pure function of its parameters, so every
// experiment in this repository is reproducible bit-for-bit.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// C17 returns the ISCAS'85 c17 benchmark, the smallest classic circuit
// with reconvergent fanout.
func C17() *netlist.Circuit {
	b := netlist.NewBuilder("c17")
	g1 := b.Input("1")
	g2 := b.Input("2")
	g3 := b.Input("3")
	g6 := b.Input("6")
	g7 := b.Input("7")
	g10 := b.NandGate("10", g1, g3)
	g11 := b.NandGate("11", g3, g6)
	g16 := b.NandGate("16", g2, g11)
	g19 := b.NandGate("19", g11, g7)
	g22 := b.NandGate("22", g10, g16)
	g23 := b.NandGate("23", g16, g19)
	b.MarkOutput(g22)
	b.MarkOutput(g23)
	return b.MustBuild()
}

// TreeOptions parameterises RandomTree.
type TreeOptions struct {
	MaxFanin    int     // maximum gate fanin; default 4
	InverterPct float64 // probability of inserting a NOT above a gate; default 0.15
	NandNorPct  float64 // probability a gate is NAND/NOR instead of AND/OR; default 0.3
}

func (o *TreeOptions) defaults() {
	if o.MaxFanin <= 1 {
		o.MaxFanin = 4
	}
	if o.InverterPct == 0 {
		o.InverterPct = 0.15
	}
	if o.NandNorPct == 0 {
		o.NandNorPct = 0.3
	}
}

// RandomTree generates a random fanout-free circuit over unate gates
// (AND/OR/NAND/NOR/NOT) with the given number of primary inputs and a
// single primary output. The structure is built bottom-up by repeatedly
// grouping 2..MaxFanin subtrees under a random gate.
func RandomTree(seed int64, leaves int, opts TreeOptions) *netlist.Circuit {
	if leaves < 2 {
		panic("gen: RandomTree needs at least 2 leaves")
	}
	opts.defaults()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("tree_s%d_n%d", seed, leaves))
	// Live subtree roots awaiting grouping.
	roots := make([]int, leaves)
	for i := range roots {
		roots[i] = b.Input(fmt.Sprintf("i%d", i))
	}
	for len(roots) > 1 {
		k := 2 + rng.Intn(opts.MaxFanin-1)
		if k > len(roots) {
			k = len(roots)
		}
		// Pick k random distinct roots.
		rng.Shuffle(len(roots), func(i, j int) { roots[i], roots[j] = roots[j], roots[i] })
		fanin := append([]int(nil), roots[:k]...)
		roots = roots[k:]
		var t netlist.GateType
		if rng.Float64() < opts.NandNorPct {
			if rng.Intn(2) == 0 {
				t = netlist.Nand
			} else {
				t = netlist.Nor
			}
		} else {
			if rng.Intn(2) == 0 {
				t = netlist.And
			} else {
				t = netlist.Or
			}
		}
		g := b.Add(t, "", fanin...)
		if rng.Float64() < opts.InverterPct {
			g = b.NotGate("", g)
		}
		roots = append(roots, g)
	}
	b.MarkOutput(roots[0])
	return b.MustBuild()
}

// AndCone returns a single wide AND cone: a balanced tree of 2-input AND
// gates over `width` inputs. Its output stuck-at-0 fault has detection
// probability 2^-width under uniform random patterns, making it the
// canonical random-pattern-resistant structure.
func AndCone(width int) *netlist.Circuit {
	if width < 2 {
		panic("gen: AndCone needs width >= 2")
	}
	b := netlist.NewBuilder(fmt.Sprintf("andcone%d", width))
	level := make([]int, width)
	for i := range level {
		level[i] = b.Input(fmt.Sprintf("i%d", i))
	}
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.AndGate("", level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	b.MarkOutput(level[0])
	return b.MustBuild()
}

// ParityTree returns a balanced XOR tree over `width` inputs. Every fault
// in an XOR tree is trivially observable (XOR propagates unconditionally),
// making it the easy extreme for random-pattern testing.
func ParityTree(width int) *netlist.Circuit {
	if width < 2 {
		panic("gen: ParityTree needs width >= 2")
	}
	b := netlist.NewBuilder(fmt.Sprintf("parity%d", width))
	level := make([]int, width)
	for i := range level {
		level[i] = b.Input(fmt.Sprintf("i%d", i))
	}
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.XorGate("", level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	b.MarkOutput(level[0])
	return b.MustBuild()
}

// DAGOptions parameterises RandomDAG.
type DAGOptions struct {
	MaxFanin int     // default 3
	XorPct   float64 // probability of XOR/XNOR gates; default 0.1
	Locality int     // candidate window for fanin selection; default 0 = whole prefix
}

func (o *DAGOptions) defaults() {
	if o.MaxFanin <= 1 {
		o.MaxFanin = 3
	}
	if o.XorPct == 0 {
		o.XorPct = 0.1
	}
}

// RandomDAG generates a random reconvergent combinational circuit with the
// given number of primary inputs and internal gates. Fanins are drawn from
// earlier gates, so fanout and reconvergence arise naturally. Signals left
// with no consumers become primary outputs.
func RandomDAG(seed int64, inputs, gates int, opts DAGOptions) *netlist.Circuit {
	if inputs < 2 || gates < 1 {
		panic("gen: RandomDAG needs >=2 inputs and >=1 gate")
	}
	opts.defaults()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("dag_s%d_i%d_g%d", seed, inputs, gates))
	var ids []int
	for i := 0; i < inputs; i++ {
		ids = append(ids, b.Input(fmt.Sprintf("i%d", i)))
	}
	hasConsumer := make(map[int]bool)
	for g := 0; g < gates; g++ {
		k := 2 + rng.Intn(opts.MaxFanin-1)
		lo := 0
		if opts.Locality > 0 && len(ids) > opts.Locality {
			lo = len(ids) - opts.Locality
		}
		window := ids[lo:]
		if k > len(window) {
			k = len(window)
		}
		// Distinct fanins from the window.
		perm := rng.Perm(len(window))
		fanin := make([]int, k)
		for i := 0; i < k; i++ {
			fanin[i] = window[perm[i]]
		}
		var t netlist.GateType
		switch {
		case k >= 2 && rng.Float64() < opts.XorPct:
			if rng.Intn(2) == 0 {
				t = netlist.Xor
			} else {
				t = netlist.Xnor
			}
			fanin = fanin[:2]
		default:
			t = [...]netlist.GateType{netlist.And, netlist.Or, netlist.Nand, netlist.Nor}[rng.Intn(4)]
		}
		id := b.Add(t, fmt.Sprintf("g%d", g), fanin...)
		for _, f := range fanin {
			hasConsumer[f] = true
		}
		ids = append(ids, id)
	}
	nOut := 0
	for _, id := range ids {
		if !hasConsumer[id] && b.Gate(id).Type != netlist.Input {
			b.MarkOutput(id)
			nOut++
		}
	}
	if nOut == 0 {
		b.MarkOutput(ids[len(ids)-1])
	}
	return b.MustBuild()
}

// RippleCarryAdder returns a width-bit ripple-carry adder over inputs
// a0..a(w-1), b0..b(w-1), cin, with sum and carry-out outputs. Built from
// XOR/AND/OR full adders; heavy reconvergent fanout along the carry chain.
func RippleCarryAdder(width int) *netlist.Circuit {
	if width < 1 {
		panic("gen: RippleCarryAdder needs width >= 1")
	}
	b := netlist.NewBuilder(fmt.Sprintf("rca%d", width))
	a := make([]int, width)
	x := make([]int, width)
	for i := 0; i < width; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < width; i++ {
		x[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < width; i++ {
		axb := b.XorGate(fmt.Sprintf("p%d", i), a[i], x[i])
		sum := b.XorGate(fmt.Sprintf("s%d", i), axb, carry)
		t1 := b.AndGate("", a[i], x[i])
		t2 := b.AndGate("", axb, carry)
		carry = b.OrGate(fmt.Sprintf("c%d", i+1), t1, t2)
		b.MarkOutput(sum)
	}
	b.MarkOutput(carry)
	return b.MustBuild()
}

// Comparator returns a width-bit equality comparator: out = (a == b),
// built as XNOR bits reduced by a wide AND tree. The AND reduction makes
// the output stuck-at faults random-pattern resistant (P(eq) = 2^-width).
func Comparator(width int) *netlist.Circuit {
	if width < 1 {
		panic("gen: Comparator needs width >= 1")
	}
	b := netlist.NewBuilder(fmt.Sprintf("cmp%d", width))
	bits := make([]int, width)
	for i := 0; i < width; i++ {
		ai := b.Input(fmt.Sprintf("a%d", i))
		bi := b.Input(fmt.Sprintf("b%d", i))
		bits[i] = b.XnorGate(fmt.Sprintf("e%d", i), ai, bi)
	}
	for len(bits) > 1 {
		var next []int
		for i := 0; i+1 < len(bits); i += 2 {
			next = append(next, b.AndGate("", bits[i], bits[i+1]))
		}
		if len(bits)%2 == 1 {
			next = append(next, bits[len(bits)-1])
		}
		bits = next
	}
	b.MarkOutput(bits[0])
	return b.MustBuild()
}

// Decoder returns an n-to-2^n decoder: each output is the AND of the n
// (possibly inverted) select inputs. Each output is a wide AND cone, and
// the inverters fan the inputs out to every cone, so the circuit is both
// reconvergent and random-pattern resistant as n grows.
func Decoder(selBits int) *netlist.Circuit {
	if selBits < 1 || selBits > 16 {
		panic("gen: Decoder needs 1 <= selBits <= 16")
	}
	b := netlist.NewBuilder(fmt.Sprintf("dec%d", selBits))
	sel := make([]int, selBits)
	inv := make([]int, selBits)
	for i := 0; i < selBits; i++ {
		sel[i] = b.Input(fmt.Sprintf("s%d", i))
		inv[i] = b.NotGate(fmt.Sprintf("ns%d", i), sel[i])
	}
	for v := 0; v < 1<<selBits; v++ {
		fanin := make([]int, selBits)
		for i := 0; i < selBits; i++ {
			if v>>i&1 == 1 {
				fanin[i] = sel[i]
			} else {
				fanin[i] = inv[i]
			}
		}
		var out int
		if selBits == 1 {
			out = b.BufGate(fmt.Sprintf("o%d", v), fanin[0])
		} else {
			out = b.AndGate(fmt.Sprintf("o%d", v), fanin...)
		}
		b.MarkOutput(out)
	}
	return b.MustBuild()
}

// RPResistant embeds `cones` wide AND cones (width `coneWidth`) into a
// random DAG substrate and ORs cone outputs with random logic, emulating
// the random-pattern-resistant benchmark circuits of the era: the bulk of
// the logic is easily testable but the cone faults need astronomically
// many random patterns without test points.
func RPResistant(seed int64, cones, coneWidth, glueGates int) *netlist.Circuit {
	if cones < 1 || coneWidth < 2 {
		panic("gen: RPResistant needs cones >= 1 and coneWidth >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("rpr_s%d_c%dx%d", seed, cones, coneWidth))
	var pool []int
	nIn := cones*coneWidth/2 + coneWidth
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	coneOuts := make([]int, cones)
	for ci := 0; ci < cones; ci++ {
		// Each cone draws coneWidth distinct signals from the pool.
		perm := rng.Perm(len(pool))
		level := make([]int, coneWidth)
		for i := 0; i < coneWidth; i++ {
			level[i] = pool[perm[i]]
		}
		for len(level) > 1 {
			var next []int
			for i := 0; i+1 < len(level); i += 2 {
				next = append(next, b.AndGate("", level[i], level[i+1]))
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
		coneOuts[ci] = level[0]
	}
	// Glue logic: random 2-input gates over the pool.
	glue := append([]int(nil), pool...)
	for g := 0; g < glueGates; g++ {
		a := glue[rng.Intn(len(glue))]
		c := glue[rng.Intn(len(glue))]
		if a == c {
			continue
		}
		t := [...]netlist.GateType{netlist.And, netlist.Or, netlist.Nand, netlist.Nor, netlist.Xor}[rng.Intn(5)]
		glue = append(glue, b.Add(t, "", a, c))
	}
	// Each cone output ORed with a random glue signal becomes a PO: the OR
	// masks the cone unless the glue side is 0, compounding resistance.
	used := make(map[int]bool)
	for ci, co := range coneOuts {
		g := glue[len(glue)-1-ci%len(glue)]
		if g == co {
			g = glue[0]
		}
		used[g] = true
		b.MarkOutput(b.OrGate(fmt.Sprintf("po_cone%d", ci), co, g))
	}
	// A couple of glue-only outputs keep the easy logic observable.
	b.MarkOutput(b.BufGate("po_glue0", glue[len(glue)-1]))
	if len(glue) > 1 {
		b.MarkOutput(b.BufGate("po_glue1", glue[len(glue)-2]))
	}
	// Fold every signal that ended up with no consumer (possible for both
	// pool inputs and glue gates under random draws) into one parity
	// output, so the circuit has no structurally untestable dangling
	// logic; XOR keeps those faults easy, preserving the cones as the
	// only resistant structures.
	consumed := make(map[int]bool)
	for id := 0; id < b.NumGates(); id++ {
		for _, f := range b.Gate(id).Fanin {
			consumed[f] = true
		}
	}
	var dangling []int
	for id := 0; id < b.NumGates(); id++ {
		if !consumed[id] && !b.IsMarkedOutput(id) {
			dangling = append(dangling, id)
		}
	}
	if len(dangling) == 1 {
		b.MarkOutput(b.BufGate("po_sweep", dangling[0]))
	} else if len(dangling) > 1 {
		cur := dangling[0]
		for _, d := range dangling[1:] {
			cur = b.XorGate("", cur, d)
		}
		b.MarkOutput(b.BufGate("po_sweep", cur))
	}
	return b.MustBuild()
}

// Multiplier returns a width x width array multiplier (AND partial
// products reduced by ripple full adders). Gate count grows as width², so
// it serves as the scaling workload.
func Multiplier(width int) *netlist.Circuit {
	if width < 2 {
		panic("gen: Multiplier needs width >= 2")
	}
	b := netlist.NewBuilder(fmt.Sprintf("mul%d", width))
	a := make([]int, width)
	x := make([]int, width)
	for i := 0; i < width; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < width; i++ {
		x[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	// Partial products pp[i][j] = a[j] AND b[i].
	pp := make([][]int, width)
	for i := range pp {
		pp[i] = make([]int, width)
		for j := range pp[i] {
			pp[i][j] = b.AndGate(fmt.Sprintf("pp%d_%d", i, j), a[j], x[i])
		}
	}
	// Row-by-row carry-save style reduction using full adders.
	fullAdder := func(p, q, cin int) (sum, cout int) {
		pxq := b.XorGate("", p, q)
		sum = b.XorGate("", pxq, cin)
		t1 := b.AndGate("", p, q)
		t2 := b.AndGate("", pxq, cin)
		cout = b.OrGate("", t1, t2)
		return
	}
	halfAdder := func(p, q int) (sum, cout int) {
		return b.XorGate("", p, q), b.AndGate("", p, q)
	}
	// row holds the running sum bits of weight i..i+width-1 after adding
	// partial product rows 0..r.
	row := append([]int(nil), pp[0]...)
	outs := []int{row[0]} // weight 0 settled
	row = row[1:]
	for r := 1; r < width; r++ {
		next := make([]int, 0, width)
		var carry int
		hasCarry := false
		for j := 0; j < width; j++ {
			var cur int
			if j < len(row) {
				cur = row[j]
			}
			switch {
			case j < len(row) && hasCarry:
				s, c := fullAdder(cur, pp[r][j], carry)
				next = append(next, s)
				carry, hasCarry = c, true
			case j < len(row):
				s, c := halfAdder(cur, pp[r][j])
				next = append(next, s)
				carry, hasCarry = c, true
			case hasCarry:
				s, c := halfAdder(pp[r][j], carry)
				next = append(next, s)
				carry, hasCarry = c, true
			default:
				next = append(next, pp[r][j])
			}
		}
		if hasCarry {
			next = append(next, carry)
		}
		outs = append(outs, next[0])
		row = next[1:]
	}
	outs = append(outs, row...)
	for i, o := range outs {
		b.MarkOutput(b.BufGate(fmt.Sprintf("p%d", i), o))
	}
	return b.MustBuild()
}
