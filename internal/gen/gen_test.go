package gen

import (
	"testing"

	"repro/internal/netlist"
)

func evalCircuit(c *netlist.Circuit, assign func(pi int, idx int) bool) []bool {
	vals := make([]bool, c.NumGates())
	for i, in := range c.Inputs() {
		vals[in] = assign(in, i)
	}
	buf := make([]bool, 0, 8)
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		buf = buf[:0]
		for _, f := range g.Fanin {
			buf = append(buf, vals[f])
		}
		vals[id] = g.Type.Eval(buf)
	}
	return vals
}

func TestC17Structure(t *testing.T) {
	c := C17()
	if c.NumGates() != 11 || c.NumInputs() != 5 || c.NumOutputs() != 2 {
		t.Errorf("c17 = %v", c)
	}
	if !c.HasReconvergentFanout() {
		t.Error("c17 must be reconvergent")
	}
}

func TestRandomTreeIsFanoutFree(t *testing.T) {
	for _, n := range []int{2, 3, 10, 50, 200} {
		c := RandomTree(42, n, TreeOptions{})
		if !c.IsFanoutFree() {
			t.Errorf("RandomTree(%d) not fanout-free", n)
		}
		if c.NumInputs() != n {
			t.Errorf("RandomTree(%d) has %d inputs", n, c.NumInputs())
		}
		if c.NumOutputs() != 1 {
			t.Errorf("RandomTree(%d) has %d outputs", n, c.NumOutputs())
		}
		for id := 0; id < c.NumGates(); id++ {
			if tp := c.Type(id); tp == netlist.Xor || tp == netlist.Xnor {
				t.Errorf("RandomTree produced binate gate %v", tp)
			}
		}
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	a := RandomTree(7, 30, TreeOptions{})
	b := RandomTree(7, 30, TreeOptions{})
	if a.NumGates() != b.NumGates() {
		t.Fatal("same seed produced different circuits")
	}
	for id := 0; id < a.NumGates(); id++ {
		if a.Type(id) != b.Type(id) || a.GateName(id) != b.GateName(id) {
			t.Fatalf("gate %d differs between identically-seeded trees", id)
		}
	}
	c := RandomTree(8, 30, TreeOptions{})
	if c.NumGates() == a.NumGates() {
		same := true
		for id := 0; id < a.NumGates(); id++ {
			if a.Type(id) != c.Type(id) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical circuits (suspicious)")
		}
	}
}

func TestAndConeFunction(t *testing.T) {
	c := AndCone(8)
	if c.NumInputs() != 8 || c.NumOutputs() != 1 {
		t.Fatalf("cone = %v", c)
	}
	if !c.IsFanoutFree() {
		t.Error("AndCone must be fanout-free")
	}
	out := c.Outputs()[0]
	// All ones -> 1.
	vals := evalCircuit(c, func(int, int) bool { return true })
	if !vals[out] {
		t.Error("AND cone of all ones must be 1")
	}
	// Any zero -> 0.
	vals = evalCircuit(c, func(_, idx int) bool { return idx != 3 })
	if vals[out] {
		t.Error("AND cone with a zero must be 0")
	}
}

func TestParityTreeFunction(t *testing.T) {
	c := ParityTree(7)
	out := c.Outputs()[0]
	for v := 0; v < 128; v++ {
		vals := evalCircuit(c, func(_, idx int) bool { return v>>idx&1 == 1 })
		want := false
		for i := 0; i < 7; i++ {
			want = want != (v>>i&1 == 1)
		}
		if vals[out] != want {
			t.Fatalf("parity(%07b) = %v, want %v", v, vals[out], want)
		}
	}
}

func TestRandomDAGProperties(t *testing.T) {
	c := RandomDAG(99, 16, 200, DAGOptions{})
	if c.NumInputs() != 16 {
		t.Errorf("inputs = %d", c.NumInputs())
	}
	if c.NumOutputs() == 0 {
		t.Error("no outputs")
	}
	if c.NumGates() != 16+200 {
		t.Errorf("gates = %d, want 216", c.NumGates())
	}
	// Determinism.
	c2 := RandomDAG(99, 16, 200, DAGOptions{})
	if c2.NumGates() != c.NumGates() || c2.NumOutputs() != c.NumOutputs() {
		t.Error("same seed produced different DAGs")
	}
}

func TestRippleCarryAdderFunction(t *testing.T) {
	const w = 4
	c := RippleCarryAdder(w)
	if c.NumInputs() != 2*w+1 {
		t.Fatalf("inputs = %d", c.NumInputs())
	}
	if c.NumOutputs() != w+1 {
		t.Fatalf("outputs = %d", c.NumOutputs())
	}
	for av := 0; av < 1<<w; av++ {
		for bv := 0; bv < 1<<w; bv++ {
			for cin := 0; cin < 2; cin++ {
				vals := evalCircuit(c, func(pi, idx int) bool {
					switch {
					case idx < w:
						return av>>idx&1 == 1
					case idx < 2*w:
						return bv>>(idx-w)&1 == 1
					default:
						return cin == 1
					}
				})
				want := av + bv + cin
				got := 0
				for i, o := range c.Outputs() {
					if vals[o] {
						got |= 1 << i
					}
				}
				if got != want {
					t.Fatalf("%d+%d+%d = %d, adder says %d", av, bv, cin, want, got)
				}
			}
		}
	}
}

func TestComparatorFunction(t *testing.T) {
	const w = 4
	c := Comparator(w)
	out := c.Outputs()[0]
	for av := 0; av < 1<<w; av++ {
		for bv := 0; bv < 1<<w; bv++ {
			vals := evalCircuit(c, func(pi, idx int) bool {
				// Inputs interleave a0,b0,a1,b1,...
				bit := idx / 2
				if idx%2 == 0 {
					return av>>bit&1 == 1
				}
				return bv>>bit&1 == 1
			})
			if vals[out] != (av == bv) {
				t.Fatalf("cmp(%d,%d) = %v", av, bv, vals[out])
			}
		}
	}
}

func TestDecoderFunction(t *testing.T) {
	const n = 3
	c := Decoder(n)
	if c.NumOutputs() != 1<<n {
		t.Fatalf("outputs = %d", c.NumOutputs())
	}
	for v := 0; v < 1<<n; v++ {
		vals := evalCircuit(c, func(_, idx int) bool { return v>>idx&1 == 1 })
		for o, out := range c.Outputs() {
			if vals[out] != (o == v) {
				t.Fatalf("decoder sel=%d output %d = %v", v, o, vals[out])
			}
		}
	}
	// The decoder has heavy fanout (every select line feeds all cones) but
	// the branches never reconverge: each AND cone reads each select bit
	// exactly once, directly or inverted, and cones go straight to POs.
	if c.IsFanoutFree() {
		t.Error("decoder must have fanout")
	}
	if c.HasReconvergentFanout() {
		t.Error("decoder cones never merge, so it must not be reconvergent")
	}
}

func TestRPResistantStructure(t *testing.T) {
	c := RPResistant(5, 3, 12, 60)
	if c.NumOutputs() < 3 {
		t.Errorf("outputs = %d, want >= 3 (one per cone)", c.NumOutputs())
	}
	if c.NumGates() < 3*11 {
		t.Errorf("gates = %d, too few for 3 cones of width 12", c.NumGates())
	}
	// Determinism.
	c2 := RPResistant(5, 3, 12, 60)
	if c2.NumGates() != c.NumGates() {
		t.Error("same seed produced different circuits")
	}
}

func TestMultiplierFunction(t *testing.T) {
	const w = 3
	c := Multiplier(w)
	if c.NumOutputs() != 2*w {
		t.Fatalf("outputs = %d, want %d", c.NumOutputs(), 2*w)
	}
	for av := 0; av < 1<<w; av++ {
		for bv := 0; bv < 1<<w; bv++ {
			vals := evalCircuit(c, func(pi, idx int) bool {
				if idx < w {
					return av>>idx&1 == 1
				}
				return bv>>(idx-w)&1 == 1
			})
			got := 0
			for i, o := range c.Outputs() {
				if vals[o] {
					got |= 1 << i
				}
			}
			if got != av*bv {
				t.Fatalf("%d*%d = %d, multiplier says %d", av, bv, av*bv, got)
			}
		}
	}
}

func TestMultiplierScaling(t *testing.T) {
	g4 := Multiplier(4).NumGates()
	g8 := Multiplier(8).NumGates()
	// Quadratic growth: 8-bit should be roughly 4x the 4-bit gate count.
	if g8 < 3*g4 {
		t.Errorf("multiplier scaling suspicious: %d gates at w=4, %d at w=8", g4, g8)
	}
}
