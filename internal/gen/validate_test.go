package gen

import (
	"testing"

	"repro/internal/netlist"
)

// TestGeneratorsProduceValidCircuits runs every generator and re-checks
// the netlist structural invariants on its output.
func TestGeneratorsProduceValidCircuits(t *testing.T) {
	circuits := map[string]*netlist.Circuit{
		"c17":     C17(),
		"tree":    RandomTree(3, 60, TreeOptions{}),
		"dag":     RandomDAG(5, 12, 150, DAGOptions{}),
		"cone":    AndCone(16),
		"parity":  ParityTree(16),
		"rca":     RippleCarryAdder(8),
		"cmp":     Comparator(8),
		"decoder": Decoder(4),
		"mul":     Multiplier(5),
		"rpr":     RPResistant(2, 3, 10, 60),
		"bshift":  BarrelShifter(8),
		"alu":     ALUSlice(6),
	}
	for name, c := range circuits {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
