package gen

import (
	"testing"

	"repro/internal/netlist"
)

func TestBarrelShifterFunction(t *testing.T) {
	const w = 8
	c := BarrelShifter(w)
	if c.NumInputs() != w+3 || c.NumOutputs() != w {
		t.Fatalf("shape: %v", c)
	}
	if !c.HasReconvergentFanout() {
		t.Error("barrel shifter must be reconvergent")
	}
	for data := 0; data < 256; data += 37 {
		for amt := 0; amt < w; amt++ {
			vals := evalCircuit(c, func(_, idx int) bool {
				if idx < w {
					return data>>uint(idx)&1 == 1
				}
				return amt>>uint(idx-w)&1 == 1
			})
			got := 0
			for i, o := range c.Outputs() {
				if vals[o] {
					got |= 1 << uint(i)
				}
			}
			// Rotate left by amt: output bit i = input bit (i+amt) mod w.
			want := 0
			for i := 0; i < w; i++ {
				if data>>uint((i+amt)%w)&1 == 1 {
					want |= 1 << uint(i)
				}
			}
			if got != want {
				t.Fatalf("rot(%08b, %d) = %08b, want %08b", data, amt, got, want)
			}
		}
	}
}

func TestBarrelShifterPanics(t *testing.T) {
	for _, w := range []int{0, 3, 6, 512} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d: expected panic", w)
				}
			}()
			BarrelShifter(w)
		}()
	}
}

func TestALUSliceFunction(t *testing.T) {
	const w = 4
	c := ALUSlice(w)
	if c.NumInputs() != 2*w+2 {
		t.Fatalf("inputs = %d", c.NumInputs())
	}
	if c.NumOutputs() != w+1 {
		t.Fatalf("outputs = %d", c.NumOutputs())
	}
	for av := 0; av < 1<<w; av++ {
		for bv := 0; bv < 1<<w; bv++ {
			for op := 0; op < 4; op++ {
				vals := evalCircuit(c, func(_, idx int) bool {
					switch {
					case idx < w:
						return av>>uint(idx)&1 == 1
					case idx < 2*w:
						return bv>>uint(idx-w)&1 == 1
					case idx == 2*w:
						return op&1 == 1
					default:
						return op&2 == 2
					}
				})
				got := 0
				for i := 0; i < w; i++ {
					if vals[c.Outputs()[i]] {
						got |= 1 << uint(i)
					}
				}
				var want int
				switch op {
				case 0:
					want = av & bv
				case 1:
					want = av | bv
				case 2:
					want = av ^ bv
				case 3:
					want = (av + bv) & (1<<w - 1)
				}
				if got != want {
					t.Fatalf("alu(%d, %d, op=%d) = %d, want %d", av, bv, op, got, want)
				}
				// Carry-out check for ADD.
				if op == 3 {
					cout := vals[c.Outputs()[w]]
					if cout != (av+bv >= 1<<w) {
						t.Fatalf("cout(%d+%d) = %v", av, bv, cout)
					}
				}
			}
		}
	}
}

func TestDatapathCircuitsValid(t *testing.T) {
	for _, c := range []*netlist.Circuit{BarrelShifter(16), ALUSlice(8)} {
		if c.NumGates() == 0 || c.Depth() == 0 {
			t.Errorf("%s: degenerate", c.Name())
		}
	}
}
