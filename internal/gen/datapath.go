package gen

import (
	"fmt"

	"repro/internal/netlist"
)

// mux2 emits a 2:1 multiplexer: out = sel ? hi : lo.
func mux2(b *netlist.Builder, sel, lo, hi int) int {
	ns := b.NotGate("", sel)
	t0 := b.AndGate("", lo, ns)
	t1 := b.AndGate("", hi, sel)
	return b.OrGate("", t0, t1)
}

// BarrelShifter returns a logarithmic barrel shifter: width data inputs
// d0..d(w-1), log2(width) select inputs, outputs the input word rotated
// left by the select amount. Every select line fans out across the whole
// datapath and the mux stages reconverge heavily — the classic
// "testability nightmare" structure control point papers use.
func BarrelShifter(width int) *netlist.Circuit {
	if width < 2 || width&(width-1) != 0 || width > 256 {
		panic("gen: BarrelShifter needs a power-of-two width in [2,256]")
	}
	b := netlist.NewBuilder(fmt.Sprintf("bshift%d", width))
	stages := 0
	for 1<<uint(stages) < width {
		stages++
	}
	data := make([]int, width)
	for i := range data {
		data[i] = b.Input(fmt.Sprintf("d%d", i))
	}
	sel := make([]int, stages)
	for s := range sel {
		sel[s] = b.Input(fmt.Sprintf("s%d", s))
	}
	cur := data
	for s := 0; s < stages; s++ {
		shift := 1 << uint(s)
		next := make([]int, width)
		for i := 0; i < width; i++ {
			next[i] = mux2(b, sel[s], cur[i], cur[(i+shift)%width])
		}
		cur = next
	}
	for i, o := range cur {
		b.MarkOutput(b.BufGate(fmt.Sprintf("q%d", i), o))
	}
	return b.MustBuild()
}

// ALUSlice returns a width-bit arithmetic-logic unit with a 2-bit
// operation select: 00 = AND, 01 = OR, 10 = XOR, 11 = ADD (ripple
// carry). The op-select decoder fans out to every bit slice, mixing
// easy logic operations with the reconvergent carry chain.
func ALUSlice(width int) *netlist.Circuit {
	if width < 2 || width > 64 {
		panic("gen: ALUSlice needs width in [2,64]")
	}
	b := netlist.NewBuilder(fmt.Sprintf("alu%d", width))
	av := make([]int, width)
	bv := make([]int, width)
	for i := 0; i < width; i++ {
		av[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < width; i++ {
		bv[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	op0 := b.Input("op0")
	op1 := b.Input("op1")
	carry := -1
	for i := 0; i < width; i++ {
		andv := b.AndGate(fmt.Sprintf("and%d", i), av[i], bv[i])
		orv := b.OrGate(fmt.Sprintf("or%d", i), av[i], bv[i])
		xorv := b.XorGate(fmt.Sprintf("xor%d", i), av[i], bv[i])
		var sum int
		if i == 0 {
			sum = xorv
			carry = andv
		} else {
			sum = b.XorGate(fmt.Sprintf("sum%d", i), xorv, carry)
			t := b.AndGate("", xorv, carry)
			carry = b.OrGate(fmt.Sprintf("c%d", i), andv, t)
		}
		// Result mux: op1 selects between (logic pair) and (xor/add).
		lo := mux2(b, op0, andv, orv) // 00 AND, 01 OR
		hi := mux2(b, op0, xorv, sum) // 10 XOR, 11 ADD
		b.MarkOutput(b.BufGate(fmt.Sprintf("r%d", i), mux2(b, op1, lo, hi)))
	}
	b.MarkOutput(b.BufGate("cout", carry))
	return b.MustBuild()
}
