package testcount

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// detectsTable builds the exhaustive fault-detection matrix: for every
// input vector, the set of faults it detects.
func detectsTable(c *netlist.Circuit) (vectors int, table [][]bool, faults []fault.Fault) {
	faults = fault.Universe(c)
	n := c.NumInputs()
	vectors = 1 << uint(n)
	table = make([][]bool, vectors)
	for v := 0; v < vectors; v++ {
		table[v] = make([]bool, len(faults))
		vec := make([]bool, n)
		for i := range vec {
			vec[i] = v>>uint(i)&1 == 1
		}
		good := evalWithFault(c, vec, nil)
		for fi, f := range faults {
			ff := f
			bad := evalWithFault(c, vec, &ff)
			for _, o := range c.Outputs() {
				if good[o] != bad[o] {
					table[v][fi] = true
					break
				}
			}
		}
	}
	return
}

func evalWithFault(c *netlist.Circuit, vec []bool, f *fault.Fault) []bool {
	vals := make([]bool, c.NumGates())
	for i, in := range c.Inputs() {
		vals[in] = vec[i]
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type != netlist.Input {
			in := make([]bool, len(g.Fanin))
			for pin, fin := range g.Fanin {
				in[pin] = vals[fin]
				if f != nil && !f.IsStem() && f.Gate == id && f.Pin == pin {
					in[pin] = f.Stuck
				}
			}
			vals[id] = g.Type.Eval(in)
		}
		if f != nil && f.IsStem() && f.Gate == id {
			vals[id] = f.Stuck
		}
	}
	return vals
}

// minCover finds the exact minimum number of vectors covering all
// detectable faults, by branch and bound.
func minCover(vectors int, table [][]bool, nFaults int) int {
	// coveredBy[fi] = vectors detecting fault fi.
	coveredBy := make([][]int, nFaults)
	for v := 0; v < vectors; v++ {
		for fi := 0; fi < nFaults; fi++ {
			if table[v][fi] {
				coveredBy[fi] = append(coveredBy[fi], v)
			}
		}
	}
	covered := make([]bool, nFaults)
	// Undetectable faults are excluded from the cover obligation.
	detectable := 0
	for fi := 0; fi < nFaults; fi++ {
		if len(coveredBy[fi]) == 0 {
			covered[fi] = true
		} else {
			detectable++
		}
	}
	best := detectable + 1 // upper bound: one test per fault always works
	var rec func(chosen int)
	rec = func(chosen int) {
		if chosen >= best {
			return
		}
		// Pick the uncovered fault with the fewest covering vectors.
		pick, pickLen := -1, 1<<30
		for fi := 0; fi < nFaults; fi++ {
			if !covered[fi] && len(coveredBy[fi]) < pickLen {
				pick, pickLen = fi, len(coveredBy[fi])
			}
		}
		if pick < 0 {
			best = chosen
			return
		}
		for _, v := range coveredBy[pick] {
			var newly []int
			for fi := 0; fi < nFaults; fi++ {
				if !covered[fi] && table[v][fi] {
					covered[fi] = true
					newly = append(newly, fi)
				}
			}
			rec(chosen + 1)
			for _, fi := range newly {
				covered[fi] = false
			}
		}
	}
	rec(0)
	return best
}

func TestRecurrencesMatchExactMinimumOnRandomTrees(t *testing.T) {
	// The headline theorem: t0(root)+t1(root) equals the true minimum
	// complete test set size, verified against an exact set-cover solver.
	for seed := int64(0); seed < 10; seed++ {
		c := gen.RandomTree(seed, 6, gen.TreeOptions{})
		ct, err := Compute(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		vectors, table, faults := detectsTable(c)
		want := minCover(vectors, table, len(faults))
		if got := ct.CircuitTests(); got != want {
			t.Errorf("seed %d: recurrence says %d tests, exact minimum is %d", seed, got, want)
		}
	}
}

func TestKnownSmallCircuits(t *testing.T) {
	// 2-input AND: t1 = max(1,1) = 1, t0 = 1+1 = 2, total 3.
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.MarkOutput(g)
	ct, err := Compute(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if ct.T1[g] != 1 || ct.T0[g] != 2 {
		t.Errorf("AND2: t0=%d t1=%d, want 2/1", ct.T0[g], ct.T1[g])
	}
	if ct.CircuitTests() != 3 {
		t.Errorf("AND2 total = %d, want 3", ct.CircuitTests())
	}

	// k-input AND needs k+1 tests.
	for k := 2; k <= 8; k++ {
		b := netlist.NewBuilder("andk")
		var ins []int
		for i := 0; i < k; i++ {
			ins = append(ins, b.Input(string(rune('a'+i))))
		}
		g := b.AndGate("out", ins...)
		b.MarkOutput(g)
		ct, err := Compute(b.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if got := ct.CircuitTests(); got != k+1 {
			t.Errorf("AND%d total = %d, want %d", k, got, k+1)
		}
	}

	// Balanced AND cone of width 8: t0 = 8 (one per leaf), t1 = 1.
	cone := gen.AndCone(8)
	ct, err = Compute(cone)
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.CircuitTests(); got != 9 {
		t.Errorf("AndCone(8) total = %d, want 9", got)
	}

	// Inverter chain: 2 tests regardless of length.
	b2 := netlist.NewBuilder("inv")
	cur := b2.Input("a")
	for i := 0; i < 5; i++ {
		cur = b2.NotGate("", cur)
	}
	b2.MarkOutput(cur)
	ct, err = Compute(b2.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.CircuitTests(); got != 2 {
		t.Errorf("inverter chain total = %d, want 2", got)
	}
}

func TestNandNorDuality(t *testing.T) {
	// NAND tree vs AND tree with the same shape: totals match under
	// 0/1 exchange at each level; the circuit totals are equal for
	// a single gate.
	b := netlist.NewBuilder("nand2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.NandGate("g", a, x)
	b.MarkOutput(g)
	ct, err := Compute(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if ct.T0[g] != 1 || ct.T1[g] != 2 {
		t.Errorf("NAND2: t0=%d t1=%d, want 1/2", ct.T0[g], ct.T1[g])
	}
}

func TestRejectsFanout(t *testing.T) {
	if _, err := Compute(gen.C17()); err != ErrNotFanoutFree {
		t.Errorf("expected ErrNotFanoutFree, got %v", err)
	}
}

func TestRejectsXor(t *testing.T) {
	if _, err := Compute(gen.ParityTree(4)); err != ErrBinateGate {
		t.Errorf("expected ErrBinateGate, got %v", err)
	}
}

func TestAnalyzeCutsSegments(t *testing.T) {
	// Chain: AND(AND(a,b), AND(c,d)) — total = t0+t1 = (2+2)+1 = 5.
	// Cutting at one inner AND: lower segment cost 3, upper segment
	// becomes AND(leaf, AND(c,d)): t0 = 1+2 = 3, t1 = 1 → cost 4.
	b := netlist.NewBuilder("two")
	a := b.Input("a")
	x := b.Input("b")
	cc := b.Input("c")
	d := b.Input("d")
	g1 := b.AndGate("g1", a, x)
	g2 := b.AndGate("g2", cc, d)
	root := b.AndGate("root", g1, g2)
	b.MarkOutput(root)
	c := b.MustBuild()

	ct, err := Compute(c)
	if err != nil {
		t.Fatal(err)
	}
	if ct.CircuitTests() != 5 {
		t.Fatalf("uncut total = %d, want 5", ct.CircuitTests())
	}
	an, err := AnalyzeCuts(c, []int{g1})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.SegmentRoots) != 2 {
		t.Fatalf("segments = %d, want 2", len(an.SegmentRoots))
	}
	costs := map[int]int{}
	for i, r := range an.SegmentRoots {
		costs[r] = an.Cost[i]
	}
	if costs[g1] != 3 {
		t.Errorf("lower segment cost = %d, want 3", costs[g1])
	}
	if costs[root] != 4 {
		t.Errorf("upper segment cost = %d, want 4", costs[root])
	}
	if an.MaxCost != 4 {
		t.Errorf("max cost = %d, want 4", an.MaxCost)
	}
	// Cutting both inner gates: lower segments 3 and 3; upper AND(leaf,
	// leaf) = 3. Max = 3.
	an2, err := AnalyzeCuts(c, []int{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if an2.MaxCost != 3 {
		t.Errorf("two-cut max = %d, want 3", an2.MaxCost)
	}
}

func TestAnalyzeCutsNeverIncreasesMax(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		c := gen.RandomTree(seed, 30, gen.TreeOptions{})
		ct, err := Compute(c)
		if err != nil {
			t.Fatal(err)
		}
		base := ct.CircuitTests()
		// Cut each internal signal alone; max cost must never exceed the
		// uncut total (monotonicity of the objective in cuts).
		for id := 0; id < c.NumGates(); id++ {
			if c.Type(id) == netlist.Input || c.IsOutput(id) {
				continue
			}
			an, err := AnalyzeCuts(c, []int{id})
			if err != nil {
				t.Fatal(err)
			}
			if an.MaxCost > base {
				t.Errorf("seed %d: cutting %s raised max cost %d > %d", seed, c.GateName(id), an.MaxCost, base)
			}
		}
	}
}

func TestAnalyzeCutsPOCut(t *testing.T) {
	// Cutting a PO is legal and counted once.
	c := gen.AndCone(4)
	out := c.Outputs()[0]
	an, err := AnalyzeCuts(c, []int{out})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.SegmentRoots) != 1 {
		t.Errorf("segments = %d, want 1", len(an.SegmentRoots))
	}
}

func TestAnalyzeCutsBadSignal(t *testing.T) {
	c := gen.AndCone(4)
	if _, err := AnalyzeCuts(c, []int{999}); err == nil {
		t.Error("expected error for out-of-range cut")
	}
}

func TestMultiOutputForest(t *testing.T) {
	// Two independent trees: circuit tests = max of the two.
	b := netlist.NewBuilder("forest")
	a := b.Input("a")
	x := b.Input("b")
	g1 := b.AndGate("g1", a, x) // 3 tests
	c1 := b.Input("c")
	d := b.Input("d")
	e := b.Input("e")
	f := b.Input("f")
	g2 := b.AndGate("g2", c1, d, e, f) // 5 tests
	b.MarkOutput(g1)
	b.MarkOutput(g2)
	ct, err := Compute(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.CircuitTests(); got != 5 {
		t.Errorf("forest total = %d, want 5", got)
	}
}
