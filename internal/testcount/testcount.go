// Package testcount implements the Hayes–Friedman minimal test-set theory
// for fanout-free networks of unate gates, the objective function of the
// reconstructed 1987 dynamic program.
//
// For a fanout-free circuit every fault effect exits its subtree through a
// unique line, which yields exact recurrences for the minimum number of
// tests in a complete single-stuck-at test set. Writing t0(n)/t1(n) for
// the number of tests that must apply 0/1 at line n while sensitizing
// subtree faults:
//
//	leaf:  t0 = t1 = 1
//	AND:   t1 = max_i t1(x_i)   t0 = Σ_i t0(x_i)
//	OR:    t0 = max_i t0(x_i)   t1 = Σ_i t1(x_i)
//	NAND:  t0 = max_i t1(x_i)   t1 = Σ_i t0(x_i)
//	NOR:   t1 = max_i t0(x_i)   t0 = Σ_i t1(x_i)
//	NOT:   t0 = t1(x)           t1 = t0(x)
//	BUF:   identity
//
// The minimal complete test set of the tree rooted at r has exactly
// t0(r) + t1(r) tests. The intuition: a test that sets an AND output to 1
// puts every input at its non-controlling value and therefore sensitizes
// all input subtrees simultaneously (only one can deviate under the
// single-fault assumption), so 1-tests of children run in parallel (max);
// a test that sets the output to 0 sensitizes exactly the one input
// holding controlling 0, so 0-tests serialize (sum).
//
// XOR/XNOR gates are binate and outside the theory; expand them first with
// netlist.ExpandXor (which generally introduces fanout, taking the circuit
// outside the fanout-free class as the original theory requires).
package testcount

import (
	"errors"
	"fmt"

	"repro/internal/netlist"
)

// ErrNotFanoutFree is returned for circuits with fanout.
var ErrNotFanoutFree = errors.New("testcount: circuit is not fanout-free")

// ErrBinateGate is returned for circuits containing XOR/XNOR gates.
var ErrBinateGate = errors.New("testcount: circuit contains binate (XOR/XNOR) gates")

// Counts holds the per-line test counts of a fanout-free circuit.
type Counts struct {
	c      *netlist.Circuit
	T0, T1 []int
}

// Compute evaluates the recurrences over the whole circuit. The circuit
// must be fanout-free and unate.
func Compute(c *netlist.Circuit) (*Counts, error) {
	return computeWithCuts(c, nil)
}

// Total returns t0+t1 of a line: the minimal complete test set size of
// the subtree it roots (when that line is observed).
func (ct *Counts) Total(id int) int { return ct.T0[id] + ct.T1[id] }

// CircuitTests returns the minimal complete test set size for the whole
// circuit: trees rooted at different primary outputs have disjoint leaf
// supports, so their tests merge and the circuit needs max over roots.
func (ct *Counts) CircuitTests() int {
	m := 0
	for _, o := range ct.c.Outputs() {
		if t := ct.Total(o); t > m {
			m = t
		}
	}
	return m
}

// CutAnalysis reports the segment structure induced by a set of full test
// points (cuts).
type CutAnalysis struct {
	// SegmentRoots lists the root line of each segment: every cut signal
	// plus every primary output (deduplicated, cut POs appear once).
	SegmentRoots []int
	// Cost[i] is the minimal test count of segment i.
	Cost []int
	// MaxCost is the circuit test count after insertion: segments have
	// disjoint input supports, so they are tested concurrently.
	MaxCost int
}

// AnalyzeCuts computes per-segment minimal test counts when full test
// points are inserted at the given signals. A cut observes its line
// (closing the segment below) and feeds the logic above from a fresh
// primary input (a new leaf with t0 = t1 = 1).
func AnalyzeCuts(c *netlist.Circuit, cuts []int) (*CutAnalysis, error) {
	ct, err := computeWithCuts(c, cuts)
	if err != nil {
		return nil, err
	}
	isCut := make(map[int]bool, len(cuts))
	for _, s := range cuts {
		isCut[s] = true
	}
	an := &CutAnalysis{}
	for _, s := range cuts {
		an.SegmentRoots = append(an.SegmentRoots, s)
		an.Cost = append(an.Cost, ct.Total(s))
	}
	for _, o := range c.Outputs() {
		if isCut[o] {
			continue // already counted; observing a PO twice adds nothing
		}
		an.SegmentRoots = append(an.SegmentRoots, o)
		an.Cost = append(an.Cost, ct.Total(o))
	}
	for _, t := range an.Cost {
		if t > an.MaxCost {
			an.MaxCost = t
		}
	}
	return an, nil
}

// computeWithCuts runs the recurrences, treating cut signals as fresh
// leaves for the logic above them. T0/T1 of a cut signal keep the values
// computed from below (the segment it roots); consumers see (1, 1).
func computeWithCuts(c *netlist.Circuit, cuts []int) (*Counts, error) {
	if !c.IsFanoutFree() {
		return nil, ErrNotFanoutFree
	}
	isCut := make(map[int]bool, len(cuts))
	for _, s := range cuts {
		if s < 0 || s >= c.NumGates() {
			return nil, fmt.Errorf("testcount: cut signal %d out of range", s)
		}
		isCut[s] = true
	}
	ct := &Counts{
		c:  c,
		T0: make([]int, c.NumGates()),
		T1: make([]int, c.NumGates()),
	}
	// childCounts reads the (t0, t1) a consumer sees for fanin f.
	childCounts := func(f int) (int, int) {
		if isCut[f] {
			return 1, 1
		}
		return ct.T0[f], ct.T1[f]
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		switch g.Type {
		case netlist.Input:
			ct.T0[id], ct.T1[id] = 1, 1
		case netlist.Buf:
			ct.T0[id], ct.T1[id] = childCounts(g.Fanin[0])
		case netlist.Not:
			t0, t1 := childCounts(g.Fanin[0])
			ct.T0[id], ct.T1[id] = t1, t0
		case netlist.And, netlist.Nand:
			maxT1, sumT0 := 0, 0
			for _, f := range g.Fanin {
				t0, t1 := childCounts(f)
				if t1 > maxT1 {
					maxT1 = t1
				}
				sumT0 += t0
			}
			if g.Type == netlist.And {
				ct.T1[id], ct.T0[id] = maxT1, sumT0
			} else {
				ct.T0[id], ct.T1[id] = maxT1, sumT0
			}
		case netlist.Or, netlist.Nor:
			maxT0, sumT1 := 0, 0
			for _, f := range g.Fanin {
				t0, t1 := childCounts(f)
				if t0 > maxT0 {
					maxT0 = t0
				}
				sumT1 += t1
			}
			if g.Type == netlist.Or {
				ct.T0[id], ct.T1[id] = maxT0, sumT1
			} else {
				ct.T1[id], ct.T0[id] = maxT0, sumT1
			}
		case netlist.Xor, netlist.Xnor:
			return nil, ErrBinateGate
		}
	}
	return ct, nil
}
