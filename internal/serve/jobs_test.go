package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

// getJob fetches GET /v1/jobs/{id} and decodes the status response.
func getJob(t *testing.T, base, id string) (int, jobStatusResponse) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var js jobStatusResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &js); err != nil {
			t.Fatalf("decode job status: %v\n%s", err, b)
		}
	}
	return resp.StatusCode, js
}

// waitJob polls GET /v1/jobs/{id} until the job reaches want, failing
// on any other terminal state.
func waitJob(t *testing.T, base, id string, want jobs.State) jobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, js := getJob(t, base, id)
		if st != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, st)
		}
		if js.State == want {
			return js
		}
		if js.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, js.State, js.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s within 10s", id, want)
	return jobStatusResponse{}
}

// submitAsync posts an engine request with mode=async and returns the
// decoded 202 acknowledgment.
func submitAsync(t *testing.T, url, body string) submitResponse {
	t.Helper()
	st, _, b := post(t, url, body)
	if st != http.StatusAccepted {
		t.Fatalf("async submit: status %d body %s", st, b)
	}
	var sub submitResponse
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatalf("decode 202: %v\n%s", err, b)
	}
	if sub.Job.ID == "" || sub.Job.State != jobs.Queued {
		t.Fatalf("implausible 202 body: %s", b)
	}
	return sub
}

// TestAsyncResultByteIdenticalToSync is the async acceptance pin: the
// result of an async job equals, byte for byte, the synchronous
// response an independent server computes for the same request.
func TestAsyncResultByteIdenticalToSync(t *testing.T) {
	_, ts := newTestServer(t, Config{JobDir: t.TempDir()})
	body := `{"generate":"dag:gates=120,seed=3","options":{"planner":"observe","nop":3},"mode":"async"}`
	sub := submitAsync(t, ts.URL+"/v1/plan", body)
	done := waitJob(t, ts.URL, sub.Job.ID, jobs.Done)
	if len(done.Result) == 0 {
		t.Fatal("done job carries no result")
	}

	syncBody := `{"generate":"dag:gates=120,seed=3","options":{"planner":"observe","nop":3}}`
	_, baseline := newTestServer(t, Config{})
	st, _, want := post(t, baseline.URL+"/v1/plan", syncBody)
	if st != 200 {
		t.Fatalf("baseline sync: status %d", st)
	}
	if !bytes.Equal(done.Result, want) {
		t.Fatalf("async result differs from sync response:\nasync: %s\nsync:  %s", done.Result, want)
	}

	// The job counters must be visible on /v1/stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats Stats
	if err := json.Unmarshal(b, &stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if stats.Jobs.Submitted != 1 || stats.Jobs.Done != 1 || stats.Jobs.JournalFsyncs == 0 {
		t.Fatalf("job stats = %+v, want 1 submitted, 1 done, >0 fsyncs", stats.Jobs)
	}
}

// TestAsyncIdenticalSubmissionsShareOneEngineRun is the dedupe
// acceptance pin: two identical concurrent async submissions become
// two distinct jobs but exactly one engine execution, through the same
// single-flight cache the synchronous path uses.
func TestAsyncIdenticalSubmissionsShareOneEngineRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})

	var mu sync.Mutex
	executions := 0
	enter := make(chan struct{})
	release := make(chan struct{})
	testHookCompute = func(string) {
		mu.Lock()
		executions++
		mu.Unlock()
		close(enter)
		<-release
	}
	defer func() { testHookCompute = nil }()

	body := `{"generate":"dag:gates=120,seed=3","options":{"planner":"observe","nop":3},"mode":"async"}`
	keyOpts, _, _, err := parsePlan(json.RawMessage(`{"planner":"observe","nop":3}`))
	if err != nil {
		t.Fatal(err)
	}
	key := mustPlanKey(t, "dag:gates=120,seed=3", keyOpts)

	subA := submitAsync(t, ts.URL+"/v1/plan", body)
	<-enter // job A's engine run holds the single-flight leadership
	subB := submitAsync(t, ts.URL+"/v1/plan", body)
	if subA.Job.ID == subB.Job.ID {
		t.Fatal("identical submissions shared a job ID; IDs must be per-submission")
	}
	waitFor(t, func() bool { return s.cache.pendingWaiters(key) == 1 })
	close(release)

	resA := waitJob(t, ts.URL, subA.Job.ID, jobs.Done)
	resB := waitJob(t, ts.URL, subB.Job.ID, jobs.Done)
	if executions != 1 {
		t.Fatalf("engine executed %d times for identical submissions, want exactly 1", executions)
	}
	if !bytes.Equal(resA.Result, resB.Result) {
		t.Fatalf("deduped jobs returned different bytes:\n%s\n%s", resA.Result, resB.Result)
	}
}

// mustPlanKey recomputes the cache key the server derives for a
// /v1/plan request over a generator spec.
func mustPlanKey(t *testing.T, spec string, keyOpts any) string {
	t.Helper()
	req := netlistRequest{Generate: spec}
	c, err := parseCircuit(&req)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := canonicalNetlist(c)
	if err != nil {
		t.Fatal(err)
	}
	key, err := cacheKey("/v1/plan", canon, keyOpts)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestAsyncQueueFullGets429 pins the bounded-queue behavior: past
// saturation, submissions are refused with 429 and Retry-After — fast
// back-pressure, not a timeout.
func TestAsyncQueueFullGets429(t *testing.T) {
	// Cleanup order matters: the hook restore is registered before the
	// server so it runs after Close has joined the workers (no racing
	// read), and release closes first so those workers can drain.
	enter := make(chan struct{}, 1)
	release := make(chan struct{})
	testHookCompute = func(string) {
		select {
		case enter <- struct{}{}:
		default: // the queued job runs after release; only the first signals
		}
		<-release
	}
	t.Cleanup(func() { testHookCompute = nil })
	_, ts := newTestServer(t, Config{Workers: 1, JobQueue: 1})
	t.Cleanup(func() { close(release) })

	bodyFor := func(seed int) string {
		return fmt.Sprintf(`{"generate":"dag:gates=120,seed=%d","options":{"planner":"observe"},"mode":"async"}`, seed)
	}
	submitAsync(t, ts.URL+"/v1/plan", bodyFor(1))
	<-enter                                       // worker busy, queue empty
	submitAsync(t, ts.URL+"/v1/plan", bodyFor(2)) // fills the queue

	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(bodyFor(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue submit: status %d body %s, want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestAsyncCancelMidRun pins cooperative cancellation over HTTP: a
// DELETE lands within 500ms on a job in the middle of a long fault
// simulation, via the engine's existing context polls. It also checks
// the job reported monotonic progress while it ran.
func TestAsyncCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{"generate":"dag:gates=600,seed=7","options":{"patterns":1073741824,"keep_faults":true,"full_universe":true},"mode":"async"}`
	sub := submitAsync(t, ts.URL+"/v1/faultsim", body)
	// Wait until the engine has visibly started reporting progress.
	var seen jobStatusResponse
	waitFor(t, func() bool {
		_, js := getJob(t, ts.URL, sub.Job.ID)
		seen = js
		return js.State == jobs.Running && js.Progress != nil
	})
	if seen.Progress.Stage != "patterns" || seen.Progress.Total == 0 {
		t.Fatalf("implausible progress: %+v", *seen.Progress)
	}

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	waitJob(t, ts.URL, sub.Job.ID, jobs.Canceled)
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 500ms", elapsed)
	}
}

// TestAsyncCancelQueuedJob pins pre-run cancellation: a DELETE on a
// still-queued job cancels it immediately and it never executes.
func TestAsyncCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobQueue: 4})

	enter := make(chan struct{})
	release := make(chan struct{})
	ran := make(chan string, 4)
	testHookCompute = func(ep string) {
		ran <- ep
		close(enter)
		<-release
	}
	defer func() { testHookCompute = nil }()

	submitAsync(t, ts.URL+"/v1/plan", `{"generate":"dag:gates=120,seed=1","options":{"planner":"observe"},"mode":"async"}`)
	<-enter
	queued := submitAsync(t, ts.URL+"/v1/atpg", `{"generate":"c17","mode":"async"}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.Job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap jobs.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != jobs.Canceled {
		t.Fatalf("queued job after DELETE: %s, want canceled immediately", snap.State)
	}
	close(release)
	waitFor(t, func() bool { return len(ran) == 1 }) // only the first job ever ran
}

// TestAsyncRestartRecovery is the serve-level durability pin: jobs
// interrupted by a dead server are re-queued by the next one on the
// same -job-dir, finish there, and return bytes identical to an
// independent synchronous run.
func TestAsyncRestartRecovery(t *testing.T) {
	dir := t.TempDir()

	// Server 1: one worker. A long simulation occupies it and a small
	// ATPG job sits queued behind it; the server dies with both
	// incomplete (Close journals nothing terminal, exactly like SIGKILL).
	s1, err := New(Config{Workers: 1, JobDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	enter := make(chan struct{}, 4)
	testHookCompute = func(string) { enter <- struct{}{} }
	defer func() { testHookCompute = nil }()

	longBody := `{"generate":"dag:gates=600,seed=7","options":{"patterns":1073741824,"keep_faults":true,"full_universe":true},"mode":"async"}`
	long := submitAsync(t, ts1.URL+"/v1/faultsim", longBody)
	<-enter // the long job is running
	small := submitAsync(t, ts1.URL+"/v1/atpg", `{"generate":"c17","mode":"async"}`)
	ts1.Close()
	s1.Close() // aborts the long engine run via its context; no terminal record

	// Server 2: two workers, same directory. Both jobs come back
	// re-queued; the small one completes next to the re-running long one.
	s2, err := New(Config{Workers: 2, JobDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	st, longSnap := getJob(t, ts2.URL, long.Job.ID)
	if st != http.StatusOK || !longSnap.Requeued {
		t.Fatalf("long job after restart: status %d snapshot %+v, want requeued", st, longSnap.Snapshot)
	}
	doneSmall := waitJob(t, ts2.URL, small.Job.ID, jobs.Done)
	if !doneSmall.Requeued {
		t.Error("recovered small job lost its requeued marker")
	}

	_, baseline := newTestServer(t, Config{})
	bst, _, want := post(t, baseline.URL+"/v1/atpg", `{"generate":"c17"}`)
	if bst != 200 {
		t.Fatalf("baseline: status %d", bst)
	}
	if !bytes.Equal(doneSmall.Result, want) {
		t.Fatalf("recovered result differs from sync baseline:\ngot:  %s\nwant: %s", doneSmall.Result, want)
	}

	// The re-running long job cancels cleanly on the new server.
	waitJob(t, ts2.URL, long.Job.ID, jobs.Running)
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/jobs/"+long.Job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJob(t, ts2.URL, long.Job.ID, jobs.Canceled)
}

// TestJobEventsStream pins the streaming surface: the events endpoint
// emits JSON lines from the current state through the terminal one.
func TestJobEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	enter := make(chan struct{})
	release := make(chan struct{})
	testHookCompute = func(string) {
		close(enter)
		<-release
	}
	defer func() { testHookCompute = nil }()

	sub := submitAsync(t, ts.URL+"/v1/faultsim", `{"generate":"c17","options":{"patterns":4096},"mode":"async"}`)
	<-enter // running, engine gated: the stream's first line is deterministic

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []jobs.Snapshot
	first := true
	for sc.Scan() {
		var snap jobs.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, snap)
		if first {
			first = false
			if snap.State != jobs.Running {
				t.Fatalf("first streamed state = %s, want running", snap.State)
			}
			close(release) // let the engine finish while we keep reading
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want at least running + done", len(lines))
	}
	if last := lines[len(lines)-1]; last.State != jobs.Done {
		t.Fatalf("stream ended on %s, want done", last.State)
	}
}

func TestJobListAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub := submitAsync(t, ts.URL+"/v1/atpg", `{"generate":"c17","mode":"async"}`)
	waitJob(t, ts.URL, sub.Job.ID, jobs.Done)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list map[string][]jobs.Snapshot
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatalf("decode list: %v\n%s", err, b)
	}
	if len(list["jobs"]) != 1 || list["jobs"][0].ID != sub.Job.ID {
		t.Fatalf("job list = %s", b)
	}

	if st, _ := getJob(t, ts.URL, "no-such-job"); st != http.StatusNotFound {
		t.Fatalf("GET unknown job: status %d, want 404", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/no-such-job", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: status %d, want 404", dresp.StatusCode)
	}
}

func TestPreferHeaderRequestsAsync(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/atpg", strings.NewReader(`{"generate":"c17"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Prefer", "respond-async, wait=10")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("Prefer respond-async: status %d body %s, want 202", resp.StatusCode, b)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
}

func TestAsyncModeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if st, _, b := post(t, ts.URL+"/v1/plan", `{"generate":"c17","mode":"later"}`); st != 400 {
		t.Fatalf("unknown mode: status %d body %s, want 400", st, b)
	}
	if st, _, b := post(t, ts.URL+"/v1/lint", `{"generate":"c17","mode":"async"}`); st != 400 {
		t.Fatalf("async lint: status %d body %s, want 400", st, b)
	}
	// mode=sync is accepted and behaves synchronously.
	if st, _, _ := post(t, ts.URL+"/v1/plan", `{"generate":"c17","mode":"sync"}`); st != 200 {
		t.Fatalf("mode=sync: status %d, want 200", st)
	}
}

// TestDrainStreamsEndsEventSubscriber pins the shutdown-ordering
// contract: DrainStreams ends every open /v1/jobs/{id}/events stream
// cleanly even while the watched job is still running, so a graceful
// drain never blocks on a subscriber waiting for a snapshot that will
// not come.
func TestDrainStreamsEndsEventSubscriber(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	enter := make(chan struct{})
	release := make(chan struct{})
	testHookCompute = func(string) {
		close(enter)
		<-release
	}
	defer func() { testHookCompute = nil }()
	defer close(release) // ungate the engine so Close can join the worker

	sub := submitAsync(t, ts.URL+"/v1/faultsim", `{"generate":"c17","options":{"patterns":4096},"mode":"async"}`)
	<-enter // running, engine gated: the stream cannot end on its own

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream ended before its first line: %v", sc.Err())
	}
	var first jobs.Snapshot
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad stream line %q: %v", sc.Text(), err)
	}
	if first.State != jobs.Running {
		t.Fatalf("first streamed state = %s, want running", first.State)
	}

	// The subscriber is now parked on the watch channel. Draining must
	// end the stream cleanly (EOF, no error) without the job finishing.
	eof := make(chan error, 1)
	go func() {
		for sc.Scan() {
		}
		eof <- sc.Err()
	}()
	s.DrainStreams()
	select {
	case err := <-eof:
		if err != nil {
			t.Errorf("drained stream ended with %v, want clean EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DrainStreams did not end the blocked event stream")
	}

	// The job itself is untouched by the drain: still running until the
	// engine is released.
	if st, js := getJob(t, ts.URL, sub.Job.ID); st != http.StatusOK || js.State != jobs.Running {
		t.Errorf("after drain: status=%d state=%s, want 200 running", st, js.State)
	}

	// DrainStreams is idempotent, and post-drain subscriptions end
	// immediately instead of hanging a half-shut-down server.
	s.DrainStreams()
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(io.Discard, resp2.Body)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-drain subscription did not end promptly")
	}
}
