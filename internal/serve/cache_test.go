package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1 << 20)
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("value"), nil }

	v, hit, err := c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || hit || string(v) != "value" {
		t.Fatalf("cold get: v=%q hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || !hit || string(v) != "value" {
		t.Fatalf("warm get: v=%q hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestCacheEviction(t *testing.T) {
	// Room for roughly two entries of ~(1+256+overhead) bytes.
	c := NewCache(2 * (260 + entryOverhead))
	val := make([]byte, 256)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("%d", i)
		if _, _, err := c.GetOrCompute(context.Background(), key, func() ([]byte, error) { return val, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	// Key "0" was least recently used and must be gone; "2" must hit.
	if _, hit, _ := c.GetOrCompute(context.Background(), "2", func() ([]byte, error) { return val, nil }); !hit {
		t.Error("most recent entry evicted")
	}
	if _, hit, _ := c.GetOrCompute(context.Background(), "0", func() ([]byte, error) { return val, nil }); hit {
		t.Error("LRU entry survived over-budget insert")
	}
}

func TestCacheOversizeValueNotStored(t *testing.T) {
	c := NewCache(64)
	big := make([]byte, 1024)
	for i := 0; i < 2; i++ {
		_, hit, err := c.GetOrCompute(context.Background(), "big", func() ([]byte, error) { return big, nil })
		if err != nil || hit {
			t.Fatalf("iteration %d: hit=%v err=%v, want recompute", i, hit, err)
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize value was stored: %+v", st)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(1 << 20)
	var mu sync.Mutex
	calls := 0
	enter := make(chan struct{})
	release := make(chan struct{})
	compute := func() ([]byte, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		close(enter)
		<-release
		return []byte("once"), nil
	}

	var wg sync.WaitGroup
	results := make([]bool, 8) // hit flags
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, hit, err := c.GetOrCompute(context.Background(), "k", compute)
		if err != nil {
			t.Error(err)
		}
		results[0] = hit
	}()
	<-enter // leader is inside compute
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hit, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
				t.Error("waiter ran compute")
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = hit
		}(i)
	}
	waitFor(t, func() bool { return c.pendingWaiters("k") == 7 })
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if results[0] {
		t.Error("leader reported a hit")
	}
	for i := 1; i < 8; i++ {
		if !results[i] {
			t.Errorf("waiter %d reported a miss", i)
		}
	}
	if st := c.Stats(); st.Hits != 7 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 7 hits / 1 miss", st)
	}
}

func TestCacheLeaderFailureDoesNotPoisonWaiters(t *testing.T) {
	c := NewCache(1 << 20)
	enter := make(chan struct{})
	release := make(chan struct{})
	failing := func() ([]byte, error) {
		close(enter)
		<-release
		return nil, context.Canceled // leader's own request was cancelled
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(context.Background(), "k", failing)
		leaderDone <- err
	}()
	<-enter

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, hit, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			return []byte("retried"), nil
		})
		if err != nil || hit || string(v) != "retried" {
			t.Errorf("waiter after leader failure: v=%q hit=%v err=%v", v, hit, err)
		}
	}()
	waitFor(t, func() bool { return c.pendingWaiters("k") == 1 })
	close(release)

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want Canceled", err)
	}
	<-waiterDone
}

func TestCacheWaiterCancellation(t *testing.T) {
	c := NewCache(1 << 20)
	enter := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		close(enter)
		<-release
		return []byte("v"), nil
	})
	<-enter

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, "k", nil)
		errc <- err
	}()
	waitFor(t, func() bool { return c.pendingWaiters("k") == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want Canceled", err)
	}
	waitFor(t, func() bool { return c.pendingWaiters("k") == 0 })
	close(release)
}
