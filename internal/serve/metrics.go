package serve

import (
	"sort"
	"sync"
	"sync/atomic"
)

// latencyBucketsMS are the fixed upper bounds (milliseconds, inclusive)
// of the request latency histogram; an implicit +Inf bucket follows.
var latencyBucketsMS = [numBuckets - 1]int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// numBuckets counts the bounded buckets plus the +Inf overflow bucket.
const numBuckets = 13

// histogram is a fixed-bucket latency histogram with atomic counters.
type histogram struct {
	counts [numBuckets]atomic.Int64
}

func (h *histogram) observe(ms int64) {
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBucketsMS)].Add(1)
}

// endpointStats accumulates per-endpoint counters.
type endpointStats struct {
	requests atomic.Int64
	byClass  [6]atomic.Int64 // index = status/100 (0 unused; 4 covers 499)
	latency  histogram
}

// Metrics tracks per-endpoint request counts and latencies plus the
// service-wide in-flight gauge. Endpoint rows are created lazily under
// a mutex; the hot-path counters themselves are atomics.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	inFlight  atomic.Int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*endpointStats)}
}

func (m *Metrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	es, ok := m.endpoints[name]
	if !ok {
		es = &endpointStats{}
		m.endpoints[name] = es
	}
	return es
}

// record notes one finished request.
func (m *Metrics) record(endpoint string, status int, ms int64) {
	es := m.endpoint(endpoint)
	es.requests.Add(1)
	if c := status / 100; c >= 1 && c <= 5 {
		es.byClass[c].Add(1)
	}
	es.latency.observe(ms)
}

// EndpointSnapshot is the exported view of one endpoint's counters.
type EndpointSnapshot struct {
	Requests  int64            `json:"requests"`
	ByStatus  map[string]int64 `json:"by_status"`
	LatencyMS map[string]int64 `json:"latency_ms"`
}

// Snapshot returns the per-endpoint counters keyed by endpoint name,
// with histogram buckets rendered as "le_<bound>"/"gt_5000" keys.
// (JSON object keys marshal sorted, keeping /v1/stats deterministic for
// a fixed counter state.)
func (m *Metrics) Snapshot() map[string]EndpointSnapshot {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for n := range m.endpoints {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)

	out := make(map[string]EndpointSnapshot, len(names))
	for _, n := range names {
		es := m.endpoint(n)
		snap := EndpointSnapshot{
			Requests:  es.requests.Load(),
			ByStatus:  make(map[string]int64),
			LatencyMS: make(map[string]int64),
		}
		classes := [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}
		for c := 1; c <= 5; c++ {
			if v := es.byClass[c].Load(); v > 0 {
				snap.ByStatus[classes[c]] = v
			}
		}
		for i, ub := range latencyBucketsMS {
			snap.LatencyMS[bucketLabel(ub)] = es.latency.counts[i].Load()
		}
		snap.LatencyMS["gt_5000"] = es.latency.counts[len(latencyBucketsMS)].Load()
		out[n] = snap
	}
	return out
}

func bucketLabel(ub int64) string {
	// Zero-pad so lexicographic key order (JSON marshal order) matches
	// numeric bucket order.
	const digits = 4
	s := make([]byte, 0, 8)
	s = append(s, 'l', 'e', '_')
	var buf [digits]byte
	for i := digits - 1; i >= 0; i-- {
		buf[i] = byte('0' + ub%10)
		ub /= 10
	}
	return string(append(s, buf[:]...))
}
