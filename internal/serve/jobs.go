package serve

// Async job surface: POST /v1/{plan,faultsim,atpg} with mode=async (or
// a Prefer: respond-async header) enqueues the request as a persistent
// job and answers 202 with its ID; the job API then serves status,
// progress streaming, cancellation, and listing. Jobs execute through
// the same content-addressed cache and worker pool as synchronous
// requests, so an async result is byte-identical to the synchronous
// response for the same request and identical concurrent submissions
// collapse into one engine run.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/jobs"
)

// asyncRequested reports whether the request opts into asynchronous
// execution, via the envelope's mode field or the standard Prefer:
// respond-async header (RFC 7240). Unknown modes are rejected.
func asyncRequested(req *netlistRequest, r *http.Request) (bool, error) {
	switch req.Mode {
	case "", "sync":
	case "async":
		return true, nil
	default:
		return false, fmt.Errorf("unknown mode %q (want \"sync\" or \"async\")", req.Mode)
	}
	for _, pref := range r.Header.Values("Prefer") {
		for _, tok := range strings.Split(pref, ",") {
			if strings.EqualFold(strings.TrimSpace(tok), "respond-async") {
				return true, nil
			}
		}
	}
	return false, nil
}

// submitResponse is the 202 body acknowledging an async submission.
type submitResponse struct {
	Job jobs.Snapshot `json:"job"`
	// Location duplicates the Location header for JSON-only clients.
	Location string `json:"location"`
}

// submitJob enqueues one async engine invocation and writes the 202
// (or 429 when the queue is full). It returns the status written, for
// the caller's metrics.
func (s *Server) submitJob(w http.ResponseWriter, name, key string, body []byte, timeoutMS int) int {
	if name == "/v1/lint" {
		writeError(w, http.StatusBadRequest, "async mode is not supported for /v1/lint; lint runs are fast enough to answer synchronously")
		return http.StatusBadRequest
	}
	var timeout time.Duration
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	snap, err := s.jobs.Submit(name, key, body, timeout)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// Back-pressure, not failure: the client should retry later.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full")
		return http.StatusTooManyRequests
	case err != nil:
		writeError(w, http.StatusInternalServerError, "submit job: "+err.Error())
		return http.StatusInternalServerError
	}
	loc := "/v1/jobs/" + snap.ID
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Location", loc)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(submitResponse{Job: snap, Location: loc})
	return http.StatusAccepted
}

// executeJob is the jobs.Runner: it re-derives the engine invocation
// from the journaled request envelope and executes it through the same
// single-flight cache and worker pool as the synchronous path. The
// returned bytes are exactly what the synchronous endpoint would have
// written, and identical concurrent jobs collapse into one engine run.
func (s *Server) executeJob(ctx context.Context, spec jobs.Spec) ([]byte, error) {
	parse, ok := s.parsers[spec.Endpoint]
	if !ok {
		return nil, fmt.Errorf("serve: job targets unknown endpoint %q", spec.Endpoint)
	}
	var req netlistRequest
	if err := json.Unmarshal(spec.Request, &req); err != nil {
		return nil, fmt.Errorf("serve: decode journaled request: %w", err)
	}
	c, err := parseCircuit(&req)
	if err != nil {
		return nil, err
	}
	keyOpts, _, run, err := parse(req.Options)
	if err != nil {
		return nil, err
	}
	canon, err := canonicalNetlist(c)
	if err != nil {
		return nil, err
	}
	// Recomputed rather than trusting spec.Key: both come from the same
	// deterministic derivation, and recomputing keeps a tampered or
	// stale journal from poisoning the cache under a mismatched key.
	key, err := cacheKey(spec.Endpoint, canon, keyOpts)
	if err != nil {
		return nil, err
	}
	val, _, err := s.cache.GetOrCompute(ctx, key, func() ([]byte, error) {
		if err := s.pool.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.pool.Release()
		if h := testHookCompute; h != nil {
			h(spec.Endpoint)
		}
		out, err := run(ctx, c)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	})
	return val, err
}

// jobStatusResponse is the GET /v1/jobs/{id} body: the snapshot plus,
// once the job is done, the verbatim result bytes of the engine run.
type jobStatusResponse struct {
	jobs.Snapshot
	Result json.RawMessage `json:"result,omitempty"`
}

// handleJobList serves GET /v1/jobs: every retained job, oldest first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	list := s.jobs.List()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string][]jobs.Snapshot{"jobs": list})
	s.metrics.record("/v1/jobs", http.StatusOK, time.Since(start).Milliseconds())
}

// handleJobGet serves GET /v1/jobs/{id}: state, progress, and — when
// the job is done — the result, byte-identical to the synchronous
// response for the same request.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		s.metrics.record("/v1/jobs/{id}", status, time.Since(start).Milliseconds())
	}()
	id := r.PathValue("id")
	snap, ok := s.jobs.Get(id)
	if !ok {
		status = http.StatusNotFound
		writeError(w, status, "unknown job "+id)
		return
	}
	resp := jobStatusResponse{Snapshot: snap}
	if snap.State == jobs.Done {
		val, err := s.jobs.Result(id)
		if err != nil {
			status = http.StatusInternalServerError
			writeError(w, status, err.Error())
			return
		}
		resp.Result = json.RawMessage(val)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleJobCancel serves DELETE /v1/jobs/{id}: cooperative
// cancellation. A queued job flips to canceled immediately; a running
// job's context is cancelled and the engine unwinds at its next poll.
// The response reports the state after the request took effect.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		s.metrics.record("/v1/jobs/{id}", status, time.Since(start).Milliseconds())
	}()
	id := r.PathValue("id")
	snap, ok := s.jobs.Cancel(id)
	if !ok {
		status = http.StatusNotFound
		writeError(w, status, "unknown job "+id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(snap)
}

// handleJobEvents serves GET /v1/jobs/{id}/events: a chunked stream of
// JSON lines, one snapshot per observable change (state transitions
// and progress samples), ending with the terminal snapshot. Clients
// poll nothing; the stream closes itself when the job finishes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		s.metrics.record("/v1/jobs/{id}/events", status, time.Since(start).Milliseconds())
	}()
	id := r.PathValue("id")
	snap, watch, ok := s.jobs.Watch(id)
	if !ok {
		status = http.StatusNotFound
		writeError(w, status, "unknown job "+id)
		return
	}
	// NewResponseController reaches the underlying Flusher through
	// wrapped ResponseWriters; a nil-tolerated comma-ok Flusher would
	// silently stop streaming behind middleware (rule G016).
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	done := r.Context().Done()
	for {
		if err := enc.Encode(snap); err != nil {
			status = statusClientClosed
			return
		}
		if err := rc.Flush(); err != nil {
			status = statusClientClosed
			return
		}
		if snap.State.Terminal() {
			return
		}
		select {
		case <-watch:
		case <-done:
			status = statusClientClosed
			return
		case <-s.draining:
			// Graceful shutdown: end the stream cleanly; the client has
			// every snapshot up to this point and can resubscribe.
			return
		}
		snap, watch, ok = s.jobs.Watch(id)
		if !ok {
			// Garbage-collected mid-stream; the last snapshot stands.
			return
		}
	}
}
