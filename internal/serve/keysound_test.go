package serve

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

// The tests in this file are the runtime half of the G011 cache-key
// soundness story: every engine option the serve layer feeds must come
// from keyed request data, and every keyed request field must change
// the cache key. Each test pins one of the feeds wired in for the
// cache-key audit (atpg learn, faultsim count_detections, plan
// max_candidates).

// TestATPGLearnOptionSplitsCacheKey: learn:true builds the implication
// engine and must hash to its own cache entry; per-fault status is
// unchanged by learning.
func TestATPGLearnOptionSplitsCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	plain := `{"generate":"c17","options":{}}`
	learn := `{"generate":"c17","options":{"learn":true}}`

	st, xc, base := post(t, ts.URL+"/v1/atpg", plain)
	if st != 200 || xc != "miss" {
		t.Fatalf("plain cold: status=%d X-Cache=%q body=%s", st, xc, base)
	}
	st, xc, learned := post(t, ts.URL+"/v1/atpg", learn)
	if st != 200 {
		t.Fatalf("learn cold: status=%d body=%s", st, learned)
	}
	if xc != "miss" {
		t.Fatalf("learn:true served from the learn:false cache entry (X-Cache=%q): the option is not keyed", xc)
	}
	st, xc, again := post(t, ts.URL+"/v1/atpg", learn)
	if st != 200 || xc != "hit" {
		t.Fatalf("learn warm: status=%d X-Cache=%q", st, xc)
	}
	if !bytes.Equal(learned, again) {
		t.Fatal("learn cache hit not byte-identical")
	}

	var p1, p2 atpgResponse
	if err := json.Unmarshal(base, &p1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(learned, &p2); err != nil {
		t.Fatal(err)
	}
	if p1.Detected != p2.Detected || p1.Redundant != p2.Redundant || p1.Aborted != p2.Aborted {
		t.Errorf("learning changed per-fault status: plain %d/%d/%d, learned %d/%d/%d",
			p1.Detected, p1.Redundant, p1.Aborted, p2.Detected, p2.Redundant, p2.Aborted)
	}
}

// TestFaultsimDetectCountsOption: count_detections populates a sorted
// detect_counts section and splits the cache key.
func TestFaultsimDetectCountsOption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	counted := `{"generate":"c17","options":{"patterns":32,"source":"counter","keep_faults":true,"count_detections":true}}`
	plain := `{"generate":"c17","options":{"patterns":32,"source":"counter","keep_faults":true}}`

	st, _, b := post(t, ts.URL+"/v1/faultsim", counted)
	if st != 200 {
		t.Fatalf("counted: status=%d body=%s", st, b)
	}
	var resp simResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.DetectCounts) == 0 {
		t.Fatal("count_detections:true returned no detect_counts")
	}
	if len(resp.DetectCounts) != resp.Detected {
		t.Errorf("detect_counts has %d entries, detected = %d", len(resp.DetectCounts), resp.Detected)
	}
	if !sort.SliceIsSorted(resp.DetectCounts, func(i, j int) bool {
		return resp.DetectCounts[i].Fault < resp.DetectCounts[j].Fault
	}) {
		t.Error("detect_counts not sorted by fault name")
	}
	for _, dc := range resp.DetectCounts {
		if dc.Count < 1 {
			t.Errorf("fault %s counted %d detections, want >= 1", dc.Fault, dc.Count)
		}
	}

	st, xc, b2 := post(t, ts.URL+"/v1/faultsim", plain)
	if st != 200 {
		t.Fatalf("plain: status=%d body=%s", st, b2)
	}
	if xc != "miss" {
		t.Fatalf("count_detections:false served from the counted cache entry (X-Cache=%q)", xc)
	}
	var resp2 simResponse
	if err := json.Unmarshal(b2, &resp2); err != nil {
		t.Fatal(err)
	}
	if len(resp2.DetectCounts) != 0 {
		t.Errorf("detect_counts present without count_detections: %v", resp2.DetectCounts)
	}
}

// TestPlanMaxCandidatesOption: the explicit default canonicalizes onto
// the implicit-default cache entry, a non-default value splits the key,
// and negative values are rejected.
func TestPlanMaxCandidatesOption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := func(opts string) string {
		return `{"generate":"dag:gates=120,seed=3","options":` + opts + `}`
	}

	st, xc, _ := post(t, ts.URL+"/v1/plan", body(`{"planner":"control"}`))
	if st != 200 || xc != "miss" {
		t.Fatalf("default cold: status=%d X-Cache=%q", st, xc)
	}
	st, xc, _ = post(t, ts.URL+"/v1/plan", body(`{"planner":"control","max_candidates":0}`))
	if st != 200 || xc != "hit" {
		t.Fatalf("explicit default max_candidates=0 missed the default entry: status=%d X-Cache=%q", st, xc)
	}
	st, xc, b := post(t, ts.URL+"/v1/plan", body(`{"planner":"control","max_candidates":2}`))
	if st != 200 {
		t.Fatalf("max_candidates=2: status=%d body=%s", st, b)
	}
	if xc != "miss" {
		t.Fatalf("max_candidates=2 served from the default cache entry (X-Cache=%q): the option is not keyed", xc)
	}
	st, _, b = post(t, ts.URL+"/v1/plan", body(`{"planner":"control","max_candidates":-1}`))
	if st != 400 {
		t.Fatalf("max_candidates=-1: status=%d body=%s, want 400", st, b)
	}
}
