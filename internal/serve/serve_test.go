package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cli"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one engine request and returns status, X-Cache header, and
// body bytes.
func post(t *testing.T, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

func TestPlanRoundTripAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"generate":"c17","options":{"planner":"hybrid"}}`

	st, xc, cold := post(t, ts.URL+"/v1/plan", body)
	if st != 200 || xc != "miss" {
		t.Fatalf("cold: status=%d X-Cache=%q body=%s", st, xc, cold)
	}
	var resp planResponse
	if err := json.Unmarshal(cold, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Circuit.Name != "c17" || resp.Planner != "hybrid" {
		t.Fatalf("unexpected response: %+v", resp)
	}

	st, xc, warm := post(t, ts.URL+"/v1/plan", body)
	if st != 200 || xc != "hit" {
		t.Fatalf("warm: status=%d X-Cache=%q", st, xc)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache hit not byte-identical:\ncold: %s\nwarm: %s", cold, warm)
	}
}

// Regression: hybrid and control plans pick points against successively
// modified circuits, so a point's signal ID can exceed the original gate
// count (an earlier control point inserted the gate it refers to). Naming
// the points against the original circuit used to panic on larger DAGs.
func TestPlanNamesPointsOnModifiedCircuit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, planner := range []string{"hybrid", "control"} {
		body := fmt.Sprintf(`{"generate":"dag:gates=600,seed=7","options":{"planner":%q}}`, planner)
		st, _, b := post(t, ts.URL+"/v1/plan", body)
		if st != 200 {
			t.Fatalf("planner=%s: status=%d body=%s", planner, st, b)
		}
		var resp planResponse
		if err := json.Unmarshal(b, &resp); err != nil {
			t.Fatalf("planner=%s: decode: %v", planner, err)
		}
		if len(resp.Points) == 0 {
			t.Fatalf("planner=%s: no points returned", planner)
		}
		for _, p := range resp.Points {
			if p.Signal == "" {
				t.Fatalf("planner=%s: point with empty signal name: %+v", planner, p)
			}
		}
	}
}

func TestEquivalentRequestsShareCacheEntry(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	c17, err := cli.Generate("c17")
	if err != nil {
		t.Fatal(err)
	}
	text, err := canonicalNetlist(c17)
	if err != nil {
		t.Fatal(err)
	}
	// Mangle formatting: extra blank lines and spaces around commas
	// survive parsing and must not split the cache.
	mangled := strings.ReplaceAll(text, ", ", " ,  ")
	mangled = strings.ReplaceAll(mangled, "\n", "\n\n")

	req1, _ := json.Marshal(map[string]any{"bench": text})
	req2, _ := json.Marshal(map[string]any{
		"bench": mangled,
		// Explicitly spelled defaults must canonicalize to the same key.
		"options": map[string]any{"planner": "hybrid", "k": 4, "ncp": 3, "nop": 4, "dth": 1.0 / 4096},
	})
	st, xc, cold := post(t, ts.URL+"/v1/plan", string(req1))
	if st != 200 || xc != "miss" {
		t.Fatalf("cold: status=%d X-Cache=%q", st, xc)
	}
	st, xc, warm := post(t, ts.URL+"/v1/plan", string(req2))
	if st != 200 || xc != "hit" {
		t.Fatalf("equivalent request missed the cache: status=%d X-Cache=%q", st, xc)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("equivalent requests returned different bytes")
	}
	if cs := s.cache.Stats(); cs.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", cs.Entries)
	}
}

// TestConcurrentIdenticalRequests is acceptance criterion (a): two
// identical concurrent /v1/plan requests produce byte-identical
// responses with exactly one engine execution — one miss, one hit.
func TestConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})

	var mu sync.Mutex
	var executions []string
	enter := make(chan struct{})
	release := make(chan struct{})
	testHookCompute = func(ep string) {
		mu.Lock()
		executions = append(executions, ep)
		mu.Unlock()
		close(enter)
		<-release
	}
	defer func() { testHookCompute = nil }()

	body := `{"generate":"dag:gates=120,seed=3","options":{"planner":"observe","nop":3}}`

	// Recompute the cache key the server will use, so the test can
	// observe the waiter attach deterministically.
	c, err := cli.Generate("dag:gates=120,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	canon, err := canonicalNetlist(c)
	if err != nil {
		t.Fatal(err)
	}
	keyOpts, _, _, err := parsePlan(json.RawMessage(`{"planner":"observe","nop":3}`))
	if err != nil {
		t.Fatal(err)
	}
	key, err := cacheKey("/v1/plan", canon, keyOpts)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		xcache string
		body   []byte
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, xc, b := post(t, ts.URL+"/v1/plan", body)
			results[i] = result{st, xc, b}
		}()
	}
	launch(0)
	<-enter // leader holds a worker slot, engine about to run
	launch(1)
	waitFor(t, func() bool { return s.cache.pendingWaiters(key) == 1 })
	close(release)
	wg.Wait()

	if len(executions) != 1 {
		t.Fatalf("engine executed %d times, want exactly 1", len(executions))
	}
	for i, r := range results {
		if r.status != 200 {
			t.Fatalf("request %d: status %d body %s", i, r.status, r.body)
		}
	}
	if !bytes.Equal(results[0].body, results[1].body) {
		t.Fatalf("responses differ:\n%s\n%s", results[0].body, results[1].body)
	}
	got := []string{results[0].xcache, results[1].xcache}
	if !(got[0] == "miss" && got[1] == "hit") && !(got[0] == "hit" && got[1] == "miss") {
		t.Fatalf("X-Cache = %v, want one miss and one hit", got)
	}
	cs := s.cache.Stats()
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss / 1 hit", cs)
	}
}

// TestCancellationFreesSaturatedPool is acceptance criterion (b): a
// request cancelled mid-simulation returns within 500ms of the
// cancellation, and a request queued behind it on a saturated pool then
// completes normally with per-fault results identical to an unloaded
// run.
func TestCancellationFreesSaturatedPool(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: time.Minute})

	started := make(chan struct{}, 2)
	testHookCompute = func(string) { started <- struct{}{} }
	defer func() { testHookCompute = nil }()

	// Request A: effectively unbounded simulation on the single worker.
	longBody := `{"generate":"dag:gates=600,seed=7","options":{"patterns":1073741824,"keep_faults":true,"full_universe":true}}`
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	aDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctxA, http.MethodPost, ts.URL+"/v1/faultsim", strings.NewReader(longBody))
		_, err := http.DefaultClient.Do(req)
		aDone <- err
	}()
	<-started // A's engine run began: the pool is saturated

	// Request B queues behind A.
	shortBody := `{"generate":"c17","options":{"patterns":64}}`
	type bres struct {
		status int
		body   []byte
	}
	bDone := make(chan bres, 1)
	go func() {
		st, _, b := post(t, ts.URL+"/v1/faultsim", shortBody)
		bDone <- bres{st, b}
	}()
	waitFor(t, func() bool { return s.pool.Stats().Queued >= 1 })

	// Cancel A mid-simulation; its client must observe the abort fast.
	cancelStart := time.Now()
	cancelA()
	err := <-aDone
	if elapsed := time.Since(cancelStart); elapsed > 500*time.Millisecond {
		t.Fatalf("cancelled request returned after %v, want <500ms", elapsed)
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request error = %v, want context.Canceled", err)
	}

	// B now gets the freed worker and must match an unloaded baseline
	// per-fault (byte-identical response, including first_detect).
	b := <-bDone
	if b.status != 200 {
		t.Fatalf("queued request failed after cancellation: %d %s", b.status, b.body)
	}
	testHookCompute = nil
	_, baselineTS := newTestServer(t, Config{})
	st, _, want := post(t, baselineTS.URL+"/v1/faultsim", shortBody)
	if st != 200 {
		t.Fatalf("baseline failed: %d", st)
	}
	if !bytes.Equal(b.body, want) {
		t.Fatalf("per-fault results changed under cancellation:\ngot:  %s\nwant: %s", b.body, want)
	}
}

func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{"generate":"dag:gates=600,seed=7","options":{"patterns":1073741824,"keep_faults":true,"timeout_ms":100}}`
	start := time.Now()
	st, _, b := post(t, ts.URL+"/v1/faultsim", body)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body=%s, want 504", st, b)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout enforcement took %v", elapsed)
	}
	var e map[string]string
	if err := json.Unmarshal(b, &e); err != nil || e["error"] == "" {
		t.Fatalf("expected JSON error body, got %s", b)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, endpoint, body string
		want                 int
	}{
		{"malformed json", "/v1/plan", `{`, 400},
		{"no circuit", "/v1/plan", `{}`, 400},
		{"both circuit forms", "/v1/plan", `{"bench":"INPUT(a)\nOUTPUT(a)","generate":"c17"}`, 400},
		{"bad bench", "/v1/plan", `{"bench":"INPUT(((("}`, 400},
		{"bad generator", "/v1/plan", `{"generate":"nosuch:x=1"}`, 400},
		{"unknown planner", "/v1/plan", `{"generate":"c17","options":{"planner":"magic"}}`, 400},
		{"unknown option", "/v1/plan", `{"generate":"c17","options":{"plannner":"hybrid"}}`, 400},
		{"negative budget", "/v1/plan", `{"generate":"c17","options":{"planner":"cuts","k":-1}}`, 400},
		{"zero patterns", "/v1/faultsim", `{"generate":"c17","options":{"patterns":-5}}`, 400},
		{"bad source", "/v1/faultsim", `{"generate":"c17","options":{"source":"dice"}}`, 400},
		{"negative backtracks", "/v1/atpg", `{"generate":"c17","options":{"backtrack_limit":-1}}`, 400},
	}
	for _, tc := range cases {
		st, _, b := post(t, ts.URL+tc.endpoint, tc.body)
		if st != tc.want {
			t.Errorf("%s: status = %d body=%s, want %d", tc.name, st, b, tc.want)
		}
		var e map[string]string
		if err := json.Unmarshal(b, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: expected JSON error body, got %s", tc.name, b)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 512})
	big := fmt.Sprintf(`{"bench":%q}`, strings.Repeat("# filler\n", 200))
	st, _, _ := post(t, ts.URL+"/v1/plan", big)
	if st != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", st)
	}
}

func TestFaultsimAndATPGAndLint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	st, _, b := post(t, ts.URL+"/v1/faultsim", `{"generate":"c17","options":{"patterns":256}}`)
	if st != 200 {
		t.Fatalf("faultsim: %d %s", st, b)
	}
	var sim simResponse
	if err := json.Unmarshal(b, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Detected == 0 || sim.Coverage <= 0 || len(sim.FirstDetect) != sim.Detected {
		t.Fatalf("implausible sim response: %+v", sim)
	}

	st, _, b = post(t, ts.URL+"/v1/atpg", `{"generate":"c17"}`)
	if st != 200 {
		t.Fatalf("atpg: %d %s", st, b)
	}
	var at atpgResponse
	if err := json.Unmarshal(b, &at); err != nil {
		t.Fatal(err)
	}
	if at.Detected == 0 || len(at.Vectors) == 0 {
		t.Fatalf("implausible atpg response: %+v", at)
	}
	if want := at.Circuit.Inputs; len(at.Vectors[0]) != want {
		t.Fatalf("vector width = %d, want %d inputs", len(at.Vectors[0]), want)
	}

	st, _, b = post(t, ts.URL+"/v1/lint", `{"generate":"c17"}`)
	if st != 200 {
		t.Fatalf("lint: %d %s", st, b)
	}
	var lr lintResponse
	if err := json.Unmarshal(b, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Circuit.Name != "c17" {
		t.Fatalf("lint response: %+v", lr)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}

	// Generate one engine request so stats have content.
	if st, _, _ := post(t, ts.URL+"/v1/plan", `{"generate":"c17"}`); st != 200 {
		t.Fatal("plan request failed")
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats Stats
	if err := json.Unmarshal(b, &stats); err != nil {
		t.Fatalf("stats decode: %v\n%s", err, b)
	}
	ep, ok := stats.Endpoints["/v1/plan"]
	if !ok || ep.Requests != 1 || ep.ByStatus["2xx"] != 1 {
		t.Fatalf("plan endpoint stats = %+v", ep)
	}
	total := int64(0)
	for _, v := range ep.LatencyMS {
		total += v
	}
	if total != 1 {
		t.Fatalf("latency histogram total = %d, want 1: %+v", total, ep.LatencyMS)
	}
	if stats.Pool.Workers != 3 {
		t.Fatalf("pool workers = %d, want 3", stats.Pool.Workers)
	}
	if stats.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", stats.Cache)
	}
}

// TestDeterministicAcrossServers guards the canonical-response
// property the cache depends on: a fresh server must produce the same
// bytes for the same request.
func TestDeterministicAcrossServers(t *testing.T) {
	body := `{"generate":"rpr:seed=5,cones=2,width=8,glue=30","options":{"planner":"hybrid","nop":2,"ncp":2}}`
	var prev []byte
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t, Config{})
		st, _, b := post(t, ts.URL+"/v1/plan", body)
		if st != 200 {
			t.Fatalf("server %d: status %d %s", i, st, b)
		}
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatalf("responses differ across servers:\n%s\n%s", prev, b)
		}
		prev = b
	}
}
