// Package serve exposes the repro engines — test point planning, fault
// simulation, ATPG, and netlist lint — as an HTTP/JSON service with a
// bounded worker pool, per-request deadlines, and a content-addressed
// result cache.
//
// Caching correctness rests on two invariants enforced here:
//
//  1. Cache keys are content-addressed over a *canonical* form of the
//     request, not its wire bytes: the netlist is parsed and re-rendered
//     through bench.Write (fixed header, topological gate order, fixed
//     mnemonics), and the options are decoded into a typed struct,
//     defaulted, and re-marshalled (fixed field order). Two requests
//     that differ only in whitespace, key order, or explicitly-spelled
//     defaults therefore share a key. The per-request timeout is
//     excluded from the key because it does not affect the result.
//
//  2. Responses are rendered to JSON once, by the engine execution that
//     populated the cache, and the stored bytes are replayed verbatim
//     on hits — cache hits are byte-identical to the cold response.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/netlist"
)

// netlistRequest is the common request envelope: every engine endpoint
// accepts a circuit as either inline .bench text or a generator spec,
// plus endpoint-specific options.
type netlistRequest struct {
	// Bench is inline .bench netlist text.
	Bench string `json:"bench,omitempty"`
	// Generate is a generator spec ("kind:key=value,..."), e.g.
	// "dag:gates=600,seed=7" — see internal/cli.Generate.
	Generate string `json:"generate,omitempty"`
	// Options carries endpoint-specific options, decoded by the
	// endpoint handler.
	Options json.RawMessage `json:"options,omitempty"`
	// Mode selects the execution mode: "sync" (the default) answers in
	// the request, "async" enqueues a job and answers 202 with its ID.
	// Mode lives on the envelope, not in Options, so it stays out of
	// the cache key: a request computes the same result either way.
	Mode string `json:"mode,omitempty"`
}

var errNoCircuit = errors.New(`request must set exactly one of "bench" or "generate"`)

// requestName is the fixed circuit name given to inline bench uploads so
// that uploads differing only in formatting canonicalize identically
// (bench.Write embeds the circuit name in its header).
const requestName = "request"

// parseCircuit materializes the request's circuit. Generator specs are
// deterministic, so both forms canonicalize through bench.Write.
func parseCircuit(req *netlistRequest) (*netlist.Circuit, error) {
	switch {
	case req.Bench != "" && req.Generate != "":
		return nil, errNoCircuit
	case req.Bench != "":
		c, err := bench.ParseString(req.Bench, requestName)
		if err != nil {
			return nil, err
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		return c, nil
	case req.Generate != "":
		return cli.Generate(req.Generate)
	default:
		return nil, errNoCircuit
	}
}

// canonicalNetlist renders the circuit in canonical .bench form: the
// content-addressed half of every cache key.
func canonicalNetlist(c *netlist.Circuit) (string, error) {
	var b strings.Builder
	if err := bench.Write(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}

// cacheKey derives the content address for one engine invocation:
// SHA-256 over the endpoint name, the canonical netlist, and the
// canonicalized (defaulted, timeout-stripped) options. opts must be a
// struct so its JSON encoding has a fixed field order.
func cacheKey(endpoint, canonNetlist string, opts any) (string, error) {
	oj, err := json.Marshal(opts)
	if err != nil {
		return "", fmt.Errorf("serve: canonicalize options: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%d\n", endpoint, len(canonNetlist))
	h.Write([]byte(canonNetlist))
	h.Write(oj)
	return hex.EncodeToString(h.Sum(nil)), nil
}
