package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// entryOverhead approximates the bookkeeping bytes charged per cache
// entry on top of the key and value (list element, map slot, struct).
const entryOverhead = 160

// Cache is a content-addressed LRU result cache with a byte budget and
// single-flight deduplication: concurrent requests for the same key run
// the computation exactly once. The leader counts as a miss; waiters
// that receive the leader's value count as hits, so two identical
// concurrent requests record 1 miss + 1 hit and one engine execution.
//
// If the leader fails (including by its own request being cancelled),
// waiters do not inherit the failure: each retries as a prospective new
// leader, so one cancelled client cannot poison the key for others.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // completed entries
	pending  map[string]*flight       // in-progress computations

	hits, misses, evictions atomic.Int64
}

type centry struct {
	key  string
	val  []byte
	size int64
}

// flight is one in-progress computation; val/err are written before
// done is closed.
type flight struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
}

// NewCache returns a cache bounded to roughly capacity bytes of keys +
// values. A capacity too small to hold a result simply stores nothing
// for it; single-flight deduplication works regardless.
func NewCache(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		pending:  make(map[string]*flight),
	}
}

// GetOrCompute returns the cached value for key, or runs compute to
// produce it. hit reports whether the value came from the cache or an
// in-flight leader (bytes must not be mutated by the caller). ctx
// bounds only the wait for an in-flight leader; compute is responsible
// for observing its own context.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			v := el.Value.(*centry).val
			c.mu.Unlock()
			c.hits.Add(1)
			return v, true, nil
		}
		if f, ok := c.pending[key]; ok {
			f.waiters++
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					c.hits.Add(1)
					return f.val, true, nil
				}
				// The leader failed; its error (for instance its own
				// cancellation) says nothing about this request. Loop
				// and race to become the new leader.
				if cerr := ctx.Err(); cerr != nil {
					return nil, false, cerr
				}
				continue
			case <-ctx.Done():
				c.mu.Lock()
				f.waiters--
				c.mu.Unlock()
				return nil, false, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.pending[key] = f
		c.mu.Unlock()

		c.misses.Add(1)
		v, cerr := compute()
		f.val, f.err = v, cerr
		c.mu.Lock()
		delete(c.pending, key)
		if cerr == nil {
			c.insertLocked(key, v)
		}
		c.mu.Unlock()
		close(f.done)
		return v, false, cerr
	}
}

// insertLocked stores a completed value, evicting from the LRU tail to
// stay under the byte budget. Values larger than the whole budget are
// not stored.
func (c *Cache) insertLocked(key string, val []byte) {
	size := int64(len(key)+len(val)) + entryOverhead
	if size > c.capacity {
		return
	}
	el := c.ll.PushFront(&centry{key: key, val: val, size: size})
	c.items[key] = el
	c.bytes += size
	for c.bytes > c.capacity {
		back := c.ll.Back()
		if back == nil || back == el {
			break
		}
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions.Add(1)
	}
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.items), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		Capacity:  c.capacity,
	}
}

// pendingWaiters reports how many requests are currently blocked on the
// in-flight computation for key (test coordination helper).
func (c *Cache) pendingWaiters(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.pending[key]; ok {
		return f.waiters
	}
	return 0
}
