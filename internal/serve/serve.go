package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/implic"
	"repro/internal/jobs"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/pattern"
	"repro/internal/tpi"

	"repro/internal/atpg"
)

// statusClientClosed is the status class recorded when the client went
// away before a response could be written (nginx's 499 convention; it
// is never sent on the wire).
const statusClientClosed = 499

// Config configures a Server. Zero values select defaults.
type Config struct {
	// Workers bounds concurrent engine executions (default GOMAXPROCS).
	Workers int
	// CacheBytes bounds the result cache (default 64 MiB).
	CacheBytes int64
	// RequestTimeout is the per-request deadline (default 30s). A
	// request's options.timeout_ms may shorten but never extend it.
	RequestTimeout time.Duration
	// MaxBody bounds request body size (default 8 MiB).
	MaxBody int64
	// JobDir is the persistent job store directory. Empty keeps async
	// jobs in memory only (they do not survive restarts).
	JobDir string
	// JobQueue bounds queued async jobs; submissions beyond it get 429
	// (default 64).
	JobQueue int
	// MaxJobs caps retained async jobs before the oldest terminal ones
	// are garbage-collected (default 1024).
	MaxJobs int
	// JobRetention is how long finished async jobs stay queryable
	// (default 1h).
	JobRetention time.Duration
	// JobTimeout is the per-job execution deadline, independent of any
	// HTTP request deadline (default 10m).
	JobTimeout time.Duration
}

// Server serves the repro engines over HTTP/JSON. Create with New,
// mount Handler, and Close when done.
type Server struct {
	cfg     Config
	pool    *Pool
	cache   *Cache
	metrics *Metrics
	jobs    *jobs.Manager
	parsers map[string]parseFunc
	start   time.Time
	// draining is closed by DrainStreams to unblock every live
	// long-lived stream (the job event subscribers), so a graceful
	// shutdown is never held hostage by a subscriber waiting on a job
	// that will not finish before the drain deadline.
	draining  chan struct{}
	drainOnce sync.Once
}

// New returns a Server with defaults applied. It opens the persistent
// job store (when cfg.JobDir is set) and recovers jobs interrupted by
// a previous crash, so it can fail on an unusable store directory.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	s := &Server{
		cfg:      cfg,
		pool:     NewPool(cfg.Workers),
		cache:    NewCache(cfg.CacheBytes),
		metrics:  NewMetrics(),
		start:    time.Now(),
		draining: make(chan struct{}),
	}
	s.parsers = map[string]parseFunc{
		"/v1/plan":     parsePlan,
		"/v1/faultsim": parseFaultsim,
		"/v1/atpg":     parseATPG,
		"/v1/lint":     parseLint,
	}
	m, err := jobs.New(jobs.Config{
		Dir:        cfg.JobDir,
		Workers:    cfg.Workers,
		QueueDepth: cfg.JobQueue,
		MaxJobs:    cfg.MaxJobs,
		Retention:  cfg.JobRetention,
		Timeout:    cfg.JobTimeout,
	}, s.executeJob)
	if err != nil {
		return nil, err
	}
	s.jobs = m
	return s, nil
}

// DrainStreams ends every live job-event stream: subscribers get the
// snapshots written so far and a clean end of body. Callers invoke it
// before http.Server.Shutdown — Shutdown waits for active requests,
// and an events subscriber blocked on a non-terminal job would
// otherwise hold the drain open until its deadline. Idempotent.
func (s *Server) DrainStreams() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Close ends live event streams and stops the async job scheduler.
// Jobs interrupted mid-run keep their journal in the running state and
// are re-queued by the next server on the same job directory.
func (s *Server) Close() {
	s.DrainStreams()
	s.jobs.Close()
}

// Handler returns the service mux: the four engine endpoints, the
// async job API, /healthz, and /v1/stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/plan", s.engineHandler("/v1/plan", parsePlan))
	mux.HandleFunc("/v1/faultsim", s.engineHandler("/v1/faultsim", parseFaultsim))
	mux.HandleFunc("/v1/atpg", s.engineHandler("/v1/atpg", parseATPG))
	mux.HandleFunc("/v1/lint", s.engineHandler("/v1/lint", parseLint))
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	return mux
}

// Stats is the /v1/stats (and expvar) payload.
type Stats struct {
	UptimeSeconds float64                     `json:"uptime_s"`
	InFlight      int64                       `json:"in_flight"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Cache         CacheStats                  `json:"cache"`
	Pool          PoolStats                   `json:"pool"`
	Jobs          jobs.Stats                  `json:"jobs"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.metrics.inFlight.Load(),
		Endpoints:     s.metrics.Snapshot(),
		Cache:         s.cache.Stats(),
		Pool:          s.pool.Stats(),
		Jobs:          s.jobs.Stats(),
	}
}

var expvarOnce sync.Once

// PublishExpvar publishes the service counters under the expvar key
// "serve" (visible at /debug/vars when the expvar handler is mounted).
// Only the serving binary should call this; the package-level expvar
// registry panics on duplicate names, so publication is once-guarded
// and later servers in the same process are ignored.
func (s *Server) PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("serve", expvar.Func(func() any { return s.Stats() }))
	})
}

// testHookCompute, when set, is invoked by the cache-miss leader after
// it acquires a worker slot and immediately before the engine runs.
// Tests use it to count and coordinate engine executions.
var testHookCompute func(endpoint string)

// runFunc executes one engine invocation against the parsed circuit.
type runFunc func(ctx context.Context, c *netlist.Circuit) (any, error)

// parseFunc decodes endpoint options: it returns the canonicalized
// options value hashed into the cache key (timeout stripped), the
// requested timeout in milliseconds (0 = server default), and the
// engine runner.
type parseFunc func(raw json.RawMessage) (keyOpts any, timeoutMS int, run runFunc, err error)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
	s.metrics.record("/healthz", http.StatusOK, time.Since(start).Milliseconds())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed write here means the client is gone; there is no better
	// channel to report that on.
	_ = enc.Encode(s.Stats())
	s.metrics.record("/v1/stats", http.StatusOK, time.Since(start).Milliseconds())
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// engineHandler wraps one engine endpoint with the shared request glue:
// body limit, envelope decode, circuit canonicalization, cache lookup
// with single-flight, worker pool admission, deadline handling, and
// metrics.
func (s *Server) engineHandler(name string, parse parseFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inFlight.Add(1)
		status := http.StatusOK
		defer func() {
			s.metrics.inFlight.Add(-1)
			s.metrics.record(name, status, time.Since(start).Milliseconds())
		}()

		if r.Method != http.MethodPost {
			status = http.StatusMethodNotAllowed
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, status, "POST required")
			return
		}
		// The body is read whole (not stream-decoded) because an async
		// submission journals the verbatim envelope for replay after a
		// restart.
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status = http.StatusRequestEntityTooLarge
			} else {
				status = http.StatusBadRequest
			}
			writeError(w, status, "read request: "+err.Error())
			return
		}
		var req netlistRequest
		if err := json.Unmarshal(body, &req); err != nil {
			status = http.StatusBadRequest
			writeError(w, status, "decode request: "+err.Error())
			return
		}
		async, err := asyncRequested(&req, r)
		if err != nil {
			status = http.StatusBadRequest
			writeError(w, status, err.Error())
			return
		}
		c, err := parseCircuit(&req)
		if err != nil {
			status = http.StatusBadRequest
			writeError(w, status, err.Error())
			return
		}
		keyOpts, timeoutMS, run, err := parse(req.Options)
		if err != nil {
			status = http.StatusBadRequest
			writeError(w, status, "decode options: "+err.Error())
			return
		}
		canon, err := canonicalNetlist(c)
		if err != nil {
			status = http.StatusInternalServerError
			writeError(w, status, err.Error())
			return
		}
		key, err := cacheKey(name, canon, keyOpts)
		if err != nil {
			status = http.StatusInternalServerError
			writeError(w, status, err.Error())
			return
		}

		if async {
			status = s.submitJob(w, name, key, body, timeoutMS)
			return
		}

		timeout := s.cfg.RequestTimeout
		if timeoutMS > 0 {
			if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
				timeout = d
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		val, hit, err := s.cache.GetOrCompute(ctx, key, func() ([]byte, error) {
			if err := s.pool.Acquire(ctx); err != nil {
				return nil, err
			}
			defer s.pool.Release()
			if h := testHookCompute; h != nil {
				h(name)
			}
			out, err := run(ctx, c)
			if err != nil {
				return nil, err
			}
			return json.Marshal(out)
		})
		switch {
		case err == nil:
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
			writeError(w, status, "deadline exceeded before the engine finished")
			return
		case errors.Is(err, context.Canceled):
			// The client disconnected; there is no one to write to.
			status = statusClientClosed
			return
		default:
			status = http.StatusBadRequest
			writeError(w, status, err.Error())
			return
		}

		h := w.Header()
		h.Set("Content-Type", "application/json")
		if hit {
			h.Set("X-Cache", "hit")
		} else {
			h.Set("X-Cache", "miss")
		}
		_, _ = w.Write(val)
	}
}

// circuitInfo is the common response header describing the circuit the
// engine ran on.
type circuitInfo struct {
	Name    string `json:"name"`
	Gates   int    `json:"gates"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
}

func describe(c *netlist.Circuit) circuitInfo {
	return circuitInfo{
		Name:    c.Name(),
		Gates:   c.NumGates(),
		Inputs:  c.NumInputs(),
		Outputs: c.NumOutputs(),
	}
}

// ---- /v1/plan ----

// planOptions selects and parameterizes a test point planner. Field
// order is the canonical options encoding — do not reorder.
type planOptions struct {
	// Planner is one of "cuts" (P1 full-test-point DP), "observe" (P2
	// observation point DP), "control" (greedy control points), or
	// "hybrid" (control then observe; the default).
	Planner string `json:"planner"`
	// K is the cut budget for "cuts" (default 4).
	K int `json:"k"`
	// NCP / NOP are the control / observation point budgets for
	// "control", "observe", and "hybrid" (defaults 3 / 4).
	NCP int `json:"ncp"`
	NOP int `json:"nop"`
	// Dth is the COP detection-probability threshold (default 1/4096).
	Dth float64 `json:"dth"`
	// MaxCandidates caps the control-point candidates evaluated per
	// greedy iteration for "control" and "hybrid" (0 = engine default,
	// 64).
	MaxCandidates int `json:"max_candidates"`
	// TimeoutMS optionally shortens the server request deadline. It is
	// excluded from the cache key.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type testPointJSON struct {
	Signal string `json:"signal"`
	Kind   string `json:"kind"`
}

type planResponse struct {
	Circuit       circuitInfo     `json:"circuit"`
	Planner       string          `json:"planner"`
	Points        []testPointJSON `json:"points"`
	MaxCost       int             `json:"max_cost,omitempty"`
	BaseCost      int             `json:"base_cost,omitempty"`
	CoveredBefore int             `json:"covered_before,omitempty"`
	CoveredAfter  int             `json:"covered_after,omitempty"`
	TotalFaults   int             `json:"total_faults,omitempty"`
	PrunedFaults  int             `json:"pruned_faults,omitempty"`
	StatesVisited int64           `json:"states_visited,omitempty"`
}

func namedPoints(c *netlist.Circuit, pts []netlist.TestPoint) []testPointJSON {
	out := make([]testPointJSON, len(pts))
	for i, p := range pts {
		out[i] = testPointJSON{Signal: c.GateName(p.Signal), Kind: p.Kind.String()}
	}
	return out
}

func parsePlan(raw json.RawMessage) (any, int, runFunc, error) {
	opts := planOptions{Planner: "hybrid", K: 4, NCP: 3, NOP: 4, Dth: 1.0 / 4096}
	if err := decodeOptions(raw, &opts); err != nil {
		return nil, 0, nil, err
	}
	switch opts.Planner {
	case "cuts", "observe", "control", "hybrid":
	default:
		return nil, 0, nil, fmt.Errorf("unknown planner %q", opts.Planner)
	}
	if opts.MaxCandidates < 0 {
		return nil, 0, nil, fmt.Errorf("max_candidates must be non-negative, got %d", opts.MaxCandidates)
	}
	timeoutMS := opts.TimeoutMS
	opts.TimeoutMS = 0
	run := func(ctx context.Context, c *netlist.Circuit) (any, error) {
		resp := planResponse{Circuit: describe(c), Planner: opts.Planner}
		switch opts.Planner {
		case "cuts":
			p, err := tpi.PlanCutsDPContext(ctx, c, opts.K)
			if err != nil {
				return nil, err
			}
			resp.Points = namedPoints(c, p.TestPoints())
			resp.MaxCost, resp.BaseCost, resp.StatesVisited = p.MaxCost, p.BaseCost, p.StatesVisited
		case "observe":
			faults := fault.CollapsedUniverse(c)
			p, err := tpi.PlanObservationPointsDPContext(ctx, c, faults, opts.NOP, opts.Dth, tpi.OPOptions{})
			if err != nil {
				return nil, err
			}
			resp.Points = namedPoints(c, p.TestPoints())
			resp.CoveredBefore, resp.CoveredAfter = p.CoveredBefore, p.CoveredAfter
			resp.TotalFaults, resp.StatesVisited = p.TotalFaults, p.StatesVisited
		case "control":
			faults := fault.CollapsedUniverse(c)
			p, err := tpi.PlanControlPointsGreedyContext(ctx, c, faults, opts.NCP, opts.Dth, tpi.CPOptions{MaxCandidates: opts.MaxCandidates})
			if err != nil {
				return nil, err
			}
			// Control points are selected against successively modified
			// circuits, so later points may reference gates inserted by
			// earlier ones; resolve names against the replayed circuit,
			// whose gate IDs are a superset of every intermediate.
			mod, err := p.Apply(c)
			if err != nil {
				return nil, err
			}
			resp.Points = namedPoints(mod, p.Points)
			resp.CoveredBefore, resp.CoveredAfter = p.CoveredBefore, p.CoveredAfter
			resp.TotalFaults, resp.StatesVisited = p.TotalFaults, p.Evaluations
		case "hybrid":
			faults := fault.CollapsedUniverse(c)
			p, err := tpi.PlanHybridContext(ctx, c, faults, opts.NCP, opts.NOP, opts.Dth, tpi.CPOptions{MaxCandidates: opts.MaxCandidates}, tpi.OPOptions{})
			if err != nil {
				return nil, err
			}
			// Signal IDs from both stages refer to intermediate circuits
			// (control points to successive control insertions, observe
			// points to the control-modified circuit); the final Modified
			// circuit preserves all of their gate IDs and names.
			resp.Points = append(namedPoints(p.Modified, p.Control.Points), namedPoints(p.Modified, p.Observe.TestPoints())...)
			resp.CoveredBefore, resp.CoveredAfter = p.Observe.CoveredBefore, p.Observe.CoveredAfter
			resp.TotalFaults, resp.PrunedFaults = p.Observe.TotalFaults, p.PrunedFaults
		}
		return &resp, nil
	}
	return opts, timeoutMS, run, nil
}

// ---- /v1/faultsim ----

type simOptions struct {
	// Patterns bounds the random test length (default 4096).
	Patterns int `json:"patterns"`
	// Source is "lfsr" (default) or "counter" (exhaustive).
	Source string `json:"source"`
	// Seed seeds the LFSR (default 1; ignored for "counter").
	Seed uint64 `json:"seed"`
	// FullUniverse simulates the uncollapsed fault universe.
	FullUniverse bool `json:"full_universe"`
	// KeepFaults disables fault dropping after first detection.
	KeepFaults bool `json:"keep_faults"`
	// CountDetections reports how many patterns detect each fault.
	// Meaningful beyond the first detection only with keep_faults.
	CountDetections bool `json:"count_detections"`
	TimeoutMS       int  `json:"timeout_ms,omitempty"`
}

type detectJSON struct {
	Fault   string `json:"fault"`
	Pattern int    `json:"pattern"`
}

type detectCountJSON struct {
	Fault string `json:"fault"`
	Count int    `json:"count"`
}

type simResponse struct {
	Circuit      circuitInfo       `json:"circuit"`
	Faults       int               `json:"faults"`
	Patterns     int               `json:"patterns"`
	Detected     int               `json:"detected"`
	Coverage     float64           `json:"coverage"`
	FirstDetect  []detectJSON      `json:"first_detect"`
	Undetected   []string          `json:"undetected"`
	DetectCounts []detectCountJSON `json:"detect_counts,omitempty"`
}

func parseFaultsim(raw json.RawMessage) (any, int, runFunc, error) {
	opts := simOptions{Patterns: 4096, Source: "lfsr", Seed: 1}
	if err := decodeOptions(raw, &opts); err != nil {
		return nil, 0, nil, err
	}
	if opts.Source != "lfsr" && opts.Source != "counter" {
		return nil, 0, nil, fmt.Errorf("unknown pattern source %q", opts.Source)
	}
	if opts.Patterns < 1 {
		return nil, 0, nil, fmt.Errorf("patterns must be positive, got %d", opts.Patterns)
	}
	timeoutMS := opts.TimeoutMS
	opts.TimeoutMS = 0
	run := func(ctx context.Context, c *netlist.Circuit) (any, error) {
		faults := fault.CollapsedUniverse(c)
		if opts.FullUniverse {
			faults = fault.Universe(c)
		}
		var src pattern.Source = pattern.NewLFSR(opts.Seed)
		if opts.Source == "counter" {
			src = pattern.NewCounter(c.NumInputs())
		}
		res, err := fsim.RunContext(ctx, c, faults, src, fsim.Options{
			MaxPatterns:     opts.Patterns,
			DropFaults:      !opts.KeepFaults,
			CountDetections: opts.CountDetections,
		})
		if err != nil {
			return nil, err
		}
		resp := simResponse{
			Circuit:     describe(c),
			Faults:      len(res.Faults),
			Patterns:    res.Patterns,
			Detected:    len(res.FirstDetect),
			Coverage:    res.Coverage(),
			FirstDetect: make([]detectJSON, 0, len(res.FirstDetect)),
			Undetected:  []string{},
		}
		for f, p := range res.FirstDetect {
			resp.FirstDetect = append(resp.FirstDetect, detectJSON{Fault: f.Name(c), Pattern: p})
		}
		sort.Slice(resp.FirstDetect, func(i, j int) bool {
			a, b := resp.FirstDetect[i], resp.FirstDetect[j]
			if a.Pattern != b.Pattern {
				return a.Pattern < b.Pattern
			}
			return a.Fault < b.Fault
		})
		for _, f := range res.Undetected() {
			resp.Undetected = append(resp.Undetected, f.Name(c))
		}
		for f, n := range res.DetectCount {
			resp.DetectCounts = append(resp.DetectCounts, detectCountJSON{Fault: f.Name(c), Count: n})
		}
		sort.Slice(resp.DetectCounts, func(i, j int) bool {
			return resp.DetectCounts[i].Fault < resp.DetectCounts[j].Fault
		})
		return &resp, nil
	}
	return opts, timeoutMS, run, nil
}

// ---- /v1/atpg ----

type atpgOptions struct {
	// BacktrackLimit bounds the PODEM search per fault (0 = engine
	// default, 20000).
	BacktrackLimit int `json:"backtrack_limit"`
	// FullUniverse targets the uncollapsed fault universe.
	FullUniverse bool `json:"full_universe"`
	// Learn builds a static implication database (dominators plus
	// contrapositive learning) over the circuit and hands it to the
	// PODEM search for learned-implication pruning.
	Learn     bool `json:"learn"`
	TimeoutMS int  `json:"timeout_ms,omitempty"`
}

type atpgResponse struct {
	Circuit         circuitInfo `json:"circuit"`
	Faults          int         `json:"faults"`
	Vectors         []string    `json:"vectors"`
	Detected        int         `json:"detected"`
	Redundant       int         `json:"redundant"`
	Aborted         int         `json:"aborted"`
	RedundantFaults []string    `json:"redundant_faults"`
	AbortedFaults   []string    `json:"aborted_faults"`
}

func parseATPG(raw json.RawMessage) (any, int, runFunc, error) {
	var opts atpgOptions
	if err := decodeOptions(raw, &opts); err != nil {
		return nil, 0, nil, err
	}
	if opts.BacktrackLimit < 0 {
		return nil, 0, nil, fmt.Errorf("backtrack_limit must be non-negative, got %d", opts.BacktrackLimit)
	}
	timeoutMS := opts.TimeoutMS
	opts.TimeoutMS = 0
	run := func(ctx context.Context, c *netlist.Circuit) (any, error) {
		faults := fault.CollapsedUniverse(c)
		if opts.FullUniverse {
			faults = fault.Universe(c)
		}
		eng, err := learnEngine(ctx, c, opts.Learn)
		if err != nil {
			return nil, err
		}
		ts, err := atpg.GenerateTestsContext(ctx, c, faults, atpg.Options{BacktrackLimit: opts.BacktrackLimit, Learn: eng})
		if err != nil {
			return nil, err
		}
		resp := atpgResponse{
			Circuit:         describe(c),
			Faults:          len(faults),
			Vectors:         make([]string, len(ts.Vectors)),
			Detected:        len(ts.Detected),
			Redundant:       len(ts.Redundant),
			Aborted:         len(ts.Aborted),
			RedundantFaults: []string{},
			AbortedFaults:   []string{},
		}
		for i, v := range ts.Vectors {
			b := make([]byte, len(v))
			for j, bit := range v {
				b[j] = '0'
				if bit {
					b[j] = '1'
				}
			}
			resp.Vectors[i] = string(b)
		}
		for _, f := range ts.Redundant {
			resp.RedundantFaults = append(resp.RedundantFaults, f.Name(c))
		}
		for _, f := range ts.Aborted {
			resp.AbortedFaults = append(resp.AbortedFaults, f.Name(c))
		}
		return &resp, nil
	}
	return opts, timeoutMS, run, nil
}

// learnEngine builds the optional static-learning implication engine for
// /v1/atpg. The build honors ctx: the dominator fixpoint and the
// implication sweeps abort with the context's error once it is done.
func learnEngine(ctx context.Context, c *netlist.Circuit, learn bool) (*implic.Engine, error) {
	if !learn {
		return nil, nil
	}
	return implic.NewContext(ctx, c, implic.Options{})
}

// ---- /v1/lint ----

type lintOptions struct {
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type lintResponse struct {
	Circuit  circuitInfo  `json:"circuit"`
	Findings int          `json:"findings"`
	Report   *lint.Report `json:"report"`
}

func parseLint(raw json.RawMessage) (any, int, runFunc, error) {
	var opts lintOptions
	if err := decodeOptions(raw, &opts); err != nil {
		return nil, 0, nil, err
	}
	timeoutMS := opts.TimeoutMS
	opts.TimeoutMS = 0
	run := func(ctx context.Context, c *netlist.Circuit) (any, error) {
		rep := lint.Analyze(c, lint.Options{})
		return &lintResponse{Circuit: describe(c), Findings: len(rep.Findings), Report: rep}, nil
	}
	return opts, timeoutMS, run, nil
}

// decodeOptions strictly decodes raw options over the defaults already
// set in dst; unknown fields are rejected so typos fail loudly instead
// of silently selecting defaults (and splitting the cache).
func decodeOptions(raw json.RawMessage, dst any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}
