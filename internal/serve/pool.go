package serve

import (
	"context"
	"sync/atomic"
)

// Pool is a bounded worker pool implemented as a counting semaphore.
// Engine executions acquire a slot before running, so at most Workers
// CPU-bound computations run concurrently no matter how many requests
// are in flight; cache hits never touch the pool. Acquire is
// cancellable, so a request abandoned while queued frees no slot and
// stops waiting immediately.
type Pool struct {
	sem     chan struct{}
	workers int
	running atomic.Int64
	queued  atomic.Int64
}

// NewPool returns a pool with n worker slots (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{sem: make(chan struct{}, n), workers: n}
}

// Acquire blocks until a worker slot is free or ctx is done.
func (p *Pool) Acquire(ctx context.Context) error {
	p.queued.Add(1)
	defer p.queued.Add(-1)
	select {
	case p.sem <- struct{}{}:
		p.running.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot acquired with Acquire.
func (p *Pool) Release() {
	p.running.Add(-1)
	<-p.sem
}

// PoolStats is a point-in-time snapshot of pool occupancy.
type PoolStats struct {
	Workers int   `json:"workers"`
	Running int64 `json:"running"`
	Queued  int64 `json:"queued"`
}

// Stats snapshots the pool gauges. Queued counts requests inside
// Acquire, i.e. waiting for a slot (briefly including ones about to get
// one).
func (p *Pool) Stats() PoolStats {
	return PoolStats{Workers: p.workers, Running: p.running.Load(), Queued: p.queued.Load()}
}
