package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitFor polls cond for up to two seconds; shared across the package's
// concurrency tests.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(2)
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Running != 2 || st.Workers != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Third acquire must block until a slot frees.
	got := make(chan error, 1)
	go func() { got <- p.Acquire(ctx) }()
	waitFor(t, func() bool { return p.Stats().Queued == 1 })
	p.Release()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	p.Release()
	p.Release()
	if st := p.Stats(); st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

func TestPoolAcquireCancelled(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- p.Acquire(ctx) }()
	waitFor(t, func() bool { return p.Stats().Queued == 1 })
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if st := p.Stats(); st.Running != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v, cancelled acquire leaked", st)
	}
	p.Release()
}

func TestPoolMinimumOneWorker(t *testing.T) {
	p := NewPool(0)
	if p.Stats().Workers != 1 {
		t.Fatalf("workers = %d, want 1", p.Stats().Workers)
	}
}
