package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

const benchDAG = "dag:gates=600,seed=7"

func benchPost(url, body string) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// BenchmarkPlanCached measures the full HTTP round-trip for a /v1/plan
// request served from the result cache.
func BenchmarkPlanCached(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := fmt.Sprintf(`{"generate":%q,"options":{"planner":"hybrid"}}`, benchDAG)
	if err := benchPost(ts.URL+"/v1/plan", body); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchPost(ts.URL+"/v1/plan", body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanUncached measures the same round-trip with a distinct
// generator seed per request, so every request runs the engine.
func BenchmarkPlanUncached(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"generate":"dag:gates=600,seed=%d","options":{"planner":"observe"}}`, i+1)
		if err := benchPost(ts.URL+"/v1/plan", body); err != nil {
			b.Fatal(err)
		}
	}
}

// TestServingLatencyReport produces the req/s and p50/p99 figures
// quoted in EXPERIMENTS.md. It hammers /v1/plan on the 600-gate DAG
// cached and uncached, with 1 worker and with GOMAXPROCS workers, and
// is gated behind SERVE_BENCH=1 because it runs for tens of seconds.
func TestServingLatencyReport(t *testing.T) {
	if os.Getenv("SERVE_BENCH") == "" {
		t.Skip("set SERVE_BENCH=1 to run the serving latency report")
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, mode := range []string{"uncached", "cached"} {
			s, err := New(Config{Workers: workers, RequestTimeout: 5 * time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			n, clients := 24, workers
			bodyFor := func(i int) string {
				// Uncached requests use a distinct seed per request to
				// defeat the cache; cached requests repeat one body
				// after a warming call.
				return fmt.Sprintf(`{"generate":"dag:gates=600,seed=%d","options":{"planner":"hybrid"}}`, i+1)
			}
			if mode == "cached" {
				n = 400
				bodyFor = func(int) string {
					return fmt.Sprintf(`{"generate":%q,"options":{"planner":"hybrid"}}`, benchDAG)
				}
				if err := benchPost(ts.URL+"/v1/plan", bodyFor(0)); err != nil {
					t.Fatal(err)
				}
			}

			lat := make([]time.Duration, n)
			var next int
			var mu sync.Mutex
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						mu.Lock()
						i := next
						next++
						mu.Unlock()
						if i >= n {
							return
						}
						t0 := time.Now()
						if err := benchPost(ts.URL+"/v1/plan", bodyFor(i)); err != nil {
							t.Error(err)
							return
						}
						lat[i] = time.Since(t0)
					}
				}()
			}
			wg.Wait()
			wall := time.Since(start)
			ts.Close()
			s.Close()

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p50 := lat[n/2]
			p99 := lat[n*99/100]
			t.Logf("workers=%d mode=%s n=%d req/s=%.1f p50=%v p99=%v",
				workers, mode, n, float64(n)/wall.Seconds(), p50, p99)
		}
	}
}
