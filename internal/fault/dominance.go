package fault

import "repro/internal/netlist"

// dominanceDrop records one dominance-based removal: every test that
// detects Witness also detects Dropped, so Dropped need not be targeted.
type dominanceDrop struct {
	Dropped Fault // the class representative removed
	Witness Fault // the class representative whose tests imply detection
}

// CollapseWithDominance reduces the fault universe by structural
// equivalence (see Collapse) and then by gate-level dominance: for a gate
// with a controlling value, the output fault at the non-controlled value
// is detected by any test for any input fault at the non-controlling
// value, so the output fault is dropped.
//
//   - AND:  out s-a-1 dropped (any in s-a-1 test detects it)
//   - NAND: out s-a-0 dropped
//   - OR:   out s-a-0 dropped
//   - NOR:  out s-a-1 dropped
//
// Witness chains are acyclic (each step moves strictly toward the
// primary inputs), so transitivity keeps the reduction sound: a complete
// test set for the returned list detects every dropped fault. Dominance
// collapsing is meant for test generation; coverage percentages over a
// dominance-collapsed list are not comparable to equivalence-collapsed
// numbers.
func CollapseWithDominance(c *netlist.Circuit) []Fault {
	kept, _ := collapseExcluding(c, nil)
	return kept
}

// CollapseExcluding is CollapseWithDominance with a set of known-
// untestable faults (typically the static redundancy pass of
// internal/implic) folded in: every equivalence class containing a
// redundant fault is removed outright — equivalent faults share their
// (empty) test sets — and dominance drops only use witnesses from
// non-redundant classes, because a dominance argument through a
// redundant witness guarantees nothing (the witness has no tests).
func CollapseExcluding(c *netlist.Circuit, redundant []Fault) []Fault {
	kept, _ := collapseExcluding(c, redundant)
	return kept
}

func collapseExcluding(c *netlist.Circuit, redundant []Fault) ([]Fault, []dominanceDrop) {
	uf := buildUnions(c)
	collapsed := Collapse(c, Universe(c))
	redRoot := make(map[Fault]bool, len(redundant))
	for _, f := range redundant {
		redRoot[uf.find(f)] = true
	}
	repOf := make(map[Fault]Fault, len(collapsed))
	for _, rep := range collapsed {
		repOf[uf.find(rep)] = rep
	}
	classRep := func(f Fault) (Fault, bool) {
		rep, ok := repOf[uf.find(f)]
		return rep, ok
	}
	inputFault := func(id, pin int, v bool) Fault {
		driver := c.Fanin(id)[pin]
		if c.FanoutCount(driver) > 1 {
			return Fault{Gate: id, Pin: pin, Stuck: v}
		}
		return Fault{Gate: driver, Pin: -1, Stuck: v}
	}

	dropped := make(map[Fault]bool)
	var drops []dominanceDrop
	for id := 0; id < c.NumGates(); id++ {
		g := c.Gate(id)
		cv, ok := g.Type.ControllingValue()
		if !ok {
			continue
		}
		// Output value when some input holds the controlling value; the
		// dominated output fault is stuck at its complement.
		controlled := cv
		if g.Type.Inverting() {
			controlled = !cv
		}
		dropFault := Fault{Gate: id, Pin: -1, Stuck: !controlled}
		dRep, ok := classRep(dropFault)
		if !ok || dropped[dRep] || redRoot[uf.find(dRep)] {
			continue
		}
		// Witness: any input fault at the non-controlling value whose
		// class is distinct from the dropped class and not redundant.
		// (A dominance chain through an already-dropped witness stays
		// sound by transitivity; a redundant witness would not.)
		for pin := range g.Fanin {
			w := inputFault(id, pin, !cv)
			wRep, ok := classRep(w)
			if ok && wRep != dRep && !redRoot[uf.find(wRep)] {
				dropped[dRep] = true
				drops = append(drops, dominanceDrop{Dropped: dRep, Witness: wRep})
				break
			}
		}
	}
	kept := make([]Fault, 0, len(collapsed)-len(dropped))
	for _, rep := range collapsed {
		if !dropped[rep] && !redRoot[uf.find(rep)] {
			kept = append(kept, rep)
		}
	}
	return kept, drops
}
