package fault

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

// detectionSet returns the set of input vectors (as integers) detecting
// the fault, by exhaustive two-copy simulation.
func detectionSet(c *netlist.Circuit, f Fault) map[int]bool {
	out := make(map[int]bool)
	n := c.NumInputs()
	vals := make([]bool, c.NumGates())
	bad := make([]bool, c.NumGates())
	in := make([]bool, 0, 8)
	for v := 0; v < 1<<uint(n); v++ {
		for i, pi := range c.Inputs() {
			vals[pi] = v>>uint(i)&1 == 1
			bad[pi] = vals[pi]
		}
		for _, id := range c.TopoOrder() {
			g := c.Gate(id)
			if g.Type != netlist.Input {
				in = in[:0]
				for _, fin := range g.Fanin {
					in = append(in, vals[fin])
				}
				vals[id] = g.Type.Eval(in)
				in = in[:0]
				for pin, fin := range g.Fanin {
					x := bad[fin]
					if !f.IsStem() && f.Gate == id && f.Pin == pin {
						x = f.Stuck
					}
					in = append(in, x)
				}
				bad[id] = g.Type.Eval(in)
			}
			if f.IsStem() && f.Gate == id {
				bad[id] = f.Stuck
			}
		}
		for _, o := range c.Outputs() {
			if vals[o] != bad[o] {
				out[v] = true
				break
			}
		}
	}
	return out
}

func TestDominanceWitnessContainment(t *testing.T) {
	// The definitional property, checked exhaustively: every vector that
	// detects a drop's witness also detects the dropped fault.
	for seed := int64(0); seed < 6; seed++ {
		c := gen.RandomDAG(seed, 8, 25, gen.DAGOptions{})
		_, drops := collapseExcluding(c, nil)
		if len(drops) == 0 {
			continue
		}
		for _, d := range drops {
			wset := detectionSet(c, d.Witness)
			dset := detectionSet(c, d.Dropped)
			for v := range wset {
				if !dset[v] {
					t.Errorf("seed %d: vector %d detects witness %s but not dropped %s",
						seed, v, d.Witness.Name(c), d.Dropped.Name(c))
				}
			}
		}
	}
}

func TestDominanceChainsTerminate(t *testing.T) {
	// Every dropped class's witness chain must end at a kept fault.
	c := gen.RandomDAG(11, 10, 60, gen.DAGOptions{})
	kept, drops := collapseExcluding(c, nil)
	keptSet := make(map[Fault]bool, len(kept))
	for _, f := range kept {
		keptSet[f] = true
	}
	witnessOf := make(map[Fault]Fault, len(drops))
	for _, d := range drops {
		witnessOf[d.Dropped] = d.Witness
	}
	for _, d := range drops {
		seen := map[Fault]bool{}
		cur := d.Dropped
		for !keptSet[cur] {
			if seen[cur] {
				t.Fatalf("witness cycle at %v", cur)
			}
			seen[cur] = true
			w, ok := witnessOf[cur]
			if !ok {
				t.Fatalf("dropped fault %v has no witness and is not kept", cur)
			}
			cur = w
		}
	}
}

func TestDominanceReducesBelowEquivalence(t *testing.T) {
	c := gen.C17()
	eq := CollapsedUniverse(c)
	dom := CollapseWithDominance(c)
	if len(dom) >= len(eq) {
		t.Errorf("dominance did not reduce: %d >= %d", len(dom), len(eq))
	}
	// Every dominance-kept fault is an equivalence representative.
	eqSet := make(map[Fault]bool, len(eq))
	for _, f := range eq {
		eqSet[f] = true
	}
	for _, f := range dom {
		if !eqSet[f] {
			t.Errorf("dominance kept a non-representative fault %v", f)
		}
	}
}

func TestDominanceOnInverterChainNoop(t *testing.T) {
	// BUF/NOT gates have no controlling value, so nothing is dropped.
	b := netlist.NewBuilder("inv")
	cur := b.Input("a")
	for i := 0; i < 3; i++ {
		cur = b.NotGate("", cur)
	}
	b.MarkOutput(cur)
	c := b.MustBuild()
	if got, want := len(CollapseWithDominance(c)), len(CollapsedUniverse(c)); got != want {
		t.Errorf("inverter chain: dominance %d != equivalence %d", got, want)
	}
}

func TestDominanceXorUntouched(t *testing.T) {
	// XOR has no controlling value: its 6 faults all stay.
	b := netlist.NewBuilder("x")
	a := b.Input("a")
	x := b.Input("b")
	g := b.XorGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	if got := len(CollapseWithDominance(c)); got != 6 {
		t.Errorf("XOR dominance kept %d faults, want 6", got)
	}
}

func TestDominanceAndGate(t *testing.T) {
	// AND2: equivalence gives {a1, b1, class(a0,b0,g0), g1} = 4; dominance
	// drops g1 -> 3.
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	dom := CollapseWithDominance(c)
	if len(dom) != 3 {
		t.Fatalf("AND2 dominance kept %d faults, want 3: %v", len(dom), dom)
	}
	for _, f := range dom {
		if f == (Fault{Gate: g, Pin: -1, Stuck: true}) {
			t.Error("AND output s-a-1 survived dominance collapsing")
		}
	}
}
