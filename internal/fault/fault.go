// Package fault defines the single stuck-at fault model: the fault
// universe over stems and fanout branches, and structural equivalence
// collapsing.
//
// Fault sites follow the classic convention: every signal (gate output,
// the "stem") carries stuck-at-0 and stuck-at-1 faults; additionally,
// every fanout branch of a stem with more than one consumer carries its
// own pair, because a branch fault affects only one consumer and is not
// equivalent to the stem fault.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Fault identifies one single stuck-at fault.
//
// Pin == -1 denotes a stem fault on the output of Gate. Pin >= 0 denotes
// a branch fault on input pin Pin of Gate (the branch from that pin's
// driver into Gate).
type Fault struct {
	Gate  int
	Pin   int
	Stuck bool // stuck-at value: false = s-a-0, true = s-a-1
}

// IsStem reports whether the fault sits on a gate output stem.
func (f Fault) IsStem() bool { return f.Pin < 0 }

// String renders the fault in the conventional "signal s-a-v" form.
func (f Fault) String() string {
	sa := "s-a-0"
	if f.Stuck {
		sa = "s-a-1"
	}
	if f.IsStem() {
		return fmt.Sprintf("g%d %s", f.Gate, sa)
	}
	return fmt.Sprintf("g%d.in%d %s", f.Gate, f.Pin, sa)
}

// Name renders the fault using circuit signal names.
func (f Fault) Name(c *netlist.Circuit) string {
	sa := "s-a-0"
	if f.Stuck {
		sa = "s-a-1"
	}
	if f.IsStem() {
		return fmt.Sprintf("%s %s", c.GateName(f.Gate), sa)
	}
	driver := c.Fanin(f.Gate)[f.Pin]
	return fmt.Sprintf("%s->%s %s", c.GateName(driver), c.GateName(f.Gate), sa)
}

// Universe enumerates the full uncollapsed fault list of the circuit:
// stem faults on every signal, branch faults on every input pin whose
// driver has fanout greater than one. Faults are returned in a
// deterministic order (by gate, then pin, then stuck value).
func Universe(c *netlist.Circuit) []Fault {
	var faults []Fault
	for id := 0; id < c.NumGates(); id++ {
		faults = append(faults,
			Fault{Gate: id, Pin: -1, Stuck: false},
			Fault{Gate: id, Pin: -1, Stuck: true})
	}
	for id := 0; id < c.NumGates(); id++ {
		for pin, f := range c.Fanin(id) {
			if c.FanoutCount(f) > 1 {
				faults = append(faults,
					Fault{Gate: id, Pin: pin, Stuck: false},
					Fault{Gate: id, Pin: pin, Stuck: true})
			}
		}
	}
	sortFaults(faults)
	return faults
}

func sortFaults(faults []Fault) {
	sort.Slice(faults, func(i, j int) bool {
		a, b := faults[i], faults[j]
		if a.Gate != b.Gate {
			return a.Gate < b.Gate
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.Stuck && b.Stuck
	})
}

// buildUnions applies the local structural equivalence rules transitively:
//
//   - BUF: input s-a-v ≡ output s-a-v
//   - NOT: input s-a-v ≡ output s-a-(1-v)
//   - AND: every input s-a-0 ≡ output s-a-0 (NAND: ≡ output s-a-1)
//   - OR: every input s-a-1 ≡ output s-a-1 (NOR: ≡ output s-a-0)
//
// "Input" means the branch fault when the driver has fanout greater than
// one, otherwise the driver's stem fault (a single-consumer branch is the
// same line as its stem).
func buildUnions(c *netlist.Circuit) *unionFind {
	uf := newUnionFind()
	inputFault := func(id, pin int, v bool) Fault {
		driver := c.Fanin(id)[pin]
		if c.FanoutCount(driver) > 1 {
			return Fault{Gate: id, Pin: pin, Stuck: v}
		}
		return Fault{Gate: driver, Pin: -1, Stuck: v}
	}
	for id := 0; id < c.NumGates(); id++ {
		g := c.Gate(id)
		out0 := Fault{Gate: id, Pin: -1, Stuck: false}
		out1 := Fault{Gate: id, Pin: -1, Stuck: true}
		switch g.Type {
		case netlist.Buf:
			uf.union(inputFault(id, 0, false), out0)
			uf.union(inputFault(id, 0, true), out1)
		case netlist.Not:
			uf.union(inputFault(id, 0, false), out1)
			uf.union(inputFault(id, 0, true), out0)
		case netlist.And:
			for pin := range g.Fanin {
				uf.union(inputFault(id, pin, false), out0)
			}
		case netlist.Nand:
			for pin := range g.Fanin {
				uf.union(inputFault(id, pin, false), out1)
			}
		case netlist.Or:
			for pin := range g.Fanin {
				uf.union(inputFault(id, pin, true), out1)
			}
		case netlist.Nor:
			for pin := range g.Fanin {
				uf.union(inputFault(id, pin, true), out0)
			}
		}
	}
	return uf
}

// Collapse reduces the fault list by structural equivalence (the rules
// documented on buildUnions). One representative per class is kept: the
// topologically earliest site (ties broken deterministically), matching
// the usual convention of pushing representatives toward primary inputs.
func Collapse(c *netlist.Circuit, faults []Fault) []Fault {
	uf := buildUnions(c)
	classBest := make(map[Fault]Fault)
	better := func(a, b Fault) bool {
		la, lb := c.Level(a.Gate), c.Level(b.Gate)
		if la != lb {
			return la < lb
		}
		if a.Gate != b.Gate {
			return a.Gate < b.Gate
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.Stuck && b.Stuck
	}
	for _, f := range faults {
		root := uf.find(f)
		cur, ok := classBest[root]
		if !ok || better(f, cur) {
			classBest[root] = f
		}
	}
	out := make([]Fault, 0, len(classBest))
	for _, f := range classBest {
		out = append(out, f)
	}
	sortFaults(out)
	return out
}

// CollapsedUniverse is shorthand for Collapse(c, Universe(c)).
func CollapsedUniverse(c *netlist.Circuit) []Fault {
	return Collapse(c, Universe(c))
}

// EquivalenceClasses returns the partition of the given fault list into
// structural equivalence classes, each sorted deterministically, ordered
// by their first member.
func EquivalenceClasses(c *netlist.Circuit, faults []Fault) [][]Fault {
	uf := buildUnions(c)
	groups := make(map[Fault][]Fault)
	for _, f := range faults {
		root := uf.find(f)
		groups[root] = append(groups[root], f)
	}
	out := make([][]Fault, 0, len(groups))
	for _, g := range groups {
		sortFaults(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i][0], out[j][0]
		if a.Gate != b.Gate {
			return a.Gate < b.Gate
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.Stuck && b.Stuck
	})
	return out
}

// unionFind is a map-based disjoint-set over Faults.
type unionFind struct {
	parent map[Fault]Fault
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[Fault]Fault)} }

func (u *unionFind) find(f Fault) Fault {
	p, ok := u.parent[f]
	if !ok {
		return f
	}
	root := u.find(p)
	u.parent[f] = root
	return root
}

func (u *unionFind) union(a, b Fault) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
