package fault

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

func TestUniverseCounts(t *testing.T) {
	// c17: 11 signals -> 22 stem faults. Fanout stems: input 3, gates 11
	// and 16 (2 branches each) -> 6 branches -> 12 branch faults. Total 34.
	c := gen.C17()
	u := Universe(c)
	if len(u) != 34 {
		t.Errorf("universe size = %d, want 34", len(u))
	}
	stems, branches := 0, 0
	for _, f := range u {
		if f.IsStem() {
			stems++
		} else {
			branches++
		}
	}
	if stems != 22 || branches != 12 {
		t.Errorf("stems=%d branches=%d, want 22/12", stems, branches)
	}
}

func TestUniverseDeterministic(t *testing.T) {
	c := gen.RandomDAG(1, 8, 50, gen.DAGOptions{})
	a := Universe(c)
	b := Universe(c)
	if len(a) != len(b) {
		t.Fatal("universe size differs across calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCollapseC17(t *testing.T) {
	// The standard collapsed fault count for c17 is 22.
	c := gen.C17()
	collapsed := CollapsedUniverse(c)
	if len(collapsed) != 22 {
		t.Errorf("collapsed c17 = %d faults, want 22", len(collapsed))
	}
}

func TestCollapseInverterChain(t *testing.T) {
	// a -> NOT -> NOT -> NOT -> out: all faults collapse to 2 classes.
	b := netlist.NewBuilder("invchain")
	a := b.Input("a")
	n1 := b.NotGate("n1", a)
	n2 := b.NotGate("n2", n1)
	n3 := b.NotGate("n3", n2)
	b.MarkOutput(n3)
	c := b.MustBuild()
	collapsed := CollapsedUniverse(c)
	if len(collapsed) != 2 {
		t.Errorf("inverter chain collapsed to %d faults, want 2: %v", len(collapsed), collapsed)
	}
	// Representatives must sit at the input (level 0).
	for _, f := range collapsed {
		if c.Level(f.Gate) != 0 {
			t.Errorf("representative %v not at level 0", f)
		}
	}
}

func TestCollapseAndGate(t *testing.T) {
	// 2-input AND: universe = 6 faults (a0,a1,b0,b1,g0,g1); a0 ≡ b0 ≡ g0,
	// so collapsed = 4.
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	collapsed := CollapsedUniverse(c)
	if len(collapsed) != 4 {
		t.Errorf("AND2 collapsed to %d faults, want 4: %v", len(collapsed), collapsed)
	}
}

func TestCollapseXorKeepsAll(t *testing.T) {
	// XOR has no structural equivalences: 6 faults stay 6.
	b := netlist.NewBuilder("xor2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.XorGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	collapsed := CollapsedUniverse(c)
	if len(collapsed) != 6 {
		t.Errorf("XOR2 collapsed to %d faults, want 6", len(collapsed))
	}
}

func TestBranchFaultsNotCollapsedAcrossStem(t *testing.T) {
	// A fanout stem's branches are distinct fault sites: stem s feeds two
	// AND gates; branch s->g1 s-a-0 is NOT equivalent to branch s->g2
	// s-a-0, though each is equivalent to its gate's output s-a-0.
	b := netlist.NewBuilder("fan")
	a := b.Input("a")
	x := b.Input("b")
	y := b.Input("c")
	g1 := b.AndGate("g1", a, x)
	g2 := b.AndGate("g2", a, y)
	b.MarkOutput(g1)
	b.MarkOutput(g2)
	c := b.MustBuild()
	classes := EquivalenceClasses(c, Universe(c))
	// Find the classes containing g1 out s-a-0 and g2 out s-a-0.
	id1, _ := c.GateByName("g1")
	id2, _ := c.GateByName("g2")
	var class1, class2 []Fault
	for _, cl := range classes {
		for _, f := range cl {
			if f == (Fault{Gate: id1, Pin: -1, Stuck: false}) {
				class1 = cl
			}
			if f == (Fault{Gate: id2, Pin: -1, Stuck: false}) {
				class2 = cl
			}
		}
	}
	if class1 == nil || class2 == nil {
		t.Fatal("classes not found")
	}
	if &class1[0] == &class2[0] {
		t.Error("branch faults of different consumers collapsed together")
	}
	// Each class: {branch a->gi s-a-0, input xi s-a-0, out gi s-a-0} = 3.
	if len(class1) != 3 || len(class2) != 3 {
		t.Errorf("class sizes %d/%d, want 3/3", len(class1), len(class2))
	}
}

func TestCollapseReductionRatio(t *testing.T) {
	// Equivalence collapsing conventionally removes 30-60% of faults on
	// random logic.
	c := gen.RandomDAG(17, 16, 300, gen.DAGOptions{})
	u := Universe(c)
	col := Collapse(c, u)
	ratio := float64(len(col)) / float64(len(u))
	if ratio >= 1.0 {
		t.Errorf("collapse removed nothing (%d -> %d)", len(u), len(col))
	}
	if ratio < 0.2 {
		t.Errorf("collapse ratio %.2f suspiciously aggressive", ratio)
	}
}

func TestEquivalenceClassesPartition(t *testing.T) {
	c := gen.C17()
	u := Universe(c)
	classes := EquivalenceClasses(c, u)
	total := 0
	seen := make(map[Fault]bool)
	for _, cl := range classes {
		total += len(cl)
		for _, f := range cl {
			if seen[f] {
				t.Errorf("fault %v appears in two classes", f)
			}
			seen[f] = true
		}
	}
	if total != len(u) {
		t.Errorf("classes cover %d faults, universe has %d", total, len(u))
	}
	if len(classes) != len(Collapse(c, u)) {
		t.Errorf("class count %d != collapsed count %d", len(classes), len(Collapse(c, u)))
	}
}

func TestFaultStringAndName(t *testing.T) {
	c := gen.C17()
	g10, _ := c.GateByName("10")
	f := Fault{Gate: g10, Pin: -1, Stuck: true}
	if f.String() == "" || f.Name(c) != "10 s-a-1" {
		t.Errorf("Name = %q", f.Name(c))
	}
	g16, _ := c.GateByName("16")
	bf := Fault{Gate: g16, Pin: 1, Stuck: false}
	if bf.Name(c) != "11->16 s-a-0" {
		t.Errorf("branch Name = %q", bf.Name(c))
	}
	if bf.IsStem() {
		t.Error("branch fault claims to be stem")
	}
}

// TestCollapseDeterministic pins the ordering contract on the two
// map-fed collapse paths: both accumulate into maps and must sort
// before returning, so repeated runs over the same circuit agree
// element-for-element. The serve layer caches responses by content
// hash, so any order wobble here would show up as spurious cache
// misses and byte-diverging replies.
func TestCollapseDeterministic(t *testing.T) {
	for _, c := range []*netlist.Circuit{
		gen.C17(),
		gen.RandomDAG(7, 12, 120, gen.DAGOptions{}),
		gen.RPResistant(3, 3, 10, 40),
	} {
		u := Universe(c)
		first := Collapse(c, u)
		for run := 0; run < 5; run++ {
			again := Collapse(c, u)
			if len(again) != len(first) {
				t.Fatalf("%s: collapsed size changed between runs: %d vs %d", c.Name(), len(again), len(first))
			}
			for i := range first {
				if again[i] != first[i] {
					t.Fatalf("%s: element %d differs between runs: %v vs %v", c.Name(), i, again[i], first[i])
				}
			}
		}

		classes := EquivalenceClasses(c, u)
		for run := 0; run < 5; run++ {
			again := EquivalenceClasses(c, u)
			if len(again) != len(classes) {
				t.Fatalf("%s: class count changed between runs", c.Name())
			}
			for i := range classes {
				if len(again[i]) != len(classes[i]) || again[i][0] != classes[i][0] {
					t.Fatalf("%s: class %d differs between runs", c.Name(), i)
				}
			}
		}
	}
}
