// Package opt implements the classic netlist cleanup passes run before
// DFT analysis: buffer sweeping, double-inverter elimination, structural
// common-subexpression merging, idempotent-gate collapse, and dead logic
// removal. Passes iterate to a fixpoint; primary outputs and all retained
// signal names are preserved, and every rewrite is equivalence-checked in
// the tests.
package opt

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Stats counts what the optimizer did.
type Stats struct {
	BuffersSwept     int
	InvPairsRemoved  int
	DuplicatesMerged int
	IdempotentFixed  int
	DeadRemoved      int
	Iterations       int
}

// Options reserves room for pass selection; the zero value runs
// everything.
type Options struct {
	// KeepDead disables dead logic removal (useful when dangling signals
	// are intentional, e.g. candidate observation taps).
	KeepDead bool
}

// Optimize returns a functionally equivalent, cleaned-up circuit.
func Optimize(c *netlist.Circuit, opts Options) (*netlist.Circuit, *Stats, error) {
	stats := &Stats{}
	cur := c
	for {
		stats.Iterations++
		next, changed, err := pass(cur, opts, stats)
		if err != nil {
			return nil, nil, err
		}
		cur = next
		if !changed {
			break
		}
		if stats.Iterations > 100 {
			return nil, nil, fmt.Errorf("opt: no fixpoint after %d iterations", stats.Iterations)
		}
	}
	return cur, stats, nil
}

// pass performs one round of all rewrites and rebuilds the circuit.
func pass(c *netlist.Circuit, opts Options, stats *Stats) (*netlist.Circuit, bool, error) {
	n := c.NumGates()
	repl := make([]int, n)
	for i := range repl {
		repl[i] = i
	}
	var resolve func(id int) int
	resolve = func(id int) int {
		for repl[id] != id {
			repl[id] = repl[repl[id]] // path compression
			id = repl[id]
		}
		return id
	}
	changed := false

	// Local rewrites, in topological order so upstream replacements are
	// visible downstream within the same pass.
	type cseKey struct {
		t     netlist.GateType
		fanin string
	}
	seen := make(map[cseKey]int)
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = resolve(f)
		}
		isPO := c.IsOutput(id)
		// Buffer sweep: uses of a buffer read its source directly. The
		// buffer gate itself survives only while it is a primary output.
		if g.Type == netlist.Buf && !isPO {
			repl[id] = fanin[0]
			stats.BuffersSwept++
			changed = true
			continue
		}
		// Double inverter: NOT(NOT(x)) reads x.
		if g.Type == netlist.Not && !isPO {
			src := fanin[0]
			if c.Type(src) == netlist.Not {
				inner := resolve(c.Fanin(src)[0])
				repl[id] = inner
				stats.InvPairsRemoved++
				changed = true
				continue
			}
		}
		// Idempotent collapse: AND/OR over a single distinct signal is a
		// buffer; NAND/NOR an inverter. (XOR is parity, not idempotent.)
		distinct := uniqueInts(fanin)
		if len(distinct) == 1 && len(fanin) > 1 {
			switch g.Type {
			case netlist.And, netlist.Or:
				if !isPO {
					repl[id] = distinct[0]
					stats.IdempotentFixed++
					changed = true
					continue
				}
			}
		}
		// Structural CSE: same type, same (sorted) resolved fanins. All
		// supported gate functions are symmetric in their inputs.
		key := cseKey{t: g.Type, fanin: faninKey(fanin)}
		if prev, ok := seen[key]; ok && prev != id && !isPO {
			repl[id] = prev
			stats.DuplicatesMerged++
			changed = true
			continue
		}
		if _, ok := seen[key]; !ok {
			seen[key] = id
		}
	}

	// Liveness from primary outputs through resolved fanins.
	live := make([]bool, n)
	var mark func(id int)
	mark = func(id int) {
		id = resolve(id)
		if live[id] {
			return
		}
		live[id] = true
		for _, f := range c.Fanin(id) {
			mark(f)
		}
	}
	for _, o := range c.Outputs() {
		mark(o)
	}
	if opts.KeepDead {
		for id := range live {
			if !live[resolve(id)] && repl[id] == id {
				live[id] = true
				for _, f := range c.Fanin(id) {
					mark(f)
				}
			}
		}
	}

	// Rebuild.
	b := netlist.NewBuilder(c.Name())
	for id := 0; id < n; id++ {
		b.ReserveNames(c.GateName(id))
	}
	newID := make([]int, n)
	for i := range newID {
		newID[i] = -1
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			// Inputs are always kept in declaration order: dropping or
			// reordering primary inputs would change the interface.
			newID[id] = b.Input(g.Name)
			continue
		}
		if resolve(id) != id || !live[id] {
			if !live[resolve(id)] && repl[id] == id && !opts.KeepDead {
				stats.DeadRemoved++
				changed = true
			}
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = newID[resolve(f)]
		}
		newID[id] = b.Add(g.Type, g.Name, fanin...)
	}
	for _, o := range c.Outputs() {
		b.MarkOutput(newID[resolve(o)])
	}
	out, err := b.Build()
	if err != nil {
		return nil, false, fmt.Errorf("opt: rebuild: %w", err)
	}
	return out, changed, nil
}

func uniqueInts(xs []int) []int {
	m := make(map[int]bool, len(xs))
	var out []int
	for _, x := range xs {
		if !m[x] {
			m[x] = true
			out = append(out, x)
		}
	}
	return out
}

func faninKey(fanin []int) string {
	s := append([]int(nil), fanin...)
	sort.Ints(s)
	key := make([]byte, 0, len(s)*4)
	for _, x := range s {
		key = append(key, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(key)
}
