package opt

import (
	"testing"
	"testing/quick"

	"repro/internal/eqcheck"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// checkEquivalent optimizes and verifies function preservation.
func checkEquivalent(t *testing.T, c *netlist.Circuit) (*netlist.Circuit, *Stats) {
	t.Helper()
	out, stats, err := Optimize(c, Options{})
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	ok, ce, err := eqcheck.Equal(c, out, eqcheck.Options{})
	if err != nil {
		t.Fatalf("%s: eqcheck: %v", c.Name(), err)
	}
	if !ok {
		t.Fatalf("%s: optimization changed function (counterexample %v)", c.Name(), ce)
	}
	if out.NumGates() > c.NumGates() {
		t.Errorf("%s: optimizer grew the circuit: %d -> %d", c.Name(), c.NumGates(), out.NumGates())
	}
	return out, stats
}

func TestOptimizePreservesFunction(t *testing.T) {
	for _, c := range []*netlist.Circuit{
		gen.C17(),
		gen.RippleCarryAdder(4),
		gen.Comparator(5),
		gen.Multiplier(3),
		gen.ParityTree(8),
	} {
		checkEquivalent(t, c)
	}
	for seed := int64(0); seed < 8; seed++ {
		checkEquivalent(t, gen.RandomDAG(seed, 10, 80, gen.DAGOptions{}))
		checkEquivalent(t, gen.RandomTree(seed, 15, gen.TreeOptions{}))
	}
}

func TestBufferSweep(t *testing.T) {
	b := netlist.NewBuilder("bufs")
	a := b.Input("a")
	x := b.Input("b")
	b1 := b.BufGate("b1", a)
	b2 := b.BufGate("b2", b1)
	g := b.AndGate("g", b2, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	out, stats := checkEquivalent(t, c)
	if stats.BuffersSwept != 2 {
		t.Errorf("swept %d buffers, want 2", stats.BuffersSwept)
	}
	if out.NumGates() != 3 { // a, b, g
		t.Errorf("gates = %d, want 3", out.NumGates())
	}
}

func TestBufferAsOutputKept(t *testing.T) {
	b := netlist.NewBuilder("pobuf")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	ob := b.BufGate("ob", g)
	b.MarkOutput(ob)
	c := b.MustBuild()
	out, _ := checkEquivalent(t, c)
	if _, ok := out.GateByName("ob"); !ok {
		t.Error("primary output buffer was swept away")
	}
}

func TestDoubleInverter(t *testing.T) {
	b := netlist.NewBuilder("inv2")
	a := b.Input("a")
	x := b.Input("b")
	n1 := b.NotGate("n1", a)
	n2 := b.NotGate("n2", n1)
	g := b.OrGate("g", n2, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	out, stats := checkEquivalent(t, c)
	if stats.InvPairsRemoved < 1 {
		t.Errorf("inverter pairs removed = %d, want >= 1", stats.InvPairsRemoved)
	}
	if out.NumGates() != 3 {
		t.Errorf("gates = %d, want 3 (a, b, g)", out.NumGates())
	}
}

func TestCSE(t *testing.T) {
	b := netlist.NewBuilder("dup")
	a := b.Input("a")
	x := b.Input("b")
	g1 := b.AndGate("g1", a, x)
	g2 := b.AndGate("g2", x, a) // same function, swapped pins
	z := b.OrGate("z", g1, g2)  // OR of identical signals
	b.MarkOutput(z)
	c := b.MustBuild()
	out, stats := checkEquivalent(t, c)
	if stats.DuplicatesMerged < 1 {
		t.Errorf("duplicates merged = %d, want >= 1", stats.DuplicatesMerged)
	}
	// After CSE, z = OR(g1, g1) collapses idempotently; final circuit is
	// a, b, and one AND feeding the PO (kept as z or merged).
	if out.NumGates() > 4 {
		t.Errorf("gates = %d, want <= 4", out.NumGates())
	}
}

func TestDeadRemoval(t *testing.T) {
	b := netlist.NewBuilder("dead")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.NorGate("unused", a, x) // dangling
	b.MarkOutput(g)
	c := b.MustBuild()
	out, stats := checkEquivalent(t, c)
	if stats.DeadRemoved < 1 {
		t.Errorf("dead removed = %d, want >= 1", stats.DeadRemoved)
	}
	if _, ok := out.GateByName("unused"); ok {
		t.Error("dead gate survived")
	}
	// KeepDead preserves it.
	kept, _, err := Optimize(c, Options{KeepDead: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := kept.GateByName("unused"); !ok {
		t.Error("KeepDead removed the dangling gate")
	}
}

func TestDeadInputsKept(t *testing.T) {
	b := netlist.NewBuilder("unusedin")
	a := b.Input("a")
	b.Input("spare") // never used
	z := b.NotGate("z", a)
	b.MarkOutput(z)
	c := b.MustBuild()
	out, _ := checkEquivalent(t, c)
	if out.NumInputs() != 2 {
		t.Errorf("inputs = %d, want 2 (interface preserved)", out.NumInputs())
	}
	if out.GateName(out.Inputs()[1]) != "spare" {
		t.Error("input order changed")
	}
}

func TestIdempotentCollapse(t *testing.T) {
	b := netlist.NewBuilder("idem")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, a) // AND(a,a) = a
	z := b.OrGate("z", g, x)
	b.MarkOutput(z)
	c := b.MustBuild()
	out, stats := checkEquivalent(t, c)
	if stats.IdempotentFixed < 1 {
		t.Errorf("idempotent fixes = %d, want >= 1", stats.IdempotentFixed)
	}
	if _, ok := out.GateByName("g"); ok {
		t.Error("AND(a,a) survived")
	}
}

// TestOptimizeQuickProperty: optimization preserves function on random
// DAGs across seeds (the umbrella property).
func TestOptimizeQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := gen.RandomDAG(seed%64, 8, 50, gen.DAGOptions{})
		out, _, err := Optimize(c, Options{})
		if err != nil {
			return false
		}
		ok, _, err := eqcheck.Equal(c, out, eqcheck.Options{})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	// Running the optimizer twice must change nothing the second time.
	c := gen.RandomDAG(5, 12, 120, gen.DAGOptions{})
	once, _, err := Optimize(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	twice, stats, err := Optimize(once, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if twice.NumGates() != once.NumGates() {
		t.Errorf("second run changed gate count: %d -> %d", once.NumGates(), twice.NumGates())
	}
	if stats.Iterations != 1 {
		t.Errorf("second run took %d iterations, want 1 (fixpoint)", stats.Iterations)
	}
}
