// Package logic provides bit-parallel logic simulation of netlist
// circuits: 64 patterns are evaluated per pass, one uint64 word per
// signal. This is the substrate under the fault simulator and the
// empirical signal-probability estimator.
package logic

import (
	"fmt"
	"math/bits"

	"repro/internal/netlist"
)

// Simulator evaluates a circuit 64 patterns at a time. It is not safe for
// concurrent use; create one per goroutine.
type Simulator struct {
	c    *netlist.Circuit
	vals []uint64
	buf  []uint64
}

// New returns a Simulator for the circuit.
func New(c *netlist.Circuit) *Simulator {
	return &Simulator{
		c:    c,
		vals: make([]uint64, c.NumGates()),
		buf:  make([]uint64, 0, 8),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// Run evaluates one block. inputWords carries one word per primary input,
// in Inputs() order: bit b of inputWords[i] is the value of input i in
// pattern b. All signal values are available through Value afterwards.
func (s *Simulator) Run(inputWords []uint64) error {
	c := s.c
	if len(inputWords) != c.NumInputs() {
		return fmt.Errorf("logic: got %d input words, circuit has %d inputs", len(inputWords), c.NumInputs())
	}
	for i, in := range c.Inputs() {
		s.vals[in] = inputWords[i]
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		s.buf = s.buf[:0]
		for _, f := range g.Fanin {
			s.buf = append(s.buf, s.vals[f])
		}
		s.vals[id] = g.Type.EvalWords(s.buf)
	}
	return nil
}

// Value returns the 64-pattern word last computed for the signal.
func (s *Simulator) Value(id int) uint64 { return s.vals[id] }

// Values returns the internal value slice (one word per gate). Read-only;
// contents change on the next Run.
func (s *Simulator) Values() []uint64 { return s.vals }

// RunBool evaluates a single pattern given as one bool per primary input
// and returns all signal values.
func (s *Simulator) RunBool(inputs []bool) ([]bool, error) {
	words := make([]uint64, len(inputs))
	for i, b := range inputs {
		if b {
			words[i] = 1
		}
	}
	if err := s.Run(words); err != nil {
		return nil, err
	}
	out := make([]bool, s.c.NumGates())
	for id := range out {
		out[id] = s.vals[id]&1 == 1
	}
	return out, nil
}

// SignalStats accumulates empirical one-counts per signal over simulated
// blocks, yielding measured signal probabilities (used to validate the
// analytic COP measures).
type SignalStats struct {
	Ones     []uint64
	Patterns uint64
}

// NewSignalStats returns stats sized for the circuit.
func NewSignalStats(c *netlist.Circuit) *SignalStats {
	return &SignalStats{Ones: make([]uint64, c.NumGates())}
}

// Accumulate folds the simulator's current block into the stats. n is the
// number of valid patterns in the block (<= 64); bits above n are ignored.
func (st *SignalStats) Accumulate(s *Simulator, n int) {
	mask := ^uint64(0)
	if n < 64 {
		mask = (uint64(1) << uint(n)) - 1
	}
	for id, v := range s.vals {
		st.Ones[id] += uint64(bits.OnesCount64(v & mask))
	}
	st.Patterns += uint64(n)
}

// Probability returns the measured probability of signal id being 1.
func (st *SignalStats) Probability(id int) float64 {
	if st.Patterns == 0 {
		return 0
	}
	return float64(st.Ones[id]) / float64(st.Patterns)
}
