package logic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/netlist"
)

func TestRunMatchesScalarEval(t *testing.T) {
	c := gen.C17()
	s := New(c)
	// Exhaustive 32 vectors packed into one block's low bits.
	words := make([]uint64, c.NumInputs())
	for v := 0; v < 32; v++ {
		for i := range words {
			if v>>uint(i)&1 == 1 {
				words[i] |= 1 << uint(v)
			}
		}
	}
	if err := s.Run(words); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 32; v++ {
		vec := make([]bool, c.NumInputs())
		for i := range vec {
			vec[i] = v>>uint(i)&1 == 1
		}
		want := scalarEval(c, vec)
		for id := 0; id < c.NumGates(); id++ {
			got := s.Value(id)>>uint(v)&1 == 1
			if got != want[id] {
				t.Fatalf("vector %d gate %s: parallel=%v scalar=%v", v, c.GateName(id), got, want[id])
			}
		}
	}
}

func scalarEval(c *netlist.Circuit, vec []bool) []bool {
	vals := make([]bool, c.NumGates())
	for i, in := range c.Inputs() {
		vals[in] = vec[i]
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		in := make([]bool, len(g.Fanin))
		for pin, f := range g.Fanin {
			in[pin] = vals[f]
		}
		vals[id] = g.Type.Eval(in)
	}
	return vals
}

func TestRunBool(t *testing.T) {
	c := gen.RippleCarryAdder(2)
	s := New(c)
	// 3 + 2 + 1 = 6 = 110b
	vec := []bool{true, true, false, true, true} // a=3, b=2, cin=1
	vals, err := s.RunBool(vec)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i, o := range c.Outputs() {
		if vals[o] {
			got |= 1 << uint(i)
		}
	}
	if got != 6 {
		t.Errorf("adder said %d, want 6", got)
	}
}

func TestRunWrongInputCount(t *testing.T) {
	s := New(gen.C17())
	if err := s.Run(make([]uint64, 3)); err == nil {
		t.Error("expected error for wrong input word count")
	}
}

// TestParallelScalarAgreement is a property test: for random DAGs and
// random blocks, bit-parallel evaluation agrees with scalar evaluation on
// every bit lane.
func TestParallelScalarAgreement(t *testing.T) {
	c := gen.RandomDAG(11, 6, 40, gen.DAGOptions{})
	s := New(c)
	f := func(w0, w1, w2, w3, w4, w5 uint64, lane uint8) bool {
		words := []uint64{w0, w1, w2, w3, w4, w5}
		if err := s.Run(words); err != nil {
			return false
		}
		l := uint(lane % 64)
		vec := make([]bool, 6)
		for i := range vec {
			vec[i] = words[i]>>l&1 == 1
		}
		want := scalarEval(c, vec)
		for id := 0; id < c.NumGates(); id++ {
			if (s.Value(id)>>l&1 == 1) != want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSignalStats(t *testing.T) {
	// For a 2-input AND with exhaustive patterns, P(out=1) = 1/4.
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	s := New(c)
	st := NewSignalStats(c)
	words := []uint64{0b0101, 0b0011} // 4 exhaustive patterns
	if err := s.Run(words); err != nil {
		t.Fatal(err)
	}
	st.Accumulate(s, 4)
	if p := st.Probability(g); math.Abs(p-0.25) > 1e-12 {
		t.Errorf("P(and)=%f, want 0.25", p)
	}
	if p := st.Probability(a); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(a)=%f, want 0.5", p)
	}
	// Bits above n must be masked out.
	st2 := NewSignalStats(c)
	words2 := []uint64{^uint64(0), ^uint64(0)}
	if err := s.Run(words2); err != nil {
		t.Fatal(err)
	}
	st2.Accumulate(s, 10)
	if st2.Ones[g] != 10 {
		t.Errorf("masked accumulate counted %d ones, want 10", st2.Ones[g])
	}
	if st2.Patterns != 10 {
		t.Errorf("patterns = %d, want 10", st2.Patterns)
	}
}

func TestProbabilityEmptyStats(t *testing.T) {
	st := NewSignalStats(gen.C17())
	if st.Probability(0) != 0 {
		t.Error("empty stats must report probability 0")
	}
}
