package fsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// runAllocs measures allocations of one Run over n patterns.
func runAllocs(t *testing.T, c *netlist.Circuit, faults []fault.Fault, n int) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() {
		src := pattern.NewLFSR(0xdeadbeef)
		if _, err := Run(c, faults, src, Options{MaxPatterns: n}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRunAllocsPatternIndependent pins the measured loop's zero-alloc
// steady state: RunContext allocates its simulator state and result
// buffers up front, and the per-pattern loop reuses them (self-append
// and buffer-reset idioms only). If allocations scale with the pattern
// count, something inside the loop started allocating — exactly the
// regression the per-worker-arena PPSFP rewrite must not reintroduce,
// and what codelint rule G007 flags statically.
func TestRunAllocsPatternIndependent(t *testing.T) {
	c := gen.RandomDAG(7, 12, 60, gen.DAGOptions{})
	faults := fault.Universe(c)
	few := runAllocs(t, c, faults, 64)
	many := runAllocs(t, c, faults, 6400)
	// 100x the patterns may add a handful of amortized-growth
	// reallocations (detection lists), but nothing per-pattern: 6336
	// extra iterations must not cost more than a few allocations.
	if many-few > 8 {
		t.Fatalf("Run allocs scale with pattern count: %.1f at 64 patterns vs %.1f at 6400 (want delta <= 8)",
			few, many)
	}
}
