package fsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/pattern"
)

func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		c := gen.RandomDAG(seed, 12, 150, gen.DAGOptions{})
		faults := fault.CollapsedUniverse(c)
		opts := Options{MaxPatterns: 2048, DropFaults: true}
		serial, err := Run(c, faults, pattern.NewLFSR(3), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := RunParallel(c, faults, func() pattern.Source { return pattern.NewLFSR(3) }, workers, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(par.FirstDetect) != len(serial.FirstDetect) {
				t.Fatalf("seed %d workers %d: %d detections vs %d serial",
					seed, workers, len(par.FirstDetect), len(serial.FirstDetect))
			}
			for f, idx := range serial.FirstDetect {
				if par.FirstDetect[f] != idx {
					t.Errorf("seed %d workers %d: %s first detect %d vs %d",
						seed, workers, f.Name(c), par.FirstDetect[f], idx)
				}
			}
			if par.Patterns != serial.Patterns {
				t.Errorf("seed %d workers %d: patterns %d vs %d", seed, workers, par.Patterns, serial.Patterns)
			}
		}
	}
}

func TestParallelCountDetections(t *testing.T) {
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	opts := Options{MaxPatterns: 512, DropFaults: false, CountDetections: true}
	serial, err := Run(c, faults, pattern.NewLFSR(9), opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(c, faults, func() pattern.Source { return pattern.NewLFSR(9) }, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for f, n := range serial.DetectCount {
		if par.DetectCount[f] != n {
			t.Errorf("%s: count %d vs serial %d", f.Name(c), par.DetectCount[f], n)
		}
	}
}

func TestParallelMoreWorkersThanFaults(t *testing.T) {
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)[:3]
	par, err := RunParallel(c, faults, func() pattern.Source { return pattern.NewLFSR(1) }, 64,
		Options{MaxPatterns: 128, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Faults) != 3 {
		t.Errorf("faults = %d", len(par.Faults))
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	if _, err := RunParallel(c, faults, func() pattern.Source { return pattern.NewLFSR(1) }, 0,
		Options{MaxPatterns: 128, DropFaults: true}); err != nil {
		t.Fatal(err)
	}
}
