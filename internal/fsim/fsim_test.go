package fsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// bruteForceDetects evaluates the circuit with and without the fault on a
// single input vector and reports whether any primary output differs.
// This is the oracle the bit-parallel event-driven simulator is tested
// against.
func bruteForceDetects(c *netlist.Circuit, f fault.Fault, vec []bool) bool {
	eval := func(inject bool) []bool {
		vals := make([]bool, c.NumGates())
		for i, in := range c.Inputs() {
			vals[in] = vec[i]
		}
		for _, id := range c.TopoOrder() {
			g := c.Gate(id)
			if g.Type != netlist.Input {
				in := make([]bool, len(g.Fanin))
				for pin, fin := range g.Fanin {
					in[pin] = vals[fin]
					if inject && !f.IsStem() && f.Gate == id && f.Pin == pin {
						in[pin] = f.Stuck
					}
				}
				vals[id] = g.Type.Eval(in)
			}
			if inject && f.IsStem() && f.Gate == id {
				vals[id] = f.Stuck
			}
		}
		return vals
	}
	good := eval(false)
	bad := eval(true)
	for _, o := range c.Outputs() {
		if good[o] != bad[o] {
			return true
		}
	}
	return false
}

// bruteForceFirstDetect returns the first detecting pattern index under an
// exhaustive counter, or -1.
func bruteForceFirstDetect(c *netlist.Circuit, f fault.Fault) int {
	n := c.NumInputs()
	for v := 0; v < 1<<uint(n); v++ {
		vec := make([]bool, n)
		for i := range vec {
			vec[i] = v>>uint(i)&1 == 1
		}
		if bruteForceDetects(c, f, vec) {
			return v
		}
	}
	return -1
}

func checkAgainstBruteForce(t *testing.T, c *netlist.Circuit) {
	t.Helper()
	faults := fault.Universe(c)
	res, err := Run(c, faults, pattern.NewCounter(c.NumInputs()), Options{
		MaxPatterns: 1 << uint(c.NumInputs()),
		DropFaults:  true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range faults {
		want := bruteForceFirstDetect(c, f)
		got, detected := res.FirstDetect[f]
		if want < 0 {
			if detected {
				t.Errorf("%s: simulator detected undetectable fault at pattern %d", f.Name(c), got)
			}
			continue
		}
		if !detected {
			t.Errorf("%s: simulator missed fault (brute force detects at %d)", f.Name(c), want)
			continue
		}
		if got != want {
			t.Errorf("%s: first detection at %d, brute force says %d", f.Name(c), got, want)
		}
	}
}

func TestAgainstBruteForceC17(t *testing.T) {
	checkAgainstBruteForce(t, gen.C17())
}

func TestAgainstBruteForceRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := gen.RandomDAG(seed, 8, 30, gen.DAGOptions{})
		checkAgainstBruteForce(t, c)
	}
}

func TestAgainstBruteForceTrees(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := gen.RandomTree(seed, 9, gen.TreeOptions{})
		checkAgainstBruteForce(t, c)
	}
}

func TestAgainstBruteForceAdder(t *testing.T) {
	checkAgainstBruteForce(t, gen.RippleCarryAdder(3))
}

func TestExhaustiveCoverageC17IsComplete(t *testing.T) {
	// c17 is fully testable: exhaustive patterns must detect every
	// collapsed fault.
	c := gen.C17()
	res, err := Run(c, fault.CollapsedUniverse(c), pattern.NewCounter(5), Options{MaxPatterns: 32, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("c17 exhaustive coverage = %.4f, want 1.0; undetected: %v", res.Coverage(), res.Undetected())
	}
}

func TestDroppingMatchesNoDropping(t *testing.T) {
	c := gen.RandomDAG(3, 10, 60, gen.DAGOptions{})
	faults := fault.CollapsedUniverse(c)
	with, err := Run(c, faults, pattern.NewLFSR(1), Options{MaxPatterns: 2048, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(c, faults, pattern.NewLFSR(1), Options{MaxPatterns: 2048, DropFaults: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.FirstDetect) != len(without.FirstDetect) {
		t.Fatalf("dropping changed detection count: %d vs %d", len(with.FirstDetect), len(without.FirstDetect))
	}
	for f, idx := range with.FirstDetect {
		if without.FirstDetect[f] != idx {
			t.Errorf("%s: first detect %d with dropping, %d without", f.Name(c), idx, without.FirstDetect[f])
		}
	}
}

func TestAndConeResistance(t *testing.T) {
	// The output s-a-0 of a 16-wide AND cone has detection probability
	// 2^-16; 4096 LFSR patterns should almost surely miss it, while the
	// easy input-side faults are caught.
	c := gen.AndCone(16)
	out := c.Outputs()[0]
	hard := fault.Fault{Gate: out, Pin: -1, Stuck: false}
	res, err := Run(c, []fault.Fault{hard}, pattern.NewLFSR(12345), Options{MaxPatterns: 4096, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FirstDetect) != 0 {
		t.Errorf("hard cone fault detected within 4096 patterns (p=2^-16); suspicious")
	}
	// But it IS detectable: the all-ones pattern detects it.
	vec := make([]bool, 16)
	for i := range vec {
		vec[i] = true
	}
	resv, err := Run(c, []fault.Fault{hard}, pattern.NewVectors([][]bool{vec}), Options{MaxPatterns: 64, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resv.FirstDetect) != 1 {
		t.Error("all-ones vector must detect the cone output s-a-0")
	}
}

func TestCoverageCurveMonotone(t *testing.T) {
	c := gen.RandomDAG(9, 12, 100, gen.DAGOptions{})
	res, err := RunDefault(c, pattern.NewLFSR(7))
	if err != nil {
		t.Fatal(err)
	}
	curve := res.Curve(1024)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	prev := -1.0
	for _, p := range curve {
		if p.Coverage < prev {
			t.Errorf("coverage curve decreased at %d patterns: %f < %f", p.Patterns, p.Coverage, prev)
		}
		prev = p.Coverage
	}
	if last := curve[len(curve)-1]; last.Patterns != res.Patterns {
		t.Errorf("curve must end at the final pattern count: %d != %d", last.Patterns, res.Patterns)
	}
	if curve[len(curve)-1].Coverage != res.Coverage() {
		t.Errorf("curve endpoint %.4f != coverage %.4f", curve[len(curve)-1].Coverage, res.Coverage())
	}
}

func TestCountDetections(t *testing.T) {
	// In a 2-input AND, output s-a-0 is detected only by pattern 11
	// (1 of 4); input a s-a-1 by pattern 01 (1 of 4).
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	g := b.AndGate("g", a, x)
	b.MarkOutput(g)
	c := b.MustBuild()
	fs := []fault.Fault{
		{Gate: g, Pin: -1, Stuck: false},
		{Gate: a, Pin: -1, Stuck: true},
	}
	res, err := Run(c, fs, pattern.NewCounter(2), Options{MaxPatterns: 4, DropFaults: false, CountDetections: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectCount[fs[0]] != 1 {
		t.Errorf("AND out s-a-0 detect count = %d, want 1", res.DetectCount[fs[0]])
	}
	if res.DetectCount[fs[1]] != 1 {
		t.Errorf("input s-a-1 detect count = %d, want 1", res.DetectCount[fs[1]])
	}
}

func TestMaxPatternsRespected(t *testing.T) {
	c := gen.C17()
	res, err := Run(c, fault.CollapsedUniverse(c), pattern.NewLFSR(1), Options{MaxPatterns: 100, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 100 {
		t.Errorf("patterns = %d, want 100", res.Patterns)
	}
	for f, idx := range res.FirstDetect {
		if idx >= 100 {
			t.Errorf("%v detected at %d >= MaxPatterns", f, idx)
		}
	}
}

func TestBadFaultRejected(t *testing.T) {
	c := gen.C17()
	if _, err := Run(c, []fault.Fault{{Gate: 999, Pin: -1}}, pattern.NewLFSR(1), DefaultOptions()); err == nil {
		t.Error("expected error for out-of-range gate")
	}
	if _, err := Run(c, []fault.Fault{{Gate: 0, Pin: 5}}, pattern.NewLFSR(1), DefaultOptions()); err == nil {
		t.Error("expected error for out-of-range pin")
	}
}
