package fsim

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// RunParallel fault-simulates the fault list across multiple goroutines:
// the fault list is partitioned, each worker owns a private simulator
// and pattern source clone, and partial results are merged. Results are
// bit-identical to Run because faults are independent under PPSFP — each
// fault's detection history depends only on the shared pattern stream,
// which every worker regenerates from the same source factory.
//
// src is a factory returning a fresh, identically-seeded pattern source
// per worker. workers <= 0 selects GOMAXPROCS.
//
// Each worker re-simulates the good circuit for every block, so the
// speedup approaches the worker count only while per-fault propagation
// dominates (large fault lists, early in a run before dropping thins
// them); tiny workloads are better served by Run.
func RunParallel(c *netlist.Circuit, faults []fault.Fault, src func() pattern.Source, workers int, opts Options) (*Result, error) {
	return RunParallelContext(context.Background(), c, faults, src, workers, opts)
}

// RunParallelContext is RunParallel with cancellation: every worker polls
// the context per pattern block (see RunContext). On cancellation the
// workers' partial results are merged and returned alongside ctx.Err();
// any other worker error discards the results as before.
func RunParallelContext(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, src func() pattern.Source, workers int, opts Options) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		return RunContext(ctx, c, faults, src(), opts)
	}
	// Interleaved partition keeps hard and easy faults spread evenly, so
	// workers finish together under fault dropping.
	parts := make([][]fault.Fault, workers)
	for i, f := range faults {
		parts[i%workers] = append(parts[i%workers], f)
	}
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = RunContext(ctx, c, parts[w], src(), opts)
		}(w)
	}
	wg.Wait()
	var ctxErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			ctxErr = err
		default:
			return nil, err
		}
	}
	merged := &Result{
		Faults:      faults,
		FirstDetect: make(map[fault.Fault]int),
	}
	if opts.CountDetections {
		merged.DetectCount = make(map[fault.Fault]int)
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Patterns > merged.Patterns {
			merged.Patterns = r.Patterns
		}
		for f, idx := range r.FirstDetect {
			merged.FirstDetect[f] = idx
		}
		for f, n := range r.DetectCount {
			merged.DetectCount[f] = n
		}
	}
	return merged, ctxErr
}
