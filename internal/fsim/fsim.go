// Package fsim implements a parallel-pattern single-fault-propagation
// (PPSFP) fault simulator built from scratch: 64 random patterns are
// simulated against the good circuit, then each active fault is injected
// and propagated event-driven through its fanout cone, bit-parallel across
// the whole block. Detected faults are dropped from the active list
// (optional), which is what makes 32k-pattern runs cheap on circuits with
// thousands of faults.
package fsim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/pattern"
	"repro/internal/progress"
)

// Options controls a fault simulation run.
type Options struct {
	// MaxPatterns bounds the number of patterns applied. Zero means 32768,
	// the canonical BIST test length of the era.
	MaxPatterns int
	// DropFaults removes a fault from the active list after its first
	// detection. Disable only for detection-probability estimation.
	DropFaults bool
	// CountDetections tallies how many patterns detect each fault
	// (requires DropFaults=false to be meaningful beyond first detection).
	CountDetections bool
}

// DefaultOptions is the standard configuration: 32768 patterns with fault
// dropping.
func DefaultOptions() Options {
	return Options{MaxPatterns: 32768, DropFaults: true}
}

// Result reports the outcome of a fault simulation run.
type Result struct {
	Faults   []fault.Fault // the simulated fault list
	Patterns int           // patterns actually applied

	// FirstDetect maps each detected fault to the zero-based index of the
	// first pattern that detects it.
	FirstDetect map[fault.Fault]int
	// DetectCount maps each fault to the number of detecting patterns
	// (only populated when Options.CountDetections).
	DetectCount map[fault.Fault]int
}

// Coverage returns the fraction of simulated faults detected.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 1
	}
	return float64(len(r.FirstDetect)) / float64(len(r.Faults))
}

// Undetected returns the faults not detected, in input order.
func (r *Result) Undetected() []fault.Fault {
	var out []fault.Fault
	for _, f := range r.Faults {
		if _, ok := r.FirstDetect[f]; !ok {
			out = append(out, f)
		}
	}
	return out
}

// CurvePoint is one sample of a fault-coverage curve.
type CurvePoint struct {
	Patterns int
	Coverage float64
}

// Curve samples the coverage curve at multiples of step patterns,
// including the final pattern count.
func (r *Result) Curve(step int) []CurvePoint {
	if step <= 0 {
		step = 1024
	}
	var pts []CurvePoint
	for n := step; n < r.Patterns+step; n += step {
		if n > r.Patterns {
			n = r.Patterns
		}
		det := 0
		for _, idx := range r.FirstDetect {
			if idx < n {
				det++
			}
		}
		cov := 1.0
		if len(r.Faults) > 0 {
			cov = float64(det) / float64(len(r.Faults))
		}
		pts = append(pts, CurvePoint{Patterns: n, Coverage: cov})
		if n == r.Patterns {
			break
		}
	}
	return pts
}

// simulator holds the per-run scratch state for event-driven faulty
// propagation.
type simulator struct {
	c     *netlist.Circuit
	good  *logic.Simulator
	val   []uint64 // faulty values, valid when stamp == epoch
	stamp []int64
	sched []int64 // gate scheduled in this event wave when == epoch
	epoch int64

	// level buckets for the event wave
	buckets  [][]int
	minLevel int
	maxLevel int

	inbuf []uint64
}

func newSimulator(c *netlist.Circuit) *simulator {
	return &simulator{
		c:       c,
		good:    logic.New(c),
		val:     make([]uint64, c.NumGates()),
		stamp:   make([]int64, c.NumGates()),
		sched:   make([]int64, c.NumGates()),
		buckets: make([][]int, c.Depth()+1),
		inbuf:   make([]uint64, 0, 8),
	}
}

// faulty returns the current faulty-circuit value of a signal.
func (s *simulator) faulty(id int) uint64 {
	if s.stamp[id] == s.epoch {
		return s.val[id]
	}
	return s.good.Value(id)
}

// schedule queues a gate for evaluation in the current wave.
func (s *simulator) schedule(id int) {
	if s.sched[id] == s.epoch {
		return
	}
	s.sched[id] = s.epoch
	l := s.c.Level(id)
	s.buckets[l] = append(s.buckets[l], id)
	if l < s.minLevel {
		s.minLevel = l
	}
	if l > s.maxLevel {
		s.maxLevel = l
	}
}

// inject seeds the faulty value of fault f for the current block and
// returns the detection word observed directly at the injection site (for
// stem faults on primary outputs) plus whether anything diverged.
func (s *simulator) inject(f fault.Fault, mask uint64) (det uint64, active bool) {
	var fv uint64
	if f.Stuck {
		fv = ^uint64(0)
	}
	if f.IsStem() {
		g := f.Gate
		diff := (s.good.Value(g) ^ fv) & mask
		if diff == 0 {
			return 0, false
		}
		s.val[g] = fv
		s.stamp[g] = s.epoch
		if s.c.IsOutput(g) {
			det = diff
		}
		for _, consumer := range s.c.Fanout(g) {
			s.schedule(consumer)
		}
		return det, true
	}
	// Branch fault: re-evaluate the consuming gate with the branch pinned.
	g := f.Gate
	gate := s.c.Gate(g)
	s.inbuf = s.inbuf[:0]
	for pin, fin := range gate.Fanin {
		v := s.good.Value(fin)
		if pin == f.Pin {
			v = fv
		}
		s.inbuf = append(s.inbuf, v)
	}
	nv := gate.Type.EvalWords(s.inbuf)
	diff := (nv ^ s.good.Value(g)) & mask
	if diff == 0 {
		return 0, false
	}
	s.val[g] = nv
	s.stamp[g] = s.epoch
	if s.c.IsOutput(g) {
		det = diff
	}
	for _, consumer := range s.c.Fanout(g) {
		s.schedule(consumer)
	}
	return det, true
}

// propagate runs the event wave to quiescence and returns the detection
// word accumulated at primary outputs.
func (s *simulator) propagate(mask uint64, det uint64) uint64 {
	c := s.c
	for l := s.minLevel; l <= s.maxLevel; l++ {
		bucket := s.buckets[l]
		s.buckets[l] = bucket[:0]
		for _, id := range bucket {
			g := c.Gate(id)
			s.inbuf = s.inbuf[:0]
			for _, fin := range g.Fanin {
				s.inbuf = append(s.inbuf, s.faulty(fin))
			}
			nv := g.Type.EvalWords(s.inbuf)
			diff := (nv ^ s.good.Value(id)) & mask
			if diff == 0 {
				continue
			}
			s.val[id] = nv
			s.stamp[id] = s.epoch
			if c.IsOutput(id) {
				det |= diff
			}
			for _, consumer := range c.Fanout(id) {
				s.schedule(consumer)
			}
		}
	}
	return det
}

// Run fault-simulates the given fault list against patterns from src.
func Run(c *netlist.Circuit, faults []fault.Fault, src pattern.Source, opts Options) (*Result, error) {
	return RunContext(context.Background(), c, faults, src, opts)
}

// RunContext is Run with cancellation: the done channel is polled once
// per 64-pattern block, so an expired or cancelled context stops the run
// within one batch of work. On cancellation the partial Result
// accumulated over the completed blocks is returned alongside ctx.Err();
// every FirstDetect entry in it is valid (detection indices never depend
// on the faults not yet simulated). When ctx carries a progress.Func,
// one "patterns" sample is emitted per block at the same granularity.
func RunContext(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, src pattern.Source, opts Options) (*Result, error) {
	if opts.MaxPatterns <= 0 {
		opts.MaxPatterns = 32768
	}
	for _, f := range faults {
		if f.Gate < 0 || f.Gate >= c.NumGates() {
			return nil, fmt.Errorf("fsim: fault %v: gate out of range", f)
		}
		if !f.IsStem() && f.Pin >= len(c.Fanin(f.Gate)) {
			return nil, fmt.Errorf("fsim: fault %v: pin out of range", f)
		}
	}
	s := newSimulator(c)
	res := &Result{
		Faults:      faults,
		FirstDetect: make(map[fault.Fault]int),
	}
	if opts.CountDetections {
		res.DetectCount = make(map[fault.Fault]int)
	}
	active := make([]fault.Fault, len(faults))
	copy(active, faults)

	// ctx.Done() is nil for context.Background(), so the polls below
	// compile to a never-ready select arm and cost nothing on the
	// non-cancellable path. The progress reporter is hoisted here so the
	// measured loop performs a nil check per block, never a context
	// lookup.
	done := ctx.Done()
	report := progress.FromContext(ctx)
	words := make([]uint64, c.NumInputs())
	base := 0
	for base < opts.MaxPatterns && len(active) > 0 {
		select {
		case <-done:
			res.Patterns = base
			return res, ctx.Err()
		default:
		}
		if report != nil {
			report("patterns", int64(base), int64(opts.MaxPatterns))
		}
		n := src.FillBlock(words)
		if n == 0 {
			break
		}
		if base+n > opts.MaxPatterns {
			n = opts.MaxPatterns - base
		}
		mask := ^uint64(0)
		if n < 64 {
			mask = (uint64(1) << uint(n)) - 1
		}
		if err := s.good.Run(words); err != nil {
			return nil, err
		}
		kept := active[:0]
		for _, f := range active {
			s.epoch++
			s.minLevel = len(s.buckets)
			s.maxLevel = -1
			det, ok := s.inject(f, mask)
			if ok && s.maxLevel >= s.minLevel {
				det = s.propagate(mask, det)
			}
			if det != 0 {
				if _, seen := res.FirstDetect[f]; !seen {
					res.FirstDetect[f] = base + bits.TrailingZeros64(det)
				}
				if opts.CountDetections {
					res.DetectCount[f] += bits.OnesCount64(det)
				}
				if opts.DropFaults {
					continue
				}
			}
			kept = append(kept, f)
		}
		active = kept
		base += n
	}
	res.Patterns = base
	return res, nil
}

// RunDefault fault-simulates the collapsed fault universe with default
// options under the given pattern source.
func RunDefault(c *netlist.Circuit, src pattern.Source) (*Result, error) {
	return Run(c, fault.CollapsedUniverse(c), src, DefaultOptions())
}
