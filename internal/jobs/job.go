// Package jobs is the persistent asynchronous job subsystem behind the
// serving layer's 202-Accepted API: submitted engine requests become
// durable jobs that survive process restarts, report monotonic
// progress while running, and can be cancelled cooperatively through
// the contexts already threaded into every engine.
//
// The pieces:
//
//   - a job model (job.go): a job is one engine invocation identified
//     by the content-addressed cache key of its request plus a
//     per-submission nonce, moving through the state machine
//     queued → running → done|failed|canceled;
//   - an on-disk store (store.go): one append-only JSON-lines journal
//     per job plus an atomic-rename result blob, replayed on startup —
//     jobs that were queued or running when the process died are
//     re-queued, a truncated final journal line is tolerated, and a
//     corrupted journal marks the job failed instead of wedging it;
//   - a bounded scheduler (manager.go): a fixed worker set drains a
//     depth-limited queue (submissions beyond the limit fail fast with
//     ErrQueueFull, which the serving layer maps to 429), each job
//     runs under its own deadline independent of any HTTP request, and
//     terminal jobs are garbage-collected by age and count.
//
// The subsystem never runs engines itself: the Runner callback —
// internal/serve's cache-and-pool execution path — does, so identical
// concurrent jobs deduplicate to a single engine run through the same
// single-flight cache the synchronous endpoints use.
package jobs

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"time"
)

// State is a job lifecycle state.
type State string

// The job state machine: Queued → Running → Done | Failed | Canceled.
// A queued job may also move directly to Canceled.
const (
	// Queued means the job is accepted, journaled, and waiting for a
	// scheduler worker.
	Queued State = "queued"
	// Running means a worker is executing the job's engine request.
	Running State = "running"
	// Done means the job finished and its result blob is readable.
	Done State = "done"
	// Failed means the engine returned an error, the per-job deadline
	// expired, or the journal could not be replayed after a crash.
	Failed State = "failed"
	// Canceled means a DELETE cancelled the job before or during its
	// run.
	Canceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Canceled
}

// valid reports whether s is one of the five defined states (used when
// replaying journals, whose bytes come from disk, not from this
// process).
func (s State) valid() bool {
	switch s {
	case Queued, Running, Done, Failed, Canceled:
		return true
	}
	return false
}

// Progress is one monotonic progress sample: done out of total units
// of the named stage. Engines emit samples at their cancellation-poll
// granularity; the manager clamps regressions so done never decreases
// within a stage.
type Progress struct {
	// Stage names the unit of work ("patterns", "faults", ...).
	Stage string `json:"stage"`
	// Done counts completed units of the stage.
	Done int64 `json:"done"`
	// Total is the known bound for the stage (0 when unknown).
	Total int64 `json:"total"`
}

// Spec is the replayable description of a job's work, handed to the
// Runner. Request is the original request envelope; Key is the
// content-addressed cache key the synchronous path would use, so the
// Runner can deduplicate identical jobs through the result cache.
type Spec struct {
	// ID is the job identifier.
	ID string
	// Endpoint is the engine endpoint the job targets ("/v1/plan", ...).
	Endpoint string
	// Key is the content-addressed cache key of the request.
	Key string
	// Request is the raw request envelope as submitted.
	Request []byte
}

// Snapshot is the exported, JSON-ready view of one job at a point in
// time.
type Snapshot struct {
	// ID identifies the job.
	ID string `json:"id"`
	// Endpoint is the engine endpoint the job targets.
	Endpoint string `json:"endpoint"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Progress is the latest progress sample, when the job has emitted
	// one.
	Progress *Progress `json:"progress,omitempty"`
	// Error carries the failure reason for failed jobs.
	Error string `json:"error,omitempty"`
	// CreatedUnixMS/StartedUnixMS/FinishedUnixMS timestamp the state
	// transitions (Unix milliseconds; zero when not reached).
	CreatedUnixMS  int64 `json:"created_unix_ms"`
	StartedUnixMS  int64 `json:"started_unix_ms,omitempty"`
	FinishedUnixMS int64 `json:"finished_unix_ms,omitempty"`
	// Requeued reports that the job was recovered from the journal of a
	// previous process and queued again.
	Requeued bool `json:"requeued,omitempty"`
}

// job is the manager's internal record, protected by the manager
// mutex.
type job struct {
	id       string
	endpoint string
	key      string
	request  []byte
	deadline time.Duration

	state       State
	progress    Progress
	hasProgress bool
	// lastJournaled throttles progress journaling: a sample is appended
	// only when the stage changes or done advances by a visible step.
	lastJournaled Progress
	errMsg        string
	result        []byte

	createdMS, startedMS, finishedMS int64
	requeued                         bool

	// cancelRequested distinguishes a cooperative DELETE from a
	// deadline expiry or a process shutdown.
	cancelRequested bool
	cancel          context.CancelFunc

	// watch is closed and replaced on every observable change; Watch
	// hands it to pollers so progress streams never busy-wait.
	watch chan struct{}
}

func (j *job) snapshot() Snapshot {
	s := Snapshot{
		ID:             j.id,
		Endpoint:       j.endpoint,
		State:          j.state,
		Error:          j.errMsg,
		CreatedUnixMS:  j.createdMS,
		StartedUnixMS:  j.startedMS,
		FinishedUnixMS: j.finishedMS,
		Requeued:       j.requeued,
	}
	if j.hasProgress {
		p := j.progress
		s.Progress = &p
	}
	return s
}

// NewID derives a job identifier from the request's content-addressed
// cache key (itself a hash of the canonical netlist and options) and a
// per-submission nonce: identical requests submitted twice get distinct
// jobs, while their engine runs still collapse through the cache key.
func NewID(key, nonce string) string {
	h := sha256.New()
	h.Write([]byte("job\n"))
	h.Write([]byte(key))
	h.Write([]byte{'\n'})
	h.Write([]byte(nonce))
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// randomNonce is the default nonce source: 8 bytes from crypto/rand.
// (The deterministic-engine contract does not apply here — a nonce's
// entire job is to differ between submissions — and crypto/rand has no
// process-seeded global state to poison results with.)
func randomNonce() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform's entropy source is
		// broken; there is no useful fallback that keeps IDs unique.
		panic("jobs: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
