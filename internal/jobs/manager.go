package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/progress"
)

// ErrQueueFull is returned by Submit when the scheduler queue is at its
// depth limit; the serving layer maps it to 429 Too Many Requests so
// saturation is visible as back-pressure, never as timeouts.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrUnknownJob is returned for operations on job IDs the manager does
// not know (never created, or already garbage-collected).
var ErrUnknownJob = errors.New("jobs: unknown job")

// Runner executes one job's engine request and returns the response
// bytes the synchronous endpoint would have written. The serving layer
// supplies its cache-and-pool path here, so identical concurrent jobs
// single-flight into one engine run and an async result is
// byte-identical to the synchronous response for the same request.
type Runner func(ctx context.Context, spec Spec) ([]byte, error)

// Config configures a Manager. Zero values select defaults.
type Config struct {
	// Dir is the persistent store directory. Empty disables persistence:
	// jobs live in memory only and do not survive restarts.
	Dir string
	// Workers bounds concurrently executing jobs (default GOMAXPROCS).
	// Engine concurrency is additionally bounded by the serving layer's
	// worker pool, which the Runner acquires.
	Workers int
	// QueueDepth bounds jobs waiting to run; Submit fails with
	// ErrQueueFull beyond it (default 64).
	QueueDepth int
	// MaxJobs caps retained jobs; the oldest terminal jobs are
	// garbage-collected beyond it (default 1024).
	MaxJobs int
	// Retention is how long terminal jobs stay readable (default 1h).
	Retention time.Duration
	// Timeout is the per-job execution deadline, independent of any
	// HTTP request deadline (default 10m). A submission's timeout_ms
	// may shorten but never extend it.
	Timeout time.Duration
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
	// Nonce overrides the job-ID nonce source (tests). Default 8 bytes
	// of crypto/rand.
	Nonce func() string
}

// Stats is a point-in-time snapshot of the job subsystem's gauges and
// counters, published under /v1/stats and expvar.
type Stats struct {
	// Queued/Running/Done/Failed/Canceled count retained jobs by state.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// QueueDepth/QueueCap describe the scheduler queue.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Submitted/Completed/Requeued/Expired are lifetime counters:
	// accepted submissions, jobs reaching done, crash-recovered
	// re-queues, and garbage-collected jobs.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Requeued  int64 `json:"requeued"`
	Expired   int64 `json:"expired"`
	// JournalFsyncs counts store fsyncs (journal state records and
	// result blobs).
	JournalFsyncs int64 `json:"journal_fsyncs"`
}

// Manager owns the job table, the persistent store, and the scheduler
// workers. Create with New, stop with Close.
type Manager struct {
	cfg Config
	run Runner
	st  *store // nil when persistence is disabled

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan string

	mu   sync.Mutex
	jobs map[string]*job
	// queueLen counts IDs currently in the queue channel. It is the
	// admission gauge: Submit reserves a slot under mu and sends outside
	// it, so the send is guaranteed non-blocking (channel capacity covers
	// every reservation) and no channel operation happens under the lock.
	queueLen int

	submitted, completed, requeued, expired atomic.Int64
}

// New opens the store (when cfg.Dir is set), replays its journals —
// re-queueing jobs that were queued or running when the previous
// process died — and starts the scheduler workers and the retention
// sweeper.
func New(cfg Config, run Runner) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.Retention <= 0 {
		cfg.Retention = time.Hour
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Nonce == nil {
		cfg.Nonce = randomNonce
	}
	m := &Manager{cfg: cfg, run: run, jobs: make(map[string]*job)}
	m.ctx, m.cancel = context.WithCancel(context.Background())

	var recovered []*job
	if cfg.Dir != "" {
		st, err := openStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		m.st = st
		recovered, err = st.recover(cfg.Now())
		if err != nil {
			return nil, err
		}
	}
	// The queue must absorb every recovered job on top of the
	// configured depth, or a restart under a full backlog would drop
	// accepted (202'd) work.
	m.queue = make(chan string, cfg.QueueDepth+len(recovered))
	for _, j := range recovered {
		if j.deadline <= 0 {
			j.deadline = cfg.Timeout
		}
		m.jobs[j.id] = j
		if j.requeued {
			m.requeued.Add(1)
			// Re-journal the queued state so a second crash replays the
			// same decision, then hand it back to the scheduler.
			if err := m.st.appendState(j.id, Queued, "", cfg.Now().UnixMilli()); err != nil {
				return nil, err
			}
			m.queueLen++
			m.queue <- j.id
		}
	}

	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.workerLoop()
		}()
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.gcLoop()
	}()
	return m, nil
}

// Close stops accepting work, cancels running jobs, and joins every
// manager goroutine. Jobs interrupted mid-run keep their journal in
// the running state, so the next New on the same directory re-queues
// them — Close is indistinguishable from a crash on purpose.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// Submit accepts one job: journals it, enqueues it, and returns its
// snapshot. timeout, when positive, shortens the per-job deadline.
// Returns ErrQueueFull when the scheduler queue is at its limit.
func (m *Manager) Submit(endpoint, key string, request []byte, timeout time.Duration) (Snapshot, error) {
	deadline := m.cfg.Timeout
	if timeout > 0 && timeout < deadline {
		deadline = timeout
	}
	j := &job{
		id:        NewID(key, m.cfg.Nonce()),
		endpoint:  endpoint,
		key:       key,
		request:   append([]byte(nil), request...),
		deadline:  deadline,
		state:     Queued,
		createdMS: m.cfg.Now().UnixMilli(),
		watch:     make(chan struct{}),
	}
	m.mu.Lock()
	if m.queueLen >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return Snapshot{}, ErrQueueFull
	}
	if m.st != nil {
		if err := m.st.appendCreate(j); err != nil {
			m.mu.Unlock()
			return Snapshot{}, err
		}
	}
	m.jobs[j.id] = j
	m.submitted.Add(1)
	m.queueLen++
	m.gcLocked()
	snap := j.snapshot()
	m.mu.Unlock()
	// The slot was reserved under the lock and the channel's capacity
	// covers every reservation (depth plus recovery headroom), so this
	// send can never block.
	m.queue <- j.id
	return snap, nil
}

// Get returns the job's snapshot.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// Watch returns the job's snapshot plus a channel that is closed on
// its next observable change (state transition or progress sample).
func (m *Manager) Watch(id string) (Snapshot, <-chan struct{}, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, nil, false
	}
	return j.snapshot(), j.watch, true
}

// Result returns the response bytes of a done job.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrUnknownJob
	}
	if j.state != Done {
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: job %s is %s, not done", id, j.state)
	}
	val := j.result
	m.mu.Unlock()
	if val != nil {
		return val, nil
	}
	// Recovered done job: the blob lives only on disk.
	return m.st.readResult(id)
}

// Cancel requests cooperative cancellation: a queued job flips to
// canceled immediately; a running job's context is cancelled and the
// worker records the canceled state as soon as the engine unwinds
// (within one poll interval). Terminal jobs are left untouched.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	switch j.state {
	case Queued:
		j.cancelRequested = true
		m.transitionLocked(j, Canceled, "")
	case Running:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.snapshot(), true
}

// List returns every retained job, oldest first (ties broken by ID, so
// the order is deterministic).
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].CreatedUnixMS != out[k].CreatedUnixMS {
			return out[i].CreatedUnixMS < out[k].CreatedUnixMS
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Stats snapshots the subsystem counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		QueueDepth: m.queueLen,
		QueueCap:   m.cfg.QueueDepth,
	}
	for _, j := range m.jobs {
		switch j.state {
		case Queued:
			s.Queued++
		case Running:
			s.Running++
		case Done:
			s.Done++
		case Failed:
			s.Failed++
		case Canceled:
			s.Canceled++
		}
	}
	m.mu.Unlock()
	s.Submitted = m.submitted.Load()
	s.Completed = m.completed.Load()
	s.Requeued = m.requeued.Load()
	s.Expired = m.expired.Load()
	s.JournalFsyncs = m.st.Fsyncs()
	return s
}

// workerLoop drains the queue until the manager closes.
func (m *Manager) workerLoop() {
	for {
		select {
		case <-m.ctx.Done():
			return
		case id := <-m.queue:
			m.runJob(id)
		}
	}
}

// runJob executes one dequeued job end to end.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	m.queueLen--
	j, ok := m.jobs[id]
	if !ok || j.state != Queued {
		// Cancelled while queued, or GC'd: nothing to run.
		m.mu.Unlock()
		return
	}
	jctx, cancel := context.WithTimeout(m.ctx, j.deadline)
	j.cancel = cancel
	m.transitionLocked(j, Running, "")
	spec := Spec{ID: j.id, Endpoint: j.endpoint, Key: j.key, Request: j.request}
	m.mu.Unlock()
	defer cancel()

	val, err := m.run(progressContext(jctx, m, id), spec)

	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		if m.st != nil {
			if werr := m.st.writeResult(id, val); werr != nil {
				m.transitionLocked(j, Failed, werr.Error())
				return
			}
		}
		j.result = val
		m.completed.Add(1)
		m.transitionLocked(j, Done, "")
	case j.cancelRequested:
		m.transitionLocked(j, Canceled, "")
	case m.ctx.Err() != nil:
		// Manager shutdown: leave the journal in the running state so
		// the next process re-queues the job — a clean Close is
		// indistinguishable from a crash by design.
		j.state = Queued
	case errors.Is(err, context.DeadlineExceeded):
		m.transitionLocked(j, Failed, "job deadline exceeded after "+j.deadline.String())
	default:
		m.transitionLocked(j, Failed, err.Error())
	}
}

// progressContext attaches the manager's progress sink for one job.
// (Free function rather than a closure-in-runJob so the locking story
// stays in updateProgress.)
func progressContext(ctx context.Context, m *Manager, id string) context.Context {
	return progress.With(ctx, func(stage string, done, total int64) {
		m.updateProgress(id, stage, done, total)
	})
}

// updateProgress records one sample, clamping so done never regresses
// within a stage, and journals it at a throttled granularity (stage
// changes and ≥1% advances).
func (m *Manager) updateProgress(id, stage string, done, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.state != Running {
		return
	}
	if j.hasProgress && j.progress.Stage == stage && done < j.progress.Done {
		return // monotonicity clamp
	}
	j.progress = Progress{Stage: stage, Done: done, Total: total}
	j.hasProgress = true
	m.notifyLocked(j)
	if m.st == nil {
		return
	}
	step := total / 100
	if step < 1 {
		step = 1
	}
	if j.lastJournaled.Stage == stage && done < j.lastJournaled.Done+step && done != total {
		return
	}
	j.lastJournaled = j.progress
	// A failed progress append is not worth failing the job over; the
	// journal just reports staler progress after a crash.
	_ = m.st.appendProgress(id, j.progress)
}

// transitionLocked moves the job to a new state, journals it, and
// wakes watchers. Callers hold m.mu.
func (m *Manager) transitionLocked(j *job, s State, errMsg string) {
	ms := m.cfg.Now().UnixMilli()
	j.state = s
	j.errMsg = errMsg
	switch s {
	case Running:
		j.startedMS = ms
	case Done, Failed, Canceled:
		j.finishedMS = ms
	}
	if m.st != nil {
		// Journal failures must not wedge the in-memory state machine;
		// the job proceeds and the journal is simply behind (recovery
		// would re-run it, which is safe: results are content-addressed).
		_ = m.st.appendState(j.id, s, errMsg, ms)
	}
	m.notifyLocked(j)
}

// notifyLocked wakes every Watch waiter on j.
func (m *Manager) notifyLocked(j *job) {
	close(j.watch)
	j.watch = make(chan struct{})
}

// gcLoop sweeps expired jobs until the manager closes.
func (m *Manager) gcLoop() {
	interval := m.cfg.Retention / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
			m.mu.Lock()
			m.gcLocked()
			m.mu.Unlock()
		}
	}
}

// gcLocked enforces the retention policy: terminal jobs older than
// Retention are removed, then the oldest terminal jobs beyond MaxJobs.
// Queued and running jobs are never collected. Callers hold m.mu.
func (m *Manager) gcLocked() {
	cutoff := m.cfg.Now().Add(-m.cfg.Retention).UnixMilli()
	var terminal []*job
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			continue
		}
		if j.finishedMS <= cutoff {
			m.removeLocked(j)
			continue
		}
		terminal = append(terminal, j)
	}
	over := len(m.jobs) - m.cfg.MaxJobs
	if over <= 0 {
		return
	}
	sort.Slice(terminal, func(i, k int) bool {
		if terminal[i].finishedMS != terminal[k].finishedMS {
			return terminal[i].finishedMS < terminal[k].finishedMS
		}
		return terminal[i].id < terminal[k].id
	})
	for i := 0; i < len(terminal) && over > 0; i++ {
		m.removeLocked(terminal[i])
		over--
	}
}

// removeLocked deletes one job from the table and the store.
func (m *Manager) removeLocked(j *job) {
	delete(m.jobs, j.id)
	m.expired.Add(1)
	if m.st != nil {
		// Best effort: a leftover file pair is re-read (and re-collected)
		// on the next recovery, never served.
		_ = m.st.remove(j.id)
	}
}
