package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Journal file layout: every job owns <id>.jnl, a JSON-lines journal
// whose first line is a create record and whose remaining lines are
// state transitions and progress samples, strictly appended. A job's
// result is a separate <id>.res blob written to a temp file, fsynced,
// and atomically renamed into place *before* the done record is
// journaled — so a journal that says done implies a readable result,
// and a crash between the two leaves a running job that recovery
// simply re-queues.
//
// Recovery is deliberately forgiving at the tail and strict in the
// middle: a torn final line is what an append interrupted by SIGKILL
// looks like, so it is ignored; garbage before the final line means
// the file did not grow append-only and the job is marked failed
// rather than trusted or wedged.

// record is one journal line. Op selects which fields are meaningful.
type record struct {
	// Op is "create", "state", or "progress".
	Op string `json:"op"`
	// Create carries the immutable job description (op "create").
	Create *createRecord `json:"create,omitempty"`
	// State is the entered state (op "state").
	State State `json:"state,omitempty"`
	// Error is the failure reason accompanying a failed state.
	Error string `json:"error,omitempty"`
	// MS is the transition timestamp in Unix milliseconds (op "state").
	MS int64 `json:"ms,omitempty"`
	// Stage/Done/Total are the progress sample (op "progress").
	Stage string `json:"stage,omitempty"`
	Done  int64  `json:"done,omitempty"`
	Total int64  `json:"total,omitempty"`
}

// createRecord is the journal's immutable job description: everything
// needed to re-run the job after a restart.
type createRecord struct {
	ID         string          `json:"id"`
	Endpoint   string          `json:"endpoint"`
	Key        string          `json:"key"`
	Request    json.RawMessage `json:"request"`
	DeadlineMS int64           `json:"deadline_ms"`
	CreatedMS  int64           `json:"created_ms"`
}

// store persists jobs under one directory. A nil *store (no -job-dir)
// disables persistence; the manager checks before every call.
type store struct {
	dir    string
	fsyncs atomic.Int64
}

// openStore creates dir if needed and returns the store.
func openStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create store dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (st *store) journalPath(id string) string { return filepath.Join(st.dir, id+".jnl") }
func (st *store) resultPath(id string) string  { return filepath.Join(st.dir, id+".res") }

// appendLine marshals rec and appends it as one line to the job's
// journal, fsyncing when sync is set (state transitions; progress
// samples ride on the next sync).
func (st *store) appendLine(id string, rec record, sync bool) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: marshal journal record: %w", err)
	}
	f, err := os.OpenFile(st.journalPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: open journal: %w", err)
	}
	_, werr := f.Write(append(b, '\n'))
	var serr error
	if sync && werr == nil {
		serr = f.Sync()
		if serr == nil {
			st.fsyncs.Add(1)
		}
	}
	cerr := f.Close()
	switch {
	case werr != nil:
		return fmt.Errorf("jobs: append journal: %w", werr)
	case serr != nil:
		return fmt.Errorf("jobs: sync journal: %w", serr)
	case cerr != nil:
		return fmt.Errorf("jobs: close journal: %w", cerr)
	}
	return nil
}

// appendCreate journals the job's create record (fsynced: acceptance
// of a 202 must survive a crash).
func (st *store) appendCreate(j *job) error {
	return st.appendLine(j.id, record{Op: "create", Create: &createRecord{
		ID:         j.id,
		Endpoint:   j.endpoint,
		Key:        j.key,
		Request:    json.RawMessage(j.request),
		DeadlineMS: j.deadline.Milliseconds(),
		CreatedMS:  j.createdMS,
	}}, true)
}

// appendState journals a state transition (fsynced).
func (st *store) appendState(id string, s State, errMsg string, ms int64) error {
	return st.appendLine(id, record{Op: "state", State: s, Error: errMsg, MS: ms}, true)
}

// appendProgress journals a progress sample (not fsynced — samples are
// advisory and the next state transition syncs the file).
func (st *store) appendProgress(id string, p Progress) error {
	return st.appendLine(id, record{Op: "progress", Stage: p.Stage, Done: p.Done, Total: p.Total}, false)
}

// writeResult atomically installs the job's result blob: temp file in
// the same directory, fsync, rename. Readers either see the complete
// blob or no file at all.
func (st *store) writeResult(id string, val []byte) error {
	tmp := st.resultPath(id) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: create result temp: %w", err)
	}
	_, werr := f.Write(val)
	var serr error
	if werr == nil {
		serr = f.Sync()
		if serr == nil {
			st.fsyncs.Add(1)
		}
	}
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		_ = os.Remove(tmp)
		if werr == nil {
			werr = serr
		}
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("jobs: write result: %w", werr)
	}
	if err := os.Rename(tmp, st.resultPath(id)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("jobs: install result: %w", err)
	}
	// The rename updated directory metadata; without a directory fsync a
	// crash can forget the installed name even though the blob's bytes
	// are durable.
	if err := st.syncDir(); err != nil {
		return fmt.Errorf("jobs: sync result dir: %w", err)
	}
	return nil
}

// syncDir fsyncs the store directory so renames inside it survive a
// crash (the tail of the tmp→fsync→rename→dir-sync discipline).
func (st *store) syncDir() error {
	d, err := os.Open(st.dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return cerr
	}
	st.fsyncs.Add(1)
	return nil
}

// readResult returns the job's result blob.
func (st *store) readResult(id string) ([]byte, error) {
	b, err := os.ReadFile(st.resultPath(id))
	if err != nil {
		return nil, fmt.Errorf("jobs: read result: %w", err)
	}
	return b, nil
}

// remove deletes the job's journal and result files (GC).
func (st *store) remove(id string) error {
	jerr := os.Remove(st.journalPath(id))
	rerr := os.Remove(st.resultPath(id))
	if jerr != nil && !os.IsNotExist(jerr) {
		return fmt.Errorf("jobs: remove journal: %w", jerr)
	}
	if rerr != nil && !os.IsNotExist(rerr) {
		return fmt.Errorf("jobs: remove result: %w", rerr)
	}
	return nil
}

// recover replays every journal in the store directory and returns the
// reconstructed jobs sorted by creation time then ID. Jobs that were
// queued or running are returned in state Queued with requeued set;
// the caller re-journals and re-queues them. Corrupted journals yield
// Failed jobs; a torn final line is silently dropped.
func (st *store) recover(now time.Time) ([]*job, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: scan store dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".jnl") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*job
	for _, name := range names {
		id := strings.TrimSuffix(name, ".jnl")
		b, err := os.ReadFile(filepath.Join(st.dir, name))
		if err != nil {
			return nil, fmt.Errorf("jobs: read journal %s: %w", name, err)
		}
		out = append(out, st.replay(id, b, now))
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].createdMS != out[k].createdMS {
			return out[i].createdMS < out[k].createdMS
		}
		return out[i].id < out[k].id
	})
	return out, nil
}

// replay reconstructs one job from its journal bytes.
func (st *store) replay(id string, data []byte, now time.Time) *job {
	j := &job{id: id, state: Queued, watch: make(chan struct{})}
	fail := func(msg string) *job {
		j.state = Failed
		j.errMsg = msg
		if j.finishedMS == 0 {
			j.finishedMS = now.UnixMilli()
		}
		return j
	}
	lines := bytes.Split(data, []byte{'\n'})
	// Drop the empty tail produced by the final newline, so "last line"
	// below means the last record actually written.
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return fail("journal corrupted: empty file")
	}
	for i, line := range lines {
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				// Torn final append (crash mid-write): everything before
				// it is intact, use it.
				break
			}
			return fail("journal corrupted: unreadable record before the final line")
		}
		switch rec.Op {
		case "create":
			if i != 0 || rec.Create == nil || rec.Create.ID != id {
				return fail("journal corrupted: misplaced or mismatched create record")
			}
			j.endpoint = rec.Create.Endpoint
			j.key = rec.Create.Key
			j.request = []byte(rec.Create.Request)
			j.deadline = time.Duration(rec.Create.DeadlineMS) * time.Millisecond
			j.createdMS = rec.Create.CreatedMS
		case "state":
			if i == 0 {
				return fail("journal corrupted: missing create record")
			}
			if !rec.State.valid() {
				return fail("journal corrupted: unknown state " + string(rec.State))
			}
			j.state = rec.State
			j.errMsg = rec.Error
			switch rec.State {
			case Running:
				j.startedMS = rec.MS
			case Done, Failed, Canceled:
				j.finishedMS = rec.MS
			}
		case "progress":
			if i == 0 {
				return fail("journal corrupted: missing create record")
			}
			j.progress = Progress{Stage: rec.Stage, Done: rec.Done, Total: rec.Total}
			j.hasProgress = true
			j.lastJournaled = j.progress
		default:
			return fail("journal corrupted: unknown record op " + rec.Op)
		}
	}
	if j.endpoint == "" && j.state != Failed {
		return fail("journal corrupted: no create record")
	}
	switch j.state {
	case Done:
		// The done record is only written after the result blob rename,
		// so a missing blob means the directory was tampered with.
		if _, err := os.Stat(st.resultPath(id)); err != nil {
			return fail("result blob missing for completed job")
		}
	case Queued, Running:
		// The process died with the job incomplete: re-queue it. Its
		// progress restarts from the engine's next report.
		j.state = Queued
		j.requeued = true
		j.startedMS = 0
	}
	return j
}

// Fsyncs reports how many fsyncs the store has issued (journal state
// records and result blobs).
func (st *store) Fsyncs() int64 {
	if st == nil {
		return 0
	}
	return st.fsyncs.Load()
}
