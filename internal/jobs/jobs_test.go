package jobs

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/progress"
)

// testRunner is a controllable Runner: it records which jobs it ran,
// signals when a job starts, and blocks until released or cancelled.
type testRunner struct {
	mu      sync.Mutex
	ran     []string
	started chan string   // receives spec.ID when a run begins (cap 16)
	release chan struct{} // close to let blocked runs finish
	block   bool
}

func newTestRunner(block bool) *testRunner {
	return &testRunner{
		started: make(chan string, 16),
		release: make(chan struct{}),
		block:   block,
	}
}

func (r *testRunner) run(ctx context.Context, spec Spec) ([]byte, error) {
	r.mu.Lock()
	r.ran = append(r.ran, spec.ID)
	r.mu.Unlock()
	r.started <- spec.ID
	if r.block {
		select {
		case <-r.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return resultBytes(spec), nil
}

// resultBytes is the deterministic "engine response" for a spec, so
// byte-identity across restarts is checkable.
func resultBytes(spec Spec) []byte {
	return []byte(fmt.Sprintf("{\"endpoint\":%q,\"key\":%q,\"req\":%q}", spec.Endpoint, spec.Key, spec.Request))
}

func (r *testRunner) ranIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.ran...)
}

func newTestManager(t *testing.T, cfg Config, run Runner) *Manager {
	t.Helper()
	m, err := New(cfg, run)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitState blocks until the job reaches want, failing fast if it lands
// in a different terminal state.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		snap, ch, ok := m.Watch(id)
		if !ok {
			t.Fatalf("job %s disappeared while waiting for %s", id, want)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, snap.State, snap.Error, want)
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("timed out waiting for job %s to reach %s (at %s)", id, want, snap.State)
		}
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	r := newTestRunner(false)
	m := newTestManager(t, Config{Dir: t.TempDir(), Workers: 2}, r.run)
	snap, err := m.Submit("/v1/plan", "key-1", []byte(`{"bench":"x"}`), 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap.State != Queued {
		t.Fatalf("submitted state = %s, want queued", snap.State)
	}
	got := waitState(t, m, snap.ID, Done)
	if got.StartedUnixMS == 0 || got.FinishedUnixMS == 0 {
		t.Errorf("timestamps not populated: %+v", got)
	}
	val, err := m.Result(snap.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	want := resultBytes(Spec{ID: snap.ID, Endpoint: "/v1/plan", Key: "key-1", Request: []byte(`{"bench":"x"}`)})
	if !bytes.Equal(val, want) {
		t.Errorf("result = %s, want %s", val, want)
	}
	if st := m.Stats(); st.Completed != 1 || st.Done != 1 || st.JournalFsyncs == 0 {
		t.Errorf("stats after completion = %+v", st)
	}
}

func TestInMemoryModeWithoutDir(t *testing.T) {
	r := newTestRunner(false)
	m := newTestManager(t, Config{Workers: 1}, r.run)
	snap, err := m.Submit("/v1/atpg", "k", []byte(`{}`), 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, snap.ID, Done)
	if _, err := m.Result(snap.ID); err != nil {
		t.Fatalf("Result: %v", err)
	}
	if st := m.Stats(); st.JournalFsyncs != 0 {
		t.Errorf("in-memory mode issued %d fsyncs", st.JournalFsyncs)
	}
}

func TestQueueFull(t *testing.T) {
	r := newTestRunner(true)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1}, r.run)
	a, err := m.Submit("/v1/plan", "a", []byte(`{}`), 0)
	if err != nil {
		t.Fatalf("Submit a: %v", err)
	}
	<-r.started // a is running, queue empty again
	if _, err := m.Submit("/v1/plan", "b", []byte(`{}`), 0); err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	if _, err := m.Submit("/v1/plan", "c", []byte(`{}`), 0); err != ErrQueueFull {
		t.Fatalf("Submit c err = %v, want ErrQueueFull", err)
	}
	st := m.Stats()
	if st.Submitted != 2 || st.QueueDepth != 1 || st.QueueCap != 1 {
		t.Errorf("stats at saturation = %+v", st)
	}
	close(r.release)
	waitState(t, m, a.ID, Done)
}

func TestCancelQueuedJob(t *testing.T) {
	r := newTestRunner(true)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4}, r.run)
	a, err := m.Submit("/v1/plan", "a", []byte(`{}`), 0)
	if err != nil {
		t.Fatalf("Submit a: %v", err)
	}
	<-r.started
	b, err := m.Submit("/v1/plan", "b", []byte(`{}`), 0)
	if err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	snap, ok := m.Cancel(b.ID)
	if !ok || snap.State != Canceled {
		t.Fatalf("Cancel queued: ok=%v state=%s, want canceled immediately", ok, snap.State)
	}
	close(r.release)
	waitState(t, m, a.ID, Done)
	for _, id := range r.ranIDs() {
		if id == b.ID {
			t.Error("cancelled-while-queued job was still executed")
		}
	}
}

func TestCancelRunningJobIsFast(t *testing.T) {
	r := newTestRunner(true)
	m := newTestManager(t, Config{Dir: t.TempDir(), Workers: 1}, r.run)
	a, err := m.Submit("/v1/faultsim", "a", []byte(`{}`), 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-r.started
	waitState(t, m, a.ID, Running)
	start := time.Now()
	if _, ok := m.Cancel(a.ID); !ok {
		t.Fatal("Cancel: job not found")
	}
	snap := waitState(t, m, a.ID, Canceled)
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("cancel took %v, want < 500ms", elapsed)
	}
	if snap.Error != "" {
		t.Errorf("canceled job carries error %q", snap.Error)
	}
}

func TestCancelTerminalJobIsNoOp(t *testing.T) {
	r := newTestRunner(false)
	m := newTestManager(t, Config{Workers: 1}, r.run)
	a, _ := m.Submit("/v1/plan", "a", []byte(`{}`), 0)
	waitState(t, m, a.ID, Done)
	snap, ok := m.Cancel(a.ID)
	if !ok || snap.State != Done {
		t.Fatalf("Cancel done job: ok=%v state=%s, want done untouched", ok, snap.State)
	}
}

func TestJobDeadlineFailsJob(t *testing.T) {
	r := newTestRunner(true)
	m := newTestManager(t, Config{Workers: 1, Timeout: 50 * time.Millisecond}, r.run)
	a, err := m.Submit("/v1/plan", "a", []byte(`{}`), 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitState(t, m, a.ID, Failed)
	if !strings.Contains(snap.Error, "deadline") {
		t.Errorf("failure reason = %q, want deadline mention", snap.Error)
	}
}

// TestKillRestartRecovery is the durability pin: a job interrupted
// mid-run (Close journals nothing terminal, exactly like SIGKILL) is
// re-queued by the next manager on the same directory and completes
// with bytes identical to an uninterrupted run.
func TestKillRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	req := []byte(`{"bench":"recover-me"}`)

	r1 := newTestRunner(true)
	m1, err := New(Config{Dir: dir, Workers: 1}, r1.run)
	if err != nil {
		t.Fatalf("New m1: %v", err)
	}
	submitted, err := m1.Submit("/v1/plan", "key-r", req, 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-r1.started
	waitState(t, m1, submitted.ID, Running)
	m1.Close() // SIGKILL stand-in: running job keeps a non-terminal journal

	r2 := newTestRunner(false)
	m2 := newTestManager(t, Config{Dir: dir, Workers: 1}, r2.run)
	snap, ok := m2.Get(submitted.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if !snap.Requeued {
		t.Error("recovered job not marked requeued")
	}
	final := waitState(t, m2, submitted.ID, Done)
	if !final.Requeued {
		t.Error("finished recovered job lost its requeued marker")
	}
	got, err := m2.Result(submitted.ID)
	if err != nil {
		t.Fatalf("Result after recovery: %v", err)
	}
	want := resultBytes(Spec{Endpoint: "/v1/plan", Key: "key-r", Request: req})
	if !bytes.Equal(got, want) {
		t.Errorf("recovered result = %s, want byte-identical %s", got, want)
	}
	if st := m2.Stats(); st.Requeued != 1 {
		t.Errorf("Requeued counter = %d, want 1", st.Requeued)
	}
}

// TestDoneJobSurvivesRestart proves a completed job's result is served
// from the on-disk blob by a fresh manager without re-running anything.
func TestDoneJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	r1 := newTestRunner(false)
	m1, err := New(Config{Dir: dir, Workers: 1}, r1.run)
	if err != nil {
		t.Fatalf("New m1: %v", err)
	}
	a, _ := m1.Submit("/v1/atpg", "k", []byte(`{"n":1}`), 0)
	waitState(t, m1, a.ID, Done)
	first, err := m1.Result(a.ID)
	if err != nil {
		t.Fatalf("Result m1: %v", err)
	}
	m1.Close()

	r2 := newTestRunner(false)
	m2 := newTestManager(t, Config{Dir: dir, Workers: 1}, r2.run)
	snap, ok := m2.Get(a.ID)
	if !ok || snap.State != Done {
		t.Fatalf("restarted state = %v/%s, want done", ok, snap.State)
	}
	second, err := m2.Result(a.ID)
	if err != nil {
		t.Fatalf("Result m2: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("result changed across restart: %s vs %s", first, second)
	}
	if len(r2.ranIDs()) != 0 {
		t.Error("restart re-ran an already-done job")
	}
}

// TestTornFinalJournalLine proves a crash mid-append (torn last line)
// is tolerated: everything before the tear replays.
func TestTornFinalJournalLine(t *testing.T) {
	dir := t.TempDir()
	r1 := newTestRunner(false)
	m1, err := New(Config{Dir: dir, Workers: 1}, r1.run)
	if err != nil {
		t.Fatalf("New m1: %v", err)
	}
	a, _ := m1.Submit("/v1/plan", "k", []byte(`{}`), 0)
	waitState(t, m1, a.ID, Done)
	m1.Close()

	jnl := filepath.Join(dir, a.ID+".jnl")
	f, err := os.OpenFile(jnl, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.WriteString(`{"op":"progress","stage":"torn`); err != nil {
		t.Fatalf("append torn line: %v", err)
	}
	f.Close()

	m2 := newTestManager(t, Config{Dir: dir, Workers: 1}, newTestRunner(false).run)
	snap, ok := m2.Get(a.ID)
	if !ok || snap.State != Done {
		t.Fatalf("after torn tail: ok=%v state=%s error=%q, want done", ok, snap.State, snap.Error)
	}
	if _, err := m2.Result(a.ID); err != nil {
		t.Fatalf("Result after torn tail: %v", err)
	}
}

// TestCorruptJournalMiddleFailsJob proves garbage before the final
// line marks the job failed — visible and terminal, never wedged.
func TestCorruptJournalMiddleFailsJob(t *testing.T) {
	dir := t.TempDir()
	id := "deadbeefdeadbeefdeadbeefdeadbeef"
	journal := `{"op":"create","create":{"id":"` + id + `","endpoint":"/v1/plan","key":"k","request":{},"deadline_ms":60000,"created_ms":5}}` + "\n" +
		"NOT JSON AT ALL\n" +
		`{"op":"state","state":"running","ms":6}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, id+".jnl"), []byte(journal), 0o644); err != nil {
		t.Fatalf("write journal: %v", err)
	}
	m := newTestManager(t, Config{Dir: dir, Workers: 1}, newTestRunner(false).run)
	snap, ok := m.Get(id)
	if !ok {
		t.Fatal("corrupted job missing from table")
	}
	if snap.State != Failed || !strings.Contains(snap.Error, "journal corrupted") {
		t.Fatalf("corrupted journal: state=%s error=%q, want failed + journal corrupted", snap.State, snap.Error)
	}
	if len(m.queue) != 0 {
		t.Error("corrupted job was queued for execution")
	}
}

// TestDoneWithoutResultBlobFailsJob: a done record with no result blob
// means the directory was tampered with; the job must surface as failed.
func TestDoneWithoutResultBlobFailsJob(t *testing.T) {
	dir := t.TempDir()
	r1 := newTestRunner(false)
	m1, err := New(Config{Dir: dir, Workers: 1}, r1.run)
	if err != nil {
		t.Fatalf("New m1: %v", err)
	}
	a, _ := m1.Submit("/v1/plan", "k", []byte(`{}`), 0)
	waitState(t, m1, a.ID, Done)
	m1.Close()
	if err := os.Remove(filepath.Join(dir, a.ID+".res")); err != nil {
		t.Fatalf("remove blob: %v", err)
	}
	m2 := newTestManager(t, Config{Dir: dir, Workers: 1}, newTestRunner(false).run)
	snap, _ := m2.Get(a.ID)
	if snap.State != Failed || !strings.Contains(snap.Error, "result blob missing") {
		t.Fatalf("state=%s error=%q, want failed + result blob missing", snap.State, snap.Error)
	}
}

// TestCloseJoinsWorkers is the load-bearing test for the golint
// goroutine allowlist entries on Manager.New: the worker and GC
// goroutines spawned there must all be joined by Close, even with a
// job in flight.
func TestCloseJoinsWorkers(t *testing.T) {
	r := newTestRunner(true)
	m, err := New(Config{Workers: 4}, r.run)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Submit("/v1/plan", "a", []byte(`{}`), 0); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-r.started
	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not join manager goroutines within 5s")
	}
}

func TestProgressMonotonicClamp(t *testing.T) {
	reported := make(chan struct{})
	release := make(chan struct{})
	run := func(ctx context.Context, spec Spec) ([]byte, error) {
		progress.Report(ctx, "patterns", 1, 10)
		progress.Report(ctx, "patterns", 5, 10)
		progress.Report(ctx, "patterns", 3, 10) // regression: must be clamped
		close(reported)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte("ok"), nil
	}
	m := newTestManager(t, Config{Dir: t.TempDir(), Workers: 1}, run)
	a, err := m.Submit("/v1/faultsim", "k", []byte(`{}`), 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-reported
	snap, ok := m.Get(a.ID)
	if !ok || snap.Progress == nil {
		t.Fatalf("no progress visible: %+v", snap)
	}
	if snap.Progress.Done != 5 || snap.Progress.Total != 10 || snap.Progress.Stage != "patterns" {
		t.Errorf("progress = %+v, want patterns 5/10 (regression clamped)", *snap.Progress)
	}
	close(release)
	waitState(t, m, a.ID, Done)
}

func TestWatchSignalsTransitions(t *testing.T) {
	r := newTestRunner(true)
	m := newTestManager(t, Config{Workers: 1}, r.run)
	a, _ := m.Submit("/v1/plan", "k", []byte(`{}`), 0)
	_, ch, ok := m.Watch(a.ID)
	if !ok {
		t.Fatal("Watch: job missing")
	}
	<-r.started
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("watch channel not signalled on queued→running")
	}
	close(r.release)
	waitState(t, m, a.ID, Done)
}

// fakeClock is a race-safe manual clock for retention tests.
type fakeClock struct{ ms atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.UnixMilli(c.ms.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ms.Add(d.Milliseconds()) }

func TestRetentionGC(t *testing.T) {
	clk := &fakeClock{}
	clk.ms.Store(1_000_000)
	dir := t.TempDir()
	r := newTestRunner(false)
	m := newTestManager(t, Config{Dir: dir, Workers: 1, Retention: time.Minute, Now: clk.now}, r.run)
	a, _ := m.Submit("/v1/plan", "a", []byte(`{}`), 0)
	waitState(t, m, a.ID, Done)
	clk.advance(2 * time.Minute)
	b, _ := m.Submit("/v1/plan", "b", []byte(`{}`), 0) // Submit sweeps
	waitState(t, m, b.ID, Done)
	if _, ok := m.Get(a.ID); ok {
		t.Error("expired job survived retention sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, a.ID+".jnl")); !os.IsNotExist(err) {
		t.Errorf("expired job's journal still on disk (err=%v)", err)
	}
	if st := m.Stats(); st.Expired != 1 {
		t.Errorf("Expired counter = %d, want 1", st.Expired)
	}
}

func TestMaxJobsEvictsOldestTerminal(t *testing.T) {
	clk := &fakeClock{}
	clk.ms.Store(1_000_000)
	r := newTestRunner(false)
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 2, Now: clk.now}, r.run)
	var ids []string
	for i := 0; i < 3; i++ {
		s, err := m.Submit("/v1/plan", fmt.Sprintf("k%d", i), []byte(`{}`), 0)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitState(t, m, s.ID, Done)
		clk.advance(time.Second)
		ids = append(ids, s.ID)
	}
	// The third submit's sweep ran while job 2 was queued; sweep again
	// now that all three are terminal.
	if _, err := m.Submit("/v1/plan", "k3", []byte(`{}`), 0); err != nil {
		t.Fatalf("Submit k3: %v", err)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest terminal job survived MaxJobs eviction")
	}
	if _, ok := m.Get(ids[2]); !ok {
		t.Error("newest done job was evicted")
	}
}

func TestListSortedByCreation(t *testing.T) {
	clk := &fakeClock{}
	clk.ms.Store(1_000_000)
	r := newTestRunner(false)
	m := newTestManager(t, Config{Workers: 1, Now: clk.now}, r.run)
	var want []string
	for i := 0; i < 3; i++ {
		s, _ := m.Submit("/v1/plan", fmt.Sprintf("k%d", i), []byte(`{}`), 0)
		waitState(t, m, s.ID, Done)
		clk.advance(time.Second)
		want = append(want, s.ID)
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("List len = %d, want 3", len(list))
	}
	for i, s := range list {
		if s.ID != want[i] {
			t.Errorf("List[%d] = %s, want %s", i, s.ID, want[i])
		}
	}
}

func TestNewIDDistinctPerNonce(t *testing.T) {
	a, b := NewID("key", "n1"), NewID("key", "n2")
	if a == b {
		t.Error("distinct nonces produced the same job ID")
	}
	if len(a) != 32 {
		t.Errorf("ID length = %d, want 32", len(a))
	}
	if NewID("key", "n1") != a {
		t.Error("NewID not deterministic for fixed inputs")
	}
}
