package diag

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// testSet builds a complete deterministic test set for the circuit.
func testSet(t *testing.T, c *netlist.Circuit, faults []fault.Fault) [][]bool {
	t.Helper()
	ts, err := atpg.GenerateTests(c, faults, atpg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ts.Vectors
}

func TestInjectedFaultAlwaysTopCandidateClass(t *testing.T) {
	// Diagnosing a modelled fault must rank its equivalence class at
	// distance zero — the dictionary's defining property.
	for _, c := range []*netlist.Circuit{
		gen.C17(),
		gen.RandomDAG(2, 8, 40, gen.DAGOptions{}),
		gen.RippleCarryAdder(3),
	} {
		faults := fault.CollapsedUniverse(c)
		vecs := testSet(t, c, faults)
		d, err := Build(c, faults, vecs, FullResponse)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faults {
			cands, err := d.DiagnoseFault(c, f, vecs)
			if err != nil {
				t.Fatal(err)
			}
			if cands[0].Distance != 0 {
				t.Fatalf("%s: %s: best candidate at distance %d", c.Name(), f.Name(c), cands[0].Distance)
			}
			// The injected fault itself must be among the distance-0 set.
			found := false
			for _, cand := range cands {
				if cand.Distance > 0 {
					break
				}
				if cand.Fault == f {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: %s not in its own distance-0 class", c.Name(), f.Name(c))
			}
		}
	}
}

func TestFullResponseResolvesMoreThanPassFail(t *testing.T) {
	c := gen.RandomDAG(7, 10, 60, gen.DAGOptions{})
	faults := fault.CollapsedUniverse(c)
	vecs := testSet(t, c, faults)
	pf, err := Build(c, faults, vecs, PassFail)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Build(c, faults, vecs, FullResponse)
	if err != nil {
		t.Fatal(err)
	}
	upf, _ := pf.Resolution()
	ufr, _ := fr.Resolution()
	if ufr < upf {
		t.Errorf("full-response resolution %.3f below pass/fail %.3f", ufr, upf)
	}
	t.Logf("unique syndromes: pass/fail %.3f, full response %.3f", upf, ufr)
}

func TestDiagnoseDefectiveCircuit(t *testing.T) {
	// Build a "defective part": c17 with one gate swapped NAND->AND,
	// which behaves like no single modelled stuck-at exactly; diagnosis
	// must still return a ranked list with a sensible nearest candidate.
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	vecs := testSet(t, c, faults)
	d, err := Build(c, faults, vecs, FullResponse)
	if err != nil {
		t.Fatal(err)
	}
	b := netlist.NewBuilder("c17bad")
	g1 := b.Input("1")
	g2 := b.Input("2")
	g3 := b.Input("3")
	g6 := b.Input("6")
	g7 := b.Input("7")
	g10 := b.NandGate("10", g1, g3)
	g11 := b.NandGate("11", g3, g6)
	g16 := b.AndGate("16", g2, g11) // defect: NAND fabricated as AND
	g19 := b.NandGate("19", g11, g7)
	g22 := b.NandGate("22", g10, g16)
	g23 := b.NandGate("23", g16, g19)
	b.MarkOutput(g22)
	b.MarkOutput(g23)
	bad := b.MustBuild()

	cands, err := d.Diagnose(c, bad, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(faults) {
		t.Fatalf("candidates = %d", len(cands))
	}
	// The nearest candidates should implicate the neighbourhood of gate
	// 16 (its output or fanout), since the defect lives there.
	id16, _ := c.GateByName("16")
	near := c.FanoutCone(id16)
	nearSet := map[int]bool{}
	for _, g := range near {
		nearSet[g] = true
	}
	top := cands[0]
	if !nearSet[top.Fault.Gate] {
		t.Errorf("top candidate %s not in the defect neighbourhood", top.Fault.Name(c))
	}
}

func TestResolutionBounds(t *testing.T) {
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	vecs := testSet(t, c, faults)
	d, err := Build(c, faults, vecs, FullResponse)
	if err != nil {
		t.Fatal(err)
	}
	u, largest := d.Resolution()
	if u < 0 || u > 1 {
		t.Errorf("unique fraction out of range: %f", u)
	}
	if largest < 1 {
		t.Errorf("largest class = %d", largest)
	}
}

func TestBuildErrors(t *testing.T) {
	c := gen.C17()
	if _, err := Build(c, fault.CollapsedUniverse(c), nil, PassFail); err == nil {
		t.Error("expected error for empty test set")
	}
	if _, err := Build(c, []fault.Fault{{Gate: 999, Pin: -1}}, [][]bool{make([]bool, 5)}, PassFail); err == nil {
		t.Error("expected error for bad fault")
	}
	d, err := Build(c, fault.CollapsedUniverse(c), [][]bool{make([]bool, 5)}, PassFail)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DiagnoseFault(c, fault.Fault{Gate: 0, Pin: -1}, make([][]bool, 7)); err == nil {
		t.Error("expected error for mismatched test set size")
	}
}
