// Package diag implements fault-dictionary diagnosis, the classic
// downstream consumer of a fault simulator: every modelled fault's
// pass/fail behaviour over a test set is recorded up front (the
// dictionary); when a manufactured part fails, its observed syndrome is
// matched against the dictionary to rank candidate defect sites. The
// package supports both full-response dictionaries (per-pattern,
// per-output mismatch bits) and compact pass/fail dictionaries, and
// reports match quality so callers can distinguish exact hits from
// nearest-neighbour guesses.
package diag

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// Level selects dictionary resolution.
type Level uint8

const (
	// PassFail records one bit per pattern: did the pattern detect the
	// fault at any output. Small, the classic "stop on first fail" mode.
	PassFail Level = iota
	// FullResponse additionally records which outputs mismatched,
	// distinguishing faults that fail the same patterns differently.
	FullResponse
)

// Dictionary holds the precomputed syndromes of a fault list under a
// fixed test set.
type Dictionary struct {
	Level    Level
	Faults   []fault.Fault
	Patterns int
	// syndromes[i] is fault i's packed signature: pass/fail bits per
	// pattern, then (FullResponse) per-pattern output mismatch masks.
	syndromes [][]uint64
	outputs   int
}

// Build fault-simulates every fault against the vectors and records its
// syndrome. The test set is replayed bit-parallel; circuits with more
// than 64 outputs fold output mismatch masks modulo 64 (FullResponse).
func Build(c *netlist.Circuit, faults []fault.Fault, vecs [][]bool, level Level) (*Dictionary, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("diag: empty test set")
	}
	for _, f := range faults {
		if f.Gate < 0 || f.Gate >= c.NumGates() {
			return nil, fmt.Errorf("diag: fault %v: gate out of range", f)
		}
		if !f.IsStem() && f.Pin >= len(c.Fanin(f.Gate)) {
			return nil, fmt.Errorf("diag: fault %v: pin out of range", f)
		}
	}
	d := &Dictionary{
		Level:     level,
		Faults:    faults,
		Patterns:  len(vecs),
		syndromes: make([][]uint64, len(faults)),
		outputs:   c.NumOutputs(),
	}
	good, err := responses(c, nil, vecs)
	if err != nil {
		return nil, err
	}
	for fi := range faults {
		f := faults[fi]
		bad, err := responses(c, &f, vecs)
		if err != nil {
			return nil, err
		}
		d.syndromes[fi] = syndrome(good, bad, len(vecs), level)
	}
	return d, nil
}

// responses simulates the circuit (optionally with one fault injected)
// over the vectors and returns per-pattern packed output values:
// out[p] = output bits of pattern p folded into one word.
func responses(c *netlist.Circuit, f *fault.Fault, vecs [][]bool) ([]uint64, error) {
	sim := logic.New(c)
	src := pattern.NewVectors(vecs)
	words := make([]uint64, c.NumInputs())
	out := make([]uint64, 0, len(vecs))
	scratch := make([]uint64, c.NumGates())
	buf := make([]uint64, 0, 8)
	for {
		n := src.FillBlock(words)
		if n == 0 {
			break
		}
		var vals []uint64
		if f == nil {
			if err := sim.Run(words); err != nil {
				return nil, err
			}
			vals = sim.Values()
		} else {
			// Faulty evaluation (whole circuit, reference-style).
			var fv uint64
			if f.Stuck {
				fv = ^uint64(0)
			}
			for i, in := range c.Inputs() {
				scratch[in] = words[i]
			}
			for _, id := range c.TopoOrder() {
				g := c.Gate(id)
				if g.Type != netlist.Input {
					buf = buf[:0]
					for pin, fin := range g.Fanin {
						v := scratch[fin]
						if !f.IsStem() && f.Gate == id && f.Pin == pin {
							v = fv
						}
						buf = append(buf, v)
					}
					scratch[id] = g.Type.EvalWords(buf)
				}
				if f.IsStem() && f.Gate == id {
					scratch[id] = fv
				}
			}
			vals = scratch
		}
		for b := 0; b < n; b++ {
			var w uint64
			for oi, o := range c.Outputs() {
				if vals[o]>>uint(b)&1 == 1 {
					w ^= 1 << uint(oi%64)
				}
			}
			out = append(out, w)
		}
	}
	return out, nil
}

// syndrome packs the mismatch behaviour.
func syndrome(good, bad []uint64, patterns int, level Level) []uint64 {
	words := (patterns + 63) / 64
	var s []uint64
	if level == FullResponse {
		s = make([]uint64, words+patterns)
	} else {
		s = make([]uint64, words)
	}
	for p := 0; p < patterns; p++ {
		diff := good[p] ^ bad[p]
		if diff != 0 {
			s[p/64] |= 1 << uint(p%64)
			if level == FullResponse {
				s[words+p] = diff
			}
		}
	}
	return s
}

// Candidate is one diagnosis result.
type Candidate struct {
	Fault fault.Fault
	// Distance is the Hamming distance between the observed syndrome and
	// the candidate's dictionary entry (0 = exact match).
	Distance int
}

// Diagnose matches an observed defective part against the dictionary.
// The observed behaviour is supplied as the defective circuit itself
// (dc), which is simulated over the same test set the dictionary was
// built from; real flows would supply tester data instead. Candidates
// are returned sorted by distance, exact matches first, ties broken by
// fault order.
func (d *Dictionary) Diagnose(c *netlist.Circuit, dc *netlist.Circuit, vecs [][]bool) ([]Candidate, error) {
	if len(vecs) != d.Patterns {
		return nil, fmt.Errorf("diag: test set has %d vectors, dictionary built with %d", len(vecs), d.Patterns)
	}
	good, err := responses(c, nil, vecs)
	if err != nil {
		return nil, err
	}
	observed, err := responses(dc, nil, vecs)
	if err != nil {
		return nil, err
	}
	obs := syndrome(good, observed, d.Patterns, d.Level)
	cands := make([]Candidate, len(d.Faults))
	for fi := range d.Faults {
		cands[fi] = Candidate{Fault: d.Faults[fi], Distance: distance(obs, d.syndromes[fi])}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Distance < cands[j].Distance })
	return cands, nil
}

// DiagnoseFault is the self-test variant: the "defective part" is the
// original circuit with one modelled fault injected.
func (d *Dictionary) DiagnoseFault(c *netlist.Circuit, f fault.Fault, vecs [][]bool) ([]Candidate, error) {
	if len(vecs) != d.Patterns {
		return nil, fmt.Errorf("diag: test set has %d vectors, dictionary built with %d", len(vecs), d.Patterns)
	}
	good, err := responses(c, nil, vecs)
	if err != nil {
		return nil, err
	}
	bad, err := responses(c, &f, vecs)
	if err != nil {
		return nil, err
	}
	obs := syndrome(good, bad, d.Patterns, d.Level)
	cands := make([]Candidate, len(d.Faults))
	for fi := range d.Faults {
		cands[fi] = Candidate{Fault: d.Faults[fi], Distance: distance(obs, d.syndromes[fi])}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Distance < cands[j].Distance })
	return cands, nil
}

func distance(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] ^ b[i])
	}
	return n
}

// Resolution reports the dictionary's diagnostic quality over its own
// fault list: the fraction of faults whose syndrome is unique (perfectly
// diagnosable) and the size of the largest indistinguishable class.
func (d *Dictionary) Resolution() (uniqueFraction float64, largestClass int) {
	groups := make(map[string][]int)
	for fi, s := range d.syndromes {
		key := make([]byte, 0, len(s)*8)
		for _, w := range s {
			for shift := 0; shift < 64; shift += 8 {
				key = append(key, byte(w>>uint(shift)))
			}
		}
		groups[string(key)] = append(groups[string(key)], fi)
	}
	unique := 0
	for _, g := range groups {
		if len(g) == 1 {
			unique++
		}
		if len(g) > largestClass {
			largestClass = len(g)
		}
	}
	if len(d.syndromes) == 0 {
		return 1, 0
	}
	return float64(unique) / float64(len(d.syndromes)), largestClass
}
