package npc

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/pattern"
)

func TestReductionGadgetShape(t *testing.T) {
	sc := SetCover{NumElements: 4, Sets: [][]int{{0, 1}, {1, 2, 3}, {0, 3}}, K: 2}
	red, err := Reduce(sc)
	if err != nil {
		t.Fatal(err)
	}
	c := red.Circuit
	// Inputs: 4 elements + blocker t. Gates: 4 buffers + XOR trees
	// (1 + 2 + 1 XORs) + 3 set buffers + NOT + AND.
	if c.NumInputs() != 5 {
		t.Errorf("inputs = %d, want 5", c.NumInputs())
	}
	if len(red.Candidates) != 3 || len(red.TargetFaults) != 4 {
		t.Errorf("candidates/targets = %d/%d", len(red.Candidates), len(red.TargetFaults))
	}
	if !c.HasReconvergentFanout() {
		t.Error("the blocker must make the gadget reconvergent")
	}
}

func TestBlockerHidesFaults(t *testing.T) {
	sc := SetCover{NumElements: 3, Sets: [][]int{{0, 1}, {1, 2}}, K: 1}
	red, err := Reduce(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Without observation points nothing is detectable, even exhaustively.
	res, err := fsim.Run(red.Circuit, red.TargetFaults, pattern.NewCounter(red.Circuit.NumInputs()), fsim.Options{
		MaxPatterns: 1 << uint(red.Circuit.NumInputs()),
		DropFaults:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FirstDetect) != 0 {
		t.Errorf("blocker leaked: %d target faults detected without OPs", len(res.FirstDetect))
	}
}

func TestDetectsMatchesSetMembership(t *testing.T) {
	sc := SetCover{NumElements: 4, Sets: [][]int{{0, 1}, {1, 2, 3}, {0, 3}}, K: 2}
	red, err := Reduce(sc)
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range sc.Sets {
		det, err := red.Detects([]int{j})
		if err != nil {
			t.Fatal(err)
		}
		inSet := make(map[int]bool)
		for _, e := range s {
			inSet[e] = true
		}
		for e, d := range det {
			if d != inSet[e] {
				t.Errorf("set %d: element %d detected=%v, member=%v", j, e, d, inSet[e])
			}
		}
	}
}

func TestFeasibleMatchesCover(t *testing.T) {
	sc := SetCover{NumElements: 4, Sets: [][]int{{0, 1}, {1, 2, 3}, {0, 3}}, K: 2}
	red, err := Reduce(sc)
	if err != nil {
		t.Fatal(err)
	}
	// {0,1} ∪ {1,2,3} covers everything; {0,1} ∪ {0,3} misses 2.
	if ok, _ := red.Feasible([]int{0, 1}); !ok {
		t.Error("cover {S0,S1} reported infeasible")
	}
	if ok, _ := red.Feasible([]int{0, 2}); ok {
		t.Error("non-cover {S0,S2} reported feasible")
	}
}

func TestTPIMinimumEqualsSetCoverMinimum(t *testing.T) {
	// The reduction's correctness property, checked end-to-end through the
	// fault simulator on random instances.
	for seed := int64(0); seed < 8; seed++ {
		sc := RandomInstance(seed, 6, 5, 3)
		red, err := Reduce(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		wantK := SolveSetCoverExact(sc)
		gotK, chosen, err := red.SolveTPIBruteForce()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if gotK != wantK {
			t.Errorf("seed %d: TPI minimum %d != set cover minimum %d", seed, gotK, wantK)
		}
		// The returned TPI solution must itself be a cover.
		covered := make([]bool, sc.NumElements)
		for _, j := range chosen {
			for _, e := range sc.Sets[j] {
				covered[e] = true
			}
		}
		for e, ok := range covered {
			if !ok {
				t.Errorf("seed %d: TPI solution leaves element %d uncovered", seed, e)
			}
		}
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	cases := []SetCover{
		{NumElements: 0, Sets: [][]int{{0}}},
		{NumElements: 2, Sets: nil},
		{NumElements: 2, Sets: [][]int{{}}},
		{NumElements: 2, Sets: [][]int{{0, 5}}},
		{NumElements: 3, Sets: [][]int{{0, 1}}}, // element 2 uncoverable
	}
	for i, sc := range cases {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRandomInstanceAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sc := RandomInstance(seed, 8, 6, 4)
		if err := sc.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGadgetSizePolynomial(t *testing.T) {
	small := RandomInstance(1, 5, 4, 3)
	big := RandomInstance(1, 20, 16, 6)
	rs, err := Reduce(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Reduce(big)
	if err != nil {
		t.Fatal(err)
	}
	// Gate count must scale like elements + total set size, far below
	// exponential.
	bound := 3 * (big.NumElements + totalSize(big) + len(big.Sets) + 5)
	if rb.Circuit.NumGates() > bound {
		t.Errorf("gadget size %d exceeds linear bound %d", rb.Circuit.NumGates(), bound)
	}
	if rb.Circuit.NumGates() <= rs.Circuit.NumGates() {
		t.Error("bigger instance produced smaller gadget")
	}
}

func totalSize(sc SetCover) int {
	n := 0
	for _, s := range sc.Sets {
		n += len(s)
	}
	return n
}

func TestTargetFaultsAreStemFaults(t *testing.T) {
	red, err := Reduce(SetCover{NumElements: 2, Sets: [][]int{{0}, {1}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range red.TargetFaults {
		if !f.IsStem() || !f.Stuck {
			t.Errorf("target fault %v should be a stem s-a-1", f)
		}
	}
	_ = fault.Universe(red.Circuit) // the gadget is a normal circuit
}
