// Package npc demonstrates the NP-completeness of budget-constrained test
// point insertion on circuits with reconvergent fanout — the hardness
// result the 1987 paper is cited for — by implementing a polynomial
// reduction from Set Cover to the decision problem
//
//	OP-SELECT: given a circuit, a target fault list, a set of candidate
//	observation point sites and a budget K, can observation points at K
//	of the candidate sites make every target fault detectable?
//
// The gadget: each element becomes a buffered primary input whose
// stuck-at-1 fault cannot reach any primary output (the only PO is forced
// constant by a reconvergent blocker AND(t, NOT t)); each set becomes an
// XOR tree over its elements' lines. XOR propagates any single fault
// unconditionally, so an observation point at set node n_j detects
// exactly the faults of elements in S_j, and K observation points detect
// all faults iff the chosen sets cover all elements. Verification is a
// single all-zeros test vector per fault, so the equivalence is checked
// by actual fault simulation, not by the analytic model.
package npc

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// SetCover is an instance of the Set Cover decision problem: can the
// universe {0..NumElements-1} be covered by at most K of the given sets?
type SetCover struct {
	NumElements int
	Sets        [][]int
	K           int
}

// Validate checks instance well-formedness: element indices in range and
// every element present in at least one set (otherwise trivially
// uncoverable, which the reduction also preserves, but we reject to keep
// experiments meaningful).
func (sc SetCover) Validate() error {
	if sc.NumElements < 1 {
		return errors.New("npc: instance needs at least one element")
	}
	if len(sc.Sets) == 0 {
		return errors.New("npc: instance needs at least one set")
	}
	seen := make([]bool, sc.NumElements)
	for si, s := range sc.Sets {
		if len(s) == 0 {
			return fmt.Errorf("npc: set %d is empty", si)
		}
		for _, e := range s {
			if e < 0 || e >= sc.NumElements {
				return fmt.Errorf("npc: set %d contains out-of-range element %d", si, e)
			}
			seen[e] = true
		}
	}
	for e, ok := range seen {
		if !ok {
			return fmt.Errorf("npc: element %d appears in no set", e)
		}
	}
	return nil
}

// Reduction is the circuit-level image of a Set Cover instance.
type Reduction struct {
	SC      SetCover
	Circuit *netlist.Circuit
	// TargetFaults[e] is the stuck-at-1 fault standing for element e.
	TargetFaults []fault.Fault
	// Candidates[j] is the signal standing for set j: the root of its XOR
	// tree, the only legal observation point sites in the decision
	// problem.
	Candidates []int
}

// Reduce builds the gadget circuit. Size is polynomial: one buffer per
// element, |S_j|-1 XOR gates per set, plus a 3-gate constant blocker.
func Reduce(sc SetCover) (*Reduction, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	b := netlist.NewBuilder(fmt.Sprintf("setcover_e%d_s%d", sc.NumElements, len(sc.Sets)))
	elem := make([]int, sc.NumElements)
	for e := range elem {
		x := b.Input(fmt.Sprintf("x%d", e))
		elem[e] = b.BufGate(fmt.Sprintf("e%d", e), x)
	}
	red := &Reduction{SC: sc}
	for j, s := range sc.Sets {
		cur := elem[s[0]]
		for _, e := range s[1:] {
			cur = b.XorGate("", cur, elem[e])
		}
		// A buffer names the set node even for singleton sets.
		node := b.BufGate(fmt.Sprintf("set%d", j), cur)
		red.Candidates = append(red.Candidates, node)
	}
	// Blocker PO: AND(t, NOT t) is constant 0 through reconvergent fanout,
	// so nothing upstream of it is observable and the circuit still has a
	// primary output.
	t := b.Input("t")
	nt := b.NotGate("nt", t)
	z := b.AndGate("z", t, nt)
	b.MarkOutput(z)
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	red.Circuit = c
	for e := range elem {
		red.TargetFaults = append(red.TargetFaults, fault.Fault{Gate: elem[e], Pin: -1, Stuck: true})
	}
	return red, nil
}

// allZeroVector is the single test vector that excites every element
// stuck-at-1 fault; XOR trees then propagate unconditionally.
func (r *Reduction) allZeroVector() [][]bool {
	return [][]bool{make([]bool, r.Circuit.NumInputs())}
}

// Detects reports, via fault simulation of the gadget with observation
// points inserted at the chosen candidate sets, which target faults are
// detected.
func (r *Reduction) Detects(chosen []int) (detected []bool, err error) {
	pts := make([]netlist.TestPoint, len(chosen))
	for i, j := range chosen {
		if j < 0 || j >= len(r.Candidates) {
			return nil, fmt.Errorf("npc: candidate index %d out of range", j)
		}
		pts[i] = netlist.TestPoint{Signal: r.Candidates[j], Kind: netlist.Observe}
	}
	mod, err := r.Circuit.InsertTestPoints(pts)
	if err != nil {
		return nil, err
	}
	res, err := fsim.Run(mod, r.TargetFaults, pattern.NewVectors(r.allZeroVector()), fsim.Options{
		MaxPatterns: 1,
		DropFaults:  true,
	})
	if err != nil {
		return nil, err
	}
	detected = make([]bool, len(r.TargetFaults))
	for i, f := range r.TargetFaults {
		_, detected[i] = res.FirstDetect[f]
	}
	return detected, nil
}

// Feasible reports whether the chosen candidate sets make every target
// fault detectable.
func (r *Reduction) Feasible(chosen []int) (bool, error) {
	det, err := r.Detects(chosen)
	if err != nil {
		return false, err
	}
	for _, d := range det {
		if !d {
			return false, nil
		}
	}
	return true, nil
}

// SolveTPIBruteForce finds the minimum number of candidate observation
// points making every target fault detectable, by exhaustive subset
// search over the candidates (smallest cardinality first). Exponential,
// as expected of an NP-complete problem; the whole point of E7.
func (r *Reduction) SolveTPIBruteForce() (minK int, chosen []int, err error) {
	n := len(r.Candidates)
	idx := make([]int, 0, n)
	for k := 1; k <= n; k++ {
		var found []int
		var rec func(start int) (bool, error)
		rec = func(start int) (bool, error) {
			if len(idx) == k {
				ok, err := r.Feasible(idx)
				if err != nil {
					return false, err
				}
				if ok {
					found = append([]int(nil), idx...)
				}
				return ok, nil
			}
			for i := start; i < n; i++ {
				idx = append(idx, i)
				ok, err := rec(i + 1)
				idx = idx[:len(idx)-1]
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
			return false, nil
		}
		ok, err := rec(0)
		if err != nil {
			return 0, nil, err
		}
		if ok {
			return k, found, nil
		}
	}
	return 0, nil, errors.New("npc: no feasible observation point set exists")
}

// SolveSetCoverExact returns the exact minimum cover size by branch and
// bound directly on the set system (the reference answer).
func SolveSetCoverExact(sc SetCover) int {
	coveredBy := make([][]int, sc.NumElements)
	for j, s := range sc.Sets {
		for _, e := range s {
			coveredBy[e] = append(coveredBy[e], j)
		}
	}
	covered := make([]int, sc.NumElements) // coverage multiplicity
	best := len(sc.Sets) + 1
	var rec func(chosen int)
	rec = func(chosen int) {
		if chosen >= best {
			return
		}
		pick := -1
		for e := 0; e < sc.NumElements; e++ {
			if covered[e] == 0 && (pick < 0 || len(coveredBy[e]) < len(coveredBy[pick])) {
				pick = e
			}
		}
		if pick < 0 {
			best = chosen
			return
		}
		for _, j := range coveredBy[pick] {
			for _, e := range sc.Sets[j] {
				covered[e]++
			}
			rec(chosen + 1)
			for _, e := range sc.Sets[j] {
				covered[e]--
			}
		}
	}
	rec(0)
	return best
}

// RandomInstance generates a random Set Cover instance where every
// element is guaranteed coverable.
func RandomInstance(seed int64, elements, sets, maxSetSize int) SetCover {
	rng := rand.New(rand.NewSource(seed))
	sc := SetCover{NumElements: elements}
	for j := 0; j < sets; j++ {
		size := 1 + rng.Intn(maxSetSize)
		members := map[int]bool{}
		for len(members) < size {
			members[rng.Intn(elements)] = true
		}
		var s []int
		for e := range members {
			s = append(s, e)
		}
		sort.Ints(s)
		sc.Sets = append(sc.Sets, s)
	}
	// Guarantee coverability: sweep uncovered elements into the last set.
	seen := make([]bool, elements)
	for _, s := range sc.Sets {
		for _, e := range s {
			seen[e] = true
		}
	}
	last := len(sc.Sets) - 1
	for e, ok := range seen {
		if !ok {
			sc.Sets[last] = append(sc.Sets[last], e)
		}
	}
	sort.Ints(sc.Sets[last])
	return sc
}
