package bist

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

func TestMISRDeterministic(t *testing.T) {
	a, b := NewMISR(), NewMISR()
	for i := uint64(0); i < 100; i++ {
		a.Clock(i * 0x9e3779b97f4a7c15)
		b.Clock(i * 0x9e3779b97f4a7c15)
	}
	if a.Signature() != b.Signature() {
		t.Error("identical input streams produced different signatures")
	}
	a.Reset()
	if a.Signature() != 0 {
		t.Error("reset did not clear the register")
	}
}

func TestMISRSensitivity(t *testing.T) {
	// Flipping one bit of one input word changes the signature (single
	// errors never alias in an LFSR-based MISR).
	base := NewMISR()
	flip := NewMISR()
	for i := 0; i < 50; i++ {
		w := uint64(i) * 0x123456789
		base.Clock(w)
		if i == 25 {
			w ^= 1 << 17
		}
		flip.Clock(w)
	}
	if base.Signature() == flip.Signature() {
		t.Error("single-bit response error aliased")
	}
}

func TestSessionMatchesFaultSimulator(t *testing.T) {
	// Signature-based detection must agree with direct PO comparison
	// except for aliasing, which the result reports explicitly.
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	const patterns = 256
	res, err := Run(c, faults, pattern.NewLFSR(5), patterns)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fsim.Run(c, faults, pattern.NewLFSR(5), fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	aliased := make(map[fault.Fault]bool)
	for _, f := range res.Aliased {
		aliased[f] = true
	}
	for _, f := range faults {
		_, directDet := direct.FirstDetect[f]
		sigDet := res.Detected[f]
		switch {
		case directDet && !sigDet && !aliased[f]:
			t.Errorf("%s: PO-detected but signature matched without being reported aliased", f.Name(c))
		case !directDet && sigDet:
			t.Errorf("%s: signature differs but responses never did", f.Name(c))
		case !directDet && aliased[f]:
			t.Errorf("%s: reported aliased but never differed at POs", f.Name(c))
		}
	}
}

func TestSessionAliasingIsRare(t *testing.T) {
	// With a 64-bit MISR, aliasing probability is ~2^-64; none of the
	// few hundred faults here should alias.
	c := gen.RandomDAG(3, 10, 80, gen.DAGOptions{})
	faults := fault.CollapsedUniverse(c)
	res, err := Run(c, faults, pattern.NewLFSR(9), 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aliased) != 0 {
		t.Errorf("%d faults aliased in a 64-bit MISR (expected none)", len(res.Aliased))
	}
	if res.Coverage() <= 0.5 {
		t.Errorf("implausibly low signature coverage %.3f", res.Coverage())
	}
}

func TestSessionManyOutputsFold(t *testing.T) {
	// A decoder has more outputs than... well, 64 would need folding;
	// dec6 has exactly 64 outputs, exercising the modulo path boundary.
	c := gen.Decoder(6)
	faults := fault.CollapsedUniverse(c)[:40]
	res, err := Run(c, faults, pattern.NewCounter(6), 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 64 {
		t.Errorf("patterns = %d, want 64", res.Patterns)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("exhaustive decoder coverage = %.3f, want 1.0 (aliased: %d)",
			res.Coverage(), len(res.Aliased))
	}
}

func TestSessionErrors(t *testing.T) {
	c := gen.C17()
	if _, err := Run(c, nil, pattern.NewLFSR(1), 0); err == nil {
		t.Error("expected error for zero patterns")
	}
	if _, err := Run(c, []fault.Fault{{Gate: 999, Pin: -1}}, pattern.NewLFSR(1), 16); err == nil {
		t.Error("expected error for bad fault")
	}
}

func TestSessionAfterTestPointInsertion(t *testing.T) {
	// The end-to-end story: a resistant cone's signature coverage rises
	// after control point insertion.
	c := gen.AndCone(12)
	faults := fault.CollapsedUniverse(c)
	before, err := Run(c, faults, pattern.NewLFSR(2), 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Force-1 the two half-cone roots: excitation of the deep AND faults
	// becomes 2^-2-ish instead of 2^-12.
	root := c.Outputs()[0]
	halves := c.Fanin(root)
	mod, err := c.InsertTestPoints([]netlist.TestPoint{
		{Signal: halves[0], Kind: netlist.Control1},
		{Signal: halves[1], Kind: netlist.Control1},
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Run(mod, faults, pattern.NewLFSR(2), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if after.Coverage() <= before.Coverage() {
		t.Errorf("signature coverage did not improve: %.3f -> %.3f", before.Coverage(), after.Coverage())
	}
}
