// Package bist models the self-test environment around the
// circuit-under-test: a multiple-input signature register (MISR)
// compacting output responses, and a Session that runs pattern
// generation, good/faulty simulation, and signature comparison — the
// arrangement test point insertion was invented to serve. Signature
// compaction introduces aliasing (a faulty response mapping to the good
// signature); the package measures it.
package bist

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

// MISR is a multiple-input signature register over GF(2): a 64-bit
// Galois LFSR whose state is additionally XORed with one parallel input
// word per cycle. Output responses of the circuit feed the inputs; after
// the test session the state is the signature.
type MISR struct {
	state uint64
	poly  uint64
}

// misrPoly is the same primitive polynomial the pattern LFSR uses; any
// primitive polynomial gives the canonical ~2^-64 aliasing bound.
const misrPoly = 0xd800000000000000

// NewMISR returns a zero-initialised MISR.
func NewMISR() *MISR { return &MISR{poly: misrPoly} }

// Clock shifts the register once and folds in the input word.
func (m *MISR) Clock(in uint64) {
	out := m.state & 1
	m.state >>= 1
	if out == 1 {
		m.state ^= m.poly
	}
	m.state ^= in
}

// Signature returns the accumulated signature.
func (m *MISR) Signature() uint64 { return m.state }

// Reset clears the register.
func (m *MISR) Reset() { m.state = 0 }

// packOutputs packs one pattern's primary output values into a word
// (output i -> bit i; circuits with more than 64 outputs fold modulo 64,
// a standard space-compaction step).
func packOutputs(c *netlist.Circuit, vals []uint64, bit uint) uint64 {
	var w uint64
	for i, o := range c.Outputs() {
		if vals[o]>>bit&1 == 1 {
			w ^= 1 << uint(i%64)
		}
	}
	return w
}

// Result reports a BIST session.
type Result struct {
	Patterns      int
	GoodSignature uint64
	// Detected[f] is true when the faulty-circuit signature differs from
	// the good one.
	Detected map[fault.Fault]bool
	// Aliased lists faults whose responses differed from the good
	// machine on some pattern yet whose final signature matched — the
	// compaction losses.
	Aliased []fault.Fault
}

// Coverage returns the fraction of faults whose signature differs.
func (r *Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 1
	}
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(r.Detected))
}

// Run executes a signature-based BIST session: `patterns` vectors from
// src are applied to the good circuit and to each faulty circuit; every
// response word is compacted into a MISR; a fault counts as detected
// when its final signature differs from the good signature.
//
// This is the slow, literal reference flow (one whole-circuit resim per
// fault) — it exists to model the BIST environment faithfully, including
// aliasing, not to replace internal/fsim.
func Run(c *netlist.Circuit, faults []fault.Fault, src pattern.Source, patterns int) (*Result, error) {
	if patterns <= 0 {
		return nil, fmt.Errorf("bist: patterns must be positive, got %d", patterns)
	}
	for _, f := range faults {
		if f.Gate < 0 || f.Gate >= c.NumGates() {
			return nil, fmt.Errorf("bist: fault %v: gate out of range", f)
		}
		if !f.IsStem() && f.Pin >= len(c.Fanin(f.Gate)) {
			return nil, fmt.Errorf("bist: fault %v: pin out of range", f)
		}
	}
	sim := logic.New(c)
	words := make([]uint64, c.NumInputs())
	// Collect the applied blocks so every faulty machine sees the same
	// patterns.
	var blocks [][]uint64
	var counts []int
	applied := 0
	for applied < patterns {
		n := src.FillBlock(words)
		if n == 0 {
			break
		}
		if applied+n > patterns {
			n = patterns - applied
		}
		blk := make([]uint64, len(words))
		copy(blk, words)
		blocks = append(blocks, blk)
		counts = append(counts, n)
		applied += n
	}

	// Good signature, plus the good response words per pattern for the
	// aliasing analysis.
	good := NewMISR()
	var goodWords []uint64
	for bi, blk := range blocks {
		if err := sim.Run(blk); err != nil {
			return nil, err
		}
		for b := 0; b < counts[bi]; b++ {
			w := packOutputs(c, sim.Values(), uint(b))
			goodWords = append(goodWords, w)
			good.Clock(w)
		}
	}

	res := &Result{
		Patterns:      applied,
		GoodSignature: good.Signature(),
		Detected:      make(map[fault.Fault]bool, len(faults)),
	}
	fsim := newFaultySim(c)
	for _, f := range faults {
		m := NewMISR()
		differed := false
		pi := 0
		for bi, blk := range blocks {
			vals := fsim.run(blk, f)
			for b := 0; b < counts[bi]; b++ {
				w := packOutputs(c, vals, uint(b))
				if w != goodWords[pi] {
					differed = true
				}
				m.Clock(w)
				pi++
			}
		}
		detected := m.Signature() != res.GoodSignature
		res.Detected[f] = detected
		if differed && !detected {
			res.Aliased = append(res.Aliased, f)
		}
	}
	return res, nil
}

// faultySim evaluates the whole circuit bit-parallel with one fault
// injected (no event windowing — the reference implementation).
type faultySim struct {
	c    *netlist.Circuit
	vals []uint64
	buf  []uint64
}

func newFaultySim(c *netlist.Circuit) *faultySim {
	return &faultySim{c: c, vals: make([]uint64, c.NumGates()), buf: make([]uint64, 0, 8)}
}

func (s *faultySim) run(inputWords []uint64, f fault.Fault) []uint64 {
	c := s.c
	var fv uint64
	if f.Stuck {
		fv = ^uint64(0)
	}
	for i, in := range c.Inputs() {
		s.vals[in] = inputWords[i]
	}
	for _, id := range c.TopoOrder() {
		g := c.Gate(id)
		if g.Type != netlist.Input {
			s.buf = s.buf[:0]
			for pin, fin := range g.Fanin {
				v := s.vals[fin]
				if !f.IsStem() && f.Gate == id && f.Pin == pin {
					v = fv
				}
				s.buf = append(s.buf, v)
			}
			s.vals[id] = g.Type.EvalWords(s.buf)
		}
		if f.IsStem() && f.Gate == id {
			s.vals[id] = fv
		}
	}
	return s.vals
}
