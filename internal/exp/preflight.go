package exp

import (
	"fmt"
	"io"

	"repro/internal/gen"
	"repro/internal/lint"
)

// Preflight statically lints the benchmark circuits the experiment suites
// run over (the E1-E3 fanout-free trees, the E4/E5 random-pattern
// -resistant set, and c17), writing warning-and-above findings to w. It
// returns an error when any circuit carries an Error-severity finding, so
// `experiments -lint` refuses to burn a full experiment run on a
// structurally broken workload.
func Preflight(cfg Config, w io.Writer) error {
	suite := treeSuite(cfg)
	suite = append(suite, rpSuite(cfg)...)
	suite = append(suite, gen.C17())
	bad := 0
	for _, c := range suite {
		rep := lint.Analyze(c, lint.Options{})
		for _, f := range rep.Filter(lint.Warning) {
			fmt.Fprintf(w, "lint: %s: %s\n", rep.Circuit, f)
		}
		if rep.HasErrors() {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("exp: lint rejected %d experiment circuit(s)", bad)
	}
	return nil
}
