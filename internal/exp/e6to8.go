package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/npc"
	"repro/internal/pattern"
	"repro/internal/tpi"
)

// E6Scaling regenerates Table 4: planner work versus circuit size at a
// fixed budget, demonstrating the polynomial DP against the exponential
// exhaustive search.
func E6Scaling(cfg Config) (*Table, error) { return e6Scaling(context.Background(), cfg) }

func e6Scaling(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Planner scaling at K=4 full test points (Table 4)",
		Columns: []string{"leaves", "gates", "DP states", "DP time", "exhaustive configs", "exhaustive time", "greedy time"},
		Notes: []string{
			"exhaustive is run only while its subset space stays below ~3e5 configurations",
		},
	}
	sizes := []int{10, 20, 50, 100, 200, 500}
	if cfg.Quick {
		sizes = []int{10, 20, 50}
	}
	const k = 4
	for _, n := range sizes {
		c := gen.RandomTree(11, n, gen.TreeOptions{})
		var dp *tpi.CutPlan
		dpTime, err := timeIt(func() error {
			var e error
			dp, e = tpi.PlanCutsDPContext(ctx, c, k)
			return e
		})
		if err != nil {
			return nil, err
		}
		// Exhaustive only where its C(internal, K) subset space is small.
		exStates, exTime := "-", "-"
		if n <= 20 {
			var ex *tpi.CutPlan
			d, err := timeIt(func() error {
				var e error
				ex, e = tpi.PlanCutsExhaustive(c, k)
				return e
			})
			if err != nil {
				return nil, err
			}
			exStates = fmt.Sprint(ex.StatesVisited)
			exTime = d.Round(time.Microsecond).String()
			if ex.MaxCost != dp.MaxCost {
				return nil, fmt.Errorf("E6: DP %d != exhaustive %d at n=%d", dp.MaxCost, ex.MaxCost, n)
			}
		}
		grTime, err := timeIt(func() error {
			_, e := tpi.PlanCutsGreedy(c, k)
			return e
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(n, c.NumGates()-c.NumInputs(), dp.StatesVisited,
			dpTime.Round(time.Microsecond).String(), exStates, exTime,
			grTime.Round(time.Microsecond).String())
	}
	return t, nil
}

// E7Reduction regenerates Table 5: the Set Cover reduction checked end to
// end — the brute-force TPI optimum equals the Set Cover optimum on every
// instance, and gadget sizes stay polynomial.
func E7Reduction(cfg Config) (*Table, error) { return e7Reduction(context.Background(), cfg) }

func e7Reduction(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Set Cover -> TPI reduction equivalence (Table 5)",
		Columns: []string{"instance", "elements", "sets", "gadget gates", "set cover min", "TPI min", "agree"},
		Notes: []string{
			"TPI min is found by exhaustive subset search with real fault simulation of the gadget",
		},
	}
	type inst struct {
		seed           int64
		elems, sets, m int
	}
	instances := []inst{{1, 6, 5, 3}, {2, 8, 6, 4}, {3, 10, 7, 4}, {4, 12, 8, 5}}
	if cfg.Quick {
		instances = instances[:2]
	}
	for _, in := range instances {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc := npc.RandomInstance(in.seed, in.elems, in.sets, in.m)
		red, err := npc.Reduce(sc)
		if err != nil {
			return nil, err
		}
		want := npc.SolveSetCoverExact(sc)
		got, _, err := red.SolveTPIBruteForce()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("sc%d", in.seed), in.elems, in.sets,
			red.Circuit.NumGates(), want, got, got == want)
	}
	return t, nil
}

// E8Ablations regenerates Table 6: the design-choice ablations DESIGN.md
// calls out.
func E8Ablations(cfg Config) (*Table, error) { return e8Ablations(context.Background(), cfg) }

func e8Ablations(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Design ablations (Table 6)",
		Columns: []string{"ablation", "configuration", "metric", "value"},
	}

	// (a) DP vs greedy on a larger tree at a generous budget.
	leaves := 300
	if cfg.Quick {
		leaves = 60
	}
	tree := gen.RandomTree(5, leaves, gen.TreeOptions{})
	dp, err := tpi.PlanCutsDPContext(ctx, tree, 8)
	if err != nil {
		return nil, err
	}
	gr, err := tpi.PlanCutsGreedy(tree, 8)
	if err != nil {
		return nil, err
	}
	th, err := tpi.PlanCutsThreshold(tree, 8)
	if err != nil {
		return nil, err
	}
	t.AddRow("a: cut planner", "DP (exact)", "minimax tests", dp.MaxCost)
	t.AddRow("a: cut planner", "threshold-greedy", "minimax tests", th.MaxCost)
	t.AddRow("a: cut planner", "greedy", "minimax tests", gr.MaxCost)

	// (b) control-only vs observe-only vs hybrid on an RP-resistant
	// circuit, by real fault simulation.
	c := gen.RPResistant(3, 3, 12, 60)
	patterns := patternsFor(cfg) / 2
	dth := 4.0 / float64(patterns)
	faults := fault.CollapsedUniverse(c)
	base, err := coverageUnder(ctx, c, faults, patterns, 0xfeed)
	if err != nil {
		return nil, err
	}
	t.AddRow("b: point mix", "none", "coverage", base)
	cpOnly, err := tpi.PlanControlPointsGreedyContext(ctx, c, faults, 6, dth, tpi.CPOptions{})
	if err != nil {
		return nil, err
	}
	cpMod, err := cpOnly.Apply(c)
	if err != nil {
		return nil, err
	}
	cpFC, err := coverageUnder(ctx, cpMod, faults, patterns, 0xfeed)
	if err != nil {
		return nil, err
	}
	t.AddRow("b: point mix", fmt.Sprintf("control only (%d)", len(cpOnly.Points)), "coverage", cpFC)
	opOnly, err := tpi.PlanObservationPointsDPContext(ctx, c, faults, 6, dth, tpi.OPOptions{})
	if err != nil {
		return nil, err
	}
	opMod, err := c.InsertTestPoints(opOnly.TestPoints())
	if err != nil {
		return nil, err
	}
	opFC, err := coverageUnder(ctx, opMod, faults, patterns, 0xfeed)
	if err != nil {
		return nil, err
	}
	t.AddRow("b: point mix", fmt.Sprintf("observe only (%d)", len(opOnly.Points)), "coverage", opFC)
	h, err := tpi.PlanHybridContext(ctx, c, faults, 3, 3, dth, tpi.CPOptions{}, tpi.OPOptions{})
	if err != nil {
		return nil, err
	}
	hFC, err := coverageUnder(ctx, h.Modified, faults, patterns, 0xfeed)
	if err != nil {
		return nil, err
	}
	t.AddRow("b: point mix", fmt.Sprintf("hybrid (%d+%d)", len(h.Control.Points), len(h.Observe.Points)), "coverage", hFC)

	// (c) fault dropping on/off: identical detections, different time.
	dagGates := 400
	if cfg.Quick {
		dagGates = 150
	}
	dag := gen.RandomDAG(13, 16, dagGates, gen.DAGOptions{})
	dfaults := fault.CollapsedUniverse(dag)
	var detWith, detWithout int
	dWith, err := timeIt(func() error {
		r, e := fsim.RunContext(ctx, dag, dfaults, pattern.NewLFSR(3), fsim.Options{MaxPatterns: patterns, DropFaults: true})
		if e == nil {
			detWith = len(r.FirstDetect)
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	dWithout, err := timeIt(func() error {
		r, e := fsim.RunContext(ctx, dag, dfaults, pattern.NewLFSR(3), fsim.Options{MaxPatterns: patterns, DropFaults: false})
		if e == nil {
			detWithout = len(r.FirstDetect)
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	if detWith != detWithout {
		return nil, fmt.Errorf("E8c: dropping changed detections: %d vs %d", detWith, detWithout)
	}
	t.AddRow("c: fault dropping", "on", "sim time", dWith.Round(time.Microsecond).String())
	t.AddRow("c: fault dropping", "off", "sim time", dWithout.Round(time.Microsecond).String())
	t.AddRow("c: fault dropping", "both", "faults detected", detWith)

	// (d) collapsed vs uncollapsed universe: coverage must agree.
	full := fault.Universe(dag)
	rFull, err := fsim.RunContext(ctx, dag, full, pattern.NewLFSR(3), fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		return nil, err
	}
	rCol, err := fsim.RunContext(ctx, dag, dfaults, pattern.NewLFSR(3), fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("d: collapsing", "uncollapsed", "faults / coverage", fmt.Sprintf("%d / %.4f", len(full), rFull.Coverage()))
	t.AddRow("d: collapsing", "collapsed", "faults / coverage", fmt.Sprintf("%d / %.4f", len(dfaults), rCol.Coverage()))
	return t, nil
}

// Experiment is one entry of the reconstructed evaluation: an ID (as
// used by DESIGN.md and `experiments -only`) plus its cancellable runner.
type Experiment struct {
	ID  string
	Run func(ctx context.Context, cfg Config) (Renderable, error)
}

// Experiments returns the evaluation in run order. Every runner threads
// its context into the engine loops it drives (PODEM, fault simulation,
// the planners), so a cancelled context stops an experiment mid-table.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", func(ctx context.Context, cfg Config) (Renderable, error) { return e1TestCounts(ctx, cfg) }},
		{"E2", func(ctx context.Context, cfg Config) (Renderable, error) { return e2Insertion(ctx, cfg) }},
		{"E3", func(ctx context.Context, cfg Config) (Renderable, error) { return e3Sweep(ctx, cfg) }},
		{"E4", func(ctx context.Context, cfg Config) (Renderable, error) { return e4Coverage(ctx, cfg) }},
		{"E5", func(ctx context.Context, cfg Config) (Renderable, error) { return e5Curve(ctx, cfg) }},
		{"E6", func(ctx context.Context, cfg Config) (Renderable, error) { return e6Scaling(ctx, cfg) }},
		{"E7", func(ctx context.Context, cfg Config) (Renderable, error) { return e7Reduction(ctx, cfg) }},
		{"E8", func(ctx context.Context, cfg Config) (Renderable, error) { return e8Ablations(ctx, cfg) }},
		{"E9", func(ctx context.Context, cfg Config) (Renderable, error) { return e9ScanTestTime(ctx, cfg) }},
	}
}

// All runs every experiment and returns the renderables in order.
func All(cfg Config) ([]Renderable, error) { return AllContext(context.Background(), cfg) }

// AllContext is All with cancellation between and within experiments.
func AllContext(ctx context.Context, cfg Config) ([]Renderable, error) {
	var out []Renderable
	for _, e := range Experiments() {
		r, err := e.Run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
