package exp

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Quick: true}

func TestE1Rows(t *testing.T) {
	tab, err := E1TestCounts(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("E1 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		dp, _ := strconv.Atoi(row[5])
		atpgN, _ := strconv.Atoi(row[6])
		compacted, _ := strconv.Atoi(row[7])
		if atpgN < dp {
			t.Errorf("%s: ATPG set %d below proven minimum %d", row[0], atpgN, dp)
		}
		if compacted < dp || compacted > atpgN {
			t.Errorf("%s: compacted set %d outside [%d, %d]", row[0], compacted, dp, atpgN)
		}
		if red := row[8]; red != "0" {
			t.Errorf("%s: fanout-free circuit reported %s redundant faults", row[0], red)
		}
	}
}

func TestE2DPDominates(t *testing.T) {
	tab, err := E2Insertion(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		base, _ := strconv.Atoi(row[2])
		dp, _ := strconv.Atoi(row[3])
		greedy, _ := strconv.Atoi(row[5])
		random, _ := strconv.Atoi(row[6])
		if dp > base {
			t.Errorf("%v: DP worse than base", row)
		}
		if dp > greedy || dp > random {
			t.Errorf("%v: DP beaten by a baseline", row)
		}
		if ex := row[4]; ex != "-" {
			exv, _ := strconv.Atoi(ex)
			if exv != dp {
				t.Errorf("%v: DP %d != exhaustive %d", row, dp, exv)
			}
		}
	}
}

func TestE3MonotoneDecreasing(t *testing.T) {
	s, err := E3Sweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Lines) != 2 {
		t.Fatalf("lines = %d", len(s.Lines))
	}
	for _, line := range s.Lines {
		prev := 1e18
		for _, p := range line.Points {
			if p.Y > prev {
				t.Errorf("%s increased at K=%g: %g > %g", line.Name, p.X, p.Y, prev)
			}
			prev = p.Y
		}
	}
	// DP never above greedy at matching K.
	for i := range s.Lines[0].Points {
		if s.Lines[0].Points[i].Y > s.Lines[1].Points[i].Y {
			t.Errorf("DP above greedy at K=%g", s.Lines[0].Points[i].X)
		}
	}
}

func TestE4HybridWins(t *testing.T) {
	tab, err := E4Coverage(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		base, _ := strconv.ParseFloat(row[3], 64)
		hybrid, _ := strconv.ParseFloat(row[4], 64)
		if hybrid < base-1e-9 {
			t.Errorf("%s: hybrid coverage %.4f below base %.4f", row[0], hybrid, base)
		}
	}
	// On at least one circuit the uplift must be strict — otherwise the
	// experiment premise (test points help) fails.
	improved := false
	for _, row := range tab.Rows {
		base, _ := strconv.ParseFloat(row[3], 64)
		hybrid, _ := strconv.ParseFloat(row[4], 64)
		if hybrid > base+1e-6 {
			improved = true
		}
	}
	if !improved {
		t.Error("no circuit improved under the hybrid plan")
	}
}

func TestE5CurveShapes(t *testing.T) {
	s, err := E5Curve(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Lines) != 2 {
		t.Fatalf("lines = %d", len(s.Lines))
	}
	with, orig := s.Lines[0], s.Lines[1]
	// Both monotone nondecreasing; modified endpoint >= original endpoint.
	for _, l := range []Line{with, orig} {
		prev := -1.0
		for _, p := range l.Points {
			if p.Y < prev-1e-12 {
				t.Errorf("%s: coverage decreased", l.Name)
			}
			prev = p.Y
		}
	}
	if with.Points[len(with.Points)-1].Y < orig.Points[len(orig.Points)-1].Y-1e-9 {
		t.Error("modified circuit ended below the original")
	}
}

func TestE6DPAlwaysRunsExhaustiveCapped(t *testing.T) {
	tab, err := E6Scaling(quick)
	if err != nil {
		t.Fatal(err) // E6 itself verifies DP == exhaustive where both run
	}
	sawCapped := false
	for _, row := range tab.Rows {
		if row[4] == "-" {
			sawCapped = true
		}
	}
	if !sawCapped {
		t.Log("all sizes ran exhaustive; enlarge sizes to exercise the cap")
	}
}

func TestE7AllAgree(t *testing.T) {
	tab, err := E7Reduction(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[6] != "true" {
			t.Errorf("instance %s: reduction disagreement: %v", row[0], row)
		}
	}
}

func TestE8RunsAndDPNotWorse(t *testing.T) {
	tab, err := E8Ablations(quick)
	if err != nil {
		t.Fatal(err)
	}
	var dpCost, grCost int
	for _, row := range tab.Rows {
		if row[0] == "a: cut planner" {
			v, _ := strconv.Atoi(row[3])
			if strings.HasPrefix(row[1], "DP") {
				dpCost = v
			} else {
				grCost = v
			}
		}
	}
	if dpCost == 0 || grCost == 0 {
		t.Fatal("ablation (a) rows missing")
	}
	if dpCost > grCost {
		t.Errorf("DP %d worse than greedy %d", dpCost, grCost)
	}
}

func TestE9SpeedupOrTargetMiss(t *testing.T) {
	tab, err := E9ScanTestTime(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("E9 produced no rows")
	}
	for _, row := range tab.Rows {
		if row[4] == "-" && row[3] != "-" {
			t.Errorf("%s: TPI pushed circuit below target %s", row[0], row[2])
		}
		if row[3] != "-" && row[4] != "-" {
			before, _ := strconv.Atoi(row[3])
			after, _ := strconv.Atoi(row[4])
			if after > before {
				t.Errorf("%s: patterns to target %s rose %d -> %d", row[0], row[2], before, after)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x,y", "z")
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "demo") || !strings.Contains(sb.String(), "2.5000") {
		t.Errorf("table output: %s", sb.String())
	}
	var csv strings.Builder
	if err := tab.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "\"x,y\"") {
		t.Errorf("csv escaping: %s", csv.String())
	}
}

func TestSeriesRendering(t *testing.T) {
	s := &Series{
		ID: "F", Title: "fig", XLabel: "x", YLabel: "y",
		Lines: []Line{{Name: "l1", Points: []Point{{0, 0}, {1, 0.5}, {2, 1}}}},
	}
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "#") {
		t.Errorf("series output: %s", out)
	}
}
