// Package exp drives the reconstructed evaluation: one function per
// experiment (E1..E8 in DESIGN.md), each returning a renderable Table or
// Series. cmd/experiments prints them; bench_test.go benchmarks their
// computational kernels; EXPERIMENTS.md records their outputs.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of results.
type Table struct {
	ID      string // experiment id, e.g. "E2"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table as aligned ASCII.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown renders the table as a GitHub-flavored markdown table with
// the title as a bold caption line and the notes as a trailing
// italicized list — the form EXPERIMENTS.md embeds directly.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s — %s**\n\n", t.ID, t.Title)
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(cols, " | "))
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV renders the table as comma-separated values (cells containing
// commas are quoted).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Point is one (x, y) sample of a figure.
type Point struct {
	X float64
	Y float64
}

// Line is one named curve of a figure.
type Line struct {
	Name   string
	Points []Point
}

// Series is a titled figure: one or more curves over a shared x axis.
type Series struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Lines  []Line
}

// Write renders the figure as a point table followed by a crude ASCII
// plot (y rescaled to 40 columns), enough to read the curve shapes the
// experiments are about.
func (s *Series) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.ID, s.Title)
	fmt.Fprintf(&b, "%-12s", s.XLabel)
	for _, l := range s.Lines {
		fmt.Fprintf(&b, "  %-14s", l.Name)
	}
	b.WriteByte('\n')
	// Collect the union of x values in first-line order (lines are
	// expected to share x samples).
	var xs []float64
	seen := map[float64]bool{}
	for _, l := range s.Lines {
		for _, p := range l.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	lookup := func(l Line, x float64) (float64, bool) {
		for _, p := range l.Points {
			if p.X == x {
				return p.Y, true
			}
		}
		return 0, false
	}
	minY, maxY := 0.0, 0.0
	first := true
	for _, l := range s.Lines {
		for _, p := range l.Points {
			if first || p.Y < minY {
				minY = p.Y
			}
			if first || p.Y > maxY {
				maxY = p.Y
			}
			first = false
		}
	}
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, l := range s.Lines {
			if y, ok := lookup(l, x); ok {
				fmt.Fprintf(&b, "  %-14.4f", y)
			} else {
				fmt.Fprintf(&b, "  %-14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	// ASCII plot of the first line (the headline curve).
	if len(s.Lines) > 0 && maxY > minY {
		fmt.Fprintf(&b, "plot (%s, column = %s, scaled %.4f..%.4f):\n", s.Lines[0].Name, s.YLabel, minY, maxY)
		for _, p := range s.Lines[0].Points {
			n := int(40 * (p.Y - minY) / (maxY - minY))
			fmt.Fprintf(&b, "%10g |%s\n", p.X, strings.Repeat("#", n))
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Renderable is anything an experiment can emit.
type Renderable interface {
	Write(w io.Writer) error
}
