package exp

import (
	"context"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
	"repro/internal/tpi"
)

// testableFaults removes PODEM-proven-redundant faults from the collapsed
// universe, the standard preprocessing step before coverage experiments
// (aborted faults are conservatively kept).
func testableFaults(ctx context.Context, c *netlist.Circuit) ([]fault.Fault, error) {
	var out []fault.Fault
	for _, f := range fault.CollapsedUniverse(c) {
		res, err := atpg.GenerateContext(ctx, c, f, atpg.Options{BacktrackLimit: 5000})
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			out = append(out, f) // conservative: treat errors as testable
			continue
		}
		if res.Status != atpg.Redundant {
			out = append(out, f)
		}
	}
	return out, nil
}

// rpSuite returns the random-pattern-resistant circuits for E4/E5.
func rpSuite(cfg Config) []*netlist.Circuit {
	if cfg.Quick {
		return []*netlist.Circuit{
			gen.AndCone(16),
			gen.RPResistant(7, 2, 10, 40),
		}
	}
	return []*netlist.Circuit{
		gen.AndCone(20),
		gen.Comparator(16),
		gen.RPResistant(7, 3, 14, 120),
		gen.RPResistant(8, 4, 12, 200),
		gen.Decoder(6),
	}
}

// patternsFor returns the random test length used by E4/E5.
func patternsFor(cfg Config) int {
	if cfg.Quick {
		return 4096
	}
	return 32768
}

// coverageUnder fault-simulates the circuit with an LFSR and returns
// coverage over the given fault list (sites valid in modified circuits).
func coverageUnder(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, patterns int, seed uint64) (float64, error) {
	res, err := fsim.RunContext(ctx, c, faults, pattern.NewLFSR(seed), fsim.Options{MaxPatterns: patterns, DropFaults: true})
	if err != nil {
		return 0, err
	}
	return res.Coverage(), nil
}

// E4Coverage regenerates Table 3: stuck-at coverage at the standard
// random test length before and after test point insertion, planner by
// planner. Real coverage is measured by the fault simulator, not the
// analytic model.
func E4Coverage(cfg Config) (*Table, error) { return e4Coverage(context.Background(), cfg) }

func e4Coverage(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Fault coverage with %d random patterns, before/after TPI (Table 3)", patternsFor(cfg)),
		Columns: []string{"circuit", "gates", "faults", "FC base", "FC DP hybrid", "#CP/#OP", "FC greedy OP", "FC random OP"},
		Notes: []string{
			"DP hybrid = greedy control points + DP observation points (tpi.PlanHybrid)",
			"greedy/random OP = observation points only, same budget as the hybrid's OP stage",
		},
	}
	patterns := patternsFor(cfg)
	dth := 4.0 / float64(patterns)
	nCP, nOP := 4, 6
	for _, c := range rpSuite(cfg) {
		faults, err := testableFaults(ctx, c)
		if err != nil {
			return nil, err
		}
		base, err := coverageUnder(ctx, c, faults, patterns, 0xbadc0de)
		if err != nil {
			return nil, err
		}
		h, err := tpi.PlanHybridContext(ctx, c, faults, nCP, nOP, dth, tpi.CPOptions{}, tpi.OPOptions{})
		if err != nil {
			return nil, err
		}
		hybridFC, err := coverageUnder(ctx, h.Modified, faults, patterns, 0xbadc0de)
		if err != nil {
			return nil, err
		}
		gr, err := tpi.PlanObservationPointsGreedy(c, faults, nOP, dth, tpi.OPOptions{})
		if err != nil {
			return nil, err
		}
		grMod, err := c.InsertTestPoints(gr.TestPoints())
		if err != nil {
			return nil, err
		}
		grFC, err := coverageUnder(ctx, grMod, faults, patterns, 0xbadc0de)
		if err != nil {
			return nil, err
		}
		rnd, err := tpi.PlanObservationPointsRandom(c, faults, nOP, dth, 99, tpi.OPOptions{})
		if err != nil {
			return nil, err
		}
		rndMod, err := c.InsertTestPoints(rnd.TestPoints())
		if err != nil {
			return nil, err
		}
		rndFC, err := coverageUnder(ctx, rndMod, faults, patterns, 0xbadc0de)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.Name(), c.NumGates(), len(faults), base, hybridFC,
			fmt.Sprintf("%d/%d", len(h.Control.Points), len(h.Observe.Points)), grFC, rndFC)
	}
	return t, nil
}

// E5Curve regenerates Figure 2: fault coverage versus applied patterns
// for a random-pattern-resistant circuit, original versus test-point-
// modified — the curve shape that motivates test point insertion.
func E5Curve(cfg Config) (*Series, error) { return e5Curve(context.Background(), cfg) }

func e5Curve(ctx context.Context, cfg Config) (*Series, error) {
	patterns := patternsFor(cfg)
	c := gen.RPResistant(7, 3, 14, 120)
	if cfg.Quick {
		c = gen.RPResistant(7, 2, 10, 40)
	}
	faults, err := testableFaults(ctx, c)
	if err != nil {
		return nil, err
	}
	dth := 4.0 / float64(patterns)
	h, err := tpi.PlanHybridContext(ctx, c, faults, 4, 6, dth, tpi.CPOptions{}, tpi.OPOptions{})
	if err != nil {
		return nil, err
	}
	step := patterns / 16
	curve := func(ckt *netlist.Circuit) ([]Point, error) {
		res, err := fsim.RunContext(ctx, ckt, faults, pattern.NewLFSR(0xbadc0de), fsim.Options{MaxPatterns: patterns, DropFaults: true})
		if err != nil {
			return nil, err
		}
		// Sample on the shared step grid; the simulator stops early once
		// every fault is detected, so pad the tail at the final coverage
		// to keep both curves on the same x samples.
		samples := res.Curve(step)
		var pts []Point
		si := 0
		for n := step; n <= patterns; n += step {
			for si < len(samples)-1 && samples[si].Patterns < n {
				si++
			}
			pts = append(pts, Point{X: float64(n), Y: samples[si].Coverage})
		}
		return pts, nil
	}
	orig, err := curve(c)
	if err != nil {
		return nil, err
	}
	mod, err := curve(h.Modified)
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:     "E5",
		Title:  fmt.Sprintf("Coverage vs patterns on %s, with/without test points (Figure 2)", c.Name()),
		XLabel: "patterns",
		YLabel: "coverage",
		Lines: []Line{
			{Name: "with TPs", Points: mod},
			{Name: "original", Points: orig},
		},
	}, nil
}
