package exp

import (
	"context"
	"fmt"

	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/scan"
	"repro/internal/tpi"
)

// patternsToTarget returns the smallest multiple of 64 patterns at which
// coverage over `total` faults reaches the target, or -1.
func patternsToTarget(res *fsim.Result, total int, target float64) int {
	for n := 64; n <= res.Patterns; n += 64 {
		det := 0
		for _, idx := range res.FirstDetect {
			if idx < n {
				det++
			}
		}
		if float64(det)/float64(total) >= target {
			return n
		}
	}
	return -1
}

// E9ScanTestTime regenerates the extension table: what test point
// insertion buys in tester time under the full-scan cost model — patterns
// needed to reach a coverage target, multiplied into scan cycles by the
// chain shift cost. This is the economic argument the 1987 paper's
// budget-constrained formulation serves.
func E9ScanTestTime(cfg Config) (*Table, error) { return e9ScanTestTime(context.Background(), cfg) }

func e9ScanTestTime(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Scan test time to reach a coverage target, before/after TPI (extension)",
		Columns: []string{"circuit", "FFs/chains", "target", "patterns before", "patterns after", "cycles before", "cycles after", "speedup"},
		Notes: []string{
			"scan cost model: cycles(n) = n*(chainLength+1) + chainLength",
			"planner threshold DTh = 64/budget: targets must be reachable early in the session, not merely within it",
			"'-' means the target was not reached within the pattern budget",
		},
	}
	budget := patternsFor(cfg)
	targets := []float64{0.95, 0.99}
	type workload struct {
		seed               int64
		cones, width, glue int
		pseudoPins, chains int
	}
	loads := []workload{
		{seed: 7, cones: 2, width: 12, glue: 60, pseudoPins: 4, chains: 1},
		{seed: 9, cones: 3, width: 12, glue: 120, pseudoPins: 6, chains: 2},
	}
	if cfg.Quick {
		loads = loads[:1]
	}
	for _, w := range loads {
		core := gen.RPResistant(w.seed, w.cones, w.width, w.glue)
		design, err := scan.WrapCombinational(core, w.pseudoPins, w.pseudoPins, w.chains)
		if err != nil {
			return nil, err
		}
		faults, err := testableFaults(ctx, core)
		if err != nil {
			return nil, err
		}
		before, err := fsim.RunContext(ctx, core, faults, pattern.NewLFSR(0xfab), fsim.Options{MaxPatterns: budget, DropFaults: true})
		if err != nil {
			return nil, err
		}
		plan, err := tpi.PlanHybridContext(ctx, core, faults, 3, 4, 64.0/float64(budget), tpi.CPOptions{}, tpi.OPOptions{})
		if err != nil {
			return nil, err
		}
		after, err := fsim.RunContext(ctx, plan.Modified, faults, pattern.NewLFSR(0xfab), fsim.Options{MaxPatterns: budget, DropFaults: true})
		if err != nil {
			return nil, err
		}
		cell := func(n int) string {
			if n < 0 {
				return "-"
			}
			return fmt.Sprint(n)
		}
		cycles := func(n int) string {
			if n < 0 {
				return "-"
			}
			return fmt.Sprint(design.TestCycles(n))
		}
		for _, target := range targets {
			nBefore := patternsToTarget(before, len(faults), target)
			nAfter := patternsToTarget(after, len(faults), target)
			speedup := "-"
			if nBefore > 0 && nAfter > 0 {
				speedup = fmt.Sprintf("%.1fx", float64(design.TestCycles(nBefore))/float64(design.TestCycles(nAfter)))
			} else if nBefore < 0 && nAfter > 0 {
				speedup = "inf (target unreachable before)"
			}
			t.AddRow(core.Name(), fmt.Sprintf("%d/%d", design.NumFFs(), w.chains),
				fmt.Sprintf("%.0f%%", 100*target),
				cell(nBefore), cell(nAfter), cycles(nBefore), cycles(nAfter), speedup)
		}
	}
	return t, nil
}
