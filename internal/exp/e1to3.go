package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/testcount"
	"repro/internal/tpi"
)

// Config scales the experiment workloads. Quick mode shrinks circuits and
// pattern budgets so the whole suite runs in CI time; the full mode is
// what EXPERIMENTS.md records.
type Config struct {
	Quick bool
}

// treeSuite returns the fanout-free benchmark circuits used by E1-E3.
func treeSuite(cfg Config) []*netlist.Circuit {
	sizes := []int{6, 20, 100, 400}
	if cfg.Quick {
		sizes = []int{6, 20}
	}
	var out []*netlist.Circuit
	for i, n := range sizes {
		out = append(out, gen.RandomTree(int64(i+1), n, gen.TreeOptions{}))
	}
	out = append(out, gen.AndCone(32))
	return out
}

// E1TestCounts regenerates Table 1: the Hayes–Friedman minimal test
// counts on fanout-free circuits, cross-checked against a compacted
// PODEM test set (an upper bound that is provably never below the DP
// count) and, for the smallest instances, the exact set-cover minimum.
func E1TestCounts(cfg Config) (*Table, error) { return e1TestCounts(context.Background(), cfg) }

func e1TestCounts(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Minimal complete test set sizes on fanout-free circuits (Table 1)",
		Columns: []string{"circuit", "inputs", "gates", "t0(root)", "t1(root)", "min tests (DP)", "ATPG vectors", "ATPG compacted", "ATPG redundant"},
		Notes: []string{
			"min tests (DP) is exact (Hayes-Friedman recurrences; validated against an exact cover solver in internal/testcount tests)",
			"ATPG vectors is a greedily-compacted PODEM set; ATPG compacted adds static reverse-order compaction. Both upper-bound the minimum",
		},
	}
	for _, c := range treeSuite(cfg) {
		ct, err := testcount.Compute(c)
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", c.Name(), err)
		}
		root := c.Outputs()[0]
		ts, err := atpg.GenerateTestsContext(ctx, c, fault.Universe(c), atpg.Options{})
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", c.Name(), err)
		}
		compacted := atpg.CompactTests(c, fault.Universe(c), ts.Vectors)
		t.AddRow(c.Name(), c.NumInputs(), c.NumGates()-c.NumInputs(),
			ct.T0[root], ct.T1[root], ct.CircuitTests(), len(ts.Vectors), len(compacted), len(ts.Redundant))
	}
	return t, nil
}

// E2Insertion regenerates Table 2: minimax test counts after inserting K
// full test points, planner by planner. The DP matches the exhaustive
// optimum; greedy and random trail it.
func E2Insertion(cfg Config) (*Table, error) { return e2Insertion(context.Background(), cfg) }

func e2Insertion(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Test count after inserting K full test points (Table 2)",
		Columns: []string{"circuit", "K", "base", "DP", "exhaustive", "greedy", "random"},
		Notes: []string{
			"exhaustive is omitted (-) where the subset space is too large",
		},
	}
	seeds := []int64{1, 2, 3}
	leaves := 12
	ks := []int{1, 2, 3, 4}
	if cfg.Quick {
		seeds = seeds[:2]
		ks = []int{1, 2}
	}
	for _, seed := range seeds {
		c := gen.RandomTree(seed, leaves, gen.TreeOptions{})
		for _, k := range ks {
			dp, err := tpi.PlanCutsDPContext(ctx, c, k)
			if err != nil {
				return nil, err
			}
			exCost := "-"
			if leaves <= 14 {
				ex, err := tpi.PlanCutsExhaustive(c, k)
				if err != nil {
					return nil, err
				}
				exCost = fmt.Sprint(ex.MaxCost)
			}
			gr, err := tpi.PlanCutsGreedy(c, k)
			if err != nil {
				return nil, err
			}
			rnd, err := tpi.PlanCutsRandom(c, k, seed+1000)
			if err != nil {
				return nil, err
			}
			t.AddRow(c.Name(), k, dp.BaseCost, dp.MaxCost, exCost, gr.MaxCost, rnd.MaxCost)
		}
	}
	return t, nil
}

// E3Sweep regenerates Figure 1: the diminishing-returns curve of optimal
// test count versus test point budget, with the greedy curve alongside.
func E3Sweep(cfg Config) (*Series, error) { return e3Sweep(context.Background(), cfg) }

func e3Sweep(ctx context.Context, cfg Config) (*Series, error) {
	leaves := 200
	maxK := 16
	if cfg.Quick {
		leaves = 60
		maxK = 6
	}
	c := gen.RandomTree(42, leaves, gen.TreeOptions{})
	var dpLine, grLine Line
	dpLine.Name = "DP (optimal)"
	grLine.Name = "greedy"
	for k := 0; k <= maxK; k++ {
		dp, err := tpi.PlanCutsDPContext(ctx, c, k)
		if err != nil {
			return nil, err
		}
		dpLine.Points = append(dpLine.Points, Point{X: float64(k), Y: float64(dp.MaxCost)})
		gr, err := tpi.PlanCutsGreedy(c, k)
		if err != nil {
			return nil, err
		}
		grLine.Points = append(grLine.Points, Point{X: float64(k), Y: float64(gr.MaxCost)})
	}
	return &Series{
		ID:     "E3",
		Title:  fmt.Sprintf("Test count vs test point budget, %d-leaf tree (Figure 1)", leaves),
		XLabel: "K",
		YLabel: "minimax tests",
		Lines:  []Line{dpLine, grLine},
	}, nil
}

// timeIt runs f and returns its duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
