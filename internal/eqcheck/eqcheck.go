// Package eqcheck decides functional equivalence of two combinational
// circuits by simulation: exhaustively when the input count permits,
// otherwise by dense random blocks. It is the safety net under every
// netlist rewrite in this repository (test point insertion, XOR
// expansion, optimization passes, format round trips).
package eqcheck

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Options configures a check.
type Options struct {
	// ExhaustiveLimit is the largest input count checked exhaustively
	// (default 16). Above it, RandomBlocks random 64-pattern blocks are
	// used instead.
	ExhaustiveLimit int
	// RandomBlocks is the number of random blocks for large circuits
	// (default 256, i.e. 16384 patterns).
	RandomBlocks int
	// Seed drives the random blocks.
	Seed int64
}

func (o *Options) defaults() {
	if o.ExhaustiveLimit <= 0 {
		o.ExhaustiveLimit = 16
	}
	if o.RandomBlocks <= 0 {
		o.RandomBlocks = 256
	}
}

// Counterexample reports one distinguishing input assignment.
type Counterexample struct {
	Inputs []bool // per input of circuit a, in Inputs() order
	Output int    // index into Outputs() that differs
}

// Equal reports whether circuits a and b compute the same function,
// matching inputs and outputs by name when all names correspond and by
// position otherwise. Exhaustive below the input limit (a proof),
// randomized above it (a strong check). A non-nil Counterexample is
// returned when they differ.
func Equal(a, b *netlist.Circuit, opts Options) (bool, *Counterexample, error) {
	opts.defaults()
	if a.NumInputs() != b.NumInputs() {
		return false, nil, fmt.Errorf("eqcheck: input counts differ: %d vs %d", a.NumInputs(), b.NumInputs())
	}
	if a.NumOutputs() != b.NumOutputs() {
		return false, nil, fmt.Errorf("eqcheck: output counts differ: %d vs %d", a.NumOutputs(), b.NumOutputs())
	}
	inMap, err := pinMap(a, b, a.Inputs(), b.Inputs())
	if err != nil {
		return false, nil, fmt.Errorf("eqcheck: inputs: %w", err)
	}
	outMap, err := pinMap(a, b, a.Outputs(), b.Outputs())
	if err != nil {
		return false, nil, fmt.Errorf("eqcheck: outputs: %w", err)
	}

	simA := logic.New(a)
	simB := logic.New(b)
	n := a.NumInputs()
	wordsA := make([]uint64, n)
	wordsB := make([]uint64, n)

	check := func(valid int) (*Counterexample, error) {
		for i := range wordsA {
			wordsB[inMap[i]] = wordsA[i]
		}
		if err := simA.Run(wordsA); err != nil {
			return nil, err
		}
		if err := simB.Run(wordsB); err != nil {
			return nil, err
		}
		mask := ^uint64(0)
		if valid < 64 {
			mask = uint64(1)<<uint(valid) - 1
		}
		for oi, oa := range a.Outputs() {
			ob := b.Outputs()[outMap[oi]]
			if diff := (simA.Value(oa) ^ simB.Value(ob)) & mask; diff != 0 {
				bit := uint(0)
				for diff>>bit&1 == 0 {
					bit++
				}
				ce := &Counterexample{Output: oi, Inputs: make([]bool, n)}
				for i := range ce.Inputs {
					ce.Inputs[i] = wordsA[i]>>bit&1 == 1
				}
				return ce, nil
			}
		}
		return nil, nil
	}

	if n <= opts.ExhaustiveLimit {
		total := 1 << uint(n)
		for base := 0; base < total; base += 64 {
			valid := total - base
			if valid > 64 {
				valid = 64
			}
			for i := range wordsA {
				wordsA[i] = 0
			}
			for bit := 0; bit < valid; bit++ {
				v := base + bit
				for i := 0; i < n; i++ {
					if v>>uint(i)&1 == 1 {
						wordsA[i] |= 1 << uint(bit)
					}
				}
			}
			ce, err := check(valid)
			if err != nil {
				return false, nil, err
			}
			if ce != nil {
				return false, ce, nil
			}
		}
		return true, nil, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for blk := 0; blk < opts.RandomBlocks; blk++ {
		for i := range wordsA {
			wordsA[i] = rng.Uint64()
		}
		ce, err := check(64)
		if err != nil {
			return false, nil, err
		}
		if ce != nil {
			return false, ce, nil
		}
	}
	return true, nil, nil
}

// pinMap maps pin positions of a onto b: identity when any name is
// missing on either side, by-name otherwise.
func pinMap(a, b *netlist.Circuit, pinsA, pinsB []int) ([]int, error) {
	byName := make(map[string]int, len(pinsB))
	for i, p := range pinsB {
		byName[b.GateName(p)] = i
	}
	mapped := make([]int, len(pinsA))
	used := make([]bool, len(pinsB))
	allNamed := true
	for i, p := range pinsA {
		j, ok := byName[a.GateName(p)]
		if !ok {
			allNamed = false
			break
		}
		mapped[i] = j
		used[j] = true
	}
	if allNamed {
		for j, u := range used {
			if !u {
				return nil, fmt.Errorf("pin %q of the second circuit unmatched", b.GateName(pinsB[j]))
			}
		}
		return mapped, nil
	}
	// Positional fallback.
	for i := range mapped {
		mapped[i] = i
	}
	return mapped, nil
}
