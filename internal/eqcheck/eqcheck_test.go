package eqcheck

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

func TestEqualSelf(t *testing.T) {
	for _, c := range []*netlist.Circuit{
		gen.C17(),
		gen.RippleCarryAdder(4),
		gen.RandomDAG(1, 8, 40, gen.DAGOptions{}),
	} {
		ok, ce, err := Equal(c, c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !ok {
			t.Errorf("%s: not equal to itself (counterexample %v)", c.Name(), ce)
		}
	}
}

func TestEqualAfterXorExpansion(t *testing.T) {
	c := gen.RippleCarryAdder(4)
	exp, err := c.ExpandXor()
	if err != nil {
		t.Fatal(err)
	}
	ok, ce, err := Equal(c, exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("XOR expansion changed function: %v", ce)
	}
}

func TestDetectsDifference(t *testing.T) {
	// AND vs OR of the same inputs.
	build := func(tp netlist.GateType) *netlist.Circuit {
		b := netlist.NewBuilder("x")
		a := b.Input("a")
		x := b.Input("b")
		g := b.Add(tp, "g", a, x)
		b.MarkOutput(g)
		return b.MustBuild()
	}
	ok, ce, err := Equal(build(netlist.And), build(netlist.Or), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("AND reported equal to OR")
	}
	if ce == nil {
		t.Fatal("no counterexample returned")
	}
	// The counterexample must actually distinguish: exactly one input 1.
	ones := 0
	for _, v := range ce.Inputs {
		if v {
			ones++
		}
	}
	if ones != 1 {
		t.Errorf("counterexample %v does not distinguish AND from OR", ce.Inputs)
	}
}

func TestDetectsSubtleDifference(t *testing.T) {
	// Identical except one gate's pin order on a NAND feeding an AND with
	// an inverter — swap NAND to AND deep inside.
	build := func(deep netlist.GateType) *netlist.Circuit {
		b := netlist.NewBuilder("x")
		a := b.Input("a")
		x := b.Input("b")
		y := b.Input("c")
		g1 := b.Add(deep, "g1", a, x)
		g2 := b.OrGate("g2", g1, y)
		b.MarkOutput(g2)
		return b.MustBuild()
	}
	ok, _, err := Equal(build(netlist.And), build(netlist.Nand), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("differing deep gates reported equal")
	}
}

func TestNameBasedMatching(t *testing.T) {
	// Same function, inputs declared in a different order: name matching
	// must align them.
	b1 := netlist.NewBuilder("p")
	a1 := b1.Input("a")
	x1 := b1.Input("b")
	g1 := b1.AndGate("z", a1, b1.NotGate("nb", x1))
	b1.MarkOutput(g1)
	c1 := b1.MustBuild()

	b2 := netlist.NewBuilder("q")
	x2 := b2.Input("b") // order swapped
	a2 := b2.Input("a")
	g2 := b2.AndGate("z", a2, b2.NotGate("nb", x2))
	b2.MarkOutput(g2)
	c2 := b2.MustBuild()

	ok, ce, err := Equal(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("name-matched circuits reported different: %v", ce)
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	if _, _, err := Equal(gen.C17(), gen.AndCone(4), Options{}); err == nil {
		t.Error("expected error for mismatched pin counts")
	}
}

func TestRandomizedLargeCircuits(t *testing.T) {
	// 32 inputs forces the randomized path.
	c := gen.RandomDAG(9, 32, 300, gen.DAGOptions{})
	ok, _, err := Equal(c, c, Options{RandomBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("large circuit not equal to itself under random blocks")
	}
}
