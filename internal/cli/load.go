// Package cli holds the helpers shared by the command-line tools:
// loading circuits from .bench files or from generator specifications.
package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/vlog"
)

// LoadCircuit resolves exactly one of benchPath / genSpec into a circuit.
// Netlist files ending in .v/.sv are read as structural Verilog,
// everything else as .bench.
//
// Errors split along the exit-code contract: flag misuse (both or
// neither source given, an unparsable -gen spec) comes back as a
// *UsageError so ExitCode maps it to 2, while an unreadable or
// unparsable input file is an ordinary failure (exit 1).
func LoadCircuit(benchPath, genSpec string) (*netlist.Circuit, error) {
	switch {
	case benchPath != "" && genSpec != "":
		return nil, Usage(fmt.Errorf("cli: -bench and -gen are mutually exclusive"))
	case benchPath != "":
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		name := strings.TrimSuffix(filepath.Base(benchPath), filepath.Ext(benchPath))
		if ext := strings.ToLower(filepath.Ext(benchPath)); ext == ".v" || ext == ".sv" {
			return vlog.Parse(f)
		}
		return bench.Parse(f, name)
	case genSpec != "":
		return Generate(genSpec)
	}
	return nil, Usage(fmt.Errorf("cli: provide -bench <file> or -gen <spec>"))
}

// Generate builds a circuit from a generator specification of the form
//
//	kind:key=value,key=value
//
// Supported kinds and their keys (all integer-valued, with defaults):
//
//	c17                                  the ISCAS'85 c17 benchmark
//	tree:seed=1,leaves=50                random fanout-free unate circuit
//	dag:seed=1,inputs=16,gates=200      random reconvergent circuit
//	cone:width=16                       wide AND cone
//	parity:width=16                     balanced XOR tree
//	rca:width=8                         ripple-carry adder
//	cmp:width=8                         equality comparator
//	decoder:bits=4                      n-to-2^n decoder
//	mul:width=6                         array multiplier
//	rpr:seed=1,cones=3,width=12,glue=80 random-pattern-resistant circuit
//	bshift:width=16                     logarithmic barrel shifter
//	alu:width=8                         2-bit-opcode ALU slice
func Generate(spec string) (c *netlist.Circuit, err error) {
	// The generators panic on out-of-range parameters (they are library
	// preconditions); surface those as usage errors at the CLI boundary —
	// the offending value came straight from the user's -gen flag.
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, Usage(fmt.Errorf("cli: %v", r))
		}
	}()
	kind := spec
	args := map[string]int{}
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		kind = spec[:i]
		for _, kv := range strings.Split(spec[i+1:], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return nil, Usage(fmt.Errorf("cli: malformed generator argument %q", kv))
			}
			v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return nil, Usage(fmt.Errorf("cli: argument %q: %w", kv, err))
			}
			args[strings.TrimSpace(parts[0])] = v
		}
	}
	get := func(key string, def int) int {
		if v, ok := args[key]; ok {
			return v
		}
		return def
	}
	switch kind {
	case "c17":
		return gen.C17(), nil
	case "tree":
		return gen.RandomTree(int64(get("seed", 1)), get("leaves", 50), gen.TreeOptions{
			MaxFanin: get("fanin", 0),
		}), nil
	case "dag":
		return gen.RandomDAG(int64(get("seed", 1)), get("inputs", 16), get("gates", 200), gen.DAGOptions{
			MaxFanin: get("fanin", 0),
		}), nil
	case "cone":
		return gen.AndCone(get("width", 16)), nil
	case "parity":
		return gen.ParityTree(get("width", 16)), nil
	case "rca":
		return gen.RippleCarryAdder(get("width", 8)), nil
	case "cmp":
		return gen.Comparator(get("width", 8)), nil
	case "decoder":
		return gen.Decoder(get("bits", 4)), nil
	case "mul":
		return gen.Multiplier(get("width", 6)), nil
	case "rpr":
		return gen.RPResistant(int64(get("seed", 1)), get("cones", 3), get("width", 12), get("glue", 80)), nil
	case "bshift":
		return gen.BarrelShifter(get("width", 16)), nil
	case "alu":
		return gen.ALUSlice(get("width", 8)), nil
	}
	return nil, Usage(fmt.Errorf("cli: unknown generator kind %q", kind))
}
