package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
)

// Exit codes shared by the command-line tools. Scripts can rely on
// these to distinguish "the engine rejected the input" from "the
// results could not be persisted" from "the deadline expired".
const (
	ExitOK = 0
	// ExitFailure is any generic error (bad flags, bad input, engine
	// error).
	ExitFailure = 1
	// ExitWriteFailure means the computation succeeded but a requested
	// output file could not be written (*WriteError).
	ExitWriteFailure = 2
	// ExitUsage means the command could not start: bad flags, bad
	// configuration, or input that could not be consumed (*UsageError).
	// It shares the numeric value 2 with ExitWriteFailure deliberately:
	// both denote environment failures rather than engine failures, and
	// the stderr message carries the distinction. flag.ExitOnError uses
	// the same value for unparsable flags.
	ExitUsage = 2
	// ExitDeadline means a -timeout expired before the run finished;
	// any results already printed are partial.
	ExitDeadline = 3
)

// UsageError marks a bad-usage or bad-configuration failure detected
// before any engine work starts. Commands map it to ExitUsage.
type UsageError struct {
	Err error
}

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

// Usage wraps err as a *UsageError so ExitCode maps it to ExitUsage;
// nil stays nil.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return &UsageError{Err: err}
}

// WriteError marks a failure to create, write, or close a requested
// output file. Commands map it to ExitWriteFailure.
type WriteError struct {
	Path string
	Err  error
}

func (e *WriteError) Error() string { return fmt.Sprintf("write %s: %v", e.Path, e.Err) }
func (e *WriteError) Unwrap() error { return e.Err }

// WriteFile creates path and streams fn's output into it, folding
// create, write, and close failures into a *WriteError. Close errors
// matter here: on many filesystems a full disk only surfaces at close,
// and silently dropping that error reports success for a truncated
// file.
func WriteFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return &WriteError{Path: path, Err: err}
	}
	werr := fn(f)
	cerr := f.Close()
	if werr != nil {
		return &WriteError{Path: path, Err: werr}
	}
	if cerr != nil {
		return &WriteError{Path: path, Err: cerr}
	}
	return nil
}

// ExitCode maps a command run error to the exit code contract above.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ExitDeadline
	default:
		var ue *UsageError
		if errors.As(err, &ue) {
			return ExitUsage
		}
		var we *WriteError
		if errors.As(err, &we) {
			return ExitWriteFailure
		}
		return ExitFailure
	}
}
