package cli

import (
	"fmt"
	"io"

	"repro/internal/lint"
	"repro/internal/netlist"
)

// LintCircuit runs the static analyzer over a freshly loaded circuit on
// behalf of a tool's -lint flag: warning-and-above findings go to w (the
// tool's stderr) and an error is returned when any Error-severity finding
// is present, so malformed inputs are rejected before any simulation or
// planning spends budget on them.
func LintCircuit(c *netlist.Circuit, w io.Writer) error {
	rep := lint.Analyze(c, lint.Options{})
	for _, f := range rep.Filter(lint.Warning) {
		fmt.Fprintf(w, "lint: %s: %s\n", rep.Circuit, f)
	}
	if rep.HasErrors() {
		return fmt.Errorf("cli: lint rejected circuit %s: %d error-severity finding(s); run cmd/lint for details",
			rep.Circuit, rep.CountBySeverity()[lint.Error])
	}
	return nil
}

// LoadCircuitChecked is LoadCircuit with opt-in lint validation: when
// runLint is set the loaded circuit passes through LintCircuit, with
// findings written to w.
func LoadCircuitChecked(benchPath, genSpec string, runLint bool, w io.Writer) (*netlist.Circuit, error) {
	c, err := LoadCircuit(benchPath, genSpec)
	if err != nil {
		return nil, err
	}
	if runLint {
		if err := LintCircuit(c, w); err != nil {
			return nil, err
		}
	}
	return c, nil
}
