package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("boom"), ExitFailure},
		{&WriteError{Path: "x", Err: errors.New("disk full")}, ExitWriteFailure},
		{fmt.Errorf("wrapped: %w", &WriteError{Path: "x", Err: io.ErrShortWrite}), ExitWriteFailure},
		{context.DeadlineExceeded, ExitDeadline},
		{context.Canceled, ExitDeadline},
		{fmt.Errorf("sim: %w", context.DeadlineExceeded), ExitDeadline},
		{Usage(errors.New("bad flag")), ExitUsage},
		{fmt.Errorf("start: %w", Usage(errors.New("bad flag"))), ExitUsage},
		// A usage error wrapping a deadline keeps the deadline code:
		// timeouts stay distinguishable no matter how they travel.
		{Usage(context.DeadlineExceeded), ExitDeadline},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestUsageWrapper(t *testing.T) {
	if Usage(nil) != nil {
		t.Error("Usage(nil) must stay nil")
	}
	base := errors.New("no such generator")
	err := Usage(base)
	if !errors.Is(err, base) {
		t.Error("Usage must wrap transparently")
	}
	if err.Error() != base.Error() {
		t.Errorf("Usage message = %q, want %q", err.Error(), base.Error())
	}
}

func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	// Create failure (missing directory) must surface as *WriteError.
	err := WriteFile(filepath.Join(t.TempDir(), "nodir", "out.txt"), func(io.Writer) error { return nil })
	var we *WriteError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WriteError", err)
	}

	// A write-callback failure must surface as *WriteError too.
	err = WriteFile(path, func(io.Writer) error { return io.ErrShortWrite })
	if !errors.As(err, &we) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want *WriteError wrapping ErrShortWrite", err)
	}
}
