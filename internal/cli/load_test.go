package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateSpecs(t *testing.T) {
	cases := map[string]struct {
		inputs, outputs int
	}{
		"c17":                                {5, 2},
		"tree:seed=3,leaves=10":              {10, 1},
		"dag:seed=1,inputs=8,gates=30":       {8, -1},
		"cone:width=8":                       {8, 1},
		"parity:width=8":                     {8, 1},
		"rca:width=4":                        {9, 5},
		"cmp:width=4":                        {8, 1},
		"decoder:bits=3":                     {3, 8},
		"mul:width=3":                        {6, 6},
		"rpr:seed=1,cones=2,width=8,glue=20": {-1, -1},
	}
	for spec, want := range cases {
		c, err := Generate(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if want.inputs >= 0 && c.NumInputs() != want.inputs {
			t.Errorf("%s: inputs = %d, want %d", spec, c.NumInputs(), want.inputs)
		}
		if want.outputs >= 0 && c.NumOutputs() != want.outputs {
			t.Errorf("%s: outputs = %d, want %d", spec, c.NumOutputs(), want.outputs)
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	c, err := Generate("tree")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 50 {
		t.Errorf("default tree leaves = %d, want 50", c.NumInputs())
	}
}

func TestGenerateErrors(t *testing.T) {
	for _, spec := range []string{
		"frobnicator",
		"tree:leaves",     // malformed kv
		"tree:leaves=ten", // non-integer
		"cone:width=1",    // generator precondition -> recovered panic
		"decoder:bits=99", // out of range
	} {
		if _, err := Generate(spec); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
}

func TestLoadCircuitBench(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "c17.bench")
	if _, err := os.Stat(path); err != nil {
		t.Skip("testdata missing")
	}
	c, err := LoadCircuit(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "c17" || c.NumGates() != 11 {
		t.Errorf("loaded %v", c)
	}
}

func TestLoadCircuitExclusive(t *testing.T) {
	if _, err := LoadCircuit("x.bench", "c17"); err == nil {
		t.Error("expected mutual-exclusion error")
	}
	if _, err := LoadCircuit("", ""); err == nil {
		t.Error("expected missing-source error")
	}
	if _, err := LoadCircuit("/nonexistent/file.bench", ""); err == nil {
		t.Error("expected file error")
	}
}

func TestGenerateDatapathSpecs(t *testing.T) {
	for spec, inputs := range map[string]int{
		"bshift:width=8": 11,
		"alu:width=4":    10,
	} {
		c, err := Generate(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if c.NumInputs() != inputs {
			t.Errorf("%s: inputs = %d, want %d", spec, c.NumInputs(), inputs)
		}
	}
}

func TestLoadCircuitVerilog(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "c17.v")
	if _, err := os.Stat(path); err != nil {
		t.Skip("testdata missing")
	}
	c, err := LoadCircuit(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 11 || c.NumInputs() != 5 {
		t.Errorf("loaded %v", c)
	}
}
