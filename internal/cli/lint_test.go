package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestLintCircuitCleanAndBroken(t *testing.T) {
	var sb strings.Builder
	if err := LintCircuit(gen.C17(), &sb); err != nil {
		t.Errorf("c17 must pass lint: %v", err)
	}

	dir := t.TempDir()
	stuck := filepath.Join(dir, "stuck.bench")
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nna = NOT(a)\nk = AND(a, na)\nz = OR(b, k)\n"
	if err := os.WriteFile(stuck, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	sb.Reset()
	if _, err := LoadCircuitChecked(stuck, "", true, &sb); err == nil {
		t.Error("expected lint rejection of the stuck-constant circuit")
	}
	if !strings.Contains(sb.String(), "C001") {
		t.Errorf("warning stream missing the constant-line rule: %q", sb.String())
	}

	// Without lint the same file loads fine.
	if _, err := LoadCircuitChecked(stuck, "", false, &sb); err != nil {
		t.Errorf("load without lint: %v", err)
	}
}

// TestLoadCircuitCheckedExitCodes pins the error paths and which exit
// code each travels under: input problems (unreadable file, lint
// rejection) are runtime failures (1), flag misuse is a usage error (2).
func TestLoadCircuitCheckedExitCodes(t *testing.T) {
	dir := t.TempDir()
	stuck := filepath.Join(dir, "stuck.bench")
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nna = NOT(a)\nk = AND(a, na)\nz = OR(b, k)\n"
	if err := os.WriteFile(stuck, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		benchPath string
		genSpec   string
		runLint   bool
		want      int
	}{
		{"nonexistent file", filepath.Join(dir, "missing.bench"), "", false, ExitFailure},
		{"directory as input", dir, "", false, ExitFailure},
		{"lint gate rejects", stuck, "", true, ExitFailure},
		{"both sources", stuck, "c17", false, ExitUsage},
		{"no source", "", "", false, ExitUsage},
		{"unknown generator", "", "frobnicator", false, ExitUsage},
		{"generator precondition", "", "cone:width=1", false, ExitUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			_, err := LoadCircuitChecked(tc.benchPath, tc.genSpec, tc.runLint, &sb)
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := ExitCode(err); got != tc.want {
				t.Errorf("ExitCode(%v) = %d, want %d", err, got, tc.want)
			}
		})
	}
}
