package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestLintCircuitCleanAndBroken(t *testing.T) {
	var sb strings.Builder
	if err := LintCircuit(gen.C17(), &sb); err != nil {
		t.Errorf("c17 must pass lint: %v", err)
	}

	dir := t.TempDir()
	stuck := filepath.Join(dir, "stuck.bench")
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nna = NOT(a)\nk = AND(a, na)\nz = OR(b, k)\n"
	if err := os.WriteFile(stuck, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	sb.Reset()
	if _, err := LoadCircuitChecked(stuck, "", true, &sb); err == nil {
		t.Error("expected lint rejection of the stuck-constant circuit")
	}
	if !strings.Contains(sb.String(), "C001") {
		t.Errorf("warning stream missing the constant-line rule: %q", sb.String())
	}

	// Without lint the same file loads fine.
	if _, err := LoadCircuitChecked(stuck, "", false, &sb); err != nil {
		t.Errorf("load without lint: %v", err)
	}
}
