package perf

import "fmt"

// Violation kinds produced by Compare.
const (
	// KindMissing marks a baseline benchmark absent from the current
	// report.
	KindMissing = "missing"
	// KindSlower marks a benchmark whose ns/op regressed beyond the
	// tolerance factor.
	KindSlower = "slower"
	// KindModeMismatch marks a short-mode report compared against a
	// full-mode baseline (or vice versa) — the workloads differ, so
	// the ratio would be meaningless.
	KindModeMismatch = "mode-mismatch"
	// KindSchemaMismatch marks reports from different schema versions.
	KindSchemaMismatch = "schema-mismatch"
)

// Violation is one way a current report fails the tolerance gate
// against a baseline.
type Violation struct {
	// Benchmark names the offending benchmark ("" for report-level
	// violations like a mode mismatch).
	Benchmark string `json:"benchmark,omitempty"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Detail is the human-readable account.
	Detail string `json:"detail"`
	// Factor is the ns/op ratio current/baseline for KindSlower.
	Factor float64 `json:"factor,omitempty"`
}

// String renders the violation in one line.
func (v Violation) String() string {
	if v.Benchmark == "" {
		return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
	}
	return fmt.Sprintf("%s: %s: %s", v.Benchmark, v.Kind, v.Detail)
}

// Compare gates a current report against a committed baseline with a
// generous tolerance: a violation is reported when a baseline
// benchmark is missing, or when its ns/op grew by more than maxFactor
// (<= 0 selects 10x — the gate is meant to catch order-of-magnitude
// regressions, not machine-to-machine noise). Benchmarks present only
// in the current report are new, not violations. The reports must be
// the same schema version and mode (short vs full); otherwise a single
// report-level violation is returned and no pairing is attempted.
func Compare(baseline, current *Report, maxFactor float64) []Violation {
	if maxFactor <= 0 {
		maxFactor = 10
	}
	if baseline.Schema != current.Schema {
		return []Violation{{Kind: KindSchemaMismatch, Detail: fmt.Sprintf(
			"baseline schema %q vs current %q", baseline.Schema, current.Schema)}}
	}
	if baseline.Meta.Short != current.Meta.Short {
		return []Violation{{Kind: KindModeMismatch, Detail: fmt.Sprintf(
			"baseline short=%v vs current short=%v: workloads are not comparable",
			baseline.Meta.Short, current.Meta.Short)}}
	}
	cur := make(map[string]*Result, len(current.Benchmarks))
	for i := range current.Benchmarks {
		cur[current.Benchmarks[i].Name] = &current.Benchmarks[i]
	}
	var out []Violation
	for i := range baseline.Benchmarks {
		base := &baseline.Benchmarks[i]
		got, ok := cur[base.Name]
		if !ok {
			out = append(out, Violation{Benchmark: base.Name, Kind: KindMissing,
				Detail: "present in baseline, absent from current report"})
			continue
		}
		if base.NsPerOp <= 0 {
			continue // nothing to ratio against
		}
		factor := got.NsPerOp / base.NsPerOp
		if factor > maxFactor {
			out = append(out, Violation{Benchmark: base.Name, Kind: KindSlower, Factor: factor,
				Detail: fmt.Sprintf("ns/op %.0f vs baseline %.0f (%.1fx > %.1fx tolerance)",
					got.NsPerOp, base.NsPerOp, factor, maxFactor)})
		}
	}
	return out
}
