package perf

import (
	"encoding/json"
	"fmt"
	"io"
)

// Schema identifies the report format; Validate rejects anything else.
// Bump the suffix only on incompatible shape changes — the CI baseline
// comparison refuses to cross schema versions.
const Schema = "tpi-dp/bench/v1"

// SuiteName names the canonical registry shipped by this package.
const SuiteName = "default"

// Meta records the environment and runner configuration a report was
// produced under. Everything here is either stable per machine or an
// explicit knob; nothing is a measurement.
type Meta struct {
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// GOOS and GOARCH identify the platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the runner's base setting (benchmarks may override
	// it for their own duration; see Result.GOMAXPROCS).
	GOMAXPROCS int `json:"gomaxprocs"`
	// Short marks the scaled-down workloads (cmd/bench -short).
	Short bool `json:"short"`
	// Iterations is the fixed per-benchmark iteration count, 0 when
	// the runner calibrated each benchmark against MinTime.
	Iterations int `json:"iterations"`
	// Warmup is the per-benchmark warmup iteration count.
	Warmup int `json:"warmup"`
}

// Result is one benchmark's measurement.
type Result struct {
	// Name, Group, Info, and Params echo the registered Benchmark.
	Name   string            `json:"name"`
	Group  string            `json:"group"`
	Info   string            `json:"info,omitempty"`
	Params map[string]string `json:"params,omitempty"`
	// GOMAXPROCS is the setting the benchmark ran under.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Iterations is the measured iteration count (warmup excluded).
	Iterations int `json:"iterations"`
	// TotalNs is the wall-clock time of the measured iterations.
	TotalNs int64 `json:"total_ns"`
	// NsPerOp is TotalNs / Iterations.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocation counts and bytes
	// per iteration (process-wide deltas, so concurrent helpers like
	// the HTTP stack are included — that is the point).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is the canonical machine-readable output of one suite run.
// Benchmarks appear in registry order, which is fixed, so two runs of
// the same binary produce structurally identical reports.
type Report struct {
	// Schema is always the Schema constant.
	Schema string `json:"schema"`
	// Suite names the registry that produced the report.
	Suite string `json:"suite"`
	// Meta records environment and configuration.
	Meta Meta `json:"meta"`
	// Benchmarks holds one Result per executed benchmark.
	Benchmarks []Result `json:"benchmarks"`
}

// Encode writes the report as stable, indented JSON with a trailing
// newline (the exact bytes cmd/bench commits as BENCH_*.json).
func (r *Report) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// StripMeasurements zeroes every measured field (times and allocation
// counters) in place, leaving only the structural identity of the run:
// names, params, iteration counts, environment. Two runs with the same
// configuration must be identical after stripping — the determinism
// contract pinned by the cmd/bench tests and used by Compare to pair
// benchmarks.
func (r *Report) StripMeasurements() {
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		b.TotalNs = 0
		b.NsPerOp = 0
		b.AllocsPerOp = 0
		b.BytesPerOp = 0
	}
}

// Decode reads and validates a report.
func Decode(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: decode report: %w", err)
	}
	if err := Validate(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks a report against the canonical schema: the schema
// tag, a named suite, sane meta, and a non-empty benchmark list with
// unique names, known groups, positive iteration counts, non-negative
// measurements — and at least one benchmark in each engine group, so a
// report that lost a whole engine family fails loudly.
func Validate(r *Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("perf: schema %q, want %q", r.Schema, Schema)
	}
	if r.Suite == "" {
		return fmt.Errorf("perf: empty suite name")
	}
	if r.Meta.GoVersion == "" || r.Meta.GOOS == "" || r.Meta.GOARCH == "" {
		return fmt.Errorf("perf: incomplete meta (go_version/goos/goarch required)")
	}
	if r.Meta.NumCPU <= 0 || r.Meta.GOMAXPROCS <= 0 {
		return fmt.Errorf("perf: meta cpu counts must be positive")
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("perf: report has no benchmarks")
	}
	seen := make(map[string]bool, len(r.Benchmarks))
	groups := make(map[string]int)
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		if b.Name == "" {
			return fmt.Errorf("perf: benchmark %d has no name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("perf: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		switch b.Group {
		case GroupFsim, GroupATPG, GroupTPI, GroupServe:
			groups[b.Group]++
		default:
			return fmt.Errorf("perf: benchmark %q has unknown group %q", b.Name, b.Group)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("perf: benchmark %q has non-positive iterations", b.Name)
		}
		if b.TotalNs < 0 || b.NsPerOp < 0 || b.AllocsPerOp < 0 || b.BytesPerOp < 0 {
			return fmt.Errorf("perf: benchmark %q has negative measurements", b.Name)
		}
		if b.GOMAXPROCS <= 0 {
			return fmt.Errorf("perf: benchmark %q has non-positive gomaxprocs", b.Name)
		}
	}
	for _, g := range []string{GroupFsim, GroupATPG, GroupTPI, GroupServe} {
		if groups[g] == 0 {
			return fmt.Errorf("perf: report covers no %s benchmarks", g)
		}
	}
	return nil
}
