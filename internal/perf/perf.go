// Package perf is the reproducible benchmark harness: a registry of
// canonical engine workloads (fault simulation serial and parallel,
// PODEM with and without learned implications, the test-point planners
// with and without the static pre-prune, and the serving stack cache
// hit vs miss), a calibrated runner (warmup, fixed-work iterations,
// wall-clock and allocation accounting, per-benchmark GOMAXPROCS), and
// a canonical JSON report schema with a tolerance-gate comparator for
// CI regression checks.
//
// The package is stdlib-only, like every engine it measures. Reports
// are written by cmd/bench as BENCH_*.json; the committed baseline
// lives in testdata/bench/ and the CI bench-smoke job fails only on
// order-of-magnitude regressions (see Compare).
//
// Wall-clock reads (time.Now/Since) are the measurement itself here,
// not state an engine result depends on; the package carries a vetted
// G004 allowlist entry for exactly that reason.
package perf

// Group names for the canonical suite. Validate requires a report to
// span all four: a report that silently lost an engine group is a
// harness bug, not a slow machine.
const (
	// GroupFsim covers the PPSFP fault simulator.
	GroupFsim = "fsim"
	// GroupATPG covers PODEM deterministic test generation.
	GroupATPG = "atpg"
	// GroupTPI covers the test point insertion planners.
	GroupTPI = "tpi"
	// GroupServe covers the HTTP serving stack.
	GroupServe = "serve"
)

// Benchmark is one registered workload: a named, parameterized unit of
// engine work. Setup builds the workload (circuits, fault lists,
// servers) outside the measured region and returns the operation to
// time; the runner calls the returned op once per iteration.
type Benchmark struct {
	// Name is the canonical slash-separated identifier, unique within
	// the suite (e.g. "fsim/parallel/w4").
	Name string
	// Group is the engine family (one of the Group* constants).
	Group string
	// Info is a one-line human description of the workload.
	Info string
	// Params records the workload knobs (workers, learn, prune, ...)
	// for machine consumption; it must be identical run to run.
	Params map[string]string
	// GOMAXPROCS, when positive, is set for the duration of the
	// benchmark and restored afterwards — the parallel-engine sweep.
	GOMAXPROCS int
	// Setup builds the workload and returns the operation to measure
	// plus an optional cleanup (either may rely on being called once).
	Setup func() (op func() error, cleanup func(), err error)
}
