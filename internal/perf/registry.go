package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"

	"repro/internal/atpg"
	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/implic"
	"repro/internal/netlist"
	"repro/internal/pattern"
	"repro/internal/serve"
	"repro/internal/tpi"
)

// workload bundles the per-mode sizing knobs the canonical suite is
// built from: one reconvergent DAG drives every engine so the numbers
// are comparable across groups.
type workload struct {
	spec     string // generator spec of the shared circuit
	patterns int    // fault-simulation pattern budget
	budget   int    // test point budget (k) for the planners
	dth      float64
}

// sizing returns the workload for the mode: the full mode matches the
// 600-gate DAG the serving benchmarks in EXPERIMENTS.md already use;
// short mode halves the circuit and trims the pattern budget so the CI
// smoke run finishes in seconds.
func sizing(short bool) workload {
	if short {
		return workload{spec: "dag:gates=300,seed=7", patterns: 1024, budget: 4, dth: 1e-3}
	}
	return workload{spec: "dag:gates=600,seed=7", patterns: 8192, budget: 8, dth: 1e-3}
}

// Suite returns the canonical benchmark registry in its fixed order:
// fsim serial and the parallel worker sweep, PODEM with and without
// learned implications, the observation planners (DP and greedy) with
// and without the static pre-prune, the hybrid flow, and the serving
// stack's cache hit and miss paths. The order, names, and params are
// part of the report contract — CI baselines pair benchmarks by name.
func Suite(short bool) []Benchmark {
	w := sizing(short)
	var out []Benchmark
	out = append(out, fsimBenchmarks(w)...)
	out = append(out, atpgBenchmarks(w)...)
	out = append(out, tpiBenchmarks(w)...)
	out = append(out, serveBenchmarks(w)...)
	out = append(out, jobsBenchmarks(w)...)
	return out
}

// circuitAndFaults builds the shared workload circuit and its
// collapsed fault universe.
func circuitAndFaults(spec string) (*netlist.Circuit, []fault.Fault, error) {
	c, err := cli.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	return c, fault.CollapsedUniverse(c), nil
}

// fsimBenchmarks covers the PPSFP simulator: one serial run and the
// RunParallel goroutine fan-out at 1/2/4/8 workers. Each parallel
// benchmark pins GOMAXPROCS to its worker count, so the sweep measures
// real hardware scaling where the cores exist and the fan-out overhead
// where they do not.
func fsimBenchmarks(w workload) []Benchmark {
	opts := fsim.Options{MaxPatterns: w.patterns, DropFaults: true}
	out := []Benchmark{{
		Name:  "fsim/serial",
		Group: GroupFsim,
		Info:  fmt.Sprintf("PPSFP, %s, %d LFSR patterns, fault dropping", w.spec, w.patterns),
		Params: map[string]string{
			"spec": w.spec, "patterns": strconv.Itoa(w.patterns), "workers": "0",
		},
		Setup: func() (func() error, func(), error) {
			c, faults, err := circuitAndFaults(w.spec)
			if err != nil {
				return nil, nil, err
			}
			return func() error {
				_, err := fsim.Run(c, faults, pattern.NewLFSR(1), opts)
				return err
			}, nil, nil
		},
	}}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		out = append(out, Benchmark{
			Name:  fmt.Sprintf("fsim/parallel/w%d", workers),
			Group: GroupFsim,
			Info:  fmt.Sprintf("RunParallel, %s, %d patterns, %d workers", w.spec, w.patterns, workers),
			Params: map[string]string{
				"spec": w.spec, "patterns": strconv.Itoa(w.patterns), "workers": strconv.Itoa(workers),
			},
			GOMAXPROCS: workers,
			Setup: func() (func() error, func(), error) {
				c, faults, err := circuitAndFaults(w.spec)
				if err != nil {
					return nil, nil, err
				}
				src := func() pattern.Source { return pattern.NewLFSR(1) }
				return func() error {
					_, err := fsim.RunParallel(c, faults, src, workers, opts)
					return err
				}, nil, nil
			},
		})
	}
	return out
}

// atpgBenchmarks covers PODEM over the collapsed universe, with and
// without the learned-implication pruning (atpg.Options.Learn). The
// implication engine is built in Setup — learning cost is a one-time
// preprocessing step, not per-fault work.
func atpgBenchmarks(w workload) []Benchmark {
	bench := func(learn bool) Benchmark {
		mode := "off"
		if learn {
			mode = "on"
		}
		return Benchmark{
			Name:   "atpg/podem/learn=" + mode,
			Group:  GroupATPG,
			Info:   fmt.Sprintf("PODEM, %s, collapsed universe, learned implications %s", w.spec, mode),
			Params: map[string]string{"spec": w.spec, "learn": mode},
			Setup: func() (func() error, func(), error) {
				c, faults, err := circuitAndFaults(w.spec)
				if err != nil {
					return nil, nil, err
				}
				var opts atpg.Options
				if learn {
					opts.Learn = implic.New(c, implic.Options{})
				}
				return func() error {
					_, err := atpg.GenerateTests(c, faults, opts)
					return err
				}, nil, nil
			},
		}
	}
	return []Benchmark{bench(false), bench(true)}
}

// tpiBenchmarks covers the planners: the observation DP and the greedy
// baseline each with and without the static pre-prune (tpi.PruneFaults,
// the PruneStatic path), plus the full hybrid flow, whose internal
// pre-prune is part of the measured pipeline.
func tpiBenchmarks(w workload) []Benchmark {
	planner := func(name string, plan func(*netlist.Circuit, []fault.Fault) error) func(prune bool) Benchmark {
		return func(prune bool) Benchmark {
			mode := "off"
			if prune {
				mode = "on"
			}
			return Benchmark{
				Name:  fmt.Sprintf("tpi/%s/prune=%s", name, mode),
				Group: GroupTPI,
				Info: fmt.Sprintf("%s planner, %s, k=%d, static pre-prune %s",
					name, w.spec, w.budget, mode),
				Params: map[string]string{
					"spec": w.spec, "k": strconv.Itoa(w.budget), "planner": name, "prune": mode,
				},
				Setup: func() (func() error, func(), error) {
					c, faults, err := circuitAndFaults(w.spec)
					if err != nil {
						return nil, nil, err
					}
					return func() error {
						target := faults
						if prune {
							target, _ = tpi.PruneFaults(c, faults)
						}
						return plan(c, target)
					}, nil, nil
				},
			}
		}
	}
	dp := planner("observe-dp", func(c *netlist.Circuit, fs []fault.Fault) error {
		_, err := tpi.PlanObservationPointsDP(c, fs, w.budget, w.dth, tpi.OPOptions{})
		return err
	})
	greedy := planner("observe-greedy", func(c *netlist.Circuit, fs []fault.Fault) error {
		_, err := tpi.PlanObservationPointsGreedy(c, fs, w.budget, w.dth, tpi.OPOptions{})
		return err
	})
	hybrid := Benchmark{
		Name:  "tpi/hybrid",
		Group: GroupTPI,
		Info: fmt.Sprintf("hybrid control+observe flow, %s, %d+%d points (pre-prune built in)",
			w.spec, w.budget/2, w.budget),
		Params: map[string]string{
			"spec": w.spec, "cp": strconv.Itoa(w.budget / 2), "op": strconv.Itoa(w.budget),
			"planner": "hybrid",
		},
		Setup: func() (func() error, func(), error) {
			c, faults, err := circuitAndFaults(w.spec)
			if err != nil {
				return nil, nil, err
			}
			return func() error {
				_, err := tpi.PlanHybrid(c, faults, w.budget/2, w.budget, w.dth, tpi.CPOptions{}, tpi.OPOptions{})
				return err
			}, nil, nil
		},
	}
	return []Benchmark{dp(false), dp(true), greedy(false), greedy(true), hybrid}
}

// serveBenchmarks covers the HTTP serving stack end to end (httptest
// listener, JSON decode, canonicalization, cache, worker pool, engine,
// JSON encode): a warmed cache hit replayed byte-identically, and a
// cache miss that runs the observation planner on a fresh generator
// seed every iteration.
func serveBenchmarks(w workload) []Benchmark {
	post := func(url, body string) error {
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("serve: status %d", resp.StatusCode)
		}
		return nil
	}
	hit := Benchmark{
		Name:   "serve/plan/cache=hit",
		Group:  GroupServe,
		Info:   fmt.Sprintf("POST /v1/plan, %s, hybrid planner, warmed result cache", w.spec),
		Params: map[string]string{"spec": w.spec, "planner": "hybrid", "cache": "hit"},
		Setup: func() (func() error, func(), error) {
			s, err := serve.New(serve.Config{})
			if err != nil {
				return nil, nil, err
			}
			ts := httptest.NewServer(s.Handler())
			body := fmt.Sprintf(`{"generate":%q,"options":{"planner":"hybrid"}}`, w.spec)
			if err := post(ts.URL+"/v1/plan", body); err != nil {
				ts.Close()
				s.Close()
				return nil, nil, err
			}
			return func() error {
					return post(ts.URL+"/v1/plan", body)
				}, func() {
					ts.Close()
					s.Close()
				}, nil
		},
	}
	miss := Benchmark{
		Name:   "serve/plan/cache=miss",
		Group:  GroupServe,
		Info:   fmt.Sprintf("POST /v1/plan, %d-gate DAG with a fresh seed per request, observe planner", sizeOfSpec(w.spec)),
		Params: map[string]string{"spec": w.spec, "planner": "observe", "cache": "miss"},
		Setup: func() (func() error, func(), error) {
			gates := sizeOfSpec(w.spec)
			s, err := serve.New(serve.Config{})
			if err != nil {
				return nil, nil, err
			}
			ts := httptest.NewServer(s.Handler())
			seed := 0
			return func() error {
					seed++
					body := fmt.Sprintf(`{"generate":"dag:gates=%d,seed=%d","options":{"planner":"observe"}}`, gates, seed)
					return post(ts.URL+"/v1/plan", body)
				}, func() {
					ts.Close()
					s.Close()
				}, nil
		},
	}
	return []Benchmark{hit, miss}
}

// jobsBenchmarks covers the async job path end to end: POST with
// mode=async (202 + job id), the scheduler and journal, and the events
// stream that blocks until the terminal snapshot — no poll loop, so
// the measured time is the subsystem's, not a sleep interval's. Both
// run with a persistent job dir, putting the journal fsyncs inside the
// measured region, the way a durable deployment pays them. The hit
// variant replays one warmed body, isolating job-machinery overhead
// from engine work; the miss variant uses a fresh generator seed per
// iteration so every job runs the planner.
func jobsBenchmarks(w workload) []Benchmark {
	submit := func(url, body string) (string, error) {
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			_, _ = io.Copy(io.Discard, resp.Body)
			return "", fmt.Errorf("serve: async submit status %d", resp.StatusCode)
		}
		var sub struct {
			Job struct {
				ID string `json:"id"`
			} `json:"job"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			return "", err
		}
		return sub.Job.ID, nil
	}
	await := func(url, id string) error {
		resp, err := http.Get(url + "/v1/jobs/" + id + "/events")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var last struct {
			State string `json:"state"`
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				return err
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
		if last.State != "done" {
			return fmt.Errorf("serve: job %s ended %q, want done", id, last.State)
		}
		return nil
	}
	setup := func(warm bool, bodyFor func(i int) string) func() (func() error, func(), error) {
		return func() (func() error, func(), error) {
			dir, err := os.MkdirTemp("", "perf-jobs-")
			if err != nil {
				return nil, nil, err
			}
			s, err := serve.New(serve.Config{JobDir: dir})
			if err != nil {
				_ = os.RemoveAll(dir)
				return nil, nil, err
			}
			ts := httptest.NewServer(s.Handler())
			cleanup := func() {
				ts.Close()
				s.Close()
				_ = os.RemoveAll(dir)
			}
			iter := 0
			op := func() error {
				iter++
				id, err := submit(ts.URL+"/v1/plan", bodyFor(iter))
				if err != nil {
					return err
				}
				return await(ts.URL, id)
			}
			if warm {
				// Populate the result cache so every measured iteration
				// is pure job machinery on a warmed entry.
				if err := op(); err != nil {
					cleanup()
					return nil, nil, err
				}
			}
			return op, cleanup, nil
		}
	}
	gates := sizeOfSpec(w.spec)
	hit := Benchmark{
		Name:   "serve/jobs/cache=hit",
		Group:  GroupServe,
		Info:   fmt.Sprintf("async POST /v1/plan + events stream to done, %s, warmed result cache, persistent job dir", w.spec),
		Params: map[string]string{"spec": w.spec, "planner": "hybrid", "cache": "hit", "mode": "async"},
		Setup: setup(true, func(int) string {
			return fmt.Sprintf(`{"generate":%q,"options":{"planner":"hybrid"},"mode":"async"}`, w.spec)
		}),
	}
	miss := Benchmark{
		Name:   "serve/jobs/cache=miss",
		Group:  GroupServe,
		Info:   fmt.Sprintf("async POST /v1/plan + events stream to done, %d-gate DAG with a fresh seed per job, persistent job dir", gates),
		Params: map[string]string{"spec": w.spec, "planner": "observe", "cache": "miss", "mode": "async"},
		Setup: setup(false, func(i int) string {
			return fmt.Sprintf(`{"generate":"dag:gates=%d,seed=%d","options":{"planner":"observe"},"mode":"async"}`, gates, i)
		}),
	}
	return []Benchmark{hit, miss}
}

// sizeOfSpec extracts the gates= value from a dag generator spec (the
// only spec kind the canonical suite uses), defaulting to 300.
func sizeOfSpec(spec string) int {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimPrefix(part, "dag:")
		if v, ok := strings.CutPrefix(part, "gates="); ok {
			if n, err := strconv.Atoi(v); err == nil {
				return n
			}
		}
	}
	return 300
}
