package perf

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// tinySuite is a synthetic registry for runner tests: real engine work
// is exercised by the suite smoke test below and by cmd/bench.
func tinySuite(counter *int) []Benchmark {
	return []Benchmark{
		{
			Name: "tpi/noop", Group: GroupTPI,
			Setup: func() (func() error, func(), error) {
				return func() error { *counter++; return nil }, nil, nil
			},
		},
		{
			Name: "fsim/noop", Group: GroupFsim,
			Setup: func() (func() error, func(), error) {
				return func() error { return nil }, nil, nil
			},
		},
		{
			Name: "atpg/noop", Group: GroupATPG,
			Setup: func() (func() error, func(), error) {
				return func() error { return nil }, nil, nil
			},
		},
		{
			Name: "serve/noop", Group: GroupServe,
			Setup: func() (func() error, func(), error) {
				return func() error { return nil }, nil, nil
			},
		},
	}
}

func TestRunFixedIterations(t *testing.T) {
	var calls int
	rep, err := Run(tinySuite(&calls), Config{Iterations: 5, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Errorf("op called %d times, want 7 (2 warmup + 5 measured)", calls)
	}
	if err := Validate(rep); err != nil {
		t.Errorf("report invalid: %v", err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(rep.Benchmarks))
	}
	if got := rep.Benchmarks[0].Iterations; got != 5 {
		t.Errorf("iterations = %d, want 5", got)
	}
}

func TestRunFilter(t *testing.T) {
	var calls int
	rep, err := Run(tinySuite(&calls), Config{Iterations: 1, Filter: "tpi/"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "tpi/noop" {
		t.Errorf("filter selected %v", rep.Benchmarks)
	}
	if _, err := Run(tinySuite(&calls), Config{Iterations: 1, Filter: "nonexistent"}); err == nil {
		t.Error("empty filter result did not error")
	}
}

func TestRunSetupAndOpErrors(t *testing.T) {
	boom := errors.New("boom")
	bad := []Benchmark{{
		Name: "fsim/bad", Group: GroupFsim,
		Setup: func() (func() error, func(), error) { return nil, nil, boom },
	}}
	if _, err := Run(bad, Config{Iterations: 1}); !errors.Is(err, boom) {
		t.Errorf("setup error not surfaced: %v", err)
	}
	cleaned := false
	failing := []Benchmark{{
		Name: "fsim/fail", Group: GroupFsim,
		Setup: func() (func() error, func(), error) {
			return func() error { return boom }, func() { cleaned = true }, nil
		},
	}}
	if _, err := Run(failing, Config{Iterations: 1}); !errors.Is(err, boom) {
		t.Errorf("op error not surfaced: %v", err)
	}
	if !cleaned {
		t.Error("cleanup not called after op failure")
	}
}

func TestCalibrateTargetsMinTime(t *testing.T) {
	iters, err := calibrate(func() error {
		time.Sleep(time.Millisecond)
		return nil
	}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 10 {
		t.Errorf("calibrated %d iterations for a 1ms op at 20ms target", iters)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var calls int
	rep, err := Run(tinySuite(&calls), Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip diverged:\n%v\n%v", rep, back)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// validReport builds a minimal schema-valid report for mutation tests.
func validReport() *Report {
	res := func(name, group string) Result {
		return Result{Name: name, Group: group, GOMAXPROCS: 1, Iterations: 1,
			TotalNs: 100, NsPerOp: 100}
	}
	return &Report{
		Schema: Schema,
		Suite:  SuiteName,
		Meta:   Meta{GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64", NumCPU: 1, GOMAXPROCS: 1},
		Benchmarks: []Result{
			res("fsim/a", GroupFsim), res("atpg/a", GroupATPG),
			res("tpi/a", GroupTPI), res("serve/a", GroupServe),
		},
	}
}

func TestValidateRejections(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "other" }},
		{"empty suite", func(r *Report) { r.Suite = "" }},
		{"no benchmarks", func(r *Report) { r.Benchmarks = nil }},
		{"missing meta", func(r *Report) { r.Meta.GoVersion = "" }},
		{"bad cpu count", func(r *Report) { r.Meta.NumCPU = 0 }},
		{"unnamed benchmark", func(r *Report) { r.Benchmarks[0].Name = "" }},
		{"duplicate name", func(r *Report) { r.Benchmarks[1].Name = r.Benchmarks[0].Name }},
		{"unknown group", func(r *Report) { r.Benchmarks[0].Group = "warp" }},
		{"zero iterations", func(r *Report) { r.Benchmarks[0].Iterations = 0 }},
		{"negative ns", func(r *Report) { r.Benchmarks[0].NsPerOp = -1 }},
		{"zero gomaxprocs", func(r *Report) { r.Benchmarks[0].GOMAXPROCS = 0 }},
		{"missing group coverage", func(r *Report) { r.Benchmarks = r.Benchmarks[:3] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			tc.mutate(r)
			if err := Validate(r); err == nil {
				t.Error("mutation accepted")
			}
		})
	}
	if err := Validate(validReport()); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}

func TestComparePassWithinTolerance(t *testing.T) {
	base, cur := validReport(), validReport()
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 9 // < 10x default
	if v := Compare(base, cur, 0); len(v) != 0 {
		t.Errorf("violations within tolerance: %v", v)
	}
}

func TestCompareFailBeyondTolerance(t *testing.T) {
	base, cur := validReport(), validReport()
	cur.Benchmarks[2].NsPerOp = base.Benchmarks[2].NsPerOp * 50
	vs := Compare(base, cur, 10)
	if len(vs) != 1 || vs[0].Kind != KindSlower || vs[0].Benchmark != "tpi/a" {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Factor < 49 || vs[0].Factor > 51 {
		t.Errorf("factor = %v, want ~50", vs[0].Factor)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base, cur := validReport(), validReport()
	cur.Benchmarks = cur.Benchmarks[1:] // drop fsim/a
	vs := Compare(base, cur, 10)
	if len(vs) != 1 || vs[0].Kind != KindMissing || vs[0].Benchmark != "fsim/a" {
		t.Errorf("violations = %v", vs)
	}
}

func TestCompareNewBenchmarkIsNotViolation(t *testing.T) {
	base, cur := validReport(), validReport()
	cur.Benchmarks = append(cur.Benchmarks, Result{
		Name: "fsim/new", Group: GroupFsim, GOMAXPROCS: 1, Iterations: 1, NsPerOp: 5})
	if vs := Compare(base, cur, 10); len(vs) != 0 {
		t.Errorf("new benchmark flagged: %v", vs)
	}
}

func TestCompareModeAndSchemaMismatch(t *testing.T) {
	base, cur := validReport(), validReport()
	cur.Meta.Short = true
	vs := Compare(base, cur, 10)
	if len(vs) != 1 || vs[0].Kind != KindModeMismatch {
		t.Errorf("violations = %v", vs)
	}
	cur = validReport()
	cur.Schema = "tpi-dp/bench/v999"
	vs = Compare(base, cur, 10)
	if len(vs) != 1 || vs[0].Kind != KindSchemaMismatch {
		t.Errorf("violations = %v", vs)
	}
}

func TestStripMeasurements(t *testing.T) {
	r := validReport()
	r.StripMeasurements()
	for _, b := range r.Benchmarks {
		if b.TotalNs != 0 || b.NsPerOp != 0 || b.AllocsPerOp != 0 || b.BytesPerOp != 0 {
			t.Errorf("%s still carries measurements: %+v", b.Name, b)
		}
	}
}

// TestSuiteShape pins the canonical registry contract: unique names in
// fixed order, all four engine groups covered, the worker sweep and
// the learn/prune toggles present, and both modes sharing one name
// set (baselines pair by name across machines, never across modes).
func TestSuiteShape(t *testing.T) {
	short := Suite(true)
	full := Suite(false)
	if len(short) != len(full) {
		t.Fatalf("short suite has %d benchmarks, full %d", len(short), len(full))
	}
	if len(short) < 8 {
		t.Fatalf("suite has %d benchmarks, want >= 8", len(short))
	}
	groups := make(map[string]int)
	for i := range short {
		if short[i].Name != full[i].Name {
			t.Errorf("suite order diverges between modes: %s vs %s", short[i].Name, full[i].Name)
		}
		if short[i].Setup == nil {
			t.Errorf("%s has no Setup", short[i].Name)
		}
		groups[short[i].Group]++
	}
	for _, g := range []string{GroupFsim, GroupATPG, GroupTPI, GroupServe} {
		if groups[g] == 0 {
			t.Errorf("suite covers no %s benchmarks", g)
		}
	}
	for _, name := range []string{
		"fsim/serial", "fsim/parallel/w1", "fsim/parallel/w8",
		"atpg/podem/learn=off", "atpg/podem/learn=on",
		"tpi/observe-dp/prune=off", "tpi/observe-dp/prune=on",
		"tpi/observe-greedy/prune=off", "tpi/observe-greedy/prune=on",
		"tpi/hybrid", "serve/plan/cache=hit", "serve/plan/cache=miss",
	} {
		found := false
		for i := range short {
			if short[i].Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("canonical benchmark %s missing from suite", name)
		}
	}
}

// TestSuiteSmoke runs the real short-mode suite once end to end — the
// same path CI's bench-smoke job drives through cmd/bench.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every engine once")
	}
	rep, err := Run(Suite(true), Config{Iterations: 1, Warmup: 1, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rep); err != nil {
		t.Errorf("suite report invalid: %v", err)
	}
}
