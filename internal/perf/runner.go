package perf

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Config controls one suite run.
type Config struct {
	// Iterations fixes the measured iteration count per benchmark.
	// Zero calibrates each benchmark against MinTime instead (the
	// fixed mode is what the determinism tests and CI use).
	Iterations int
	// Warmup is the number of unmeasured iterations run first to fill
	// caches and steady-state the allocator (default 1).
	Warmup int
	// MinTime is the calibration target per benchmark when Iterations
	// is zero (default 1s).
	MinTime time.Duration
	// Short marks the scaled-down suite; recorded in Meta so baseline
	// comparisons refuse to pair short and full reports.
	Short bool
	// Filter, when non-empty, selects benchmarks whose name contains
	// the substring.
	Filter string
	// Progress, when non-nil, receives one line per benchmark as it
	// completes.
	Progress io.Writer
}

// Run executes the suite and assembles the canonical report. Benchmarks
// run sequentially in registry order; each benchmark's Setup and
// cleanup are outside the measured region, and a per-benchmark
// GOMAXPROCS override is restored before the next benchmark starts.
func Run(suite []Benchmark, cfg Config) (*Report, error) {
	if cfg.Warmup <= 0 {
		cfg.Warmup = 1
	}
	if cfg.MinTime <= 0 {
		cfg.MinTime = time.Second
	}
	rep := &Report{
		Schema: Schema,
		Suite:  SuiteName,
		Meta: Meta{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Short:      cfg.Short,
			Iterations: cfg.Iterations,
			Warmup:     cfg.Warmup,
		},
	}
	for i := range suite {
		b := &suite[i]
		if cfg.Filter != "" && !strings.Contains(b.Name, cfg.Filter) {
			continue
		}
		res, err := runOne(b, cfg)
		if err != nil {
			return nil, fmt.Errorf("perf: %s: %w", b.Name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-28s %10d iters  %12.0f ns/op  %10.0f allocs/op\n",
				res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp)
		}
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("perf: no benchmarks matched filter %q", cfg.Filter)
	}
	return rep, nil
}

// runOne measures a single benchmark under the configured policy.
func runOne(b *Benchmark, cfg Config) (Result, error) {
	if b.GOMAXPROCS > 0 {
		prev := runtime.GOMAXPROCS(b.GOMAXPROCS)
		defer runtime.GOMAXPROCS(prev)
	}
	op, cleanup, err := b.Setup()
	if err != nil {
		return Result{}, fmt.Errorf("setup: %w", err)
	}
	if cleanup != nil {
		defer cleanup()
	}
	for i := 0; i < cfg.Warmup; i++ {
		if err := op(); err != nil {
			return Result{}, fmt.Errorf("warmup: %w", err)
		}
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters, err = calibrate(op, cfg.MinTime)
		if err != nil {
			return Result{}, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return Result{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{
		Name:        b.Name,
		Group:       b.Group,
		Info:        b.Info,
		Params:      b.Params,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iterations:  iters,
		TotalNs:     elapsed.Nanoseconds(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}, nil
}

// calibrate picks an iteration count whose total runtime approaches
// minTime, doubling from one op like the testing package but capped so
// a misregistered no-op cannot spin forever.
func calibrate(op func() error, minTime time.Duration) (int, error) {
	const maxIters = 1 << 16
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		elapsed := time.Since(start)
		if elapsed >= minTime || iters >= maxIters {
			return iters, nil
		}
		// Predict the target count from the measured rate, growing at
		// most 4x per round to damp noisy first measurements.
		next := iters * 4
		if elapsed > 0 {
			predicted := int(float64(iters) * float64(minTime) / float64(elapsed))
			if predicted < next {
				next = predicted
			}
		}
		if next <= iters {
			next = iters + 1
		}
		if next > maxIters {
			next = maxIters
		}
		iters = next
	}
}
