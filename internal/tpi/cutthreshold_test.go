package tpi

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestThresholdPlannerValidAndBounded(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := gen.RandomTree(seed, 40, gen.TreeOptions{})
		for _, k := range []int{1, 3, 6} {
			th, err := PlanCutsThreshold(c, k)
			if err != nil {
				t.Fatal(err)
			}
			dp, err := PlanCutsDP(c, k)
			if err != nil {
				t.Fatal(err)
			}
			if th.MaxCost < dp.MaxCost {
				t.Errorf("seed %d k %d: threshold planner %d beat the exact DP %d",
					seed, k, th.MaxCost, dp.MaxCost)
			}
			if th.MaxCost > th.BaseCost {
				t.Errorf("seed %d k %d: plan worsened the objective", seed, k)
			}
			if len(th.Cuts) > k {
				t.Errorf("seed %d k %d: budget exceeded (%d cuts)", seed, k, len(th.Cuts))
			}
			if err := VerifyCutPlan(c, th); err != nil {
				t.Errorf("seed %d k %d: %v", seed, k, err)
			}
		}
	}
}

func TestThresholdPlannerUsuallyOptimal(t *testing.T) {
	// The fast planner should match the DP on a solid majority of random
	// instances — that is its reason to exist.
	match, total := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		c := gen.RandomTree(seed, 30, gen.TreeOptions{})
		th, err := PlanCutsThreshold(c, 4)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := PlanCutsDP(c, 4)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if th.MaxCost == dp.MaxCost {
			match++
		}
	}
	if match*2 < total {
		t.Errorf("threshold planner matched DP on only %d/%d instances", match, total)
	}
	t.Logf("threshold planner optimal on %d/%d instances", match, total)
}

// TestThresholdPlannerQuickProperty drives the comparison with
// testing/quick over the (seed, leaves, budget) space.
func TestThresholdPlannerQuickProperty(t *testing.T) {
	f := func(seed int64, leaves, budget uint8) bool {
		n := int(leaves%20) + 4
		k := int(budget % 5)
		c := gen.RandomTree(seed, n, gen.TreeOptions{})
		th, err := PlanCutsThreshold(c, k)
		if err != nil {
			return false
		}
		dp, err := PlanCutsDP(c, k)
		if err != nil {
			return false
		}
		return th.MaxCost >= dp.MaxCost && th.MaxCost <= th.BaseCost &&
			len(th.Cuts) <= k && VerifyCutPlan(c, th) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestThresholdPlannerZeroAndNegative(t *testing.T) {
	c := gen.RandomTree(1, 10, gen.TreeOptions{})
	p, err := PlanCutsThreshold(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxCost != p.BaseCost {
		t.Errorf("k=0 cost %d != base %d", p.MaxCost, p.BaseCost)
	}
	if _, err := PlanCutsThreshold(c, -2); err != ErrBudgetNegative {
		t.Errorf("expected ErrBudgetNegative, got %v", err)
	}
}

func TestThresholdPlannerRejectsFanout(t *testing.T) {
	if _, err := PlanCutsThreshold(gen.C17(), 2); err == nil {
		t.Error("expected error on reconvergent circuit")
	}
}
