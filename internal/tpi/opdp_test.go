package tpi

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/pattern"
)

func TestOPDPMatchesExhaustiveOnTrees(t *testing.T) {
	// On fanout-free circuits the per-region tree DP plus knapsack is a
	// globally optimal placement under the coverage model.
	for seed := int64(0); seed < 8; seed++ {
		c := gen.RandomTree(seed, 9, gen.TreeOptions{})
		faults := fault.CollapsedUniverse(c)
		for _, k := range []int{1, 2} {
			for _, dth := range []float64{0.05, 0.15, 0.3} {
				dp, err := PlanObservationPointsDP(c, faults, k, dth, OPOptions{})
				if err != nil {
					t.Fatal(err)
				}
				ex, err := PlanObservationPointsExhaustive(c, faults, k, dth, OPOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if dp.CoveredAfter != ex.CoveredAfter {
					t.Errorf("seed %d k %d dth %.2f: DP covers %d, exhaustive %d (DP %v, EX %v)",
						seed, k, dth, dp.CoveredAfter, ex.CoveredAfter, dp.Points, ex.Points)
				}
				if len(dp.Points) > k {
					t.Errorf("budget exceeded: %v", dp.Points)
				}
			}
		}
	}
}

func TestOPDPMatchesExhaustiveOnReconvergent(t *testing.T) {
	// The DP optimises the same in-region coverage model the exhaustive
	// planner evaluates, so they must agree on general circuits too.
	for seed := int64(0); seed < 4; seed++ {
		c := gen.RandomDAG(seed, 6, 14, gen.DAGOptions{})
		faults := fault.CollapsedUniverse(c)
		for _, dth := range []float64{0.05, 0.2} {
			dp, err := PlanObservationPointsDP(c, faults, 2, dth, OPOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ex, err := PlanObservationPointsExhaustive(c, faults, 2, dth, OPOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if dp.CoveredAfter != ex.CoveredAfter {
				t.Errorf("seed %d dth %.2f: DP %d != exhaustive %d", seed, dth, dp.CoveredAfter, ex.CoveredAfter)
			}
		}
	}
}

func TestOPDPNeverWorseThanGreedyOrRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := gen.RandomDAG(seed, 10, 60, gen.DAGOptions{})
		faults := fault.CollapsedUniverse(c)
		const k, dth = 4, 0.1
		dp, err := PlanObservationPointsDP(c, faults, k, dth, OPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := PlanObservationPointsGreedy(c, faults, k, dth, OPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := PlanObservationPointsRandom(c, faults, k, dth, seed, OPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if dp.CoveredAfter < gr.CoveredAfter {
			t.Errorf("seed %d: DP %d worse than greedy %d", seed, dp.CoveredAfter, gr.CoveredAfter)
		}
		if dp.CoveredAfter < rnd.CoveredAfter {
			t.Errorf("seed %d: DP %d worse than random %d", seed, dp.CoveredAfter, rnd.CoveredAfter)
		}
		if gr.CoveredBefore != dp.CoveredBefore || rnd.CoveredBefore != dp.CoveredBefore {
			t.Errorf("planners disagree on baseline coverage")
		}
	}
}

func TestOPDPReconstructionConsistent(t *testing.T) {
	// The reconstructed placement must achieve exactly the DP value when
	// re-evaluated by the independent model evaluator.
	for seed := int64(0); seed < 6; seed++ {
		c := gen.RandomTree(seed, 20, gen.TreeOptions{})
		faults := fault.CollapsedUniverse(c)
		dp, err := PlanObservationPointsDP(c, faults, 3, 0.1, OPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := ModelCoveredCount(c, faults, dp.Points, 0.1, OPOptions{}); got != dp.CoveredAfter {
			t.Errorf("seed %d: reconstruction covers %d, plan claims %d", seed, got, dp.CoveredAfter)
		}
	}
}

func TestOPDPZeroBudgetEqualsBaseline(t *testing.T) {
	c := gen.C17()
	faults := fault.CollapsedUniverse(c)
	dp, err := PlanObservationPointsDP(c, faults, 0, 0.1, OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dp.CoveredAfter != dp.CoveredBefore || len(dp.Points) != 0 {
		t.Errorf("zero budget: %+v", dp)
	}
}

func TestOPHelpsPropagationLimitedFault(t *testing.T) {
	// Circuit: an easy-to-excite signal buried behind a blocking AND cone:
	// x = OR(a,b); out = AND(x, c, d, e, f). Faults on x propagate with
	// probability 2^-4 = 0.0625. An OP at x lifts them to excitation-only.
	b := netlist.NewBuilder("blocked")
	a := b.Input("a")
	x0 := b.Input("b")
	cc := b.Input("c")
	d := b.Input("d")
	e := b.Input("e")
	f := b.Input("f")
	x := b.OrGate("x", a, x0)
	out := b.AndGate("out", x, cc, d, e, f)
	b.MarkOutput(out)
	c := b.MustBuild()
	faults := fault.CollapsedUniverse(c)
	const dth = 0.2
	dp, err := PlanObservationPointsDP(c, faults, 1, dth, OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dp.CoveredAfter <= dp.CoveredBefore {
		t.Errorf("OP did not improve coverage: before %d after %d", dp.CoveredBefore, dp.CoveredAfter)
	}
	// The chosen point must be on the blocked side (x or upstream of x),
	// not on the easy AND inputs.
	if len(dp.Points) != 1 {
		t.Fatalf("points = %v", dp.Points)
	}
	xid, _ := c.GateByName("x")
	p := dp.Points[0]
	inXCone := false
	for _, g := range c.FaninCone(xid) {
		if g == p {
			inXCone = true
		}
	}
	if p != xid && !inXCone {
		t.Errorf("OP placed at %s, expected at/under x", c.GateName(p))
	}
}

func TestOPPlanImprovesRealFaultCoverage(t *testing.T) {
	// End-to-end: plan OPs on a propagation-limited circuit, insert them,
	// and confirm the fault simulator sees higher coverage with a short
	// pattern budget.
	c := gen.RPResistant(21, 2, 10, 40)
	faults := fault.CollapsedUniverse(c)
	dp, err := PlanObservationPointsDP(c, faults, 6, 1.0/256, OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Points) == 0 {
		t.Skip("planner found no useful OPs on this instance")
	}
	mod, err := c.InsertTestPoints(dp.TestPoints())
	if err != nil {
		t.Fatal(err)
	}
	before, err := fsim.Run(c, faults, pattern.NewLFSR(5), fsim.Options{MaxPatterns: 2048, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	after, err := fsim.Run(mod, faults, pattern.NewLFSR(5), fsim.Options{MaxPatterns: 2048, DropFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if after.Coverage() < before.Coverage() {
		t.Errorf("observation points reduced real coverage: %.4f -> %.4f", before.Coverage(), after.Coverage())
	}
}

func TestOPNegativeBudget(t *testing.T) {
	c := gen.C17()
	if _, err := PlanObservationPointsDP(c, fault.CollapsedUniverse(c), -1, 0.1, OPOptions{}); err != ErrBudgetNegative {
		t.Errorf("expected ErrBudgetNegative, got %v", err)
	}
}
