package tpi

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/progress"
	"repro/internal/testability"
)

// OPPlan is the result of a P2 (observation point) planning run.
type OPPlan struct {
	// Points lists the signals receiving observation points.
	Points []int
	// CoveredBefore/CoveredAfter count faults whose estimated detection
	// probability meets the threshold without/with the plan, under the
	// analytic coverage model (exact on fanout-free circuits).
	CoveredBefore, CoveredAfter int
	// TotalFaults is the size of the targeted fault list.
	TotalFaults int
	// StatesVisited counts DP states or candidate evaluations.
	StatesVisited int64
}

// TestPoints renders the plan as netlist rewrites.
func (p *OPPlan) TestPoints() []netlist.TestPoint {
	pts := make([]netlist.TestPoint, len(p.Points))
	for i, s := range p.Points {
		pts[i] = netlist.TestPoint{Signal: s, Kind: netlist.Observe}
	}
	return pts
}

// OPOptions configures observation point planning.
type OPOptions struct {
	// COP configures the underlying probability analysis.
	COP testability.COPOptions
}

// opModel is the shared coverage model: the circuit decomposed into
// fanout-free regions, each fault mapped to a region node with a local
// probability, path observabilities along region trees, and the external
// observability of each stem.
type opModel struct {
	c      *netlist.Circuit
	co     *testability.COP
	region []int // gate -> region stem
	// parent[n] = unique in-region consumer of n (-1 for stems);
	// parentObs[n] = pin observability through that consumer.
	parent    []int
	parentObs []float64
	// nodeFaults[n] = local probabilities of the faults sited at node n
	// (stem faults: excitation; branch faults: excitation x pin
	// observability into the consuming gate).
	nodeFaults [][]float64
	// stemExt[s] = probability the stem's value change reaches a primary
	// output through the rest of the circuit (1 if s is a PO).
	stemExt map[int]float64
	// regionNodes[s] = the gates of region s.
	regionNodes map[int][]int
	// regionChildren[n] = in-region fanins of n.
	regionChildren [][]int
}

func newOPModel(c *netlist.Circuit, faults []fault.Fault, opts OPOptions) *opModel {
	co := testability.NewCOP(c, opts.COP)
	m := &opModel{
		c:              c,
		co:             co,
		region:         c.RegionOf(),
		parent:         make([]int, c.NumGates()),
		parentObs:      make([]float64, c.NumGates()),
		nodeFaults:     make([][]float64, c.NumGates()),
		stemExt:        make(map[int]float64),
		regionNodes:    make(map[int][]int),
		regionChildren: make([][]int, c.NumGates()),
	}
	for id := 0; id < c.NumGates(); id++ {
		m.parent[id] = -1
		m.parentObs[id] = 1
	}
	for id := 0; id < c.NumGates(); id++ {
		stem := m.region[id]
		m.regionNodes[stem] = append(m.regionNodes[stem], id)
		if id != stem {
			// Non-stem: unique consumer, in the same region by
			// construction of fanout-free regions.
			consumer := c.Fanout(id)[0]
			m.parent[id] = consumer
			for pin, f := range c.Fanin(consumer) {
				if f == id {
					m.parentObs[id] = co.PinObservability(consumer, pin)
					break
				}
			}
			m.regionChildren[consumer] = append(m.regionChildren[consumer], id)
		}
	}
	for stem := range m.regionNodes {
		m.stemExt[stem] = co.Observability(stem)
	}
	for _, f := range faults {
		var node int
		var p float64
		if f.IsStem() {
			node = f.Gate
			p = excitation(co, f.Gate, f.Stuck)
		} else {
			node = f.Gate
			driver := c.Fanin(f.Gate)[f.Pin]
			p = excitation(co, driver, f.Stuck) * co.PinObservability(f.Gate, f.Pin)
		}
		m.nodeFaults[node] = append(m.nodeFaults[node], p)
	}
	return m
}

func excitation(co *testability.COP, signal int, stuck bool) float64 {
	if stuck {
		return 1 - co.Controllability(signal)
	}
	return co.Controllability(signal)
}

// pathObs returns the product of pin observabilities from node n's output
// up to (but not through) ancestor a within n's region tree. a must be n
// or an ancestor of n.
func (m *opModel) pathObs(n, a int) float64 {
	p := 1.0
	for n != a {
		p *= m.parentObs[n]
		n = m.parent[n]
	}
	return p
}

// coveredAt counts the faults sited at node n that meet the threshold
// when the effective observability from n's output is phi.
func (m *opModel) coveredAt(n int, phi, dth float64) int {
	cnt := 0
	for _, p := range m.nodeFaults[n] {
		if p*phi >= dth {
			cnt++
		}
	}
	return cnt
}

// coveredCount evaluates a concrete OP placement under the model: each
// fault is covered if its local probability times the observability to
// its best observer (nearest OP on the in-region path, or the stem's
// external observability) meets the threshold.
func (m *opModel) coveredCount(ops []int, dth float64) int {
	isOP := make(map[int]bool, len(ops))
	for _, s := range ops {
		isOP[s] = true
	}
	total := 0
	for n := 0; n < m.c.NumGates(); n++ {
		if len(m.nodeFaults[n]) == 0 {
			continue
		}
		// Best observability from n: walk up to the stem, tracking OPs.
		best := 0.0
		phi := 1.0
		cur := n
		for {
			if isOP[cur] && phi > best {
				best = phi
			}
			if m.parent[cur] < 0 {
				break
			}
			phi *= m.parentObs[cur]
			cur = m.parent[cur]
		}
		// cur is the stem; external observation continues downstream.
		if ext := phi * m.stemExt[cur]; ext > best {
			best = ext
		}
		total += m.coveredAt(n, best, dth)
	}
	return total
}

// regionDP computes, for one region, the best number of covered faults
// for every OP budget 0..kMax, by the exact tree DP over (node, nearest
// observer above). Memoisation is keyed by (node, observer-ancestor);
// observer == -1 encodes "external only" (nearest real observer is the
// downstream logic beyond the stem).
type regionDP struct {
	m      *opModel
	stem   int
	kMax   int
	dth    float64
	memo   map[[2]int][]int
	states int64
	ctx    context.Context
	done   <-chan struct{}
}

// run returns best[k] = max faults covered in the region using exactly at
// most k OPs placed inside the region.
func (r *regionDP) run() []int {
	return r.dp(r.stem, -1)
}

// phiFor returns the observability factor from node n's output to the
// nearest observer: ancestor `anc` (an in-region node holding an OP), or
// the external path when anc == -1.
func (r *regionDP) phiFor(n, anc int) float64 {
	if anc >= 0 {
		return r.m.pathObs(n, anc)
	}
	return r.m.pathObs(n, r.stem) * r.m.stemExt[r.stem]
}

// dp returns the budget-indexed best-coverage vector for the subtree
// rooted at n given the nearest observer at or above n's parent.
func (r *regionDP) dp(n, anc int) []int {
	key := [2]int{n, anc}
	if v, ok := r.memo[key]; ok {
		return v
	}
	pollDone(r.ctx, r.done)
	children := r.m.regionChildren[n]
	// Option A: no OP at n — faults here see the inherited observer.
	hereA := r.m.coveredAt(n, r.phiFor(n, anc), r.dth)
	optA := r.knapsack(children, anc, r.kMax)
	for k := 0; k <= r.kMax; k++ {
		optA[k] += hereA
	}
	// Option B: OP at n — faults here observed directly; children inherit
	// observer n; budget shifted by one.
	result := optA
	if r.kMax >= 1 {
		hereB := r.m.coveredAt(n, 1, r.dth)
		optB := r.knapsack(children, n, r.kMax-1)
		for k := 1; k <= r.kMax; k++ {
			if v := optB[k-1] + hereB; v > result[k] {
				result[k] = v
			}
		}
	}
	// Enforce monotonicity in budget (spending less is always allowed).
	for k := 1; k <= r.kMax; k++ {
		if result[k] < result[k-1] {
			result[k] = result[k-1]
		}
	}
	r.states += int64(len(result))
	r.memo[key] = result
	return result
}

// knapsack combines the children's dp vectors under observer anc into a
// budget-indexed sum, up to budget limit (entries above limit are filled
// from limit). The returned slice always has kMax+1 entries.
func (r *regionDP) knapsack(children []int, anc, limit int) []int {
	acc := make([]int, r.kMax+1)
	if limit < 0 {
		return acc
	}
	for _, ch := range children {
		chv := r.dp(ch, anc)
		next := make([]int, r.kMax+1)
		for k := 0; k <= limit; k++ {
			best := 0
			for j := 0; j <= k; j++ {
				if v := acc[k-j] + chv[j]; v > best {
					best = v
				}
			}
			next[k] = best
		}
		for k := limit + 1; k <= r.kMax; k++ {
			next[k] = next[limit]
		}
		acc = next
	}
	for k := limit + 1; k <= r.kMax; k++ {
		acc[k] = acc[limit]
	}
	return acc
}

// reconstruct re-derives an OP placement achieving dp(n, anc)[k].
func (r *regionDP) reconstruct(n, anc, k int, out *[]int) {
	children := r.m.regionChildren[n]
	target := r.dp(n, anc)[k]
	// Try option B first when it meets the target (placing OPs earlier
	// tends to put them closer to the faults; either choice is optimal).
	if k >= 1 {
		hereB := r.m.coveredAt(n, 1, r.dth)
		optB := r.knapsack(children, n, r.kMax-1)
		if optB[k-1]+hereB == target {
			*out = append(*out, n)
			r.splitKnapsack(children, n, k-1, out)
			return
		}
	}
	r.splitKnapsack(children, anc, k, out)
}

// splitKnapsack apportions budget k among children consistently with the
// knapsack optimum under observer anc.
func (r *regionDP) splitKnapsack(children []int, anc, k int, out *[]int) {
	if len(children) == 0 || k < 0 {
		return
	}
	// Recompute prefix knapsacks to find a consistent split.
	prefixes := make([][]int, len(children)+1)
	prefixes[0] = make([]int, r.kMax+1)
	for i, ch := range children {
		chv := r.dp(ch, anc)
		next := make([]int, r.kMax+1)
		for kk := 0; kk <= r.kMax; kk++ {
			best := 0
			for j := 0; j <= kk; j++ {
				if v := prefixes[i][kk-j] + chv[j]; v > best {
					best = v
				}
			}
			next[kk] = best
		}
		prefixes[i+1] = next
	}
	remaining := k
	for i := len(children) - 1; i >= 0; i-- {
		ch := children[i]
		chv := r.dp(ch, anc)
		for j := 0; j <= remaining; j++ {
			if prefixes[i][remaining-j]+chv[j] == prefixes[i+1][remaining] {
				r.reconstruct(ch, anc, j, out)
				remaining -= j
				break
			}
		}
	}
}

// PlanObservationPointsDP selects at most k observation points maximising
// the number of faults whose modelled detection probability reaches dth.
// Exact per fanout-free region (tree DP) with an exact knapsack
// allocation of the budget across regions; on fully fanout-free circuits
// this is the globally optimal placement under the COP model.
func PlanObservationPointsDP(c *netlist.Circuit, faults []fault.Fault, k int, dth float64, opts OPOptions) (*OPPlan, error) {
	return planObservationPointsDP(context.Background(), c, faults, k, dth, opts)
}

func planObservationPointsDP(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, k int, dth float64, opts OPOptions) (*OPPlan, error) {
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	m := newOPModel(c, faults, opts)
	plan := &OPPlan{
		TotalFaults:   len(faults),
		CoveredBefore: m.coveredCount(nil, dth),
	}
	if k == 0 {
		plan.CoveredAfter = plan.CoveredBefore
		return plan, nil
	}
	// Per-region DP gain tables. Regions holding no fault can never gain
	// coverage from an observation point, so their trees are not scored
	// at all (an exact skip: the cross-region knapsack would assign them
	// zero budget anyway).
	stems := make([]int, 0, len(m.regionNodes))
	for s, nodes := range m.regionNodes {
		for _, n := range nodes {
			if len(m.nodeFaults[n]) > 0 {
				stems = append(stems, s)
				break
			}
		}
	}
	sort.Ints(stems)
	report := progress.FromContext(ctx)
	dps := make([]*regionDP, len(stems))
	tables := make([][]int, len(stems))
	for i, s := range stems {
		if report != nil {
			report("op-regions", int64(i), int64(len(stems)))
		}
		r := &regionDP{m: m, stem: s, kMax: k, dth: dth, memo: make(map[[2]int][]int), ctx: ctx, done: ctx.Done()}
		tables[i] = r.run()
		dps[i] = r
		plan.StatesVisited += r.states
	}
	// Knapsack across regions.
	acc := make([]int, k+1)
	choice := make([][]int, len(stems)) // choice[i][k] = budget given to region i
	prev := make([]int, k+1)
	for i := range stems {
		choice[i] = make([]int, k+1)
		copy(prev, acc)
		for kk := 0; kk <= k; kk++ {
			best, bestJ := 0, 0
			for j := 0; j <= kk; j++ {
				if v := prev[kk-j] + tables[i][j]; v > best {
					best, bestJ = v, j
				}
			}
			acc[kk] = best
			choice[i][kk] = bestJ
		}
	}
	plan.CoveredAfter = acc[k]
	// Reconstruct: walk regions backwards apportioning the budget.
	remaining := k
	for i := len(stems) - 1; i >= 0; i-- {
		j := choice[i][remaining]
		if j > 0 {
			dps[i].reconstruct(stems[i], -1, j, &plan.Points)
		}
		remaining -= j
	}
	sort.Ints(plan.Points)
	// Model self-check: the reconstruction must achieve the DP value.
	if got := m.coveredCount(plan.Points, dth); got != plan.CoveredAfter {
		// Never expected; fall back to the evaluated value to stay honest.
		plan.CoveredAfter = got
	}
	return plan, nil
}

// PlanObservationPointsGreedy selects OPs one at a time, each time adding
// the signal covering the most still-uncovered faults under the same
// model. The E4/E8 comparisons quantify its gap against the DP.
func PlanObservationPointsGreedy(c *netlist.Circuit, faults []fault.Fault, k int, dth float64, opts OPOptions) (*OPPlan, error) {
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	m := newOPModel(c, faults, opts)
	plan := &OPPlan{
		TotalFaults:   len(faults),
		CoveredBefore: m.coveredCount(nil, dth),
	}
	covered := plan.CoveredBefore
	var ops []int
	for len(ops) < k {
		bestGain, bestSig := 0, -1
		for id := 0; id < c.NumGates(); id++ {
			if containsInt(ops, id) {
				continue
			}
			plan.StatesVisited++
			if v := m.coveredCount(append(ops[:len(ops):len(ops)], id), dth); v-covered > bestGain {
				bestGain, bestSig = v-covered, id
			}
		}
		if bestSig < 0 {
			break
		}
		ops = append(ops, bestSig)
		covered += bestGain
	}
	sort.Ints(ops)
	plan.Points = ops
	plan.CoveredAfter = m.coveredCount(ops, dth)
	return plan, nil
}

// PlanObservationPointsExhaustive tries every subset of at most k signals
// under the same model. Ground truth for small circuits.
func PlanObservationPointsExhaustive(c *netlist.Circuit, faults []fault.Fault, k int, dth float64, opts OPOptions) (*OPPlan, error) {
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	m := newOPModel(c, faults, opts)
	plan := &OPPlan{
		TotalFaults:   len(faults),
		CoveredBefore: m.coveredCount(nil, dth),
	}
	plan.CoveredAfter = plan.CoveredBefore
	n := c.NumGates()
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 {
			plan.StatesVisited++
			if v := m.coveredCount(cur, dth); v > plan.CoveredAfter {
				plan.CoveredAfter = v
				plan.Points = append(plan.Points[:0], cur...)
			}
		}
		if len(cur) == k {
			return
		}
		for i := start; i < n; i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	sort.Ints(plan.Points)
	return plan, nil
}

// PlanObservationPointsRandom places k OPs uniformly at random.
func PlanObservationPointsRandom(c *netlist.Circuit, faults []fault.Fault, k int, dth float64, seed int64, opts OPOptions) (*OPPlan, error) {
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	m := newOPModel(c, faults, opts)
	plan := &OPPlan{
		TotalFaults:   len(faults),
		CoveredBefore: m.coveredCount(nil, dth),
	}
	perm := rand.New(rand.NewSource(seed)).Perm(c.NumGates())
	if k > len(perm) {
		k = len(perm)
	}
	plan.Points = append(plan.Points, perm[:k]...)
	sort.Ints(plan.Points)
	plan.CoveredAfter = m.coveredCount(plan.Points, dth)
	return plan, nil
}

// ModelCoveredCount exposes the analytic coverage model for external
// evaluation: the number of faults meeting dth when observation points
// sit at the given signals.
func ModelCoveredCount(c *netlist.Circuit, faults []fault.Fault, ops []int, dth float64, opts OPOptions) int {
	m := newOPModel(c, faults, opts)
	return m.coveredCount(ops, dth)
}
