package tpi

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestWeightedDPMatchesWeightedExhaustive(t *testing.T) {
	// The cost-aware DP must stay optimal under non-uniform insertion
	// costs.
	for seed := int64(0); seed < 8; seed++ {
		c := gen.RandomTree(seed, 10, gen.TreeOptions{})
		rng := rand.New(rand.NewSource(seed + 77))
		costs := make([]int, c.NumGates())
		for i := range costs {
			costs[i] = 1 + rng.Intn(3) // costs in 1..3
		}
		cost := func(s int) int { return costs[s] }
		for _, budget := range []int{2, 4, 6} {
			dp, err := PlanCutsDPWithCost(c, budget, cost)
			if err != nil {
				t.Fatalf("seed %d budget %d: %v", seed, budget, err)
			}
			ex, err := PlanCutsExhaustiveWithCost(c, budget, cost)
			if err != nil {
				t.Fatal(err)
			}
			if dp.MaxCost != ex.MaxCost {
				t.Errorf("seed %d budget %d: DP %d != exhaustive %d (DP cuts %v, EX cuts %v)",
					seed, budget, dp.MaxCost, ex.MaxCost, dp.Cuts, ex.Cuts)
			}
			// The DP plan must respect the budget.
			spent := 0
			for _, s := range dp.Cuts {
				spent += cost(s)
			}
			if spent > budget {
				t.Errorf("seed %d budget %d: plan spends %d", seed, budget, spent)
			}
			if err := VerifyCutPlan(c, dp); err != nil {
				t.Error(err)
			}
		}
	}
}

func TestWeightedReducesToUnit(t *testing.T) {
	c := gen.RandomTree(9, 30, gen.TreeOptions{})
	for k := 0; k <= 5; k++ {
		plain, err := PlanCutsDP(c, k)
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := PlanCutsDPWithCost(c, k, UnitCost)
		if err != nil {
			t.Fatal(err)
		}
		if plain.MaxCost != weighted.MaxCost {
			t.Errorf("k=%d: unit-cost paths disagree: %d vs %d", k, plain.MaxCost, weighted.MaxCost)
		}
	}
}

func TestWeightedExpensiveSignalsAvoided(t *testing.T) {
	// Make the uniquely-best cut prohibitively expensive; the planner
	// must route around it.
	c := gen.RandomTree(2, 20, gen.TreeOptions{})
	unit, err := PlanCutsDP(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(unit.Cuts) == 0 {
		t.Skip("no beneficial single cut on this tree")
	}
	best := unit.Cuts[0]
	cost := func(s int) int {
		if s == best {
			return 100
		}
		return 1
	}
	weighted, err := PlanCutsDPWithCost(c, 1, cost)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range weighted.Cuts {
		if s == best {
			t.Errorf("planner chose the unaffordable signal %d", s)
		}
	}
	// And it can never do better than the unconstrained optimum.
	if weighted.MaxCost < unit.MaxCost {
		t.Errorf("weighted plan beat the unconstrained optimum: %d < %d", weighted.MaxCost, unit.MaxCost)
	}
}

func TestWeightedRejectsBadCosts(t *testing.T) {
	c := gen.RandomTree(1, 10, gen.TreeOptions{})
	if _, err := PlanCutsDPWithCost(c, 3, func(int) int { return 0 }); err == nil {
		t.Error("expected error for zero cost")
	}
	if _, err := PlanCutsDPWithCost(c, -1, UnitCost); err != ErrBudgetNegative {
		t.Errorf("expected ErrBudgetNegative, got %v", err)
	}
}
