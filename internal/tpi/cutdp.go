// Package tpi implements the paper's contribution: budget-constrained
// test point insertion by dynamic programming.
//
// Two planners are provided, matching the two problems DESIGN.md
// reconstructs from the 1987 paper:
//
//   - P1 (PlanCutsDP and friends): insert at most K full test points
//     (cuts) into a fanout-free circuit to minimise the minimax segment
//     test count under the Hayes–Friedman theory (internal/testcount).
//     The DP is exact; greedy, random, and exhaustive baselines accompany
//     it.
//
//   - P2 (PlanObservationPoints and friends): insert at most K observation
//     points to maximise the number of faults whose random-pattern
//     detection probability reaches a threshold. Exact on fanout-free
//     circuits by a tree DP; on general circuits the same DP runs per
//     fanout-free region with a knapsack allocation across regions (the
//     problem itself is NP-complete there, see internal/npc).
package tpi

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/netlist"
	"repro/internal/testcount"
)

// CutPlan is the result of a P1 planning run.
type CutPlan struct {
	// Cuts lists the signals receiving full test points.
	Cuts []int
	// MaxCost is the resulting minimax segment test count.
	MaxCost int
	// BaseCost is the test count of the unmodified circuit.
	BaseCost int
	// StatesVisited counts DP states (or configurations, for the
	// exhaustive planner) examined, the work measure used by E6.
	StatesVisited int64
}

// TestPoints renders the plan as netlist rewrites.
func (p *CutPlan) TestPoints() []netlist.TestPoint {
	pts := make([]netlist.TestPoint, len(p.Cuts))
	for i, s := range p.Cuts {
		pts[i] = netlist.TestPoint{Signal: s, Kind: netlist.FullCut}
	}
	return pts
}

// ErrBudgetNegative is returned for a negative test point budget.
var ErrBudgetNegative = errors.New("tpi: negative test point budget")

// CostFunc assigns an insertion cost to a signal (in integer cost
// units). UnitCost charges 1 per test point, reducing the weighted
// problem to the plain budget-of-K form.
type CostFunc func(signal int) int

// UnitCost charges one unit per test point.
func UnitCost(int) int { return 1 }

// PlanCutsDP computes an optimal placement of at most k full test points
// in a fanout-free unate circuit, minimising the resulting minimax segment
// test count. It binary-searches the feasibility threshold T and, for
// each T, runs an exact Pareto-set dynamic program over the forest that
// computes the minimum number of cuts keeping every segment's test count
// at or below T.
func PlanCutsDP(c *netlist.Circuit, k int) (*CutPlan, error) {
	return PlanCutsDPWithCost(c, k, UnitCost)
}

// PlanCutsDPWithCost is PlanCutsDP under a per-signal cost model: the
// plan's total insertion cost (sum of cost(signal) over cuts) may not
// exceed the budget. The DP's cut dimension simply carries cost instead
// of count, so optimality is preserved. Costs must be positive.
func PlanCutsDPWithCost(c *netlist.Circuit, budget int, cost CostFunc) (*CutPlan, error) {
	return planCutsDPWithCost(context.Background(), c, budget, cost)
}

func planCutsDPWithCost(ctx context.Context, c *netlist.Circuit, budget int, cost CostFunc) (*CutPlan, error) {
	k := budget
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	for id := 0; id < c.NumGates(); id++ {
		if cost(id) <= 0 {
			return nil, fmt.Errorf("tpi: cost of signal %d is %d; costs must be positive", id, cost(id))
		}
	}
	base, err := testcount.Compute(c)
	if err != nil {
		return nil, err
	}
	plan := &CutPlan{BaseCost: base.CircuitTests()}
	if k == 0 {
		plan.MaxCost = plan.BaseCost
		return plan, nil
	}
	lo, hi := 2, plan.BaseCost // minimax cost can never drop below 2
	var bestCuts []int
	bestT := hi
	for lo <= hi {
		mid := (lo + hi) / 2
		dp := newCutDP(ctx, c, mid, cost)
		cuts, ok := dp.solve(k)
		plan.StatesVisited += dp.states
		if ok {
			bestT = mid
			bestCuts = cuts
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	plan.MaxCost = bestT
	plan.Cuts = bestCuts
	sort.Ints(plan.Cuts)
	// bestT == BaseCost is achieved with zero cuts.
	if plan.MaxCost == plan.BaseCost {
		plan.Cuts = nil
	}
	return plan, nil
}

// cutState is one Pareto point of the DP: using k cuts strictly below the
// current position, the open segment so far needs t0/t1 zero- and
// one-tests. prev/choice thread the reconstruction chain: prev indexes
// the partial state before this node's latest child was merged, choice
// indexes the chosen export of that child.
type cutState struct {
	k, t0, t1    int
	prev, choice int32
}

// export is one way a child subtree presents itself to its parent: either
// uncut (contributing its open-segment counts) or cut (contributing a
// fresh leaf and one more cut). stateIdx points into the child's final
// state list for reconstruction.
type export struct {
	k, t0, t1 int
	cut       bool
	stateIdx  int32
}

// cutDP carries one feasibility run at threshold T.
type cutDP struct {
	c      *netlist.Circuit
	T      int
	cost   CostFunc
	states int64
	ctx    context.Context
	done   <-chan struct{}
	// final[n] is the Pareto state set of node n (open segment rooted at
	// n); chains[n] stores all partial states created while merging n's
	// children, referenced by prev indices.
	final  [][]cutState
	chains [][]cutState
}

func newCutDP(ctx context.Context, c *netlist.Circuit, T int, cost CostFunc) *cutDP {
	return &cutDP{
		c:      c,
		T:      T,
		cost:   cost,
		ctx:    ctx,
		done:   ctx.Done(),
		final:  make([][]cutState, c.NumGates()),
		chains: make([][]cutState, c.NumGates()),
	}
}

// solve returns a cut set achieving every segment cost <= T using at most
// k cuts, or ok=false if none exists.
func (dp *cutDP) solve(k int) (cuts []int, ok bool) {
	c := dp.c
	for _, id := range c.TopoOrder() {
		dp.computeNode(id)
	}
	// The forest is feasible iff the summed per-root minima fit in k.
	need := 0
	for _, o := range c.Outputs() {
		best := -1
		for _, st := range dp.final[o] {
			if best < 0 || st.k < best {
				best = st.k
			}
		}
		if best < 0 {
			return nil, false // root segment cannot meet T at all
		}
		need += best
	}
	if need > k {
		return nil, false
	}
	for _, o := range c.Outputs() {
		bestIdx := -1
		for i, st := range dp.final[o] {
			if bestIdx < 0 || st.k < dp.final[o][bestIdx].k {
				bestIdx = i
			}
		}
		dp.reconstruct(o, int32(bestIdx), &cuts)
	}
	return cuts, true
}

// computeNode fills final[id] from the children's state sets.
func (dp *cutDP) computeNode(id int) {
	pollDone(dp.ctx, dp.done)
	c := dp.c
	g := c.Gate(id)
	if g.Type == netlist.Input {
		dp.final[id] = []cutState{{k: 0, t0: 1, t1: 1, prev: -1, choice: -1}}
		dp.states++
		return
	}
	// Aggregation semantics per gate type: which child count sums and
	// which maxes, and whether the output swaps t0/t1.
	sumZero, swap := aggRules(g.Type)
	// Identity partial: nothing merged yet.
	partials := []cutState{{k: 0, t0: 0, t1: 0, prev: -1, choice: -1}}
	chainBase := 0
	dp.chains[id] = append(dp.chains[id][:0], partials...)
	for _, child := range g.Fanin {
		exports := dp.exportsOf(child)
		var next []cutState
		for pi, p := range partials {
			for ei, e := range exports {
				var t0, t1 int
				if sumZero {
					t0 = p.t0 + e.t0
					t1 = maxInt(p.t1, e.t1)
				} else {
					t0 = maxInt(p.t0, e.t0)
					t1 = p.t1 + e.t1
				}
				if t0+t1 > dp.T {
					continue // monotone upward: never feasible later
				}
				next = append(next, cutState{
					k: p.k + e.k, t0: t0, t1: t1,
					prev:   int32(chainBase + pi),
					choice: int32(ei),
				})
			}
		}
		next = paretoPrune(next)
		dp.states += int64(len(next))
		chainBase = len(dp.chains[id])
		dp.chains[id] = append(dp.chains[id], next...)
		partials = next
		if len(partials) == 0 {
			break
		}
	}
	// Output transform for inverting gates exchanges the roles of 0- and
	// 1-tests; the chain indices stay valid because only t values change.
	finals := make([]cutState, len(partials))
	copy(finals, partials)
	if swap {
		for i := range finals {
			finals[i].t0, finals[i].t1 = finals[i].t1, finals[i].t0
		}
	}
	// NOT/BUF single-child pass-through is handled by aggRules giving
	// sum-zero semantics over one child with no swap (BUF) or swap (NOT):
	// sum of one = the child value, max of one = the child value.
	dp.final[id] = finals
}

// exportsOf lists the ways child `child` can contribute: all of its final
// states uncut, plus (if any state exists) the single best cut option.
func (dp *cutDP) exportsOf(child int) []export {
	fin := dp.final[child]
	exports := make([]export, 0, len(fin)+1)
	bestK, bestIdx := -1, -1
	for i, st := range fin {
		exports = append(exports, export{k: st.k, t0: st.t0, t1: st.t1, stateIdx: int32(i)})
		if bestK < 0 || st.k < bestK {
			bestK, bestIdx = st.k, i
		}
	}
	if bestIdx >= 0 {
		exports = append(exports, export{k: bestK + dp.cost(child), t0: 1, t1: 1, cut: true, stateIdx: int32(bestIdx)})
	}
	return exports
}

// reconstruct walks the chain of node `id` from final state `idx`,
// emitting cut decisions into *cuts and recursing into children.
func (dp *cutDP) reconstruct(id int, idx int32, cuts *[]int) {
	g := dp.c.Gate(id)
	if g.Type == netlist.Input {
		return
	}
	// The final state at position idx corresponds to the partial chain
	// entry with the same (k, prev, choice) fields; walk prev pointers,
	// one child per hop, last child first.
	st := dp.final[id][idx]
	childIdx := len(g.Fanin) - 1
	for st.prev >= 0 {
		child := g.Fanin[childIdx]
		exports := dp.exportsOf(child)
		e := exports[st.choice]
		if e.cut {
			*cuts = append(*cuts, child)
		}
		dp.reconstruct(child, e.stateIdx, cuts)
		st = dp.chains[id][st.prev]
		childIdx--
	}
}

// aggRules returns the aggregation orientation for a gate type: sumZero
// means 0-tests sum and 1-tests max (AND-like); swap means the output
// exchanges t0/t1 (inverting gates).
func aggRules(t netlist.GateType) (sumZero, swap bool) {
	switch t {
	case netlist.And:
		return true, false
	case netlist.Nand:
		return true, true
	case netlist.Or:
		return false, false
	case netlist.Nor:
		return false, true
	case netlist.Buf:
		return true, false // single child: sum == max == identity
	case netlist.Not:
		return true, true
	}
	return true, false
}

// paretoPrune removes dominated states: state a dominates b when
// a.k <= b.k, a.t0 <= b.t0, a.t1 <= b.t1 (with at least one strict or
// equal-on-all, keeping one representative).
func paretoPrune(states []cutState) []cutState {
	if len(states) <= 1 {
		return states
	}
	sort.Slice(states, func(i, j int) bool {
		a, b := states[i], states[j]
		if a.k != b.k {
			return a.k < b.k
		}
		if a.t0 != b.t0 {
			return a.t0 < b.t0
		}
		return a.t1 < b.t1
	})
	var kept []cutState
	for _, s := range states {
		dominated := false
		for _, q := range kept {
			if q.k <= s.k && q.t0 <= s.t0 && q.t1 <= s.t1 {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, s)
		}
	}
	return kept
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PlanCutsGreedy places up to k cuts one at a time, each time choosing
// the single signal whose cut most reduces the current minimax segment
// cost (ties to the lower signal ID). It stops early when no single cut
// improves the cost. Suboptimal in general — the E2/E8 comparisons
// quantify the gap against the DP.
func PlanCutsGreedy(c *netlist.Circuit, k int) (*CutPlan, error) {
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	base, err := testcount.Compute(c)
	if err != nil {
		return nil, err
	}
	plan := &CutPlan{BaseCost: base.CircuitTests()}
	cur := plan.BaseCost
	var cuts []int
	for len(cuts) < k {
		bestCost, bestSig := cur, -1
		for id := 0; id < c.NumGates(); id++ {
			if c.Type(id) == netlist.Input || c.IsOutput(id) || containsInt(cuts, id) {
				continue
			}
			an, err := testcount.AnalyzeCuts(c, append(cuts[:len(cuts):len(cuts)], id))
			if err != nil {
				return nil, err
			}
			plan.StatesVisited++
			if an.MaxCost < bestCost {
				bestCost, bestSig = an.MaxCost, id
			}
		}
		if bestSig < 0 {
			break
		}
		cuts = append(cuts, bestSig)
		cur = bestCost
	}
	sort.Ints(cuts)
	plan.Cuts = cuts
	plan.MaxCost = cur
	return plan, nil
}

// PlanCutsExhaustive tries every subset of up to k cut signals and keeps
// the best. Exponential; the ground truth for small circuits (E2) and
// for property-testing the DP.
func PlanCutsExhaustive(c *netlist.Circuit, k int) (*CutPlan, error) {
	return PlanCutsExhaustiveWithCost(c, k, UnitCost)
}

// PlanCutsExhaustiveWithCost is the weighted ground truth: every subset
// whose summed cost fits the budget is evaluated.
func PlanCutsExhaustiveWithCost(c *netlist.Circuit, k int, cost CostFunc) (*CutPlan, error) {
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	base, err := testcount.Compute(c)
	if err != nil {
		return nil, err
	}
	plan := &CutPlan{BaseCost: base.CircuitTests(), MaxCost: base.CircuitTests()}
	var candidates []int
	for id := 0; id < c.NumGates(); id++ {
		if c.Type(id) != netlist.Input && !c.IsOutput(id) {
			candidates = append(candidates, id)
		}
	}
	cur := make([]int, 0, k)
	var rec func(start, spent int)
	rec = func(start, spent int) {
		if len(cur) > 0 {
			an, err := testcount.AnalyzeCuts(c, cur)
			if err == nil {
				plan.StatesVisited++
				if an.MaxCost < plan.MaxCost {
					plan.MaxCost = an.MaxCost
					plan.Cuts = append(plan.Cuts[:0], cur...)
				}
			}
		}
		for i := start; i < len(candidates); i++ {
			cc := cost(candidates[i])
			if spent+cc > k {
				continue
			}
			cur = append(cur, candidates[i])
			rec(i+1, spent+cc)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, 0)
	sort.Ints(plan.Cuts)
	return plan, nil
}

// PlanCutsRandom places k cuts uniformly at random over internal signals,
// the null-hypothesis baseline.
func PlanCutsRandom(c *netlist.Circuit, k int, seed int64) (*CutPlan, error) {
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	base, err := testcount.Compute(c)
	if err != nil {
		return nil, err
	}
	plan := &CutPlan{BaseCost: base.CircuitTests()}
	var candidates []int
	for id := 0; id < c.NumGates(); id++ {
		if c.Type(id) != netlist.Input && !c.IsOutput(id) {
			candidates = append(candidates, id)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	if k > len(candidates) {
		k = len(candidates)
	}
	plan.Cuts = append(plan.Cuts, candidates[:k]...)
	sort.Ints(plan.Cuts)
	an, err := testcount.AnalyzeCuts(c, plan.Cuts)
	if err != nil {
		return nil, err
	}
	plan.MaxCost = an.MaxCost
	return plan, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// VerifyCutPlan recomputes the minimax cost of a plan's cut set directly
// from the test-count recurrences, guarding against planner bugs.
func VerifyCutPlan(c *netlist.Circuit, plan *CutPlan) error {
	an, err := testcount.AnalyzeCuts(c, plan.Cuts)
	if err != nil {
		return err
	}
	if an.MaxCost != plan.MaxCost {
		return fmt.Errorf("tpi: plan claims max cost %d but cuts yield %d", plan.MaxCost, an.MaxCost)
	}
	return nil
}
