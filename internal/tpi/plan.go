package tpi

import (
	"context"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// Apply replays the control point insertions onto a circuit. Points were
// selected against successively modified circuits, so they are applied
// one at a time in selection order (gate IDs of pre-existing gates are
// stable across insertions, making the replay well defined).
func (p *CPPlan) Apply(c *netlist.Circuit) (*netlist.Circuit, error) {
	cur := c
	for _, pt := range p.Points {
		mod, err := cur.InsertTestPoints([]netlist.TestPoint{pt})
		if err != nil {
			return nil, err
		}
		cur = mod
	}
	return cur, nil
}

// HybridPlan is a combined control + observation point plan: the full
// test point insertion flow used by the E4/E5 experiments.
type HybridPlan struct {
	// Control is the control point stage (signals relative to the
	// original circuit and its successive modifications).
	Control *CPPlan
	// Observe is the observation point stage, planned on the
	// control-modified circuit.
	Observe *OPPlan
	// Modified is the final circuit with all test points inserted.
	Modified *netlist.Circuit
	// PrunedFaults counts the statically-redundant faults removed from
	// the target list before planning (see PruneFaults); coverage
	// figures in Control and Observe are over the pruned list.
	PrunedFaults int
}

// AllPoints returns the total number of inserted test points.
func (h *HybridPlan) AllPoints() int {
	return len(h.Control.Points) + len(h.Observe.Points)
}

// PlanHybrid runs the full flow: a static pre-prune of untestable
// faults, greedy control point selection (at most nCP points), then DP
// observation point planning (at most nOP points) on the
// control-modified circuit, targeting detection threshold dth for the
// given fault list. The returned plan carries the final modified
// circuit ready for fault simulation.
func PlanHybrid(c *netlist.Circuit, faults []fault.Fault, nCP, nOP int, dth float64, cpOpts CPOptions, opOpts OPOptions) (*HybridPlan, error) {
	return planHybrid(context.Background(), c, faults, nCP, nOP, dth, cpOpts, opOpts)
}

func planHybrid(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, nCP, nOP int, dth float64, cpOpts CPOptions, opOpts OPOptions) (*HybridPlan, error) {
	faults, pruned := PruneFaults(c, faults)
	cp, err := planControlPointsGreedy(ctx, c, faults, nCP, dth, cpOpts)
	if err != nil {
		return nil, err
	}
	mid, err := cp.Apply(c)
	if err != nil {
		return nil, err
	}
	op, err := planObservationPointsDP(ctx, mid, faults, nOP, dth, opOpts)
	if err != nil {
		return nil, err
	}
	final, err := mid.InsertTestPoints(op.TestPoints())
	if err != nil {
		return nil, err
	}
	return &HybridPlan{Control: cp, Observe: op, Modified: final, PrunedFaults: pruned}, nil
}
