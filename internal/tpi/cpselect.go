package tpi

import (
	"context"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/progress"
	"repro/internal/testability"
)

// CPPlan is the result of a control point selection run.
type CPPlan struct {
	// Points lists the selected control points (signals in the original
	// circuit, kinds Control0/Control1).
	Points []netlist.TestPoint
	// CoveredBefore/CoveredAfter count faults whose COP-estimated
	// detection probability meets the threshold without/with the plan.
	CoveredBefore, CoveredAfter int
	// TotalFaults is the size of the targeted fault list.
	TotalFaults int
	// Evaluations counts candidate circuit evaluations performed.
	Evaluations int64
}

// CPOptions configures control point selection.
type CPOptions struct {
	// MaxCandidates caps the number of candidate signals evaluated per
	// iteration (0 = 64). Candidates are drawn from the fanin cones of
	// the hard faults and ranked by signal-probability extremity, the
	// classic quick filter: lines pinned near 0 or 1 are the ones whose
	// forcing unlocks excitation and propagation.
	MaxCandidates int
	// COP configures the probability analysis.
	COP testability.COPOptions
}

// PlanControlPointsGreedy selects up to k control points, each iteration
// inserting the single AND-type (force-0) or OR-type (force-1) control
// point that raises the number of faults meeting the detection threshold
// the most under a full COP re-analysis of the candidate-modified
// circuit. Control test inputs are assumed driven by fresh equiprobable
// BIST inputs.
//
// Control point selection is where the NP-completeness bites (control
// points interact through shared fanout cones), so this is a heuristic by
// design; the 1987 DP applies to the problems in cutdp.go and opdp.go.
func PlanControlPointsGreedy(c *netlist.Circuit, faults []fault.Fault, k int, dth float64, opts CPOptions) (*CPPlan, error) {
	return planControlPointsGreedy(context.Background(), c, faults, k, dth, opts)
}

func planControlPointsGreedy(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, k int, dth float64, opts CPOptions) (*CPPlan, error) {
	done := ctx.Done()
	if k < 0 {
		return nil, ErrBudgetNegative
	}
	maxCand := opts.MaxCandidates
	if maxCand <= 0 {
		maxCand = 64
	}
	plan := &CPPlan{TotalFaults: len(faults)}
	co := testability.NewCOP(c, opts.COP)
	plan.CoveredBefore = countCovered(co, faults, dth)
	covered := plan.CoveredBefore

	report := progress.FromContext(ctx)
	var points []netlist.TestPoint
	cur := c
	for len(points) < k {
		if report != nil {
			report("control-points", int64(len(points)), int64(k))
		}
		candidates := controlCandidates(cur, co, faults, dth, maxCand)
		bestGain := 0
		var bestPoint netlist.TestPoint
		var bestCircuit *netlist.Circuit
		var bestCOP *testability.COP
		for _, s := range candidates {
			pollDone(ctx, done)
			for _, kind := range []netlist.TestPointKind{netlist.Control0, netlist.Control1} {
				mod, err := cur.InsertTestPoints([]netlist.TestPoint{{Signal: s, Kind: kind}})
				if err != nil {
					return nil, err
				}
				plan.Evaluations++
				mco := testability.NewCOP(mod, opts.COP)
				if v := countCovered(mco, faults, dth); v-covered > bestGain {
					bestGain = v - covered
					bestPoint = netlist.TestPoint{Signal: s, Kind: kind}
					bestCircuit = mod
					bestCOP = mco
				}
			}
		}
		if bestGain == 0 {
			break
		}
		points = append(points, bestPoint)
		cur = bestCircuit
		co = bestCOP
		covered += bestGain
	}
	plan.Points = points
	plan.CoveredAfter = covered
	return plan, nil
}

// countCovered counts faults whose estimated detection probability meets
// the threshold. The fault list refers to original gate IDs, which
// InsertTestPoints preserves in modified circuits.
func countCovered(co *testability.COP, faults []fault.Fault, dth float64) int {
	n := 0
	for _, f := range faults {
		if co.DetectProb(f) >= dth {
			n++
		}
	}
	return n
}

// controlCandidates returns candidate control point signals: members of
// the fanin cones of currently-hard faults, ranked by how extreme their
// signal probability is, capped at maxCand.
func controlCandidates(c *netlist.Circuit, co *testability.COP, faults []fault.Fault, dth float64, maxCand int) []int {
	inCone := make(map[int]bool)
	for _, f := range faults {
		if co.DetectProb(f) >= dth {
			continue
		}
		for _, g := range c.FaninCone(f.Gate) {
			inCone[g] = true
		}
		// The fanout cone matters too: forcing a line downstream of the
		// fault site can unblock propagation.
		for _, g := range c.FanoutCone(f.Gate) {
			inCone[g] = true
		}
	}
	cand := make([]int, 0, len(inCone))
	for g := range inCone {
		if c.Type(g) == netlist.Input {
			continue // forcing a BIST-driven PI adds nothing
		}
		cand = append(cand, g)
	}
	sort.Slice(cand, func(i, j int) bool {
		ei := math.Abs(co.Controllability(cand[i]) - 0.5)
		ej := math.Abs(co.Controllability(cand[j]) - 0.5)
		if ei != ej {
			return ei > ej
		}
		return cand[i] < cand[j]
	})
	if len(cand) > maxCand {
		cand = cand[:maxCand]
	}
	return cand
}
